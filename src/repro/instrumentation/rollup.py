"""Windowed metric rollups: periodic registry snapshots -> time series.

PR 6's :class:`~repro.instrumentation.metrics.MetricsRegistry` answers
"how many, ever" — cumulative counters, current gauges, lifetime
histograms.  Operational questions are *windowed*: "what is the solver
failure rate right now", "has the executor been saturated for the last
30 seconds", "what was chunk-wall p95 over the last five minutes".  The
:class:`MetricsSampler` bridges the two: it snapshots the registry on an
interval into a bounded ring of timestamped plain-data snapshots and
derives rate / delta / quantile / saturation views from any trailing
window of them.

Design points:

* **Snapshots are plain JSON data** (the same flattening discipline as
  :meth:`MetricsRegistry.state`, plus gauges, which the cross-process
  transport deliberately excludes but a health view needs).  Label sets
  are keyed by the JSON encoding of their sorted item list, so every
  snapshot round-trips through JSONL unchanged.
* **Everything derived is a pure function of the retained snapshots**:
  a sampler rebuilt from a persisted snapshot sidecar
  (:meth:`MetricsSampler.from_snapshots`) answers every windowed query
  identically to the live one — which is what makes a
  :class:`~repro.instrumentation.health.HealthReport` reproducible from
  disk alone.
* **Bounded**: at most ``max_samples`` snapshots are retained (a
  :class:`~repro.instrumentation.ringlog.RingLog` window), so a sampler
  attached to a long-lived service is a fixed-size object however long
  it runs.

Persistence: pass ``store`` (anything with ``append_health_snapshot``,
in practice :class:`~repro.service.store.ResultStore`) and every
:meth:`sample` call appends its snapshot to the store's JSONL health
sidecar — trends survive restarts, and offline tooling (``gridmind
health`` / ``gridmind top``) reads the same series the service saw.
"""

from __future__ import annotations

import json
import math
import time
from typing import Callable, Iterable

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_metrics
from .ringlog import RingLog

#: Default retained snapshot count.  At the service's default 5 s
#: sampling interval this is a one-hour window.
DEFAULT_MAX_SAMPLES = 720

SNAPSHOT_FORMAT = "gridmind-metrics-snapshot-v1"


def _label_json(key: tuple[tuple[str, str], ...]) -> str:
    """Canonical JSON id for one label set (sorted items, round-trips)."""
    return json.dumps([list(kv) for kv in key], separators=(",", ":"))


def _label_dict(label_id: str) -> dict:
    return dict(json.loads(label_id)) if label_id else {}


def _matches(label_id: str, match: dict | None) -> bool:
    if not match:
        return True
    labels = _label_dict(label_id)
    return all(labels.get(k) == str(v) for k, v in match.items())


def snapshot_registry(registry: MetricsRegistry, now: float | None = None) -> dict:
    """One timestamped plain-data flattening of every instrument.

    Counters and gauges become ``{name: {label_id: value}}``; histograms
    keep their raw per-bucket counts (``len(buckets) + 1`` entries, +Inf
    last) and sum per label series, exactly like
    :meth:`MetricsRegistry.state` ships them across processes.
    """
    counters: dict[str, dict] = {}
    gauges: dict[str, dict] = {}
    histograms: dict[str, dict] = {}
    for instrument in registry.instruments():
        if isinstance(instrument, Histogram):
            with instrument._lock:
                histograms[instrument.name] = {
                    "buckets": list(instrument.buckets),
                    "series": {
                        _label_json(key): [list(counts), instrument._sums[key]]
                        for key, counts in instrument._counts.items()
                    },
                }
        elif isinstance(instrument, Gauge):
            with instrument._lock:
                gauges[instrument.name] = {
                    _label_json(key): value
                    for key, value in instrument._values.items()
                }
        elif isinstance(instrument, Counter):
            with instrument._lock:
                counters[instrument.name] = {
                    _label_json(key): value
                    for key, value in instrument._values.items()
                }
    return {
        "format": SNAPSHOT_FORMAT,
        "ts": float(now if now is not None else time.time()),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


class MetricsSampler:
    """Bounded time-windowed series over periodic registry snapshots.

    ``registry`` may be a :class:`MetricsRegistry` or a zero-arg callable
    returning one (default: :func:`~repro.instrumentation.metrics
    .get_metrics`, resolved at *sample* time so registry swaps — tests,
    ablation baselines — are honoured).
    """

    def __init__(
        self,
        registry: MetricsRegistry | Callable[[], MetricsRegistry] | None = None,
        *,
        interval_s: float = 5.0,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        store=None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self._registry = registry if registry is not None else get_metrics
        self.interval_s = float(interval_s)
        self.store = store
        self._ring: RingLog[dict] = RingLog(max_samples)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def _resolve_registry(self) -> MetricsRegistry:
        registry = self._registry
        return registry() if callable(registry) else registry

    def sample(self, now: float | None = None) -> dict:
        """Snapshot the registry now; append to the window and persist."""
        snap = snapshot_registry(self._resolve_registry(), now)
        self.ingest(snap, persist=True)
        return snap

    def ingest(self, snapshot: dict, *, persist: bool = False) -> None:
        """Append a pre-built snapshot (the restore / replay path)."""
        self._ring.append(snapshot)
        if persist and self.store is not None:
            self.store.append_health_snapshot(snapshot)

    @classmethod
    def from_snapshots(
        cls,
        snapshots: Iterable[dict],
        *,
        interval_s: float = 5.0,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> "MetricsSampler":
        """Rebuild a sampler from persisted snapshot dicts (oldest first).

        The reconstructed sampler answers every windowed query exactly as
        a live sampler holding the same snapshots would — health
        evaluation from a store sidecar is bit-identical to the
        service's own.
        """
        sampler = cls(interval_s=interval_s, max_samples=max_samples)
        for snap in snapshots:
            if snap.get("format") == SNAPSHOT_FORMAT:
                sampler.ingest(snap)
        return sampler

    # ------------------------------------------------------------------
    # window selection
    # ------------------------------------------------------------------
    def snapshots(self) -> list[dict]:
        """Retained snapshots, oldest first."""
        return list(self._ring)

    @property
    def n_samples(self) -> int:
        return len(self._ring)

    @property
    def latest_ts(self) -> float | None:
        return self._ring[-1]["ts"] if self._ring else None

    @property
    def window_span_s(self) -> float:
        """Seconds covered by the retained window (0 with < 2 samples)."""
        if len(self._ring) < 2:
            return 0.0
        return float(self._ring[-1]["ts"] - self._ring[0]["ts"])

    def _window(self, window_s: float | None) -> tuple[dict, dict] | None:
        """(baseline, latest) snapshots spanning the trailing window.

        ``window_s=None`` spans the whole retained ring.  Returns
        ``None`` with fewer than two snapshots — callers surface that as
        "no data" rather than inventing a zero rate.
        """
        if len(self._ring) < 2:
            return None
        latest = self._ring[-1]
        if window_s is None:
            return self._ring[0], latest
        cutoff = latest["ts"] - float(window_s)
        baseline = self._ring[0]
        for snap in self._ring:
            if snap["ts"] > cutoff:
                break
            baseline = snap
        if baseline is latest:
            baseline = self._ring[-2]
        return baseline, latest

    # ------------------------------------------------------------------
    # counter views
    # ------------------------------------------------------------------
    @staticmethod
    def _sum_series(block: dict | None, match: dict | None) -> float:
        if not block:
            return 0.0
        return sum(
            value for label_id, value in block.items() if _matches(label_id, match)
        )

    def counter_value(self, name: str, match: dict | None = None) -> float:
        """Latest cumulative value, summed across matching label series."""
        if not self._ring:
            return 0.0
        return self._sum_series(self._ring[-1]["counters"].get(name), match)

    def counter_delta(
        self, name: str, match: dict | None = None, window_s: float | None = None
    ) -> tuple[float, float] | None:
        """(increase, elapsed seconds) over the trailing window.

        ``None`` when fewer than two snapshots exist; a counter absent
        from the baseline contributes its full latest value (it started
        mid-window at zero).
        """
        pair = self._window(window_s)
        if pair is None:
            return None
        before, after = pair
        delta = self._sum_series(
            after["counters"].get(name), match
        ) - self._sum_series(before["counters"].get(name), match)
        return max(0.0, delta), max(0.0, after["ts"] - before["ts"])

    def rate(
        self, name: str, match: dict | None = None, window_s: float | None = None
    ) -> float | None:
        """Per-second increase of a counter over the trailing window."""
        pair = self.counter_delta(name, match, window_s)
        if pair is None:
            return None
        delta, elapsed = pair
        return delta / elapsed if elapsed > 0 else 0.0

    def label_values(self, name: str, label: str) -> list[str]:
        """Distinct values of ``label`` across a counter's latest series."""
        if not self._ring:
            return []
        block = self._ring[-1]["counters"].get(name) or {}
        values = {
            _label_dict(label_id).get(label)
            for label_id in block
        }
        return sorted(v for v in values if v is not None)

    # ------------------------------------------------------------------
    # gauge views
    # ------------------------------------------------------------------
    def gauge_value(self, name: str, match: dict | None = None) -> float | None:
        """Latest gauge reading (summed across matching series)."""
        if not self._ring:
            return None
        block = self._ring[-1]["gauges"].get(name)
        if block is None:
            return None
        return self._sum_series(block, match)

    def gauge_series(
        self, name: str, match: dict | None = None, window_s: float | None = None
    ) -> list[tuple[float, float]]:
        """(ts, value) points for a gauge over the trailing window."""
        if not self._ring:
            return []
        cutoff = None
        if window_s is not None and self.latest_ts is not None:
            cutoff = self.latest_ts - float(window_s)
        out = []
        for snap in self._ring:
            if cutoff is not None and snap["ts"] < cutoff:
                continue
            block = snap["gauges"].get(name)
            if block is None:
                continue
            out.append((snap["ts"], self._sum_series(block, match)))
        return out

    def gauge_peak(
        self, name: str, match: dict | None = None, window_s: float | None = None
    ) -> float | None:
        series = self.gauge_series(name, match, window_s)
        return max((v for _ts, v in series), default=None)

    def saturated_seconds(
        self,
        name: str,
        level: float | None = None,
        match: dict | None = None,
        window_s: float | None = None,
    ) -> float:
        """Trailing seconds a gauge has continuously sat at/above ``level``.

        ``level=None`` saturates at the gauge's peak over the window (for
        capacity gauges whose ceiling isn't statically known, e.g. the
        executor's in-flight window).  Zero-valued peaks never count as
        saturated: an idle gauge is not a stuck one.
        """
        series = self.gauge_series(name, match, window_s)
        if len(series) < 2:
            return 0.0
        if level is None:
            level = max(v for _ts, v in series)
        if level <= 0:
            return 0.0
        run_start = None
        for ts, value in series:
            if value >= level:
                if run_start is None:
                    run_start = ts
            else:
                run_start = None
        if run_start is None:
            return 0.0
        return float(series[-1][0] - run_start)

    # ------------------------------------------------------------------
    # histogram views
    # ------------------------------------------------------------------
    def histogram_delta(
        self, name: str, match: dict | None = None, window_s: float | None = None
    ) -> tuple[list[float], list[float], float] | None:
        """(bucket bounds, per-bucket count increases, sum increase).

        Counts are per-bucket (not cumulative) with the +Inf overflow
        last, matching the registry's internal layout.  ``None`` when the
        window has fewer than two snapshots or the histogram is absent.
        """
        pair = self._window(window_s)
        if pair is None:
            return None
        before, after = pair
        block_after = after["histograms"].get(name)
        if not block_after:
            return None
        block_before = before["histograms"].get(name) or {"series": {}}
        buckets = [float(b) for b in block_after["buckets"]]
        counts = [0.0] * (len(buckets) + 1)
        total_sum = 0.0
        base_series = block_before.get("series", {})
        for label_id, (after_counts, after_sum) in block_after["series"].items():
            if not _matches(label_id, match):
                continue
            base_counts, base_sum = base_series.get(
                label_id, ([0] * len(after_counts), 0.0)
            )
            for i, n in enumerate(after_counts):
                counts[i] += n - base_counts[i]
            total_sum += after_sum - base_sum
        return buckets, counts, total_sum

    def window_quantile(
        self,
        name: str,
        q: float,
        match: dict | None = None,
        window_s: float | None = None,
    ) -> float | None:
        """Estimated ``q``-quantile of a histogram's window observations.

        Linear interpolation within the target bucket (the standard
        ``histogram_quantile`` estimator); observations landing in the
        +Inf overflow clamp to the largest finite bound.  ``None`` when
        no observations fell inside the window.
        """
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        delta = self.histogram_delta(name, match, window_s)
        if delta is None:
            return None
        buckets, counts, _total = delta
        n = sum(counts)
        if n <= 0:
            return None
        target = q * n
        cumulative = 0.0
        for i, count in enumerate(counts[:-1]):
            prev = cumulative
            cumulative += count
            if cumulative >= target and count > 0:
                lo = buckets[i - 1] if i > 0 else 0.0
                hi = buckets[i]
                frac = (target - prev) / count
                return lo + (hi - lo) * frac
        return buckets[-1]

    def window_fraction_over(
        self,
        name: str,
        bound: float,
        match: dict | None = None,
        window_s: float | None = None,
    ) -> float | None:
        """Fraction of window observations above ``bound`` (bucket-resolved).

        ``bound`` is resolved to the smallest bucket upper edge >= bound,
        so the answer is exact at bucket boundaries and conservative
        (never under-reports) between them.
        """
        delta = self.histogram_delta(name, match, window_s)
        if delta is None:
            return None
        buckets, counts, _total = delta
        n = sum(counts)
        if n <= 0:
            return None
        over = 0.0
        for i, count in enumerate(counts):
            edge = buckets[i] if i < len(buckets) else math.inf
            if edge > bound:
                over += count
        return over / n
