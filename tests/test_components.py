"""Component dataclass validation and cost-curve evaluation."""

import pytest

from repro.grid.components import Branch, Bus, BusType, Generator, Load


class TestBus:
    def test_defaults(self):
        bus = Bus(index=3)
        assert bus.name == "bus_3"
        assert bus.bus_type == BusType.PQ

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Bus(index=-1)

    def test_inverted_voltage_band_rejected(self):
        with pytest.raises(ValueError, match="vmin"):
            Bus(index=0, vmin_pu=1.1, vmax_pu=0.9)

    def test_custom_name_kept(self):
        assert Bus(index=0, name="slack").name == "slack"


class TestGenerator:
    def test_cost_at_quadratic(self):
        gen = Generator(bus=0, cost_coeffs=(0.1, 20.0, 5.0))
        # 0.1*10^2 + 20*10 + 5 = 215
        assert gen.cost_at(10.0) == pytest.approx(215.0)

    def test_cost_at_zero(self):
        gen = Generator(bus=0, cost_coeffs=(0.1, 20.0, 5.0))
        assert gen.cost_at(0.0) == pytest.approx(5.0)

    def test_marginal_cost(self):
        gen = Generator(bus=0, cost_coeffs=(0.1, 20.0, 5.0))
        # d/dP = 0.2P + 20 at P=10 -> 22
        assert gen.marginal_cost_at(10.0) == pytest.approx(22.0)

    def test_marginal_cost_linear(self):
        gen = Generator(bus=0, cost_coeffs=(15.0, 0.0))
        assert gen.marginal_cost_at(50.0) == pytest.approx(15.0)

    def test_inverted_p_limits_rejected(self):
        with pytest.raises(ValueError, match="pmin"):
            Generator(bus=0, pmin_mw=100.0, pmax_mw=50.0)

    def test_inverted_q_limits_rejected(self):
        with pytest.raises(ValueError, match="qmin"):
            Generator(bus=0, qmin_mvar=50.0, qmax_mvar=-50.0)


class TestBranch:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="from_bus == to_bus"):
            Branch(from_bus=2, to_bus=2)

    def test_zero_impedance_rejected(self):
        with pytest.raises(ValueError, match="zero impedance"):
            Branch(from_bus=0, to_bus=1, r_pu=0.0, x_pu=0.0)

    def test_effective_tap_nominal(self):
        br = Branch(from_bus=0, to_bus=1, x_pu=0.1, tap=0.0)
        assert br.effective_tap == 1.0

    def test_effective_tap_off_nominal(self):
        br = Branch(from_bus=0, to_bus=1, x_pu=0.1, tap=0.95)
        assert br.effective_tap == pytest.approx(0.95)

    def test_transformer_naming(self):
        br = Branch(from_bus=0, to_bus=1, x_pu=0.1, is_transformer=True)
        assert br.name.startswith("trafo")

    def test_line_naming(self):
        br = Branch(from_bus=0, to_bus=1, x_pu=0.1)
        assert br.name.startswith("line")


class TestLoad:
    def test_default_name(self):
        assert Load(bus=7).name == "load_b7"

    def test_values_stored(self):
        ld = Load(bus=1, pd_mw=10.0, qd_mvar=2.0)
        assert ld.pd_mw == 10.0
        assert ld.qd_mvar == 2.0
