"""Typed data models (paper Section 3.3 and Appendix C).

Every artefact that crosses an agent boundary is validated against these
pydantic schemas: network snapshots, optimisation solutions, contingency
outcomes, context summaries, and workflow state.  Field names
(``objective_cost``, ``min_voltage_pu``, ``max_loading_percent``, ...) are
the semantic anchors the simulated model's narration maps intents onto —
exactly the anti-hallucination mechanism the paper describes.
"""

from __future__ import annotations

import time
from typing import Any

from pydantic import BaseModel, Field


def now_iso() -> str:
    """Wall-clock timestamp for provenance records."""
    return time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime())


class BranchLoadingModel(BaseModel):
    """Loading of one branch in a solved state."""

    branch_id: int
    from_bus: int
    to_bus: int
    loading_percent: float
    mva_flow: float
    rate_mva: float


class ACOPFSolution(BaseModel):
    """Validated ACOPF artefact deposited into the shared context."""

    case_name: str
    solved: bool
    objective_cost: float
    gen_dispatch_mw: dict[str, float] = Field(default_factory=dict)
    branch_loading: list[BranchLoadingModel] = Field(default_factory=list)
    min_voltage_pu: float = 1.0
    max_voltage_pu: float = 1.0
    convergence_message: str = ""
    # Extensions beyond the paper's illustrative fragment:
    total_generation_mw: float = 0.0
    losses_mw: float = 0.0
    max_loading_percent: float = 0.0
    iterations: int = 0
    solver: str = "acopf-ipm"
    runtime_s: float = 0.0
    max_mismatch_pu: float = 0.0
    timestamp: str = Field(default_factory=now_iso)


class SolutionQuality(BaseModel):
    """Multi-dimensional quality score (paper Appendix C, verbatim shape)."""

    overall_score: float = Field(ge=0.0, le=10.0)
    convergence_quality: float = Field(ge=0.0, le=10.0)
    constraint_satisfaction: float = Field(ge=0.0, le=10.0)
    economic_efficiency: float = Field(ge=0.0, le=10.0)
    system_security: float = Field(ge=0.0, le=10.0)
    detailed_metrics: dict[str, Any] = Field(default_factory=dict)
    recommendations: list[str] = Field(default_factory=list)


class ContingencyRecord(BaseModel):
    """One ranked contingency within a result set."""

    rank: int
    branch_id: int
    from_bus: int
    to_bus: int
    is_transformer: bool = False
    severity: float = 0.0
    converged: bool = True
    islanded: bool = False
    stranded_load_mw: float = 0.0
    n_overloads: int = 0
    max_loading_percent: float = 0.0
    min_voltage_pu: float = 1.0
    n_voltage_violations: int = 0
    estimated_curtailment_mw: float = 0.0
    justification: str = ""


class ContingencyAnalysisResult(BaseModel):
    """Aggregated N-1 outcome set (the paper's ContingencyResultSet)."""

    case_name: str
    base_objective_cost: float | None = None
    n_contingencies: int
    n_violations: int
    max_overload_percent: float
    critical: list[ContingencyRecord] = Field(default_factory=list)
    recommendations: list[str] = Field(default_factory=list)
    recurring_bottlenecks: list[tuple[int, int]] = Field(default_factory=list)
    weights_profile: str = "balanced"
    overload_threshold: float = 100.0
    runtime_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    timestamp: str = Field(default_factory=now_iso)


class PowerSystemModel(BaseModel):
    """Unified network snapshot metadata (buses/gens/branches + totals)."""

    case_name: str
    n_bus: int
    n_gen: int
    n_load: int
    n_branch: int
    n_line: int
    n_transformer: int
    base_mva: float = 100.0
    total_load_mw: float = 0.0
    total_load_mvar: float = 0.0
    gen_capacity_mw: float = 0.0
    description: str = ""
    source: str = ""


class Modification(BaseModel):
    """One entry of the chronological diff log."""

    kind: str  # "load_change" | "branch_outage" | "branch_restore" | ...
    description: str
    params: dict[str, Any] = Field(default_factory=dict)
    network_version: int = 0
    timestamp: str = Field(default_factory=now_iso)


class ProvenanceRecord(BaseModel):
    """Solver/tool provenance attached to every numerical artefact."""

    tool: str
    solver: str = ""
    options: dict[str, Any] = Field(default_factory=dict)
    ok: bool = True
    duration_s: float = 0.0
    timestamp: str = Field(default_factory=now_iso)


class WorkflowStep(BaseModel):
    agent: str
    clause: str
    intent: str = ""
    status: str = "pending"  # pending | running | done | failed


class WorkflowState(BaseModel):
    """Multi-step analytical plan and its completion status."""

    request: str
    steps: list[WorkflowStep] = Field(default_factory=list)
    status: str = "pending"
    timestamp: str = Field(default_factory=now_iso)

    def mark(self, index: int, status: str) -> None:
        self.steps[index].status = status
        if all(s.status == "done" for s in self.steps):
            self.status = "done"
        elif any(s.status == "failed" for s in self.steps):
            self.status = "failed"
        else:
            self.status = "running"


class ToolCallLogEntry(BaseModel):
    """Audit-trail record of one executed tool call.

    ``seq`` is the registry-wide monotonic call number: stable even after
    the ring-buffer log evicts older entries, unlike a list index.
    """

    seq: int = 0
    tool: str
    arguments: dict[str, Any] = Field(default_factory=dict)
    result: dict[str, Any] | None = None
    ok: bool = True
    error: str = ""
    duration_s: float = 0.0
    timestamp: str = Field(default_factory=now_iso)
