"""Composite-key contingency result cache.

The paper caches each outage evaluation "under a composite key (case +
outage + diff hash)" so repeated or incremental studies only recompute
affected layers.  The diff hash here is a content hash of the exported
network (loads, topology, dispatch, limits), so any modification made
through the :class:`~repro.grid.network.Network` API safely invalidates
stale entries.  The digest is memoised behind the network's mutation
counter; direct component edits that bypass the API must call
``Network.touch()`` (the contract ``Network`` itself documents), or the
memo — like the compiled solver views — will serve pre-edit state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..grid.io import to_matpower
from ..grid.network import Network
from .outcomes import ContingencyOutcome


def network_content_hash(net: Network) -> str:
    """Stable hash of everything that affects contingency outcomes.

    Serialising a 300-bus network to MATPOWER JSON dominates cache-lookup
    cost in hot screening loops, so the digest is memoised on the network
    behind its mutation counter: recomputed only after a ``touch``.
    """
    memo = getattr(net, "_content_hash_memo", None)
    if memo is not None and memo[0] == net.version:
        return memo[1]
    payload = to_matpower(net)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
    net._content_hash_memo = (net.version, digest)
    return digest


@dataclass(frozen=True)
class CacheKey:
    case_name: str
    content_hash: str
    branch_id: int


@dataclass
class ContingencyCache:
    """In-memory outcome cache with hit/miss instrumentation."""

    _store: dict[CacheKey, ContingencyOutcome] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def key_for(self, net: Network, branch_id: int) -> CacheKey:
        return CacheKey(net.metadata.case_name, network_content_hash(net), branch_id)

    def get(self, net: Network, branch_id: int) -> ContingencyOutcome | None:
        key = self.key_for(net, branch_id)
        hit = self._store.get(key)
        if hit is None:
            self.misses += 1
        else:
            self.hits += 1
        return hit

    def put(self, net: Network, outcome: ContingencyOutcome) -> None:
        self._store[self.key_for(net, outcome.branch_id)] = outcome

    def put_many(self, net: Network, outcomes: list[ContingencyOutcome]) -> None:
        content = network_content_hash(net)
        name = net.metadata.case_name
        for o in outcomes:
            self._store[CacheKey(name, content, o.branch_id)] = o

    def lookup_sweep(
        self, net: Network, branch_ids: list[int]
    ) -> tuple[dict[int, ContingencyOutcome], list[int]]:
        """Split a sweep into (cached outcomes, ids still to compute).

        One content hash is computed for the whole lookup — the hash is
        the expensive part, not the dict probes.
        """
        content = network_content_hash(net)
        name = net.metadata.case_name
        found: dict[int, ContingencyOutcome] = {}
        missing: list[int] = []
        for bid in branch_ids:
            out = self._store.get(CacheKey(name, content, bid))
            if out is None:
                self.misses += 1
                missing.append(bid)
            else:
                self.hits += 1
                found[bid] = out
        return found, missing

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    @property
    def size(self) -> int:
        return len(self._store)

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
        }
