#!/usr/bin/env python
"""Tier-2 batch-kernel smoke: batched == scalar end to end, counters live.

Runs the same injection-only Monte Carlo ensemble through the ``dc``
study twice — once with the chunk-level batched kernels, once forced
onto the scalar per-scenario loop — over the shared-executor pool path,
then asserts the guarantees the batch layer makes:

* per-scenario records are bit-identical between the two runs (timing
  zeroed), and so are the aggregates and the store's results digest,
* the batched run engaged the kernel fast path
  (``gridmind_batch_solves_total`` > 0, one row per scenario in
  ``gridmind_batch_rows_total``, merged back from pool workers),
* the scalar run never touched it (both counters zero),
* scenario accounting is identical either way
  (``gridmind_scenarios_total`` bills every scenario exactly once).

Exits nonzero on the first violated invariant.

Usage::

    PYTHONPATH=src python scripts/batch_smoke.py [n_scenarios]
"""

from __future__ import annotations

import dataclasses
import sys

from repro.grid.cases import load_case
from repro.instrumentation.metrics import MetricsRegistry, set_metrics
from repro.scenarios import BatchStudyRunner, monte_carlo_ensemble
from repro.service import StudyExecutor
from repro.service.store import _results_digest


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {message}")


def run_study(net, scns, *, batch: bool):
    registry = MetricsRegistry()
    set_metrics(registry)
    with StudyExecutor(max_workers=2) as executor:
        study = BatchStudyRunner(
            analysis="dc", executor=executor, batch_kernels=batch
        ).run(net, scns)
    return study, registry


def records(study) -> list[dict]:
    out = []
    for r in study.results:
        d = dataclasses.asdict(r)
        d["solve_time_s"] = 0.0  # wall clock, the one timing field
        out.append(d)
    return out


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    net = load_case("ieee57")
    scns = monte_carlo_ensemble(n=n, sigma=0.05, seed=7)

    batched, m_batched = run_study(net, scns, batch=True)
    scalar, m_scalar = run_study(net, scns, batch=False)
    print(
        f"dc study on ieee57, {n} scenarios: batched {batched.runtime_s:.2f}s,"
        f" scalar {scalar.runtime_s:.2f}s"
    )

    check(
        records(batched) == records(scalar),
        f"per-scenario records bit-identical across {n} scenarios",
    )
    check(
        batched.aggregate().to_dict() == scalar.aggregate().to_dict(),
        "aggregates identical",
    )
    check(
        _results_digest(records(batched)) == _results_digest(records(scalar)),
        "store results digest identical (timing zeroed)",
    )

    solves = m_batched.counter("gridmind_batch_solves_total").total()
    rows = m_batched.counter("gridmind_batch_rows_total").total()
    check(solves > 0, f"batched run engaged the kernel fast path ({solves:.0f} solves)")
    check(rows == float(n), f"every scenario went through a batch row ({rows:.0f})")
    check(
        m_scalar.counter("gridmind_batch_solves_total").total() == 0.0,
        "scalar run never touched the batch counters",
    )
    for name, registry in (("batched", m_batched), ("scalar", m_scalar)):
        total = registry.counter("gridmind_scenarios_total").total()
        check(
            total == float(n),
            f"{name} run billed every scenario exactly once ({total:.0f})",
        )

    print("\nbatch smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
