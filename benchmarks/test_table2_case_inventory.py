"""E5 — Table 2: supported IEEE test cases and component counts.

The registry must reproduce the paper's inventory exactly: bus, gen,
load, AC-line, and transformer counts for all five systems.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.grid.cases import TABLE2_COUNTS, case_inventory

PAPER_TABLE2 = {
    "ieee14": (14, 5, 11, 17, 3),
    "ieee30": (30, 6, 21, 41, 4),
    "ieee57": (57, 7, 42, 63, 17),
    "ieee118": (118, 54, 99, 175, 11),
    "ieee300": (300, 68, 193, 283, 128),
}


def test_table2_case_inventory(benchmark):
    inventory = benchmark(case_inventory)

    widths = [10, -5, -5, -6, -8, -13, -8]
    lines = [
        fmt_row(["Case", "Bus", "Gen", "Load", "AC line", "Transformers", "Match"],
                widths),
        "-" * 66,
    ]
    ok = True
    for row in inventory:
        name = row["case"]
        measured = (row["bus"], row["gen"], row["load"], row["ac_line"],
                    row["transformer"])
        match = measured == PAPER_TABLE2[name]
        ok &= match
        lines.append(
            fmt_row([name, *measured, "yes" if match else "NO"], widths)
        )
    emit("table2_case_inventory", "Table 2 — test cases", lines)

    assert ok, "component counts must equal the paper's Table 2"
    assert PAPER_TABLE2 == TABLE2_COUNTS
