"""Admittance-matrix construction."""

import numpy as np
import pytest

from repro.grid.network import Network
from repro.grid.components import BusType
from repro.grid.ybus import build_admittances, build_b_matrices


@pytest.fixture
def two_bus():
    net = Network()
    net.add_bus(bus_type=BusType.SLACK)
    net.add_bus()
    net.buses[0].bus_type = BusType.SLACK
    net.add_branch(0, 1, r_pu=0.01, x_pu=0.1, b_pu=0.04)
    return net


def test_ybus_two_bus_values(two_bus):
    adm = build_admittances(two_bus.compile())
    ys = 1.0 / (0.01 + 0.1j)
    y = adm.ybus.toarray()
    assert y[0, 0] == pytest.approx(ys + 0.02j)
    assert y[0, 1] == pytest.approx(-ys)
    assert y[1, 0] == pytest.approx(-ys)
    assert y[1, 1] == pytest.approx(ys + 0.02j)


def test_ybus_symmetric_without_shifters(case14):
    arr = case14.compile()
    adm = build_admittances(arr)
    diff = (adm.ybus - adm.ybus.T).toarray()
    assert np.max(np.abs(diff)) < 1e-12


def test_ybus_shunt_on_diagonal():
    net = Network()
    net.add_bus(bus_type=BusType.SLACK, bs_mvar=19.0)
    net.buses[0].bus_type = BusType.SLACK
    net.add_bus()
    net.add_branch(0, 1, x_pu=0.1)
    y = build_admittances(net.compile()).ybus.toarray()
    assert y[0, 0].imag == pytest.approx(-1.0 / 0.1 + 0.19)


def test_tap_changes_from_side_only():
    net = Network()
    net.add_bus(bus_type=BusType.SLACK)
    net.buses[0].bus_type = BusType.SLACK
    net.add_bus()
    net.add_branch(0, 1, x_pu=0.1, tap=0.9, is_transformer=True)
    y = build_admittances(net.compile()).ybus.toarray()
    ys = 1.0 / 0.1j
    assert y[0, 0] == pytest.approx(ys / 0.81)
    assert y[1, 1] == pytest.approx(ys)
    assert y[0, 1] == pytest.approx(-ys / 0.9)


def test_phase_shifter_asymmetry():
    net = Network()
    net.add_bus(bus_type=BusType.SLACK)
    net.buses[0].bus_type = BusType.SLACK
    net.add_bus()
    net.add_branch(0, 1, x_pu=0.1, tap=1.0, shift_deg=10.0, is_transformer=True)
    y = build_admittances(net.compile()).ybus.toarray()
    # Off-diagonals are rotated conjugates of each other, not equal.
    assert y[0, 1] != pytest.approx(y[1, 0])
    assert abs(y[0, 1]) == pytest.approx(abs(y[1, 0]))


def test_branch_flow_operators_consistent(case14):
    """Yf/Yt row sums against Ybus: current conservation at both ends."""
    arr = case14.compile()
    adm = build_admittances(arr)
    v = arr.vm0 * np.exp(1j * arr.va0)
    i_f = adm.yf @ v
    i_t = adm.yt @ v
    # Net injection at each bus equals sum of branch currents + shunt.
    inj = adm.ybus @ v
    recon = np.zeros_like(inj)
    np.add.at(recon, arr.f_bus, i_f)
    np.add.at(recon, arr.t_bus, i_t)
    shunt = (arr.gs + 1j * arr.bs) * v
    assert np.allclose(recon + shunt, inj, atol=1e-12)


def test_b_matrices_shapes(case14):
    arr = case14.compile()
    bbus, bf, shift = build_b_matrices(arr)
    assert bbus.shape == (14, 14)
    assert bf.shape == (20, 14)
    assert shift.shape == (20,)


def test_b_bus_rows_sum_to_zero(case14):
    """Without phase shifters Bbus is a weighted Laplacian."""
    arr = case14.compile()
    bbus, _, _ = build_b_matrices(arr)
    sums = np.asarray(bbus.sum(axis=1)).ravel()
    assert np.max(np.abs(sums)) < 1e-9
