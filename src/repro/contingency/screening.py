"""Two-stage contingency screening: vectorised DC estimate, AC verify.

Classic production CA strategy (and this repo's main HPC ablation): rank
all outages with the LODF estimate in one matrix operation, then run the
expensive AC power flow only on the top slice.  The benchmark
``benchmarks/test_ablation_ca_screening.py`` measures both the speedup and
the ranking agreement against the exhaustive sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..grid.network import Network, NetworkArrays
from ..powerflow.batch import DcKernel
from ..powerflow.dc import solve_dc
from .lodf import SensitivityFactors, compute_factors, post_outage_flows
from .nminus1 import NMinus1Report, run_n_minus_1


@dataclass
class ScreeningEstimate:
    """DC-level severity estimates for every candidate outage."""

    branch_ids: np.ndarray
    est_max_loading_percent: np.ndarray
    est_overload_count: np.ndarray
    est_severity: np.ndarray
    islanding: np.ndarray  # branch ids flagged as islanding by LODF
    runtime_s: float

    def top(self, n: int) -> list[int]:
        """Most severe candidates first (islanding outages excluded —
        those need no AC verification)."""
        order = np.argsort(-self.est_severity)
        island = set(int(b) for b in self.islanding)
        ranked = [int(self.branch_ids[i]) for i in order]
        return [b for b in ranked if b not in island][:n]


def _estimate_from_post(
    arr: NetworkArrays,
    factors: SensitivityFactors,
    post: np.ndarray,
    runtime_s: float,
) -> ScreeningEstimate:
    """Reduce one (n_branch, n_branch) post-outage flow matrix to severity
    estimates — the single reduction both the scalar and batched screening
    paths run, so their estimates are bit-identical by construction."""
    rate = arr.rate_a * arr.base_mva
    rated = rate > 0

    loading = np.zeros_like(post)
    loading[rated] = 100.0 * np.abs(post[rated]) / rate[rated, np.newaxis]

    est_max = loading.max(axis=0)
    excess = np.maximum(loading - 100.0, 0.0) / 100.0
    est_cnt = (loading > 100.0).sum(axis=0)
    est_sev = excess.sum(axis=0)

    # Mask islanding columns: they are handled topologically, not by flows.
    island_rows = np.isin(arr.branch_ids, factors.islanding_outages)
    est_max[island_rows] = 0.0
    est_sev[island_rows] = 0.0
    est_cnt[island_rows] = 0

    return ScreeningEstimate(
        branch_ids=arr.branch_ids.copy(),
        est_max_loading_percent=est_max,
        est_overload_count=est_cnt.astype(int),
        est_severity=est_sev,
        islanding=factors.islanding_outages.copy(),
        runtime_s=runtime_s,
    )


def screen_dc(net: Network, *, factors=None) -> ScreeningEstimate:
    """Estimate every single-outage severity from one LODF product.

    ``factors`` accepts precomputed PTDF/LODF sensitivities for the
    current topology (batch studies reuse one factorisation across many
    load-level scenarios); by default they are computed here.
    """
    start = time.perf_counter()
    arr = net.compile()
    if factors is None:
        factors = compute_factors(net)
    base = solve_dc(net)
    f0 = base.p_from_mw

    post = post_outage_flows(factors, f0)  # (nl, nl) MW
    return _estimate_from_post(arr, factors, post, time.perf_counter() - start)


#: Scenario-block ceiling for the batched post-outage tensor: blocks are
#: sized so one (block, n_branch, n_branch) slab stays a few tens of MB
#: however large the chunk or the case.
_POST_BLOCK_FLOATS = 4_000_000


def screen_dc_many(
    kernel: DcKernel,
    factors: SensitivityFactors,
    p_inj: np.ndarray,
) -> list[ScreeningEstimate]:
    """Batched DC screening: estimates for a whole injection stack.

    One multi-RHS solve produces every scenario's base flows, then the
    post-outage flows for the group come from one broadcasted
    ``f0 + LODF * f0`` product per block (the matrix-product form of
    :func:`~repro.contingency.lodf.post_outage_flows`).  Per-element
    arithmetic matches the scalar path exactly, so estimate ``i`` is
    bit-identical to ``screen_dc`` on scenario ``i``'s realized network.
    """
    start = time.perf_counter()
    arr = kernel.arr
    nl = arr.n_branch
    batch = kernel.solve_many(p_inj)
    flows_mw = batch.p_flow * arr.base_mva  # (n, nl), == solve_dc().p_from_mw

    estimates: list[ScreeningEstimate] = []
    block = max(1, _POST_BLOCK_FLOATS // max(1, nl * nl))
    diag = np.arange(nl)
    for lo in range(0, flows_mw.shape[0], block):
        f0 = flows_mw[lo : lo + block]  # (b, nl)
        # post[s, l, k] = f0[s, l] + LODF[l, k] * f0[s, k]
        post = f0[:, :, np.newaxis] + factors.lodf[np.newaxis, :, :] * f0[
            :, np.newaxis, :
        ]
        post[:, diag, diag] = 0.0  # the outaged branch itself carries nothing
        runtime = time.perf_counter() - start
        estimates.extend(
            _estimate_from_post(arr, factors, post[s], runtime)
            for s in range(post.shape[0])
        )
    return estimates


def run_screened_n_minus_1(
    net: Network,
    *,
    ac_budget: int = 30,
    n_jobs: int = 1,
) -> tuple[NMinus1Report, ScreeningEstimate]:
    """Run the two-stage analysis.

    ``ac_budget`` caps how many candidates get the full AC treatment; the
    islanding outages found topologically are always included in the
    report (they come back from the AC stage's bridge handling).
    """
    estimate = screen_dc(net)
    candidates = estimate.top(ac_budget)
    # Islanding outages are cheap (no solve) — always include for completeness.
    candidates = sorted(set(candidates) | set(int(b) for b in estimate.islanding))
    report = run_n_minus_1(net, branch_ids=candidates, n_jobs=n_jobs)
    report.extras["screening"] = estimate
    report.extras["ac_budget"] = ac_budget
    return report, estimate
