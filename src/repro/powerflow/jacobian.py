"""Partial derivatives of complex power quantities w.r.t. voltage.

These are the standard sparse polar-coordinate derivative blocks (the same
formulas MATPOWER's ``dSbus_dV`` / ``dSbr_dV`` implement) shared by the
Newton power flow and the ACOPF first/second-order information.  All
functions take and return scipy sparse matrices; correctness is pinned by
finite-difference tests in ``tests/test_derivatives.py``.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse


def _diag(v: np.ndarray) -> sparse.csr_matrix:
    return sparse.diags(v, format="csr")


def dSbus_dV(ybus: sparse.spmatrix, v: np.ndarray) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
    """Derivatives of bus injections ``S = diag(V) conj(Ybus V)``.

    Returns ``(dS_dVa, dS_dVm)`` where Va is the angle vector (radians)
    and Vm the magnitude vector.
    """
    ibus = ybus @ v
    diag_v = _diag(v)
    diag_ibus = _diag(ibus)
    diag_vnorm = _diag(v / np.abs(v))

    ds_dvm = diag_v @ (ybus @ diag_vnorm).conjugate() + diag_ibus.conjugate() @ diag_vnorm
    ds_dva = 1j * diag_v @ (diag_ibus - ybus @ diag_v).conjugate()
    return ds_dva.tocsr(), ds_dvm.tocsr()


def dSbr_dV(
    ybr: sparse.spmatrix,
    side_bus: np.ndarray,
    v: np.ndarray,
    n_bus: int,
) -> tuple[sparse.csr_matrix, sparse.csr_matrix, np.ndarray]:
    """Derivatives of branch-end flows ``Sbr = diag(C V) conj(Ybr V)``.

    ``ybr`` is Yf or Yt and ``side_bus`` the corresponding from/to bus
    index per branch.  Returns ``(dSbr_dVa, dSbr_dVm, Sbr)``.
    """
    nl = len(side_bus)
    ibr = ybr @ v
    vside = v[side_bus]
    sbr = vside * np.conj(ibr)

    rows = np.arange(nl)
    c_v = sparse.csr_matrix((vside, (rows, side_bus)), shape=(nl, n_bus))
    c_vnorm = sparse.csr_matrix(
        (vside / np.abs(vside), (rows, side_bus)), shape=(nl, n_bus)
    )
    diag_ibr_conj = _diag(np.conj(ibr))
    diag_vside = _diag(vside)
    diag_v = _diag(v)
    diag_vnorm = _diag(v / np.abs(v))

    dsbr_dva = 1j * (diag_ibr_conj @ c_v - diag_vside @ (ybr @ diag_v).conjugate())
    dsbr_dvm = diag_vside @ (ybr @ diag_vnorm).conjugate() + diag_ibr_conj @ c_vnorm
    return dsbr_dva.tocsr(), dsbr_dvm.tocsr(), sbr


def d2Sbus_dV2(
    ybus: sparse.spmatrix, v: np.ndarray, lam: np.ndarray
) -> tuple[sparse.csr_matrix, sparse.csr_matrix, sparse.csr_matrix, sparse.csr_matrix]:
    """Hessian blocks of ``lam . S(V)`` for bus injections.

    Returns ``(Gaa, Gav, Gva, Gvv)`` — second derivatives ordered
    angle/magnitude; take ``real`` for P-equation multipliers and ``imag``
    for Q-equation multipliers.
    """
    n = len(v)
    ibus = ybus @ v
    diag_lam = _diag(lam)
    diag_v = _diag(v)

    a = _diag(lam * v)
    b = ybus @ diag_v
    c = a @ b.conjugate()
    d = ybus.conjugate().transpose() @ diag_v
    e = diag_v.conjugate() @ (d @ diag_lam - _diag(d @ lam))
    f = c - a @ _diag(np.conj(ibus))
    g = _diag(1.0 / np.abs(v))

    gaa = e + f
    gva = 1j * g @ (e - f)
    gav = gva.transpose()
    gvv = g @ (c + c.transpose()) @ g
    return gaa.tocsr(), gav.tocsr(), gva.tocsr(), gvv.tocsr()


def d2Sbr_dV2(
    cbr: sparse.spmatrix,
    ybr: sparse.spmatrix,
    v: np.ndarray,
    mu: np.ndarray,
) -> tuple[sparse.csr_matrix, sparse.csr_matrix, sparse.csr_matrix, sparse.csr_matrix]:
    """Hessian blocks of ``mu . Sbr(V)`` for branch-end complex flows."""
    diag_mu = _diag(mu)
    diag_v = _diag(v)

    a = ybr.conjugate().transpose() @ diag_mu @ cbr
    b = diag_v.conjugate() @ a @ diag_v
    d = _diag((a @ v) * np.conj(v))
    e = _diag((a.transpose() @ np.conj(v)) * v)
    f = b + b.transpose()
    g = _diag(1.0 / np.abs(v))

    haa = f - d - e
    hva = 1j * g @ (b - b.transpose() - d + e)
    hav = hva.transpose()
    hvv = g @ f @ g
    return haa.tocsr(), hav.tocsr(), hva.tocsr(), hvv.tocsr()


def d2Abr_dV2(
    d_sbr_dva: sparse.spmatrix,
    d_sbr_dvm: sparse.spmatrix,
    sbr: np.ndarray,
    cbr: sparse.spmatrix,
    ybr: sparse.spmatrix,
    v: np.ndarray,
    mu: np.ndarray,
) -> tuple[sparse.csr_matrix, sparse.csr_matrix, sparse.csr_matrix, sparse.csr_matrix]:
    """Hessian blocks of ``mu . |Sbr|^2`` (squared apparent-power flows).

    This is what the ACOPF branch-limit constraints need.
    """
    diag_mu = _diag(mu)
    saa, sav, sva, svv = d2Sbr_dV2(cbr, ybr, v, np.conj(sbr) * mu)

    haa = 2.0 * (saa + d_sbr_dva.transpose() @ diag_mu @ d_sbr_dva.conjugate()).real
    hva = 2.0 * (sva + d_sbr_dvm.transpose() @ diag_mu @ d_sbr_dva.conjugate()).real
    hav = 2.0 * (sav + d_sbr_dva.transpose() @ diag_mu @ d_sbr_dvm.conjugate()).real
    hvv = 2.0 * (svv + d_sbr_dvm.transpose() @ diag_mu @ d_sbr_dvm.conjugate()).real
    return (
        sparse.csr_matrix(haa),
        sparse.csr_matrix(hav),
        sparse.csr_matrix(hva),
        sparse.csr_matrix(hvv),
    )
