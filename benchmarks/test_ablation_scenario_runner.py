"""E11 — Ablation: scenario batch runner parallelism.

Runs the same Monte Carlo load ensemble serially and through the
process-pool path, checks the two produce bit-identical aggregates, and
reports the wall-clock speedup.  On a multi-core machine the parallel
runner must beat serial execution; on a single core the table still
documents the (absent) headroom without failing the suite.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.grid.cases import load_case
from repro.scenarios import BatchStudyRunner, monte_carlo_ensemble

CASE = "ieee57"
N_SCENARIOS = 96
SIGMA = 0.05


def _run_all():
    net = load_case(CASE)
    scenarios = monte_carlo_ensemble(n=N_SCENARIOS, sigma=SIGMA, seed=11)
    jobs = min(4, os.cpu_count() or 1)

    serial = BatchStudyRunner(analysis="powerflow", n_jobs=1).run(net, scenarios)
    parallel = BatchStudyRunner(analysis="powerflow", n_jobs=max(jobs, 2)).run(
        net, scenarios
    )
    return serial, parallel, jobs


def test_ablation_scenario_runner(benchmark):
    serial, parallel, jobs = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    # Parallel dispatch must not change the study's numbers.
    assert serial.aggregate().to_dict() == parallel.aggregate().to_dict()

    speedup = serial.runtime_s / max(parallel.runtime_s, 1e-9)
    cores = os.cpu_count() or 1
    if cores > 1 and parallel.n_jobs > 1 and not os.environ.get("CI"):
        # The acceptance bar: on a (dedicated) multi-core machine the pool
        # wins.  Shared CI runners get the table but not the hard assert —
        # wall-clock under noisy neighbours is not a correctness signal.
        assert speedup > 1.0, (
            f"parallel runner slower than serial on {cores} cores "
            f"({parallel.runtime_s:.2f}s vs {serial.runtime_s:.2f}s)"
        )

    widths = [30, -10, -12, -10]
    lines = [
        fmt_row(["Runner", "scenarios", "time (s)", "speedup"], widths),
        "-" * 66,
        fmt_row(
            ["serial", serial.n_scenarios, serial.runtime_s, 1.0], widths
        ),
        fmt_row(
            [
                f"process pool, {parallel.n_jobs} workers",
                parallel.n_scenarios,
                parallel.runtime_s,
                speedup,
            ],
            widths,
        ),
        "",
        f"case {CASE}, {N_SCENARIOS}-draw Monte Carlo ensemble, sigma "
        f"{SIGMA:.0%}; host has {cores} core(s)",
        "aggregates are bit-identical between serial and parallel runs",
    ]
    emit(
        "ablation_scenario_runner",
        "E11 — scenario batch runner: serial vs process-pool",
        lines,
    )
