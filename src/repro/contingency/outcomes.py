"""Contingency outcome records and severity metrics.

Severity scoring follows the paper's Section 3.2.3 evidence model: clusters
of thermal overloads (110-115 %+ ratings), voltage excursions below
0.94 p.u., and load curtailment all raise criticality; islanding and
non-convergence dominate everything else.  The weights are explicit so the
simulated model profiles can rank with *different emphases* — that is what
reproduces Table 1's GPT-5-Mini divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SeverityWeights:
    """Relative emphasis of the evidence classes in the criticality score."""

    thermal: float = 10.0  # per 100 % of cumulative overload excess
    voltage: float = 300.0  # per p.u. of cumulative band violation
    curtailment: float = 0.05  # per MW of estimated load shed
    islanding_base: float = 1000.0
    divergence: float = 500.0

    def describe(self) -> str:
        return (
            f"thermal x{self.thermal:g}, voltage x{self.voltage:g}, "
            f"curtailment x{self.curtailment:g}/MW"
        )


#: Default "balanced" weighting used by most model profiles.
BALANCED_WEIGHTS = SeverityWeights()

#: Thermal-dominated weighting (the GPT-5-Mini profile's emphasis).
THERMAL_WEIGHTS = SeverityWeights(thermal=18.0, voltage=120.0, curtailment=0.02)


@dataclass
class ContingencyOutcome:
    """Post-outage state of the system for a single N-1 contingency."""

    branch_id: int
    branch_name: str
    from_bus: int
    to_bus: int
    is_transformer: bool
    converged: bool
    islanded: bool = False
    stranded_load_mw: float = 0.0
    max_loading_percent: float = 0.0
    overloads: list[tuple[int, float]] = field(default_factory=list)
    min_voltage_pu: float = 1.0
    max_voltage_pu: float = 1.0
    voltage_violations: list[tuple[int, float]] = field(default_factory=list)
    estimated_curtailment_mw: float = 0.0
    solve_time_s: float = 0.0
    method: str = "newton"
    message: str = ""

    @property
    def n_overloads(self) -> int:
        return len(self.overloads)

    @property
    def n_voltage_violations(self) -> int:
        return len(self.voltage_violations)

    @property
    def has_violations(self) -> bool:
        return (
            self.islanded
            or not self.converged
            or bool(self.overloads)
            or bool(self.voltage_violations)
        )

    def severity(self, weights: SeverityWeights = BALANCED_WEIGHTS) -> float:
        """Scalar criticality score under the given evidence weighting."""
        if self.islanded:
            if self.stranded_load_mw <= 1e-6:
                # Splitting off a load-free island (e.g. a radial generator
                # stub) is an operational nuisance, not a load-loss event —
                # it ranks below any genuine overload.
                return 0.003 * weights.islanding_base
            return weights.islanding_base + weights.curtailment * self.stranded_load_mw * 10
        if not self.converged:
            return weights.divergence
        thermal_excess = sum(max(0.0, pct - 100.0) / 100.0 for _, pct in self.overloads)
        volt_excess = sum(
            max(0.0, 0.94 - vm) + max(0.0, vm - 1.06)
            for _, vm in self.voltage_violations
        )
        return (
            weights.thermal * thermal_excess
            + weights.voltage * volt_excess
            + weights.curtailment * self.estimated_curtailment_mw
        )

    def summary_line(self) -> str:
        """One-line human narration of the outcome."""
        label = f"{'transformer' if self.is_transformer else 'line'} " \
                f"{self.from_bus}-{self.to_bus} (branch {self.branch_id})"
        if self.islanded:
            return (
                f"Outage of {label} islands part of the system, stranding "
                f"{self.stranded_load_mw:.1f} MW of load."
            )
        if not self.converged:
            return (
                f"Outage of {label}: post-contingency power flow diverged — "
                "likely voltage instability."
            )
        bits = []
        if self.overloads:
            worst = ", ".join(f"{pct:.0f}%" for _, pct in self.overloads[:3])
            bits.append(f"{len(self.overloads)} overload(s) (worst {worst})")
        if self.voltage_violations:
            bits.append(
                f"{len(self.voltage_violations)} voltage violation(s), "
                f"min {self.min_voltage_pu:.3f} pu"
            )
        if self.estimated_curtailment_mw > 0.1:
            bits.append(f"~{self.estimated_curtailment_mw:.0f} MW curtailment exposure")
        if not bits:
            return f"Outage of {label} is secure (max loading {self.max_loading_percent:.0f}%)."
        return f"Outage of {label} causes " + "; ".join(bits) + "."
