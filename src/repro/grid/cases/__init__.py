"""IEEE test-case library: genuine IEEE 14 plus synthetic 30/57/118/300.

Public entry points:

* :func:`load_case` — fetch a fresh copy of a registered case by any
  common spelling ("IEEE 118", "case118", ...).
* :func:`case_inventory` — Table 2 component counts.
* :func:`register_case` — plug in additional cases.
"""

from .registry import (
    TABLE2_COUNTS,
    available_cases,
    canonical_case_name,
    case_inventory,
    load_case,
    register_case,
)
from .synthetic import build_synthetic

__all__ = [
    "TABLE2_COUNTS",
    "available_cases",
    "canonical_case_name",
    "case_inventory",
    "load_case",
    "register_case",
    "build_synthetic",
]
