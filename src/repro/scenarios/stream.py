"""Lazy scenario streams: ensembles as re-iterable generators, not lists.

The family generators historically materialised ``list[Scenario]`` — fine
for a 9-point sweep, a memory wall for the ROADMAP's 10k+ Monte Carlo
ensembles (every scenario carries perturbation records and a tag dict).
:class:`ScenarioStream` keeps the ensemble *declarative*: a zero-argument
factory that yields scenarios on demand, plus an optional known length.

Design points:

* **Re-iterable.** Every ``iter()`` call invokes the factory again, so
  one stream object can feed the batch runner, then the result store's
  spec hash, then a determinism re-run — without caching the expansion.
* **Sequence-flavoured.** ``len()`` works when the length is known
  (raising ``TypeError`` otherwise, like any unsized iterable), and
  ``stream[i]`` / ``stream[a:b]`` walk the factory — O(n), intended for
  tests and small peeks, not hot loops.
* **Deterministic.** The factory must be pure: same scenarios, same
  order, every iteration.  Stochastic families achieve this by deriving
  per-index child seeds (:func:`child_seed`) instead of sharing one RNG
  stream, so scenario *i* is identical whether the ensemble is realised
  whole, chunked, or resumed mid-stream.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Callable, Iterable, Iterator

from .spec import Scenario


def child_seed(family_seed: int, index: int) -> int:
    """Deterministic per-index child seed, independent of ensemble size.

    Hash-derived (not drawn from a shared RNG stream) so scenario ``i``
    gets the same seed whether the family is expanded to 10 or 10 000
    scenarios, iterated once or many times, or sliced from the middle.
    """
    digest = hashlib.blake2b(
        f"{family_seed}\x1f{index}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest[:4], "big")


class ScenarioStream:
    """A lazy, re-iterable scenario family with known-or-unknown length."""

    def __init__(
        self,
        factory: Callable[[], Iterable[Scenario]],
        length: int | None = None,
        family: str = "",
    ) -> None:
        if length is not None and length < 0:
            raise ValueError(f"stream length must be >= 0, got {length}")
        self._factory = factory
        self._length = length
        self.family = family

    # ------------------------------------------------------------------
    @classmethod
    def from_list(cls, scenarios: list[Scenario], family: str = "") -> "ScenarioStream":
        """Wrap an already-materialised list (length is known)."""
        return cls(lambda: iter(scenarios), length=len(scenarios), family=family)

    # ------------------------------------------------------------------
    @property
    def length(self) -> int | None:
        """Scenario count if known up front, else ``None``."""
        return self._length

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self._factory())

    def __len__(self) -> int:
        if self._length is None:
            raise TypeError(
                f"stream {self.family or '<anonymous>'!r} has unknown length; "
                "iterate it (or call materialize()) instead"
            )
        return self._length

    def __bool__(self) -> bool:
        # Never realise the stream just to truth-test it; an unknown-length
        # stream is assumed non-empty.
        return self._length != 0

    def __getitem__(self, index: int | slice):
        if isinstance(index, slice):
            if self._length is not None:
                start, stop, step = index.indices(self._length)
                return list(itertools.islice(iter(self), start, stop, step))
            if (
                (index.start or 0) < 0
                or (index.stop is not None and index.stop < 0)
                or (index.step or 1) < 0
            ):
                raise IndexError("negative slicing needs a known length")
            return list(
                itertools.islice(iter(self), index.start, index.stop, index.step)
            )
        if index < 0:
            if self._length is None:
                raise IndexError("negative indexing needs a known length")
            index += self._length
        for item in itertools.islice(iter(self), index, index + 1):
            return item
        raise IndexError(f"stream index {index} out of range")

    def __repr__(self) -> str:
        n = "?" if self._length is None else self._length
        return f"ScenarioStream(family={self.family!r}, length={n})"

    # ------------------------------------------------------------------
    def materialize(self) -> list[Scenario]:
        """Realise the whole stream as a list (the pre-streaming world)."""
        return list(self)


def stream_length(scenarios: Iterable[Scenario]) -> int | None:
    """Best-effort scenario count without realising ``scenarios``."""
    if isinstance(scenarios, ScenarioStream):
        return scenarios.length
    try:
        return len(scenarios)  # type: ignore[arg-type]
    except TypeError:
        return None


def as_stream(scenarios: Iterable[Scenario]) -> ScenarioStream:
    """Coerce lists/streams/iterables into a :class:`ScenarioStream`.

    A bare one-shot iterator is materialised (it cannot be re-iterated);
    lists and streams pass through without copying the scenarios.
    """
    if isinstance(scenarios, ScenarioStream):
        return scenarios
    if not isinstance(scenarios, (list, tuple)):
        scenarios = list(scenarios)
    return ScenarioStream.from_list(scenarios)
