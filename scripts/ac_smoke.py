#!/usr/bin/env python
"""Tier-2 AC fast-path smoke: warm == cold under the parity contract.

Runs the same injection-only Monte Carlo ensemble through the
``powerflow`` study twice — once through the warm AC kernel
(``ac_mode="warm"``, the default) and once on the legacy per-scenario
cold solver — over the shared-executor pool path, then asserts the
guarantees the warm path makes:

* the parity contract holds row for row: identical convergence flags,
  identical overloaded-branch and voltage-violation sets, numeric
  fields within 1e-6 (Newton iterates are path-dependent, so unlike the
  DC batch layer this is *not* bit-identity),
* the warm run engaged the kernel
  (``gridmind_ac_warm_solves_total`` + ``gridmind_ac_skipped_converged_total``
  covers every scenario, merged back from pool workers),
* the cold run never touched those counters,
* scenario accounting is identical either way
  (``gridmind_scenarios_total`` bills every scenario exactly once).

Exits nonzero on the first violated invariant.

Usage::

    PYTHONPATH=src python scripts/ac_smoke.py [n_scenarios]
"""

from __future__ import annotations

import math
import sys

from repro.grid.cases import load_case
from repro.instrumentation.metrics import MetricsRegistry, set_metrics
from repro.scenarios import BatchStudyRunner, monte_carlo_ensemble
from repro.service import StudyExecutor

ATOL = 1e-6


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {message}")


def run_study(net, scns, *, mode: str):
    registry = MetricsRegistry()
    set_metrics(registry)
    with StudyExecutor(max_workers=2) as executor:
        study = BatchStudyRunner(
            analysis="powerflow", executor=executor, ac_mode=mode
        ).run(net, scns)
    return study, registry


def close(a, b, atol=ATOL) -> bool:
    if a is None or b is None:
        return a is b
    return math.isclose(a, b, rel_tol=0.0, abs_tol=atol)


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    net = load_case("ieee57")
    scns = monte_carlo_ensemble(n=n, sigma=0.05, seed=7)

    warm, m_warm = run_study(net, scns, mode="warm")
    cold, m_cold = run_study(net, scns, mode="cold")
    print(
        f"powerflow study on ieee57, {n} scenarios: warm {warm.runtime_s:.2f}s,"
        f" cold {cold.runtime_s:.2f}s"
    )

    parity = True
    for w, c in zip(warm.results, cold.results):
        parity = parity and (
            w.name == c.name
            and w.converged == c.converged
            and w.error == c.error
            and w.overloaded_branches == c.overloaded_branches
            and w.n_voltage_violations == c.n_voltage_violations
            and close(w.max_loading_percent, c.max_loading_percent, 1e-4)
            and close(w.min_voltage_pu, c.min_voltage_pu)
            and close(w.max_voltage_pu, c.max_voltage_pu)
            and close(w.losses_mw, c.losses_mw, 1e-4)
        )
    check(
        len(warm.results) == len(cold.results) == n and parity,
        f"parity contract holds row for row across {n} scenarios",
    )
    check(
        all(w.converged for w in warm.results),
        "every scenario converged on the warm path",
    )

    handled = (
        m_warm.counter("gridmind_ac_warm_solves_total").total()
        + m_warm.counter("gridmind_ac_skipped_converged_total").total()
    )
    check(
        handled == float(n),
        f"warm run routed every scenario through the kernel ({handled:.0f})",
    )
    check(
        m_cold.counter("gridmind_ac_warm_solves_total").total() == 0.0
        and m_cold.counter("gridmind_ac_skipped_converged_total").total() == 0.0,
        "cold run never touched the warm-kernel counters",
    )
    for name, registry in (("warm", m_warm), ("cold", m_cold)):
        total = registry.counter("gridmind_scenarios_total").total()
        check(
            total == float(n),
            f"{name} run billed every scenario exactly once ({total:.0f})",
        )

    print("\nac smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
