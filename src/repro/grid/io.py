"""Case serialisation: MATPOWER-style dicts and JSON round-tripping.

The interchange format mirrors a MATPOWER case struct (``bus``, ``gen``,
``branch``, ``gencost`` row conventions) because that is the lingua franca
of the IEEE PSTCA cases the paper evaluates on; it also makes the embedded
IEEE-14 data auditable against any published copy.
"""

from __future__ import annotations

import json
from pathlib import Path

from .components import BusType, NetworkMetadata
from .network import Network

# MATPOWER bus-table column meanings used here:
#   [bus_i, type, Pd, Qd, Gs, Bs, area, Vm, Va, baseKV, zone, Vmax, Vmin]
# gen table: [bus, Pg, Qg, Qmax, Qmin, Vg, mBase, status, Pmax, Pmin]
# branch:    [fbus, tbus, r, x, b, rateA, rateB, rateC, ratio, angle, status]
# gencost:   [2, startup, shutdown, n, c(n-1) ... c0]   (polynomial only)


def from_matpower(case: dict, name: str = "", source: str = "") -> Network:
    """Build a :class:`Network` from a MATPOWER-style case dict.

    Bus numbers may be arbitrary; they are remapped to contiguous 0-based
    indices in row order.  Transformers are identified the way pandapower
    does when importing PSTCA data: any branch with an off-nominal tap
    ratio, or whose endpoints sit at different voltage levels.
    """
    net = Network(
        base_mva=float(case.get("baseMVA", 100.0)),
        metadata=NetworkMetadata(case_name=name, source=source),
    )
    bus_rows = case["bus"]
    id_map: dict[int, int] = {}
    for row in bus_rows:
        ext_id = int(row[0])
        if ext_id in id_map:
            raise ValueError(f"duplicate bus number {ext_id} in case data")
        bus = net.add_bus(
            name=f"bus_{ext_id}",
            bus_type=BusType(int(row[1])),
            gs_mw=float(row[4]),
            bs_mvar=float(row[5]),
            area=int(row[6]),
            vm_pu=float(row[7]),
            va_deg=float(row[8]),
            base_kv=float(row[9]),
            zone=int(row[10]),
            vmax_pu=float(row[11]),
            vmin_pu=float(row[12]),
        )
        id_map[ext_id] = bus.index
        pd, qd = float(row[2]), float(row[3])
        if pd != 0.0 or qd != 0.0:
            net.add_load(bus.index, pd_mw=pd, qd_mvar=qd)

    gencost = case.get("gencost")
    for i, row in enumerate(case.get("gen", [])):
        coeffs: tuple[float, ...] = (0.0, 0.0, 0.0)
        if gencost is not None:
            crow = gencost[i]
            if int(crow[0]) != 2:
                raise ValueError(
                    "only polynomial (model 2) generator costs are supported"
                )
            n = int(crow[3])
            coeffs = tuple(float(c) for c in crow[4 : 4 + n])
        net.add_gen(
            bus=id_map[int(row[0])],
            pg_mw=float(row[1]),
            qg_mvar=float(row[2]),
            qmax_mvar=float(row[3]),
            qmin_mvar=float(row[4]),
            vg_pu=float(row[5]),
            in_service=int(row[7]) > 0,
            pmax_mw=float(row[8]),
            pmin_mw=float(row[9]),
            cost_coeffs=coeffs,
        )

    kv = {b.index: b.base_kv for b in net.buses}
    for row in case.get("branch", []):
        f, t = id_map[int(row[0])], id_map[int(row[1])]
        ratio = float(row[8])
        is_trafo = ratio != 0.0 or abs(kv[f] - kv[t]) > 1e-9
        net.add_branch(
            f,
            t,
            r_pu=float(row[2]),
            x_pu=float(row[3]),
            b_pu=float(row[4]),
            rate_a_mva=float(row[5]),
            tap=ratio,
            shift_deg=float(row[9]),
            in_service=int(row[10]) > 0,
            is_transformer=is_trafo,
        )
    return net


def to_matpower(net: Network) -> dict:
    """Export a :class:`Network` to the MATPOWER-style dict format."""
    bus_rows = []
    pd = {b.index: 0.0 for b in net.buses}
    qd = {b.index: 0.0 for b in net.buses}
    for ld in net.loads:
        if ld.in_service:
            pd[ld.bus] += ld.pd_mw
            qd[ld.bus] += ld.qd_mvar
    for b in net.buses:
        bus_rows.append(
            [
                b.index + 1,
                int(b.bus_type),
                pd[b.index],
                qd[b.index],
                b.gs_mw,
                b.bs_mvar,
                b.area,
                b.vm_pu,
                b.va_deg,
                b.base_kv,
                b.zone,
                b.vmax_pu,
                b.vmin_pu,
            ]
        )
    gen_rows, cost_rows = [], []
    for g in net.gens:
        gen_rows.append(
            [
                g.bus + 1,
                g.pg_mw,
                g.qg_mvar,
                g.qmax_mvar,
                g.qmin_mvar,
                g.vg_pu,
                net.base_mva,
                1 if g.in_service else 0,
                g.pmax_mw,
                g.pmin_mw,
            ]
        )
        cost_rows.append([2, 0.0, 0.0, len(g.cost_coeffs), *g.cost_coeffs])
    branch_rows = []
    for br in net.branches:
        branch_rows.append(
            [
                br.from_bus + 1,
                br.to_bus + 1,
                br.r_pu,
                br.x_pu,
                br.b_pu,
                br.rate_a_mva,
                0.0,
                0.0,
                br.tap,
                br.shift_deg,
                1 if br.in_service else 0,
            ]
        )
    return {
        "baseMVA": net.base_mva,
        "bus": bus_rows,
        "gen": gen_rows,
        "branch": branch_rows,
        "gencost": cost_rows,
    }


def save_json(net: Network, path: str | Path) -> None:
    """Write a case to disk as JSON (MATPOWER-dict payload + metadata)."""
    payload = {
        "format": "repro-case-v1",
        "name": net.metadata.case_name,
        "description": net.metadata.description,
        "source": net.metadata.source,
        "case": to_matpower(net),
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_json(path: str | Path) -> Network:
    """Read a case previously written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-case-v1":
        raise ValueError(f"{path}: not a repro-case-v1 file")
    net = from_matpower(
        payload["case"], name=payload.get("name", ""), source=payload.get("source", "")
    )
    net.metadata.description = payload.get("description", "")
    return net
