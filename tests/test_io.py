"""MATPOWER-dict and JSON serialisation round-trips."""

import numpy as np
import pytest

from repro.grid.io import from_matpower, load_json, save_json, to_matpower
from repro.powerflow import solve_newton


def test_roundtrip_preserves_counts(case14):
    net2 = from_matpower(to_matpower(case14), name="ieee14")
    assert net2.n_bus == case14.n_bus
    assert net2.n_gen == case14.n_gen
    assert net2.n_load == case14.n_load
    assert net2.n_branch == case14.n_branch
    assert net2.n_transformer == case14.n_transformer


def test_roundtrip_preserves_power_flow(case14):
    net2 = from_matpower(to_matpower(case14), name="ieee14")
    r1 = solve_newton(case14)
    r2 = solve_newton(net2)
    assert np.allclose(r1.vm, r2.vm, atol=1e-10)
    assert np.allclose(r1.va_deg, r2.va_deg, atol=1e-8)


def test_roundtrip_preserves_costs(case14):
    net2 = from_matpower(to_matpower(case14))
    for g1, g2 in zip(case14.gens, net2.gens):
        assert g1.cost_coeffs == pytest.approx(g2.cost_coeffs)


def test_json_roundtrip(tmp_path, case30):
    path = tmp_path / "case.json"
    save_json(case30, path)
    net2 = load_json(path)
    assert net2.metadata.case_name == "ieee30"
    assert net2.summary() == case30.summary()


def test_json_roundtrip_out_of_service_branch(tmp_path, case14):
    case14.set_branch_status(3, False)
    path = tmp_path / "case.json"
    save_json(case14, path)
    net2 = load_json(path)
    assert not net2.branches[3].in_service


def test_load_json_rejects_wrong_format(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format": "something-else"}')
    with pytest.raises(ValueError, match="repro-case-v1"):
        load_json(path)


def test_duplicate_bus_numbers_rejected():
    case = {
        "baseMVA": 100.0,
        "bus": [
            [1, 3, 0, 0, 0, 0, 1, 1.0, 0, 138, 1, 1.06, 0.94],
            [1, 1, 0, 0, 0, 0, 1, 1.0, 0, 138, 1, 1.06, 0.94],
        ],
        "gen": [],
        "branch": [],
    }
    with pytest.raises(ValueError, match="duplicate bus"):
        from_matpower(case)


def test_non_polynomial_gencost_rejected():
    case = {
        "baseMVA": 100.0,
        "bus": [[1, 3, 0, 0, 0, 0, 1, 1.0, 0, 138, 1, 1.06, 0.94]],
        "gen": [[1, 0, 0, 10, -10, 1.0, 100, 1, 50, 0]],
        "gencost": [[1, 0, 0, 2, 10.0, 0.0]],  # model 1 = piecewise linear
        "branch": [],
    }
    with pytest.raises(ValueError, match="polynomial"):
        from_matpower(case)


def test_noncontiguous_bus_numbers_remapped():
    case = {
        "baseMVA": 100.0,
        "bus": [
            [5, 3, 0, 0, 0, 0, 1, 1.0, 0, 138, 1, 1.06, 0.94],
            [99, 1, 10, 2, 0, 0, 1, 1.0, 0, 138, 1, 1.06, 0.94],
        ],
        "gen": [[5, 10, 0, 10, -10, 1.0, 100, 1, 50, 0]],
        "gencost": [[2, 0, 0, 3, 0.0, 10.0, 0.0]],
        "branch": [[5, 99, 0.01, 0.05, 0.0, 100, 0, 0, 0, 0, 1]],
    }
    net = from_matpower(case)
    assert net.n_bus == 2
    assert net.gens[0].bus == 0
    assert net.branches[0].to_bus == 1


def test_transformer_detection_by_ratio(case14):
    # IEEE 14: branches with off-nominal tap are the 3 transformers.
    trafos = [b for b in case14.branches if b.is_transformer]
    assert len(trafos) == 3
    assert all(b.tap != 0.0 for b in trafos)
