"""Study agent: tools, planner routing, end-to-end asks, CLI subcommand."""

import json

import pytest

from repro.core.cli import build_parser, main
from repro.core.context import AgentContext
from repro.core.agents.study_agent import build_study_registry
from repro.core.session import GridMindSession
from repro.llm.nlu import Intent, classify


@pytest.fixture
def registry():
    return build_study_registry(AgentContext())


class TestStudyTools:
    def test_monte_carlo_tool(self, registry):
        payload = json.loads(
            registry.call(
                "run_monte_carlo_study",
                {"case_name": "ieee14", "n_scenarios": 5, "sigma_percent": 5.0},
            )
        )
        assert payload["study_kind"] == "monte_carlo"
        assert payload["n_scenarios"] == 5
        assert payload["aggregate"]["n_converged"] == 5

    def test_load_sweep_tool_dcopf(self, registry):
        payload = json.loads(
            registry.call(
                "run_load_sweep_study",
                {
                    "case_name": "ieee14",
                    "lo_percent": 90,
                    "hi_percent": 110,
                    "steps": 3,
                    "analysis": "dcopf",
                },
            )
        )
        assert payload["analysis"] == "dcopf"
        assert payload["aggregate"]["cost_stats"] is not None

    def test_outage_tool(self, registry):
        payload = json.loads(
            registry.call(
                "run_outage_study",
                {"case_name": "ieee14", "depth": 2, "limit": 6},
            )
        )
        assert payload["study_kind"] == "outage"
        assert payload["outage_depth"] == 2
        assert payload["n_scenarios"] == 6

    def test_profile_tool(self, registry):
        payload = json.loads(
            registry.call(
                "run_daily_profile_study",
                {"case_name": "ieee14", "steps": 6},
            )
        )
        assert payload["study_kind"] == "daily_profile"
        assert payload["n_scenarios"] == 6

    def test_bad_analysis_surfaces_tool_error(self, registry):
        payload = json.loads(
            registry.call(
                "run_monte_carlo_study",
                {"case_name": "ieee14", "n_scenarios": 2, "analysis": "magic"},
            )
        )
        assert "error" in payload

    def test_status_before_and_after(self, registry):
        before = json.loads(registry.call("get_study_status", {}))
        assert before["study"] is None
        registry.call(
            "run_monte_carlo_study", {"case_name": "ieee14", "n_scenarios": 2}
        )
        after = json.loads(registry.call("get_study_status", {}))
        assert after["study"]["n_scenarios"] == 2


class TestRoutingAndNLU:
    @pytest.mark.parametrize(
        "text",
        [
            "Run a 200-draw Monte Carlo load study on the 118-bus case",
            "sweep load 80-120% on ieee118 and tell me which contingencies stay critical",
            "run a 24-hour load profile study on case30",
            "evaluate N-2 outage combinations for ieee14",
        ],
    )
    def test_classified_as_study(self, text):
        assert classify(text).intent == Intent.RUN_STUDY

    def test_entities_extracted(self):
        p = classify("Run a 200-draw Monte Carlo load study on the 118-bus case")
        assert p.entities["case"] == "ieee118"
        assert p.entities["study"] == "monte_carlo"
        assert p.entities["n_scenarios"] == 200

    def test_sweep_range_extracted(self):
        p = classify("sweep the load from 85% to 115% on ieee14")
        assert p.entities["study"] == "sweep"
        assert p.entities["sweep_lo_percent"] == 85.0
        assert p.entities["sweep_hi_percent"] == 115.0

    def test_planner_routes_to_study_agent(self):
        session = GridMindSession(model="gpt-5-mini", seed=0)
        wf = session.planner.plan("Run a Monte Carlo load study on ieee14")
        assert [s.agent for s in wf.steps] == ["study"]

    def test_solve_request_still_routes_to_acopf(self):
        session = GridMindSession(model="gpt-5-mini", seed=0)
        wf = session.planner.plan("Solve the IEEE 14 bus case")
        assert [s.agent for s in wf.steps] == ["acopf"]


class TestEndToEnd:
    def test_monte_carlo_ask(self):
        session = GridMindSession(model="gpt-5-mini", seed=0)
        reply = session.ask(
            "Run a 10-draw Monte Carlo load study on the IEEE 14 bus case"
        )
        assert reply.agents_involved == ["study"]
        assert "10-scenario Monte Carlo" in reply.text
        assert session.context.study_summary is not None
        assert session.context.study_summary["n_scenarios"] == 10
        assert all(c.ok for c in reply.tool_calls)

    def test_sweep_with_screening_ask(self):
        session = GridMindSession(model="gpt-5-mini", seed=0)
        reply = session.ask(
            "Sweep load 90% to 110% in 3 steps on ieee14 and tell me "
            "which contingencies stay critical"
        )
        assert reply.agents_involved == ["study"]
        assert session.context.study_summary["analysis"] == "screening"
        assert "critical" in reply.text.lower()

    def test_study_status_followup(self):
        session = GridMindSession(model="gpt-5-mini", seed=0)
        session.ask("Run a 4-draw Monte Carlo load study on ieee14")
        reply = session.ask("What are the results of the study?")
        assert reply.agents_involved == ["study"]
        assert "4-scenario" in reply.text

    def test_status_followup_naming_kind_does_not_rerun(self):
        session = GridMindSession(model="gpt-5-mini", seed=0)
        session.ask("Run a 4-draw Monte Carlo load study on ieee14")
        reply = session.ask("What are the results of the Monte Carlo study?")
        assert [c.tool for c in reply.tool_calls] == ["get_study_status"]
        assert "4-scenario" in reply.text

    def test_study_without_case_asks_for_clarification(self):
        session = GridMindSession(model="gpt-5-mini", seed=0)
        reply = session.ask("Run a Monte Carlo load study")
        assert reply.agents_involved == ["study"]
        assert not reply.tool_calls

    def test_study_summary_survives_save_resume(self, tmp_path):
        session = GridMindSession(model="gpt-5-mini", seed=0)
        session.ask("Run a 3-draw Monte Carlo load study on ieee14")
        path = tmp_path / "state.json"
        session.save(path)
        fresh = GridMindSession(model="gpt-5-mini", seed=0)
        fresh.resume(path)
        assert fresh.context.study_summary["n_scenarios"] == 3
        reply = fresh.ask("What are the results of the study?")
        assert "3-scenario" in reply.text


class TestStudyCLI:
    def test_parser_study_defaults(self):
        args = build_parser().parse_args(["study", "--case", "ieee14"])
        assert args.command == "study"
        assert args.kind == "monte-carlo"
        assert args.analysis == "powerflow"

    def test_chat_flags_still_parse(self):
        args = build_parser().parse_args(["--model", "gpt-o3", "--seed", "7"])
        assert args.model == "gpt-o3"
        assert getattr(args, "command", None) is None

    def test_cli_sweep_study(self, capsys):
        rc = main(
            ["study", "--case", "ieee14", "--kind", "sweep", "-n", "3",
             "--lo", "90", "--hi", "110"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 scenarios" in out
        assert "converged 3/3" in out

    def test_cli_json_output(self, capsys):
        rc = main(
            ["study", "--case", "ieee14", "--kind", "monte-carlo", "-n", "2",
             "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_scenarios"] == 2
        assert payload["aggregate"]["n_converged"] == 2
