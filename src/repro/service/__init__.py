"""Service layer: async multi-session API over shared compute and storage.

The top of the GridMind stack (ROADMAP: async session server, shared
process-pool lifecycle, cross-session result store):

* :mod:`repro.service.api` — typed request/response envelopes
  (``AskRequest``/``AskReply``/``StudyRequest``/``StudyReply``) plus
  order-independent per-session seed derivation,
* :mod:`repro.service.executor` — :class:`StudyExecutor`, one long-lived
  process pool shared by every batch study,
* :mod:`repro.service.store` — :class:`ResultStore`, content-addressed
  on-disk persistence of full per-scenario result sets,
* :mod:`repro.service.service` — :class:`GridMindService`, the asyncio
  façade that serialises turns per session while running sessions
  concurrently.

Quickstart::

    import asyncio
    from repro.service import GridMindService

    async def main():
        async with GridMindService(store_dir="studies") as svc:
            a, b = await asyncio.gather(
                svc.ask("alice", "Solve the IEEE 14 bus case"),
                svc.ask("bob", "Solve the IEEE 30 bus case"),
            )
            print(a.text, b.text, sep="\\n")

    asyncio.run(main())
"""

from .api import (
    STUDY_KINDS,
    AskReply,
    AskRequest,
    SessionInfo,
    StudyReply,
    StudyRequest,
    WatchReply,
    WatchRequest,
    WatchUpdate,
    derive_session_seed,
    thin_progress,
)
from .executor import StudyExecutor
from .service import GridMindService, ServiceClosed, SessionNotFound
from .store import ResultStore, StoredStudyMeta, StudyNotFound

__all__ = [
    "STUDY_KINDS",
    "AskReply",
    "AskRequest",
    "GridMindService",
    "ResultStore",
    "ServiceClosed",
    "SessionInfo",
    "SessionNotFound",
    "StoredStudyMeta",
    "StudyExecutor",
    "StudyNotFound",
    "StudyReply",
    "StudyRequest",
    "WatchReply",
    "WatchRequest",
    "WatchUpdate",
    "derive_session_seed",
    "thin_progress",
]
