#!/usr/bin/env python
"""The service layer: concurrent sessions, shared compute, stored studies.

``GridMindSession`` is one conversation; ``GridMindService`` is the
front door for many of them.  This example drives two sessions
concurrently through the asyncio façade (their turns interleave, their
answers do not change), routes both of their batch studies through the
one shared worker pool, and then has a *third, brand-new* session answer
"compare the last two studies" purely from the persistent result store —
the cross-session memory a single session cannot provide.

Run:  PYTHONPATH=src python examples/service_concurrent.py
"""

from __future__ import annotations

import asyncio
import tempfile

from repro.service import GridMindService, StudyRequest


async def interleaved_conversations(service: GridMindService) -> None:
    print("=" * 70)
    print("Two sessions, turns interleaved (replies are order-independent)")
    print("=" * 70)
    rounds = [
        ("alice", "Solve the IEEE 14 bus case"),
        ("bob", "Solve the IEEE 30 bus case"),
        ("alice", "Increase the load at bus 9 by 10 MW"),
        ("bob", "what's the network status?"),
    ]
    # Schedule everything up front: different sessions run concurrently,
    # turns within one session stay serialised behind its lock.
    tasks = [(sid, asyncio.create_task(service.ask(sid, text))) for sid, text in rounds]
    for sid, task in tasks:
        reply = await task
        print(f"[{sid}] {reply.text.splitlines()[0]}")


async def shared_pool_studies(service: GridMindService) -> None:
    print()
    print("=" * 70)
    print("Two studies back-to-back on the shared executor (one pool)")
    print("=" * 70)
    yesterday = await service.run_study(
        StudyRequest(
            case_name="ieee14", kind="sweep", n_scenarios=5,
            lo_percent=95, hi_percent=105, analysis="dcopf", label="yesterday",
        )
    )
    today = await service.run_study(
        StudyRequest(
            case_name="ieee14", kind="sweep", n_scenarios=5,
            lo_percent=80, hi_percent=125, analysis="dcopf", label="today",
        )
    )
    for reply in (yesterday, today):
        print(
            f"{reply.summary.get('study_kind')} '{reply.study_key}': "
            f"{reply.n_scenarios} scenarios in {reply.runtime_s:.2f}s "
            f"on {reply.n_jobs} shared worker(s)"
        )
    stats = service.executor.stats()
    print(
        f"executor after both studies: pools_started={stats['pools_started']} "
        f"(shared), n_chunks={stats['n_chunks']}"
    )


async def cross_session_comparison(service: GridMindService) -> None:
    print()
    print("=" * 70)
    print("A brand-new session compares them from the result store")
    print("=" * 70)
    reply = await service.ask("fresh-analyst", "compare the last two studies")
    print(f"[fresh-analyst] {reply.text}")


async def main() -> None:
    with tempfile.TemporaryDirectory(prefix="gridmind-studies-") as store_dir:
        async with GridMindService(
            model="gpt-5-mini", seed=7, max_workers=2, store_dir=store_dir
        ) as service:
            await interleaved_conversations(service)
            await shared_pool_studies(service)
            await cross_session_comparison(service)
            metrics = service.metrics()
            print(
                f"\nservice totals: {metrics['n_sessions']} sessions, "
                f"{metrics['n_stored_studies']} stored studies, "
                f"executor {metrics['executor']}"
            )


if __name__ == "__main__":
    asyncio.run(main())
