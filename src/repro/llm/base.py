"""Chat / tool-calling protocol types for LLM backends.

Mirrors the de-facto provider API shape (messages with roles, JSON-schema
tool specs, tool-call requests inside assistant messages) so the agent
layer is written exactly as it would be against OpenAI/Anthropic — only
the backend object differs (here: the simulated model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable


@dataclass
class ToolSpec:
    """A callable capability advertised to the model."""

    name: str
    description: str
    parameters: dict  # JSON schema for the arguments object

    def signature_text(self) -> str:
        props = self.parameters.get("properties", {})
        args = ", ".join(props)
        return f"{self.name}({args})"


@dataclass
class ToolCallRequest:
    """The model asking the harness to execute a tool."""

    call_id: str
    name: str
    arguments: dict = field(default_factory=dict)


@dataclass
class ChatMessage:
    """One turn of conversation.

    ``role`` is one of ``system`` / ``user`` / ``assistant`` / ``tool``;
    tool messages carry the executed call's id and the JSON result text.
    """

    role: str
    content: str = ""
    tool_calls: list[ToolCallRequest] = field(default_factory=list)
    tool_call_id: str | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        valid = {"system", "user", "assistant", "tool"}
        if self.role not in valid:
            raise ValueError(f"invalid message role {self.role!r}; expected one of {sorted(valid)}")


@dataclass
class TokenUsage:
    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def __add__(self, other: "TokenUsage") -> "TokenUsage":
        return TokenUsage(
            self.prompt_tokens + other.prompt_tokens,
            self.completion_tokens + other.completion_tokens,
        )


@dataclass
class LLMResponse:
    """One completion: either tool calls to execute, or final text."""

    message: ChatMessage
    usage: TokenUsage
    latency_s: float  # virtual seconds charged for this completion
    model: str

    @property
    def wants_tools(self) -> bool:
        return bool(self.message.tool_calls)


@runtime_checkable
class LLMBackend(Protocol):
    """What the agent layer requires of a language model."""

    name: str

    def complete(
        self, messages: list[ChatMessage], tools: list[ToolSpec]
    ) -> LLMResponse:  # pragma: no cover - protocol
        ...
