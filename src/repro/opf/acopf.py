"""AC Optimal Power Flow: polar formulation solved by the PDIPM.

Decision vector ``x = [Va | Vm | Pg | Qg]`` (angles in radians, everything
else per-unit).  Constraints:

* equality — complex power balance at every bus (2·n_bus rows) plus the
  slack angle reference,
* inequality — squared apparent-power flow limits at both ends of every
  rated branch,
* box — voltage magnitude and generator P/Q bounds.

First and second derivatives come from :mod:`repro.powerflow.jacobian`
(the MATPOWER formulas), so the IPM sees exact sparse curvature and
converges in the usual 10-40 iterations.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse

from ..grid.network import Network, NetworkArrays
from ..grid.units import rad_to_deg
from ..grid.ybus import AdmittanceMatrices, build_admittances
from ..instrumentation.probes import instrument_solver
from ..powerflow.jacobian import d2Abr_dV2, d2Sbus_dV2, dSbr_dV, dSbus_dV
from .costs import PolynomialCosts
from .ipm import IPMOptions, IPMResult, solve_ipm
from .result import OPFResult


class ACOPFProblem:
    """Assembles callbacks for the IPM from a compiled network."""

    def __init__(self, net: Network) -> None:
        self.net = net
        self.arr: NetworkArrays = net.compile()
        self.adm: AdmittanceMatrices = build_admittances(self.arr)
        arr = self.arr

        self.nb = arr.n_bus
        self.ng = arr.n_gen
        self.nl = arr.n_branch
        self.nx = 2 * self.nb + 2 * self.ng

        # Variable slices.
        self.sl_va = slice(0, self.nb)
        self.sl_vm = slice(self.nb, 2 * self.nb)
        self.sl_pg = slice(2 * self.nb, 2 * self.nb + self.ng)
        self.sl_qg = slice(2 * self.nb + self.ng, self.nx)

        costs = [net.gens[int(i)].cost_coeffs for i in arr.gen_ids]
        self.costs = PolynomialCosts(costs, arr.base_mva)
        if not self.costs.is_convex():
            raise ValueError(
                "non-convex generator cost polynomial; the interior-point "
                "formulation requires convex costs"
            )

        self.cg = arr.gen_connection_matrix().tocsr()

        # Rated branches get flow constraints (rate 0 == unlimited).
        self.rated = np.flatnonzero(arr.rate_a > 0)
        self.rate2 = arr.rate_a[self.rated] ** 2
        rows = np.arange(self.nl)
        self.cf = sparse.csr_matrix(
            (np.ones(self.nl), (rows, arr.f_bus)), shape=(self.nl, self.nb)
        )[self.rated]
        self.ct = sparse.csr_matrix(
            (np.ones(self.nl), (rows, arr.t_bus)), shape=(self.nl, self.nb)
        )[self.rated]
        self.yf = self.adm.yf[self.rated]
        self.yt = self.adm.yt[self.rated]
        self.f_rated = arr.f_bus[self.rated]
        self.t_rated = arr.t_bus[self.rated]

        self.ref = int(arr.slack_buses[0])
        self.va_ref = float(arr.va0[self.ref])

    # ------------------------------------------------------------------
    def initial_point(self) -> np.ndarray:
        arr = self.arr
        x0 = np.zeros(self.nx)
        x0[self.sl_va] = self.va_ref
        vm0 = np.clip(arr.vm0, arr.vmin + 1e-3, arr.vmax - 1e-3)
        x0[self.sl_vm] = vm0
        # Midpoint dispatch is the classic MIPS starting point; fall back
        # to the scheduled dispatch when it is interior.
        pg_mid = (arr.pmin + arr.pmax) / 2.0
        pg0 = np.where((arr.pg0 > arr.pmin) & (arr.pg0 < arr.pmax), arr.pg0, pg_mid)
        x0[self.sl_pg] = pg0
        x0[self.sl_qg] = (arr.qmin + arr.qmax) / 2.0
        return x0

    def warm_start_point(self) -> np.ndarray | None:
        """Starting point from a converged base power flow, if one exists.

        A different basin than the midpoint start — the multi-start logic
        in :func:`solve_acopf` uses it when the first attempt stalls.
        """
        from ..powerflow.newton import solve_newton

        pf = solve_newton(self.net)
        if not pf.converged:
            return None
        arr = self.arr
        x0 = np.zeros(self.nx)
        x0[self.sl_va] = np.deg2rad(pf.va_deg)
        x0[self.sl_vm] = np.clip(pf.vm, arr.vmin + 1e-3, arr.vmax - 1e-3)
        x0[self.sl_pg] = np.clip(arr.pg0, arr.pmin + 1e-4, arr.pmax)
        x0[self.sl_qg] = np.clip(
            pf.gen_q_mvar / arr.base_mva, arr.qmin + 1e-4, arr.qmax - 1e-4
        )
        return x0

    def flat_point(self) -> np.ndarray:
        """Fully flat start: unit voltages, mid dispatch."""
        arr = self.arr
        x0 = np.zeros(self.nx)
        x0[self.sl_va] = self.va_ref
        x0[self.sl_vm] = np.clip(np.ones(self.nb), arr.vmin + 1e-3, arr.vmax - 1e-3)
        x0[self.sl_pg] = (arr.pmin + arr.pmax) / 2.0
        x0[self.sl_qg] = (arr.qmin + arr.qmax) / 2.0
        return x0

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        arr = self.arr
        xmin = np.full(self.nx, -np.inf)
        xmax = np.full(self.nx, np.inf)
        xmin[self.sl_vm] = arr.vmin
        xmax[self.sl_vm] = arr.vmax
        xmin[self.sl_pg] = arr.pmin
        xmax[self.sl_pg] = arr.pmax
        xmin[self.sl_qg] = arr.qmin
        xmax[self.sl_qg] = arr.qmax
        return xmin, xmax

    def voltage(self, x: np.ndarray) -> np.ndarray:
        return x[self.sl_vm] * np.exp(1j * x[self.sl_va])

    # ------------------------------------------------------------------
    # IPM callbacks
    # ------------------------------------------------------------------
    def objective(self, x: np.ndarray) -> tuple[float, np.ndarray]:
        pg = x[self.sl_pg]
        f = self.costs.cost(pg)
        df = np.zeros(self.nx)
        df[self.sl_pg] = self.costs.gradient(pg)
        return f, df

    def equalities(self, x: np.ndarray) -> tuple[np.ndarray, sparse.spmatrix]:
        arr = self.arr
        v = self.voltage(x)
        sg = self.cg @ (x[self.sl_pg] + 1j * x[self.sl_qg])
        mis = v * np.conj(self.adm.ybus @ v) + (arr.pd + 1j * arr.qd) - sg

        ds_dva, ds_dvm = dSbus_dV(self.adm.ybus, v)
        zg = sparse.csr_matrix((self.nb, self.ng))
        dg_p = sparse.hstack([ds_dva.real, ds_dvm.real, -self.cg, zg])
        dg_q = sparse.hstack([ds_dva.imag, ds_dvm.imag, zg, -self.cg])

        # Slack angle reference row.
        ref_row = sparse.csr_matrix(
            (np.ones(1), (np.zeros(1, dtype=int), [self.ref])), shape=(1, self.nx)
        )
        g = np.concatenate([mis.real, mis.imag, [x[self.ref] - self.va_ref]])
        dg = sparse.vstack([dg_p, dg_q, ref_row], format="csr")
        return g, dg

    def inequalities(self, x: np.ndarray) -> tuple[np.ndarray, sparse.spmatrix]:
        v = self.voltage(x)
        nr = len(self.rated)
        if nr == 0:
            return np.empty(0), sparse.csr_matrix((0, self.nx))

        dsf_dva, dsf_dvm, sf = dSbr_dV(self.yf, self.f_rated, v, self.nb)
        dst_dva, dst_dvm, st = dSbr_dV(self.yt, self.t_rated, v, self.nb)

        h = np.concatenate([np.abs(sf) ** 2 - self.rate2, np.abs(st) ** 2 - self.rate2])

        def abs2_grad(s, ds_dva, ds_dvm):
            dr = sparse.diags(s.real)
            di = sparse.diags(s.imag)
            da = 2.0 * (dr @ ds_dva.real + di @ ds_dva.imag)
            dm = 2.0 * (dr @ ds_dvm.real + di @ ds_dvm.imag)
            return da, dm

        dfa, dfm = abs2_grad(sf, dsf_dva, dsf_dvm)
        dta, dtm = abs2_grad(st, dst_dva, dst_dvm)
        zgen = sparse.csr_matrix((nr, 2 * self.ng))
        dh = sparse.vstack(
            [
                sparse.hstack([dfa, dfm, zgen]),
                sparse.hstack([dta, dtm, zgen]),
            ],
            format="csr",
        )
        return h, dh

    def lagrangian_hessian(
        self, x: np.ndarray, lam: np.ndarray, mu: np.ndarray
    ) -> sparse.spmatrix:
        v = self.voltage(x)
        nb, ng = self.nb, self.ng

        # Objective block (diagonal in Pg).
        d2f_pg = self.costs.hessian_diag(x[self.sl_pg])

        # Power-balance block.
        lam_p = lam[:nb]
        lam_q = lam[nb : 2 * nb]
        gaa_p, gav_p, gva_p, gvv_p = d2Sbus_dV2(self.adm.ybus, v, lam_p)
        gaa_q, gav_q, gva_q, gvv_q = d2Sbus_dV2(self.adm.ybus, v, lam_q)
        haa = gaa_p.real + gaa_q.imag
        hav = gav_p.real + gav_q.imag
        hva = gva_p.real + gva_q.imag
        hvv = gvv_p.real + gvv_q.imag

        # Branch-limit block.
        nr = len(self.rated)
        if nr and mu.size:
            mu_f = mu[:nr]
            mu_t = mu[nr:]
            dsf_dva, dsf_dvm, sf = dSbr_dV(self.yf, self.f_rated, v, nb)
            dst_dva, dst_dvm, st = dSbr_dV(self.yt, self.t_rated, v, nb)
            faa, fav, fva, fvv = d2Abr_dV2(dsf_dva, dsf_dvm, sf, self.cf, self.yf, v, mu_f)
            taa, tav, tva, tvv = d2Abr_dV2(dst_dva, dst_dvm, st, self.ct, self.yt, v, mu_t)
            haa = haa + faa + taa
            hav = hav + fav + tav
            hva = hva + fva + tva
            hvv = hvv + fvv + tvv

        vv_block = sparse.bmat([[haa, hav], [hva, hvv]])
        lxx = sparse.block_diag(
            [vv_block, sparse.diags(d2f_pg), sparse.csr_matrix((ng, ng))],
            format="csr",
        )
        return lxx


@instrument_solver("acopf")
def solve_acopf(
    net: Network,
    *,
    options: IPMOptions | None = None,
    multi_start: bool = True,
) -> OPFResult:
    """Solve the ACOPF with the interior-point backend.

    ``multi_start`` retries stalled solves from a power-flow warm start
    and a flat start before giving up.  Non-convergence is reported in the
    result (``converged=False``), never raised — the agent validation
    layer decides how to recover.
    """
    start = time.perf_counter()
    prob = ACOPFProblem(net)
    xmin, xmax = prob.bounds()
    opts = options or IPMOptions()

    # Multi-start: the PDIPM occasionally stalls (step collapse) from a
    # particular basin on stressed systems; different but equally
    # legitimate starting points usually rescue it.
    starts: list = [prob.initial_point]
    if multi_start:
        starts += [prob.warm_start_point, prob.flat_point]

    ipm_res = None
    for make_x0 in starts:
        x0 = make_x0()
        if x0 is None:
            continue
        attempt = solve_ipm(
            x0,
            prob.objective,
            prob.equalities,
            prob.inequalities,
            prob.lagrangian_hessian,
            xmin,
            xmax,
            opts,
        )
        if ipm_res is None or (attempt.converged and not ipm_res.converged):
            ipm_res = attempt
        if attempt.converged:
            break
    assert ipm_res is not None
    return _unpack(prob, ipm_res, time.perf_counter() - start)


def _unpack(prob: ACOPFProblem, res: IPMResult, runtime: float) -> OPFResult:
    arr = prob.arr
    base = arr.base_mva
    x = res.x
    v = prob.voltage(x)

    sf = v[arr.f_bus] * np.conj(prob.adm.yf @ v)
    st = v[arr.t_bus] * np.conj(prob.adm.yt @ v)
    s_from = np.abs(sf) * base
    s_to = np.abs(st) * base
    with np.errstate(divide="ignore", invalid="ignore"):
        loading = np.where(
            arr.rate_a > 0,
            100.0 * np.maximum(s_from, s_to) / (arr.rate_a * base),
            0.0,
        )

    mis, _ = prob.equalities(x)
    max_mis = float(np.max(np.abs(mis[: 2 * prob.nb]))) if prob.nb else 0.0

    # Nodal prices: $/h per p.u. -> $/MWh.
    lmp = res.lam_eq[: prob.nb] / base

    branch_mu = np.zeros(prob.nl)
    nr = len(prob.rated)
    if nr and res.mu_ineq.size >= 2 * nr:
        # Shadow price on |S|^2 limit; convert to per-MVA via chain rule.
        # (Subclasses may append extra inequality rows after these.)
        mu_f = res.mu_ineq[:nr]
        mu_t = res.mu_ineq[nr: 2 * nr]
        combined = np.zeros(prob.nl)
        rate_pu = arr.rate_a[prob.rated]
        combined[prob.rated] = (mu_f + mu_t) * 2.0 * rate_pu / base
        branch_mu = combined

    losses = float((sf + st).real.sum()) * base

    return OPFResult(
        converged=res.converged,
        objective_cost=float(res.f),
        method="acopf-ipm",
        iterations=res.iterations,
        vm=np.abs(v),
        va_deg=rad_to_deg(np.angle(v)),
        pg_mw=x[prob.sl_pg] * base,
        qg_mvar=x[prob.sl_qg] * base,
        gen_ids=arr.gen_ids.copy(),
        loading_percent=loading,
        s_from_mva=s_from,
        s_to_mva=s_to,
        branch_ids=arr.branch_ids.copy(),
        losses_mw=losses,
        lmp_mw=lmp,
        branch_mu=branch_mu,
        max_power_balance_mismatch_pu=max_mis,
        runtime_s=runtime,
        message=res.message,
        extras={"ipm_history": res.history},
    )
