#!/usr/bin/env python
"""Streaming studies: a 10k-scenario ensemble with live progress.

``scenario_study.py`` materialised a 200-draw ensemble; this example
runs *fifty times* that through the streaming pipeline and never holds
more than a bounded window of results:

* the Monte Carlo family expands lazily (a :class:`ScenarioStream`, not
  a 10k-element list),
* the shared :class:`StudyExecutor` keeps a bounded in-flight chunk
  window (backpressure against the pool),
* completed chunks fold into the online :class:`StudyReducer` — exact
  counters and rates, P2 percentile sketches past the exact-buffer cap —
  and are dropped,
* a progress callback narrates delivery while the study runs, and the
  final :class:`StudyResult` retains only the aggregate plus the
  worst-K scenario heap.

Run:  PYTHONPATH=src python examples/streaming_study.py [n_scenarios]
      (defaults to 10 000; pass e.g. 1000 for a quick look)
"""

from __future__ import annotations

import sys

from repro import load_case
from repro.scenarios import BatchStudyRunner, monte_carlo_ensemble
from repro.service import StudyExecutor

N = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
CHUNK = max(10, N // 100)
WINDOW = 4


def progress_line(p) -> None:
    bar = "#" * int(30 * (p.fraction or 0.0))
    print(
        f"\r[{bar:<30s}] {p.n_done}/{p.n_total} "
        f"| converged {p.n_converged} | violations {100 * p.violation_rate:.0f}% "
        f"| {p.elapsed_s:.0f}s",
        end="",
        flush=True,
    )


def main() -> None:
    print("=" * 70)
    print(f"Streaming {N}-scenario Monte Carlo study on ieee14")
    print("=" * 70)
    net = load_case("ieee14")
    scenarios = monte_carlo_ensemble(n=N, sigma=0.05, seed=42)
    print(f"scenario family: {scenarios!r}  (lazy — nothing expanded yet)")

    with StudyExecutor(max_workers=2, window=WINDOW) as executor:
        runner = BatchStudyRunner(
            analysis="powerflow", executor=executor, chunk_size=CHUNK
        )
        study = runner.run(
            net, scenarios, progress=progress_line, keep_results=False
        )
    print()

    agg = study.aggregate()
    print(f"\nscenarios: {study.n_scenarios}  converged: {agg.n_converged}")
    print(f"violation rate: {100.0 * agg.violation_rate:.1f}% of scenarios")
    loading = agg.loading_stats
    print(
        f"peak loading %: p50 {loading['p50']:.1f}  p95 {loading['p95']:.1f}  "
        f"max {loading['max']:.1f}  ({loading['estimator']} estimator)"
    )
    print(
        f"progress events: {study.n_progress_events}  |  "
        f"peak resident results: {study.peak_resident_results} "
        f"(window {WINDOW} x chunk {CHUNK} + worst-{runner.worst_k} bound; "
        f"a materialized run would hold all {N})"
    )
    print("most stressed scenarios (from the capped worst-K heap):")
    for w in study.worst(3):
        print(f"  - {w.name}: peak loading {w.max_loading_percent:.1f}%")


if __name__ == "__main__":
    main()
