"""Deterministic simulated device fleet: meters and DERs on network buses.

The operational regime the paper points at — agents watching a live grid
— needs an unbounded telemetry source.  Real AMI feeds are not available
here, so this module simulates one with the same reproducibility
discipline the scenario engine uses: every device draws its static
attributes (bus, kind, nameplate) from a per-device seed derived exactly
like :func:`~repro.scenarios.stream.child_seed` derives per-scenario
seeds, and every frame draws its noise from a per-(device, tick) child of
that seed.  Two consequences fall out by construction:

* **prefix stability** — device ``i`` emits the identical frame stream
  whether the fleet has a thousand devices or a million, because nothing
  about a device depends on the fleet size;
* **random access** — any (device, tick) frame is computable without
  generating the frames before it, so replays, late reads, and windowed
  re-reads all agree bit-for-bit.

Load follows the same diurnal cosine the scenario generators' daily
profile uses (trough near 04:00, peak near 16:00); DER output follows a
daylight bell.  Anomalies are *injected*, never drawn: an
:class:`AnomalySpec` names a tick range and optional feeder, and the
affected frames are flagged so detection can be asserted end to end.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from ..grid.network import DEFAULT_ZONE_BANDS, Network

#: One telemetry tick defaults to a 15-minute AMI reporting interval.
DEFAULT_INTERVAL_S = 900.0

METER = "meter"
DER = "der"

ANOMALY_KINDS = ("load_spike", "voltage_sag", "dropout")


def device_seed(fleet_seed: int, device_id: int) -> int:
    """Stable per-device seed, independent of fleet size.

    Same construction as :func:`~repro.scenarios.stream.child_seed`
    (blake2b over ``"{seed}\\x1f{index}"``): adding devices never
    perturbs the streams of existing ones.
    """
    digest = hashlib.blake2b(
        f"{fleet_seed}\x1f{device_id}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest[:4], "big")


def frame_seed(dev_seed: int, tick: int) -> int:
    """Per-(device, tick) seed: any frame is computable in isolation."""
    digest = hashlib.blake2b(f"{dev_seed}\x1f{tick}".encode(), digest_size=8).digest()
    return int.from_bytes(digest[:4], "big")


def diurnal_factor(hour: float, *, peak: float, trough: float) -> float:
    """Demand shape used by the scenario generators' daily profile:
    cosine with its trough at 04:00 and peak twelve hours later."""
    shape = 0.5 * (1.0 - math.cos(2.0 * math.pi * (hour - 4.0) / 24.0))
    return trough + (peak - trough) * shape


def solar_factor(hour: float) -> float:
    """Daylight bell for DER output: zero outside 06:00-18:00."""
    if not 6.0 <= hour <= 18.0:
        return 0.0
    return math.sin(math.pi * (hour - 6.0) / 12.0)


@dataclass(frozen=True)
class AnomalySpec:
    """One injected anomaly: a tick range, a target, and a magnitude.

    ``kind`` selects the effect: ``load_spike`` multiplies affected
    meters' load by ``magnitude``; ``voltage_sag`` scales affected
    frames' voltage by ``1 - 0.05 * magnitude``; ``dropout`` suppresses
    the frames entirely.  ``feeder`` limits the blast radius to one
    feeder label (``None`` = the whole fleet).
    """

    start_tick: int
    duration_ticks: int = 1
    kind: str = "load_spike"
    feeder: str | None = None
    magnitude: float = 1.5

    def __post_init__(self) -> None:
        if self.kind not in ANOMALY_KINDS:
            raise ValueError(
                f"unknown anomaly kind {self.kind!r}; use one of {ANOMALY_KINDS}"
            )
        if self.start_tick < 0:
            raise ValueError(f"start_tick must be >= 0, got {self.start_tick}")
        if self.duration_ticks < 1:
            raise ValueError(
                f"duration_ticks must be >= 1, got {self.duration_ticks}"
            )
        if self.magnitude <= 0:
            raise ValueError(f"magnitude must be > 0, got {self.magnitude}")

    def covers(self, tick: int, feeder: str) -> bool:
        if not self.start_tick <= tick < self.start_tick + self.duration_ticks:
            return False
        return self.feeder is None or self.feeder == feeder

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start_tick": self.start_tick,
            "duration_ticks": self.duration_ticks,
            "feeder": self.feeder,
            "magnitude": self.magnitude,
        }


@dataclass(frozen=True)
class FleetSpec:
    """Static description of one simulated fleet (plain data, hashable)."""

    n_devices: int
    seed: int = 0
    interval_s: float = DEFAULT_INTERVAL_S
    sigma: float = 0.02  # per-frame relative load noise
    der_fraction: float = 0.25  # expected fraction of devices that are DERs
    peak: float = 1.15  # diurnal demand peak factor
    trough: float = 0.70
    anomalies: tuple[AnomalySpec, ...] = ()

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {self.n_devices}")
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if not 0.0 <= self.der_fraction <= 1.0:
            raise ValueError(
                f"der_fraction must be in [0, 1], got {self.der_fraction}"
            )
        if not 0 < self.trough <= self.peak:
            raise ValueError(
                f"need 0 < trough <= peak, got trough={self.trough} peak={self.peak}"
            )


@dataclass(frozen=True)
class TelemetryFrame:
    """One device reading at one tick."""

    device_id: int
    bus: int
    feeder: str
    kind: str  # METER | DER
    tick: int
    ts: float  # simulated epoch seconds (tick * interval_s)
    load_mw: float  # signed: meters draw (+), DERs inject (-)
    voltage_pu: float
    anomaly: str = ""  # anomaly kind when this frame is affected

    def to_dict(self) -> dict:
        out = {
            "device_id": self.device_id,
            "bus": self.bus,
            "feeder": self.feeder,
            "kind": self.kind,
            "tick": self.tick,
            "ts": self.ts,
            "load_mw": round(self.load_mw, 6),
            "voltage_pu": round(self.voltage_pu, 5),
        }
        if self.anomaly:
            out["anomaly"] = self.anomaly
        return out


@dataclass(frozen=True)
class _Device:
    """Static per-device attributes, all derived from the device seed."""

    device_id: int
    bus: int
    feeder: str
    kind: str
    base_mw: float  # meter: nominal draw; DER: nameplate capacity
    seed: int


class DeviceFleet:
    """The fleet: device attribute table plus the frame model.

    Construction is O(n_devices) (one small RNG draw per device); frame
    generation is O(1) per frame with no cross-device or cross-tick
    state, which is what makes the prefix-stability and random-access
    guarantees in the module docstring hold.
    """

    def __init__(self, net: Network, spec: FleetSpec) -> None:
        if net.n_bus == 0:
            raise ValueError("cannot attach a fleet to an empty network")
        self.spec = spec
        self.n_bus = net.n_bus
        self._zones = net.bus_zones(DEFAULT_ZONE_BANDS)
        self._devices = [self._make_device(i) for i in range(spec.n_devices)]

    def _make_device(self, device_id: int) -> _Device:
        seed = device_seed(self.spec.seed, device_id)
        rng = np.random.default_rng(seed)
        bus = int(rng.integers(0, self.n_bus))
        kind = DER if rng.random() < self.spec.der_fraction else METER
        # Meters draw 50-500 kW nominal; DER nameplates run 50-300 kW.
        if kind == METER:
            base = 0.05 + 0.45 * float(rng.random())
        else:
            base = 0.05 + 0.25 * float(rng.random())
        return _Device(
            device_id=device_id,
            bus=bus,
            feeder=self._zones[bus],
            kind=kind,
            base_mw=base,
            seed=seed,
        )

    # ------------------------------------------------------------------
    @property
    def n_devices(self) -> int:
        return self.spec.n_devices

    @property
    def devices(self) -> list[_Device]:
        return self._devices

    @property
    def feeders(self) -> list[str]:
        """Distinct feeder labels in bus order."""
        seen: dict[str, None] = {}
        for b in range(self.n_bus):
            seen.setdefault(self._zones[b], None)
        return list(seen)

    def hour_at(self, tick: int) -> float:
        return (tick * self.spec.interval_s / 3600.0) % 24.0

    # ------------------------------------------------------------------
    def _anomaly_for(self, device: _Device, tick: int) -> AnomalySpec | None:
        for spec in self.spec.anomalies:
            if spec.covers(tick, device.feeder):
                return spec
        return None

    def frame(self, device_id: int, tick: int) -> TelemetryFrame | None:
        """The frame device ``device_id`` emits at ``tick``.

        ``None`` means the device emitted nothing (a dropout anomaly) —
        absence is part of the model, not an error.
        """
        device = self._devices[device_id]
        anomaly = self._anomaly_for(device, tick)
        if anomaly is not None and anomaly.kind == "dropout":
            return None
        spec = self.spec
        rng = np.random.default_rng(frame_seed(device.seed, tick))
        hour = self.hour_at(tick)
        noise = max(0.0, 1.0 + spec.sigma * float(rng.standard_normal()))
        if device.kind == METER:
            shape = diurnal_factor(hour, peak=spec.peak, trough=spec.trough)
            load = device.base_mw * shape * noise
        else:
            load = -device.base_mw * solar_factor(hour) * noise
        # Voltage dips with system stress: highest at the diurnal trough,
        # ~2% lower at peak, plus small measurement noise.
        stress = (
            diurnal_factor(hour, peak=spec.peak, trough=spec.trough) - spec.trough
        ) / max(spec.peak - spec.trough, 1e-9)
        voltage = 1.0 - 0.02 * stress + 0.003 * float(rng.standard_normal())
        label = ""
        if anomaly is not None:
            label = anomaly.kind
            if anomaly.kind == "load_spike":
                load *= anomaly.magnitude
            elif anomaly.kind == "voltage_sag":
                voltage *= 1.0 - 0.05 * anomaly.magnitude
        return TelemetryFrame(
            device_id=device.device_id,
            bus=device.bus,
            feeder=device.feeder,
            kind=device.kind,
            tick=tick,
            ts=tick * spec.interval_s,
            load_mw=load,
            voltage_pu=voltage,
            anomaly=label,
        )

    def frames_for_tick(self, tick: int) -> list[TelemetryFrame]:
        """All frames at one tick, in device order (dropouts omitted)."""
        frames = []
        for device_id in range(self.n_devices):
            frame = self.frame(device_id, tick)
            if frame is not None:
                frames.append(frame)
        return frames

    def iter_frames(self, n_ticks: int, start_tick: int = 0):
        """Time-ordered frames over ``n_ticks`` ticks (lazy)."""
        for tick in range(start_tick, start_tick + n_ticks):
            yield from self.frames_for_tick(tick)

    # ------------------------------------------------------------------
    def tick_bus_factors(
        self, tick: int, frames: list[TelemetryFrame] | None = None
    ) -> dict[int, float]:
        """Per-bus net load factor this tick, relative to meter nominal.

        The factor a bus's case loads should be scaled by to reflect the
        fleet's current draw: (meter draw + DER injection) over the bus's
        nominal meter base.  DER injection can push a bus negative; the
        factor clamps at zero (net export beyond the case load is out of
        scope for the load-scaling adapter).  Buses with no metered
        devices are omitted — the case loads there stay untouched.
        """
        if frames is None:
            frames = self.frames_for_tick(tick)
        base: dict[int, float] = {}
        for device in self._devices:
            if device.kind == METER:
                base[device.bus] = base.get(device.bus, 0.0) + device.base_mw
        actual: dict[int, float] = {}
        for frame in frames:
            if frame.bus in base:
                actual[frame.bus] = actual.get(frame.bus, 0.0) + frame.load_mw
        return {
            bus: max(0.0, actual.get(bus, 0.0) / base_mw)
            for bus, base_mw in sorted(base.items())
        }
