"""Legacy setuptools shim.

The execution environment is offline with setuptools 65 and no ``wheel``
package, which breaks PEP-517 editable installs; this shim lets
``pip install -e .`` fall back to ``setup.py develop``.  All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
