"""Rule-grammar natural-language understanding for power-system requests.

This is the "understanding" half of the simulated LLM: intent
classification plus entity extraction (case ids, bus numbers, MW values,
outage scopes, top-N counts) over the kinds of utterances the paper's
dialogues show.  Multi-step requests ("solve IEEE 118, then run
contingency analysis") are segmented into ordered clauses so the planner
agent can route each to the right domain agent.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from ..grid.cases import canonical_case_name


class Intent(enum.Enum):
    SOLVE_CASE = "solve_case"
    MODIFY_LOAD = "modify_load"
    NETWORK_STATUS = "network_status"
    RUN_CONTINGENCY = "run_contingency"
    ANALYZE_OUTAGE = "analyze_outage"
    ECONOMIC_IMPACT = "economic_impact"
    SOLUTION_QUALITY = "solution_quality"
    RUN_STUDY = "run_study"
    WATCH_TELEMETRY = "watch_telemetry"
    HELP = "help"
    UNKNOWN = "unknown"


@dataclass
class ParsedIntent:
    """One classified clause with its extracted entities."""

    intent: Intent
    entities: dict = field(default_factory=dict)
    confidence: float = 1.0
    text: str = ""

    def entity(self, key: str, default=None):
        return self.entities.get(key, default)


# ----------------------------------------------------------------------
# entity extractors
# ----------------------------------------------------------------------

_BUS_RE = re.compile(r"\bbus(?:es)?\s*#?\s*(\d+)", re.I)
_MW_RE = re.compile(r"(-?\d+(?:\.\d+)?)\s*(?:mw|megawatts?)\b", re.I)
_PCT_RE = re.compile(r"(-?\d+(?:\.\d+)?)\s*(?:%|percent)", re.I)
_BETWEEN_RE = re.compile(
    r"between\s+bus(?:es)?\s*#?\s*(\d+)\s+and\s+(?:bus\s*#?\s*)?(\d+)", re.I
)
_LINE_PAIR_RE = re.compile(r"\b(?:line|branch|transformer)\s+(\d+)\s*[-–to]+\s*(\d+)", re.I)
_BRANCH_IDX_RE = re.compile(r"\b(?:branch|line)\s*(?:index|idx|#)\s*(\d+)", re.I)
_TOP_N_RE = re.compile(r"\btop[\s-]*(\d+)", re.I)
_DEVICES_RE = re.compile(r"\b([\d,_]*\d)\s*(?:devices?|meters?|sensors?)\b", re.I)
_WINDOWS_RE = re.compile(r"\b(\d+)\s*windows?\b", re.I)
_CASE_HINT_RE = re.compile(r"\b(?:ieee|case)[\s_\-]*(\d+)|(\d+)[\s-]*bus\b", re.I)
_NSCEN_RE = re.compile(
    r"(\d+)[\s-]*(?:draw|scenario|sample|iteration|trial|step|point)s?\b", re.I
)
_RANGE_RE = re.compile(
    r"(\d+(?:\.\d+)?)\s*(?:%|percent)?\s*(?:to|-|–|—|through)\s*"
    r"(\d+(?:\.\d+)?)\s*(?:%|percent)",
    re.I,
)
_SIGMA_RE = re.compile(
    r"(?:sigma|std(?:dev)?|standard\s+deviation|deviation)\s*(?:of|=|:)?\s*"
    r"(\d+(?:\.\d+)?)\s*(?:%|percent)?",
    re.I,
)
_COMPARE_RE = re.compile(
    r"\bcompare\b|\bversus\b|\bvs\.?\b|\bdiff(?:erence)?\b", re.I
)
#: "slice by hour" / "broken down per zone" style dimension requests.
#: The dimension vocabulary is closed (known scenario-tag aliases), so a
#: bare "per scenario" or "by 5%" never misfires.  "hour" additionally
#: requires an explicit slicing/grouping verb, because bare "per hour"
#: is rate phrasing ("the cost per hour" means $/h, not a breakdown) —
#: and hourly profiles infer hour slicing anyway.
_SLICE_RE = re.compile(
    r"(?:\bslic(?:e[sd]?|ing)(?:\s+\w+)?\s+(?:by|per|on)|\bbroken\s+down\s+(?:by|per)|"
    r"\bgrouped?\s+by|\bbucketed\s+by)\s+"
    r"(hour(?:[\s-]of[\s-]day)?|scale|zone|stratum|draw|load[\s-]?level)s?\b"
    r"|(?:\bper|\bby)\s+(scale|zone|stratum|draw|load[\s-]?level)s?\b",
    re.I,
)
#: Zonal correlated-draw parameters for Monte Carlo studies.
_ZONES_RE = re.compile(r"(\d+)\s*zones?\b", re.I)
_CORR_RE = re.compile(
    r"correlat\w*\s*(?:of|=|:)?\s*(\d+(?:\.\d+)?)\s*(%|percent)?", re.I
)


def _canonical_slice_tag(word: str) -> str:
    """Canonicalise a matched slice phrase via the shared alias table
    (:data:`repro.scenarios.generators.SLICE_TAG_ALIASES` — one map for
    every front end)."""
    from ..scenarios.generators import SLICE_TAG_ALIASES

    word = re.sub(r"[\s-]+", " ", word.lower()).strip()
    if word.startswith("hour"):
        word = "hour"
    return SLICE_TAG_ALIASES.get(word, word)

#: Study-family keywords -> canonical study kind.  Plural forms matter:
#: comparison questions say "compare the last two sweeps / ensembles".
_STUDY_KIND_RES: list[tuple[str, re.Pattern]] = [
    ("monte_carlo", re.compile(r"monte[\s-]*carlo|\bensembles?\b|random\s+draw", re.I)),
    ("outage", re.compile(r"\bn-?2\b|double\s+outage|outage\s+(pair|combination)", re.I)),
    ("profile", re.compile(r"daily\s+(load\s+)?profile|load\s+profile|24[\s-]*hour", re.I)),
    ("sweep", re.compile(
        r"\bsweeps?\b|load\s+(range|levels)|from\s+\d+\s*%?\s*to\s+\d+\s*%", re.I)),
]

#: Analysis-engine keywords -> BatchStudyRunner analysis name.
_ANALYSIS_RES: list[tuple[str, re.Pattern]] = [
    # SCOPF first: "security-constrained" must not fall through to the
    # screening pattern's "critical"/"contingenc" keywords.
    ("scopf", re.compile(r"\bscopf\b|security[\s-]*constrained|secured\s+(cost|dispatch)", re.I)),
    ("screening", re.compile(r"contingenc|screening|n-?1\b|critical", re.I)),
    ("dcopf", re.compile(r"\bdc\s*-?opf\b|\bdc\s+optimal", re.I)),
    # Plain "dc" after the dcopf pattern has had its chance: "dcopf" as a
    # single word never matches \bdc\b, so only bare mentions land here.
    ("dc", re.compile(r"\bdc\b|linear(ised|ized)?\s+(power\s+)?flow|batched", re.I)),
    ("acopf", re.compile(r"\bac\s*-?opf\b|acopf|optimal\s+power\s+flow|dispatch|cost", re.I)),
    ("powerflow", re.compile(r"power\s+flow|voltage|loading", re.I)),
]


def extract_case(text: str) -> str | None:
    """Find a test-case mention and canonicalise it via the registry."""
    m = _CASE_HINT_RE.search(text)
    if not m:
        return None
    number = m.group(1) or m.group(2)
    return canonical_case_name(number)


def extract_entities(text: str) -> dict:
    """All recognisable entities in one pass (intent-independent)."""
    ents: dict = {}
    case = extract_case(text)
    if case:
        ents["case"] = case

    pair = _BETWEEN_RE.search(text) or _LINE_PAIR_RE.search(text)
    if pair:
        ents["from_bus"] = int(pair.group(1))
        ents["to_bus"] = int(pair.group(2))

    m = _BRANCH_IDX_RE.search(text)
    if m:
        ents["branch_id"] = int(m.group(1))

    buses = _BUS_RE.findall(text)
    if buses and "from_bus" not in ents:
        ents["bus"] = int(buses[0])

    m = _MW_RE.search(text)
    if m:
        ents["mw"] = float(m.group(1))

    m = _PCT_RE.search(text)
    if m:
        ents["percent"] = float(m.group(1))

    m = _TOP_N_RE.search(text)
    if m:
        ents["top_n"] = int(m.group(1))

    for kind, pattern in _STUDY_KIND_RES:
        if pattern.search(text):
            ents["study"] = kind
            break
    if "study" in ents or re.search(r"\bstud(?:y|ies)\b", text, re.I):
        # Study-scoped extras: comparison flag, scenario counts, sweep
        # range, sigma, engine.
        if _COMPARE_RE.search(text):
            ents["study_compare"] = True
        m = _NSCEN_RE.search(text)
        if m:
            ents["n_scenarios"] = int(m.group(1))
        m = _RANGE_RE.search(text)
        if m:
            ents["sweep_lo_percent"] = float(m.group(1))
            ents["sweep_hi_percent"] = float(m.group(2))
        m = _SIGMA_RE.search(text)
        if m:
            ents["sigma_percent"] = float(m.group(1))
        m = _SLICE_RE.search(text)
        if m:
            ents["slice_by"] = _canonical_slice_tag(m.group(1) or m.group(2))
        m = _ZONES_RE.search(text)
        if m:
            ents["n_zones"] = int(m.group(1))
        m = _CORR_RE.search(text)
        if m:
            rho = float(m.group(1))
            if m.group(2) is None and rho <= 1.0:
                # "correlated 0.6" is a correlation coefficient, not 0.6 %.
                rho *= 100.0
            ents["rho_percent"] = rho
        for analysis, pattern in _ANALYSIS_RES:
            if pattern.search(text):
                ents["study_analysis"] = analysis
                break

    m = _DEVICES_RE.search(text)
    if m:
        ents["n_devices"] = int(m.group(1).replace(",", "").replace("_", ""))
    m = _WINDOWS_RE.search(text)
    if m:
        ents["n_windows"] = int(m.group(1))

    lowered = text.lower()
    if re.search(r"\b(increase|raise|add|grow)\b", lowered):
        ents["direction"] = "increase"
    elif re.search(r"\b(decrease|reduce|lower|drop|cut|shed)\b", lowered):
        ents["direction"] = "decrease"
    if re.search(r"\bto\s+-?\d", lowered) and "mw" in ents:
        ents["mode"] = "set"
    elif re.search(r"\bby\s+-?\d", lowered):
        ents["mode"] = "delta"
    elif "mw" in ents:
        ents["mode"] = "set"
    return ents


# ----------------------------------------------------------------------
# intent classification
# ----------------------------------------------------------------------

_INTENT_RULES: list[tuple[Intent, re.Pattern]] = [
    # Telemetry watch outranks RUN_STUDY: "watch the live feed" is a
    # standing windowed study, not a batch one.
    (Intent.WATCH_TELEMETRY, re.compile(
        r"\b(watch|monitor|observe)\b[^.]*\b(telemetry|live|feed|fleet|meters?)\b|"
        r"\btelemetry\b|\blive\s+(grid|data|stream)\b|"
        r"\brolling\s+window|\bstanding\s+stud(y|ies)", re.I)),
    (Intent.RUN_STUDY, re.compile(
        r"monte[\s-]*carlo|\bensemble\b|load\s+sweep|sweep\b[^.]*\b(load|demand)|"
        r"\b(load|demand)\b[^.]*\bsweep|scenario\s+(study|sweep|batch)|"
        r"\bn-?2\b|double\s+outage|outage\s+(pair|combination)s?|"
        r"daily\s+(load\s+)?profile|24[\s-]*hour\s+(load\s+)?profile|"
        r"\b(load|what[\s-]?if|batch)\s+stud(y|ies)|"
        r"\bstud(y|ies)\b[^.]*\b(status|results?|summary)|"
        r"\b(status|results?|summary)\b[^.]*\bstud(y|ies)\b|"
        r"\bcompare\b[^.]*\b(stud(y|ies)|sweeps?|ensembles?)\b|"
        r"\b(stud(y|ies)|sweeps?|ensembles?)\b[^.]*\bcompare", re.I)),
    (Intent.ECONOMIC_IMPACT, re.compile(
        r"(economic|cost)\s+(impact|effect|consequence)|"
        r"impact.*\b(cost|objective)|how much (more|less).*cost", re.I)),
    (Intent.ANALYZE_OUTAGE, re.compile(
        r"(outage|remove|removing|trip|tripping|take out|lose|losing|"
        r"disconnect)\b.*\b(line|branch|transformer)|"
        r"\b(line|branch|transformer)\b.*\b(outage|out of service)|"
        r"analy[sz]e\s+(the\s+)?(specific\s+)?contingenc(y|ies)\s+(of|for)", re.I)),
    (Intent.RUN_CONTINGENCY, re.compile(
        r"contingenc|n-?1\b|t-?1\b|critical\s+(line|element|contingen|transmission)|"
        r"reliab|security\s+assess|most\s+critical|vulnerab|weak(est)?\s+(point|element|line)",
        re.I)),
    (Intent.MODIFY_LOAD, re.compile(
        r"(increase|decrease|raise|reduce|lower|set|change|modify|adjust|scale)"
        r".*\b(load|demand)|\b(load|demand)\b.*\b(to|by)\s+-?\d", re.I)),
    (Intent.SOLUTION_QUALITY, re.compile(
        r"(quality|how good|score|assess)\b.*\b(solution|dispatch|result)|"
        r"solution\s+quality", re.I)),
    (Intent.NETWORK_STATUS, re.compile(
        r"\b(status|state|summary|summarize|describe)\b.*\b(network|system|case|grid)|"
        r"network\s+status|current\s+(status|state)|what('| i)s loaded", re.I)),
    (Intent.SOLVE_CASE, re.compile(
        r"\b(solve|run|execute|optimi[sz]e|dispatch|compute)\b|"
        r"\b(acopf|opf|optimal\s+power\s+flow|power\s+flow)\b", re.I)),
    (Intent.HELP, re.compile(r"\b(help|what can you do|capabilit|usage)\b", re.I)),
]

_CLAUSE_SPLIT_RE = re.compile(
    r"(?:\bthen\b|\bafter that\b|\bfollowed by\b|;|\.\s+(?=[A-Z]))", re.I
)


def classify(text: str) -> ParsedIntent:
    """Classify a single clause."""
    ents = extract_entities(text)
    for intent, pattern in _INTENT_RULES:
        if pattern.search(text):
            conf = 0.9
            # Disambiguation: "solve ... contingency" is a CA request.
            if intent == Intent.SOLVE_CASE and re.search(r"contingenc", text, re.I):
                intent = Intent.RUN_CONTINGENCY
            # "remove line X and re-solve / impact on cost" is economic.
            if intent == Intent.ANALYZE_OUTAGE and re.search(
                r"cost|economic|dispatch|re-?solve", text, re.I
            ):
                intent = Intent.ECONOMIC_IMPACT
            return ParsedIntent(intent=intent, entities=ents, confidence=conf, text=text)
    # A bare case mention ("IEEE 118") defaults to solving it.
    if "case" in ents:
        return ParsedIntent(Intent.SOLVE_CASE, ents, confidence=0.5, text=text)
    return ParsedIntent(Intent.UNKNOWN, ents, confidence=0.2, text=text)


def parse_request(text: str) -> list[ParsedIntent]:
    """Segment a user request into ordered intents.

    Clauses are split on sequencing markers; a trailing "identify critical
    elements" style clause folds into a preceding contingency request
    rather than becoming a separate unknown.
    """
    clauses = [c.strip() for c in _CLAUSE_SPLIT_RE.split(text) if c and c.strip()]
    if not clauses:
        return [ParsedIntent(Intent.UNKNOWN, {}, 0.0, text)]

    parsed = [classify(c) for c in clauses]

    # Fold "and identify/rank critical elements" fragments into CA.
    merged: list[ParsedIntent] = []
    for p in parsed:
        if (
            merged
            and p.intent in (Intent.UNKNOWN, Intent.RUN_CONTINGENCY)
            and merged[-1].intent == Intent.RUN_CONTINGENCY
        ):
            merged[-1].entities.update(p.entities)
            continue
        merged.append(p)

    # Entity inheritance: later clauses inherit the case of earlier ones.
    case = None
    for p in merged:
        if "case" in p.entities:
            case = p.entities["case"]
        elif case is not None:
            p.entities["inherited_case"] = case
    return merged
