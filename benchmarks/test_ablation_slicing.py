"""E14 — Ablation: sliced vs unsliced reduction; index vs payload compare.

The dimensional-aggregation rework adds per-tag-value sub-reducers to the
streaming reduction and an aggregate-index sidecar to the result store.
This benchmark quantifies both halves of that trade:

* **Reducer overhead** — the same ensemble of per-scenario records is
  folded through the plain global :class:`StudyReducer` and through a
  :class:`SlicedReducer` slicing by hour-of-day (24 cells), recording
  wall-clock, per-record cost, and the parent-heap allocation peak
  (tracemalloc).  The global half of the sliced aggregate must be
  bit-identical to the unsliced one.
* **Compare latency** — two stored studies are diffed the pre-index way
  (load both full payloads, re-aggregate) and the indexed way
  (:meth:`ResultStore.compare`, which reads only the aggregate-index
  sidecars).  Both must produce identical aggregates, and the indexed
  path must keep working after the payload files are made unreadable —
  the proof that ``compare`` never touches them.

``GRIDMIND_E14_SCENARIOS`` scales the ensemble (the committed table was
recorded at 10 000, which is also the default — the records are
synthesised, so no power flow runs).
"""

from __future__ import annotations

import os
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.grid.cases import load_case
from repro.scenarios import (
    BatchStudyRunner,
    SlicedReducer,
    SliceSpec,
    StudyReducer,
    aggregate_study,
    daily_profile,
)
from repro.scenarios.runner import ScenarioResult, StudyResult
from repro.service.store import ResultStore

CASE = "ieee14"
N_SCENARIOS = int(os.environ.get("GRIDMIND_E14_SCENARIOS", "10000"))
SLICE_SPEC = SliceSpec(by=("hour_of_day",), max_values=32)


def _synth_results(scenarios) -> list[ScenarioResult]:
    """Deterministic per-scenario records shaped like a profile study."""
    out = []
    for i, s in enumerate(scenarios):
        hour = s.tags["hour_of_day"]
        out.append(
            ScenarioResult(
                name=s.name,
                tags=dict(s.tags),
                converged=True,
                objective_cost=7000.0 + 120.0 * hour + 0.01 * i,
                max_loading_percent=60.0 + 1.5 * hour + (i % 13) * 0.3,
                min_voltage_pu=1.01 - 0.0005 * hour,
                n_voltage_violations=1 if hour >= 18 else 0,
            )
        )
    return out


def _time_reduce(make_reducer, results):
    """Time one reduction untraced, then re-run it traced for heap peak.

    tracemalloc's per-allocation hook inflates wall time by an order of
    magnitude and skews allocation-heavy paths hardest, so the timing and
    the heap measurement use separate, fresh reducers over the same
    records (the reduction is deterministic, so both see identical work).
    """
    reducer = make_reducer()
    tick = time.perf_counter()
    reducer.add_many(results)
    agg = reducer.result()
    wall = time.perf_counter() - tick

    traced = make_reducer()
    tracemalloc.start()
    traced.add_many(results)
    traced.result()
    _, heap_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return agg, wall, heap_peak


def _put_study(store, net, runner, scenarios, results, label):
    study = StudyResult(
        case_name=net.name,
        analysis="powerflow",
        results=results,
        runtime_s=0.0,
        slice_spec=SLICE_SPEC,
    )
    return store.put(
        net, runner.config(), list(scenarios), study,
        study_kind="profile", label=label,
    )


def test_ablation_slicing(benchmark, tmp_path):
    net = load_case(CASE)
    scenarios_a = daily_profile(steps=N_SCENARIOS)
    scenarios_b = daily_profile(steps=N_SCENARIOS, trough=0.75)
    results_a = _synth_results(scenarios_a)
    results_b = _synth_results(scenarios_b)
    store = ResultStore(tmp_path / "store")
    runner = BatchStudyRunner(
        analysis="powerflow",
        slice_by=SLICE_SPEC.by,
        slice_max_values=SLICE_SPEC.max_values,
    )

    def _run_all():
        # Warm both code paths (bytecode/caches) before measuring.
        for make in (StudyReducer, lambda: SlicedReducer(SLICE_SPEC)):
            make().add_many(results_a[:500])
        plain_agg, plain_s, plain_heap = _time_reduce(StudyReducer, results_a)
        sliced_agg, sliced_s, sliced_heap = _time_reduce(
            lambda: SlicedReducer(SLICE_SPEC), results_a
        )
        key_a = _put_study(store, net, runner, scenarios_a, results_a, "day1")
        key_b = _put_study(store, net, runner, scenarios_b, results_b, "day2")

        # Pre-index comparison path: both full payloads parsed and
        # re-aggregated (what compare() did before the sidecars).
        tick = time.perf_counter()
        payload_aggs = [
            aggregate_study(
                store.load_result(k).results, slice_spec=SLICE_SPEC
            ).to_dict()
            for k in (key_a, key_b)
        ]
        payload_s = time.perf_counter() - tick

        # Indexed path: sidecars only.
        tick = time.perf_counter()
        cmp = store.compare(key_a, key_b)
        index_s = time.perf_counter() - tick
        return (
            (plain_agg, plain_s, plain_heap),
            (sliced_agg, sliced_s, sliced_heap),
            (payload_aggs, payload_s),
            (cmp, index_s),
            (key_a, key_b),
        )

    plain, sliced, payload_cmp, index_cmp, keys = benchmark.pedantic(
        _run_all, rounds=1, iterations=1
    )
    plain_agg, plain_s, plain_heap = plain
    sliced_agg, sliced_s, sliced_heap = sliced
    payload_aggs, payload_s = payload_cmp
    cmp, index_s = index_cmp

    # Acceptance: the sliced aggregate's global half is bit-identical to
    # the unsliced reduction; the indexed compare matches the payload
    # re-aggregation on both sides and reports per-hour slice deltas.
    sliced_dict = sliced_agg.to_dict()
    global_half = {k: v for k, v in sliced_dict.items() if k != "slices"}
    assert global_half == plain_agg.to_dict()
    assert sliced_dict["slices"]["hour_of_day"]["n_cells"] == 24
    assert cmp["aggregate_a"] == payload_aggs[0]
    assert cmp["aggregate_b"] == payload_aggs[1]
    assert len(cmp["delta"]["slices"]["hour_of_day"]) == 24

    # The indexed path must not need the payloads at all.
    for path in store.root.glob("*.json"):
        path.write_text("NOT JSON")
    cmp_again = store.compare(keys[0], keys[1])
    assert cmp_again["delta"] == cmp["delta"]

    per_plain = 1e6 * plain_s / N_SCENARIOS
    per_sliced = 1e6 * sliced_s / N_SCENARIOS
    widths = [30, -11, -11, -13, -14]
    lines = [
        fmt_row(
            ["Reduction", "scenarios", "time (s)", "us / record", "heap peak MB"],
            widths,
        ),
        "-" * 86,
        fmt_row(
            [
                "global reducer (unsliced)",
                N_SCENARIOS,
                round(plain_s, 3),
                round(per_plain, 2),
                round(plain_heap / 1e6, 2),
            ],
            widths,
        ),
        fmt_row(
            [
                "sliced reducer (24 cells)",
                N_SCENARIOS,
                round(sliced_s, 3),
                round(per_sliced, 2),
                round(sliced_heap / 1e6, 2),
            ],
            widths,
        ),
        "",
        fmt_row(["Compare path", "studies", "time (ms)", "", ""], widths),
        "-" * 86,
        fmt_row(
            ["payload re-aggregation", 2, round(1e3 * payload_s, 2), "", ""], widths
        ),
        fmt_row(
            ["aggregate-index sidecars", 2, round(1e3 * index_s, 2), "", ""], widths
        ),
        "",
        f"slicing overhead {sliced_s / max(plain_s, 1e-9):.2f}x on the reduction"
        f" | index compare {payload_s / max(index_s, 1e-9):.1f}x faster than payload"
        f" | global aggregate bit-identical sliced vs unsliced"
        f" | compare verified payload-free (payloads destroyed, indexes answered)"
        f" | {CASE}, {N_SCENARIOS}-step daily profile sliced by hour_of_day",
    ]
    emit(
        "ablation_slicing",
        "E14 — Sliced vs unsliced reduction; index vs payload compare "
        f"({N_SCENARIOS}-scenario daily profile)",
        lines,
    )
