"""Generator cost models for the OPF objective.

Costs are polynomial in MW (MATPOWER convention); the solver works in
per-unit, so evaluation applies the chain rule with the MVA base.  Only
convex polynomials make sense for the interior-point method — a validity
check is provided for the problem assembler.
"""

from __future__ import annotations

import numpy as np


class PolynomialCosts:
    """Vectorised evaluation of per-generator polynomial costs.

    ``coeffs[i]`` is highest-degree-first for generator ``i`` (any degree;
    quadratic in practice).  All methods take per-unit dispatch and return
    $/h quantities differentiated w.r.t. per-unit power.
    """

    def __init__(self, coeffs: list[tuple[float, ...]], base_mva: float) -> None:
        if base_mva <= 0:
            raise ValueError("base_mva must be positive")
        self.coeffs = [tuple(float(c) for c in cs) for cs in coeffs]
        self.base_mva = float(base_mva)
        self.n = len(self.coeffs)

    def cost(self, pg_pu: np.ndarray) -> float:
        """Total cost ($/h) at the given per-unit dispatch."""
        p_mw = np.asarray(pg_pu) * self.base_mva
        total = 0.0
        for i, cs in enumerate(self.coeffs):
            total += float(np.polyval(cs, p_mw[i]))
        return total

    def gradient(self, pg_pu: np.ndarray) -> np.ndarray:
        """d(cost)/d(pg_pu) — note the chain-rule factor of base MVA."""
        p_mw = np.asarray(pg_pu) * self.base_mva
        out = np.empty(self.n)
        for i, cs in enumerate(self.coeffs):
            out[i] = float(np.polyval(np.polyder(cs), p_mw[i])) * self.base_mva
        return out

    def hessian_diag(self, pg_pu: np.ndarray) -> np.ndarray:
        """d2(cost)/d(pg_pu)2 diagonal."""
        p_mw = np.asarray(pg_pu) * self.base_mva
        out = np.empty(self.n)
        for i, cs in enumerate(self.coeffs):
            if len(cs) >= 3:
                out[i] = float(np.polyval(np.polyder(cs, 2), p_mw[i])) * self.base_mva**2
            else:
                out[i] = 0.0
        return out

    def is_convex(self) -> bool:
        """True if every cost curve has non-negative curvature everywhere.

        For the quadratic costs used by all bundled cases this reduces to
        ``c2 >= 0``; higher-degree polynomials are rejected conservatively
        unless they are degree <= 2.
        """
        for cs in self.coeffs:
            if len(cs) > 3:
                return False
            if len(cs) == 3 and cs[0] < 0:
                return False
        return True

    def marginal_cost_mw(self, pg_pu: np.ndarray) -> np.ndarray:
        """d(cost)/d(P_MW) in $/MWh — what dispatch stacks compare."""
        return self.gradient(pg_pu) / self.base_mva
