"""OPF result containers shared by the PDIPM, scipy, and DC backends."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class OPFResult:
    """Outcome of an (AC/DC) optimal power flow solve.

    Physical units at this layer: MW / MVAr / $ / $/MWh.  ``lmp_mw`` are
    nodal prices recovered from the active-power balance multipliers;
    ``branch_mu`` are the flow-limit shadow prices (congestion rents).
    """

    converged: bool
    objective_cost: float  # $/h
    method: str
    iterations: int
    vm: np.ndarray  # (n_bus,) p.u.
    va_deg: np.ndarray
    pg_mw: np.ndarray  # (n_gen,) per compiled gen row
    qg_mvar: np.ndarray
    gen_ids: np.ndarray
    loading_percent: np.ndarray  # (n_branch,)
    s_from_mva: np.ndarray
    s_to_mva: np.ndarray
    branch_ids: np.ndarray
    losses_mw: float
    lmp_mw: np.ndarray  # (n_bus,) $/MWh
    branch_mu: np.ndarray  # (n_branch,) $/MVA-h equivalent shadow prices
    max_power_balance_mismatch_pu: float
    runtime_s: float = 0.0
    message: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def min_voltage_pu(self) -> float:
        return float(self.vm.min())

    @property
    def max_voltage_pu(self) -> float:
        return float(self.vm.max())

    @property
    def max_loading_percent(self) -> float:
        return float(self.loading_percent.max()) if self.loading_percent.size else 0.0

    @property
    def total_generation_mw(self) -> float:
        return float(self.pg_mw.sum())

    def binding_branches(self, slack_percent: float = 0.5) -> list[int]:
        """Branch ids whose loading is within ``slack_percent`` of 100 %."""
        rows = np.flatnonzero(self.loading_percent >= 100.0 - slack_percent)
        return [int(self.branch_ids[r]) for r in rows]

    def dispatch_by_bus(self) -> dict[int, float]:
        """Aggregate MW dispatch keyed by bus (for narration)."""
        out: dict[int, float] = {}
        for row, pg in enumerate(self.pg_mw):
            out[row] = float(pg)
        return out
