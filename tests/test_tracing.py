"""End-to-end tracing and metrics: spans, registry, exporters, propagation.

Covers the observability stack bottom-up: the shared :class:`RingLog`
buffer, the always-on :class:`MetricsRegistry` (counters, gauges,
fixed-bucket histograms, Prometheus text exposition, cross-process state
merge), the :class:`Tracer` (nesting, contextvar propagation, error
status, remote activation, adoption of worker spans), trace propagation
across every study execution path (serial, per-run pool, shared
executor) including the opt-in broken-pool retry, the store's ``.trace``
sidecar lifecycle, and the ``gridmind trace`` CLI renderer.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.instrumentation.metrics import (
    MetricsRegistry,
    get_metrics,
    render_prometheus,
    set_metrics,
    state_delta,
)
from repro.instrumentation.ringlog import RingLog
from repro.instrumentation.trace import (
    Span,
    Tracer,
    critical_path,
    current_trace_context,
    format_trace_report,
    get_tracer,
    render_trace,
    tracing,
    worker_trace,
)
from repro.scenarios import BatchStudyRunner, load_sweep
from repro.service import GridMindService
from repro.service.api import StudyRequest
from repro.service.executor import StudyExecutor
from repro.service.store import ResultStore, StudyNotFound


@pytest.fixture
def fresh_metrics():
    """Install a fresh registry process-wide; restore the previous one."""
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


# ----------------------------------------------------------------------
# RingLog: the shared bounded buffer under logs, tool calls, and spans
# ----------------------------------------------------------------------


class TestRingLog:
    def test_append_returns_monotone_seq(self):
        ring = RingLog(10)
        assert [ring.append(c) for c in "abc"] == [0, 1, 2]
        assert ring.count == 3
        assert list(ring) == ["a", "b", "c"]

    def test_eviction_preserves_seq_numbers(self):
        ring = RingLog(3)
        for i in range(5):
            ring.append(i)
        assert len(ring) == 3
        assert ring.count == 5  # total ever appended
        assert ring.first_seq == 2
        assert list(ring.pairs()) == [(2, 2), (3, 3), (4, 4)]
        assert ring.since(3) == [3, 4]  # inclusive cursor
        assert ring.since(0) == [2, 3, 4]  # evicted entries are gone

    def test_recap_preserves_history(self):
        ring = RingLog(10)
        for i in range(4):
            ring.append(i)
        recapped = RingLog(2, ring)
        assert list(recapped.pairs()) == [(2, 2), (3, 3)]
        assert recapped.count == 4
        assert recapped.append(4) == 4  # seq continues, not reset

    def test_dunder_surface(self):
        ring = RingLog(4)
        assert not ring
        ring.append("x")
        assert ring and len(ring) == 1 and ring[0] == "x" and ring[-1] == "x"
        ring.clear()
        assert not ring and ring.count == 1  # count survives clear


# ----------------------------------------------------------------------
# metrics registry + Prometheus exposition
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_labels_and_total(self, fresh_metrics):
        c = fresh_metrics.counter("requests_total", "Requests")
        c.inc(model="a")
        c.inc(2, model="b")
        c.inc(model="a")
        assert c.value(model="a") == 2.0
        assert c.value(model="b") == 2.0
        assert c.total() == 4.0

    def test_gauge_set_dec_and_set_max(self, fresh_metrics):
        g = fresh_metrics.gauge("in_flight", "In flight")
        g.set(3.0)
        g.dec()
        assert g.value() == 2.0
        g.set_max(10.0)
        g.set_max(4.0)  # lower: ignored
        assert g.value() == 10.0

    def test_histogram_buckets_and_sum(self, fresh_metrics):
        h = fresh_metrics.histogram("lat", "Latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.55)

    def test_prometheus_text_exposition(self, fresh_metrics):
        fresh_metrics.counter("hits_total", "Hits").inc(3, kind="tool")
        fresh_metrics.histogram("t", "T", buckets=(0.1, 1.0)).observe(0.5)
        text = render_prometheus(fresh_metrics)
        assert "# HELP hits_total Hits" in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{kind="tool"} 3' in text
        # Histogram buckets are cumulative and close with +Inf.
        assert 't_bucket{le="0.1"} 0' in text
        assert 't_bucket{le="1"} 1' in text
        assert 't_bucket{le="+Inf"} 1' in text
        assert "t_count 1" in text

    def test_label_values_escaped_in_exposition(self, fresh_metrics):
        # Session ids and case names flow into label values; the
        # exposition format requires backslash, quote, and newline
        # escapes or the scrape line is corrupt.
        c = fresh_metrics.counter("esc_total", "E")
        c.inc(name='say "hi"')
        c.inc(name="back\\slash")
        c.inc(name="two\nlines")
        text = render_prometheus(fresh_metrics)
        assert 'esc_total{name="say \\"hi\\""} 1' in text
        assert 'esc_total{name="back\\\\slash"} 1' in text
        assert 'esc_total{name="two\\nlines"} 1' in text
        # Every metric line stays a single physical line.
        for line in text.splitlines():
            if line.startswith("esc_total"):
                assert line.count('"') % 2 == 0

    def test_escaping_applies_to_histogram_extra_labels(self, fresh_metrics):
        h = fresh_metrics.histogram("esc_t", "T", buckets=(1.0,))
        h.observe(0.5, case='a"b')
        text = render_prometheus(fresh_metrics)
        assert 'esc_t_bucket{case="a\\"b",le="1"} 1' in text

    def test_same_name_returns_same_instrument(self, fresh_metrics):
        a = fresh_metrics.counter("x_total", "X")
        b = fresh_metrics.counter("x_total")
        assert a is b

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("x_total", "X")
        c.inc(5)  # no-op, no error
        state = registry.state()
        assert state.get("counters", {}) == {}
        assert state.get("histograms", {}) == {}
        assert registry.instruments() == []

    def test_state_merge_accumulates_worker_deltas(self, fresh_metrics):
        worker = MetricsRegistry()
        before = worker.state()
        worker.counter("solves_total", "S").inc(3, solver="newton")
        worker.histogram("iters", "I", buckets=(2.0, 8.0)).observe(5)
        delta = state_delta(worker.state(), before)
        fresh_metrics.merge_state(delta)
        fresh_metrics.merge_state(delta)  # two chunks from the same worker
        assert fresh_metrics.counter("solves_total").value(solver="newton") == 6.0
        assert fresh_metrics.histogram("iters", buckets=(2.0, 8.0)).count() == 2

    def test_state_delta_drops_unmoved_series(self, fresh_metrics):
        registry = MetricsRegistry()
        registry.counter("idle_total", "I").inc(0)
        before = registry.state()
        registry.counter("busy_total", "B").inc()
        delta = state_delta(registry.state(), before)
        assert "busy_total" in delta["counters"]
        assert "idle_total" not in delta["counters"]


# ----------------------------------------------------------------------
# tracer core: nesting, contextvars, remote activation, adoption
# ----------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_share_trace_and_link_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert current_trace_context() == (outer.trace_id, outer.span_id)
            with tracer.span("inner") as inner:
                pass
        assert current_trace_context() is None
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]
        assert all(s.duration_s >= 0.0 for s in tracer.spans())

    def test_sibling_roots_get_distinct_trace_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans()
        assert a.trace_id != b.trace_id

    def test_exception_marks_span_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("bad input")
        (span,) = tracer.spans()
        assert span.status == "error"
        assert "ValueError" in span.error and "bad input" in span.error

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x", tag=1) as span:
            assert current_trace_context() is None
            assert span.trace_id == ""
        assert tracer.spans() == []

    def test_activate_parents_under_remote_context(self):
        tracer = Tracer()
        with tracer.activate(("cafe01", "span01")):
            with tracer.span("child") as child:
                pass
        assert child.trace_id == "cafe01"
        assert child.parent_id == "span01"

    def test_adopt_stitches_dicts_into_buffer(self):
        tracer = Tracer()
        remote = [
            Span(name="w", trace_id="t1", span_id="s9", parent_id="s1").to_dict()
        ]
        assert tracer.adopt(remote) == 1
        assert tracer.adopt(None) == 0
        (span,) = tracer.spans("t1")
        assert isinstance(span, Span) and span.name == "w"

    def test_drain_dicts_exports_and_clears(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        dicts = tracer.drain_dicts()
        assert [d["name"] for d in dicts] == ["a"]
        assert tracer.spans() == []

    def test_span_dict_roundtrip(self):
        with Tracer().span("s", k="v") as span:
            pass
        back = Span.from_dict(span.to_dict())
        assert back.name == "s" and back.tags == {"k": "v"}
        assert back.trace_id == span.trace_id
        assert back.span_id == span.span_id
        assert json.dumps(span.to_dict())  # JSONL-safe

    def test_export_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert {d["name"] for d in lines} == {"a", "b"}

    def test_tracing_scope_installs_and_restores(self):
        before = get_tracer()
        with tracing() as tracer:
            assert get_tracer() is tracer and tracer.enabled
        assert get_tracer() is before

    def test_worker_trace_installs_private_tracer(self):
        before = get_tracer()
        with worker_trace(("t0", "s0")) as wt:
            assert get_tracer() is wt
            with wt.span("chunk") as chunk:
                pass
        assert get_tracer() is before
        assert chunk.trace_id == "t0" and chunk.parent_id == "s0"

    def test_worker_trace_without_context_is_disabled(self):
        with worker_trace(None) as wt:
            assert not wt.enabled
            with wt.span("chunk"):
                pass
        assert wt.spans() == []

    def test_default_process_tracer_is_disabled(self):
        assert not Tracer(enabled=False).enabled  # shape check
        # The ambient default records nothing unless explicitly installed.
        ambient = get_tracer()
        if not ambient.enabled:  # tolerate a test that installed one
            before = len(ambient.spans())
            with ambient.span("x"):
                pass
            assert len(ambient.spans()) == before


# ----------------------------------------------------------------------
# rendering: span tree + critical path
# ----------------------------------------------------------------------


def _synthetic_trace() -> list[Span]:
    mk = lambda name, sid, parent, start, dur, pid=1: Span(  # noqa: E731
        name=name, trace_id="t", span_id=sid, parent_id=parent,
        start_s=start, duration_s=dur, pid=pid,
    )
    return [
        mk("root", "r", None, 0.0, 1.0),
        mk("stage", "s", "r", 0.1, 0.8),
        mk("leaf", "l1", "s", 0.1, 0.3, pid=2),
        mk("leaf", "l2", "s", 0.5, 0.4, pid=3),
        mk("orphan", "o", "gone", 0.2, 0.1),  # parent evicted
    ]


class TestRendering:
    def test_tree_shape_and_orphan_promotion(self):
        text = render_trace(_synthetic_trace())
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  stage")
        assert lines[2].startswith("    leaf")
        # The orphan is attached at root level, not dropped.
        assert any(line.startswith("orphan") for line in lines)
        assert "1000.0ms" in lines[0]

    def test_sibling_collapse_keeps_slowest(self):
        spans = [Span(name="root", trace_id="t", span_id="r", duration_s=1.0)]
        for i in range(12):
            spans.append(Span(
                name=f"kid{i}", trace_id="t", span_id=f"k{i}", parent_id="r",
                start_s=float(i), duration_s=float(i),
            ))
        text = render_trace(spans, max_children=3)
        assert "... 9 more span(s)" in text
        assert "kid11" in text and "kid0" not in text

    def test_error_span_is_flagged(self):
        spans = [Span(name="bad", trace_id="t", span_id="b",
                      status="error", error="KeyError: 'x'")]
        assert "!error" in render_trace(spans)

    def test_critical_path_uses_self_time(self):
        rows = {r["name"]: r for r in critical_path(_synthetic_trace())}
        # stage: 0.8 total minus 0.7 of children = 0.1 self.
        assert rows["stage"]["self_s"] == pytest.approx(0.1)
        assert rows["leaf"]["self_s"] == pytest.approx(0.7)
        assert rows["leaf"]["count"] == 2
        assert rows["leaf"]["n_workers"] == 2
        assert sum(r["fraction"] for r in rows.values()) == pytest.approx(1.0, abs=0.01)

    def test_format_trace_report_combines_both(self):
        report = format_trace_report(_synthetic_trace())
        assert "critical path (self time by span name):" in report
        assert report.index("root") < report.index("critical path")

    def test_empty_trace(self):
        assert render_trace([]) == "(no spans)"
        assert critical_path([]) == []


# ----------------------------------------------------------------------
# propagation through the study execution paths (satellite: process pool)
# ----------------------------------------------------------------------

_LAYERS = {"study.run", "worker.chunk", "scenario.run", "solve.newton"}


def _traced_study(case, *, n_jobs=1, executor=None, n=4):
    scenarios = load_sweep(0.95, 1.05, n)
    # ac_mode="cold" pins the per-scenario solve path: these tests assert
    # the scenario/solver span plumbing the warm AC kernel (one
    # chunk.ac_batch span per group) deliberately bypasses.
    runner = BatchStudyRunner(
        analysis="powerflow", n_jobs=n_jobs, executor=executor, ac_mode="cold"
    )
    with tracing() as tracer:
        study = runner.run(case, scenarios)
    return study, tracer.spans()


def _by_name(spans):
    out = {}
    for s in spans:
        out.setdefault(s.name, []).append(s)
    return out


class TestStudyTracePropagation:
    def test_serial_study_traces_every_layer(self, case14):
        study, spans = _traced_study(case14)
        names = _by_name(spans)
        assert _LAYERS <= set(names)
        assert len({s.trace_id for s in spans}) == 1
        (dispatch,) = names["serial.dispatch"]
        (root,) = names["study.run"]
        assert dispatch.parent_id == root.span_id
        assert all(c.parent_id == dispatch.span_id for c in names["worker.chunk"])
        assert len(names["scenario.run"]) == study.n_scenarios
        assert root.tags["n_scenarios"] == 4

    def test_pooled_study_stitches_worker_spans(self, case14):
        study, spans = _traced_study(case14, n_jobs=2, n=4)
        names = _by_name(spans)
        assert _LAYERS <= set(names)
        assert len({s.trace_id for s in spans}) == 1
        (dispatch,) = names["pool.dispatch"]
        chunks = names["worker.chunk"]
        assert all(c.parent_id == dispatch.span_id for c in chunks)
        # The chunk spans really came from other processes.
        assert all(c.pid != os.getpid() for c in chunks)
        assert dispatch.pid == os.getpid()
        # Every scenario span parents under some adopted chunk span.
        chunk_ids = {c.span_id for c in chunks}
        assert all(
            s.parent_id in chunk_ids for s in names["scenario.run"]
        )
        assert len(names["scenario.run"]) == 4

    def test_executor_study_traces_across_shared_pool(self, case14):
        with StudyExecutor(max_workers=2) as executor:
            study, spans = _traced_study(case14, executor=executor, n=4)
        names = _by_name(spans)
        assert _LAYERS <= set(names)
        (dispatch,) = names["executor.dispatch"]
        chunks = names["worker.chunk"]
        assert all(c.parent_id == dispatch.span_id for c in chunks)
        assert all(c.pid != os.getpid() for c in chunks)
        assert len({s.trace_id for s in spans}) == 1

    def test_untraced_study_records_no_spans(self, case14):
        ambient = get_tracer()
        if ambient.enabled:
            pytest.skip("a tracer is installed process-wide")
        before = len(ambient.spans())
        _traced = BatchStudyRunner(analysis="powerflow").run(
            case14, load_sweep(0.98, 1.02, 2)
        )
        assert len(ambient.spans()) == before

    def test_progress_carries_chunk_wall_and_worker_pid(self, case14):
        events = []
        scenarios = load_sweep(0.95, 1.05, 4)
        with StudyExecutor(max_workers=2) as executor:
            BatchStudyRunner(analysis="powerflow", executor=executor).run(
                case14, scenarios, progress=events.append
            )
        assert events
        parent = os.getpid()
        for p in events:
            assert p.chunk_wall_s >= 0.0
            assert p.worker_pid > 0 and p.worker_pid != parent
            assert "chunk_wall_s" in p.to_dict()
            assert "worker_pid" in p.to_dict()

    def test_study_metrics_merge_from_workers(self, case14, fresh_metrics):
        with StudyExecutor(max_workers=2) as executor:
            BatchStudyRunner(
                analysis="powerflow", executor=executor, ac_mode="cold"
            ).run(case14, load_sweep(0.95, 1.05, 4))
        m = get_metrics()
        assert m.counter("gridmind_scenarios_total").total() == 4.0
        assert m.counter("gridmind_solver_invocations_total").total() == 4.0
        assert m.counter("gridmind_chunks_dispatched_total").total() >= 1.0
        assert m.counter("gridmind_studies_total").total() == 1.0
        assert m.histogram("gridmind_solver_seconds").count(solver="newton") == 4


class TestExecutorRetry:
    def test_broken_pool_retry_completes_study(self, case14):
        import signal

        scenarios = load_sweep(0.9, 1.1, 4)
        config = BatchStudyRunner(analysis="powerflow").config()
        with StudyExecutor(max_workers=1, retries=1) as executor:
            baseline = executor.run_study(case14, config, scenarios)
            (pid,) = executor.worker_pids
            os.kill(pid, signal.SIGKILL)
            # With a retry budget the study survives the dead worker:
            # the lost chunks are resubmitted, in order, on a new pool.
            results = executor.run_study(case14, config, scenarios)
            stats = executor.stats()
        assert [r.name for r in results] == [r.name for r in baseline]
        assert all(r.converged for r in results)
        assert stats["pools_started"] == 2
        assert stats["n_retried"] >= 1

    def test_default_retry_budget_is_zero(self):
        executor = StudyExecutor()
        assert executor.retries == 0
        assert executor.stats()["n_retried"] == 0

    def test_stats_surface_executor_lifecycle(self, case14):
        scenarios = load_sweep(0.9, 1.1, 4)
        config = BatchStudyRunner(analysis="powerflow").config()
        with StudyExecutor(max_workers=2) as executor:
            executor.run_study(case14, config, scenarios)
            stats = executor.stats()
            assert stats["alive"] is True
        assert stats["max_workers"] == 2
        assert stats["pools_started"] == 1
        assert stats["n_studies"] == 1
        assert stats["n_chunks"] >= 1
        assert stats["n_retried"] == 0
        assert 1 <= stats["max_in_flight"] <= 2 * 2  # capped by the window
        assert stats["n_worker_pids"] >= 1
        assert executor.stats()["alive"] is False  # after shutdown

    def test_in_flight_gauge_zero_after_sigkill_recovery(self, case14, fresh_metrics):
        import signal

        scenarios = load_sweep(0.9, 1.1, 4)
        config = BatchStudyRunner(analysis="powerflow").config()
        with StudyExecutor(max_workers=1, retries=1) as executor:
            executor.run_study(case14, config, scenarios)
            (pid,) = executor.worker_pids
            os.kill(pid, signal.SIGKILL)
            executor.run_study(case14, config, scenarios)
            stats = executor.stats()
        gauge = fresh_metrics.gauge("gridmind_executor_in_flight")
        # The finally block must release every slot even when chunks were
        # resubmitted on a replacement pool mid-study.
        assert gauge.value() == 0.0
        # Retries observed by stats() and by the metric counter agree.
        retried = fresh_metrics.counter("gridmind_chunks_retried_total").total()
        assert stats["n_retried"] >= 1
        assert retried == stats["n_retried"]


# ----------------------------------------------------------------------
# store sidecars + service end-to-end + CLI renderer
# ----------------------------------------------------------------------


class TestTraceSidecar:
    def _stored_study(self, store, case):
        scenarios = load_sweep(0.95, 1.05, 3)
        runner = BatchStudyRunner(analysis="powerflow")
        study = runner.run(case, scenarios)
        return store.put(case, runner.config(), scenarios, study)

    def test_put_and_load_roundtrip(self, tmp_path, case14):
        store = ResultStore(tmp_path)
        key = self._stored_study(store, case14)
        tracer = Tracer()
        with tracer.span("study.run"):
            with tracer.span("worker.chunk"):
                pass
        store.put_trace(key, tracer.spans())
        loaded = store.load_trace(key)
        assert [d["name"] for d in loaded] == ["worker.chunk", "study.run"]
        # Prefix refs resolve like every other store op.
        assert store.load_trace(key[:10]) == loaded

    def test_missing_sidecar_raises_study_not_found(self, tmp_path, case14):
        store = ResultStore(tmp_path)
        key = self._stored_study(store, case14)
        with pytest.raises(StudyNotFound, match="no trace sidecar"):
            store.load_trace(key)

    def test_delete_removes_sidecar(self, tmp_path, case14):
        store = ResultStore(tmp_path)
        key = self._stored_study(store, case14)
        store.put_trace(key, [Span(name="x", trace_id="t", span_id="s")])
        assert (tmp_path / f"{key}.trace").exists()
        store.prune(max_bytes=0)
        assert not (tmp_path / f"{key}.trace").exists()


class TestServiceTracing:
    def test_traced_service_exports_spans_spanning_layers(self, tmp_path):
        async def run():
            async with GridMindService(
                max_workers=2, store_dir=str(tmp_path), trace=True
            ) as svc:
                # ac_mode="cold": this test asserts the per-scenario span
                # layers the warm AC kernel deliberately collapses.
                reply = await svc.run_study(StudyRequest(
                    case_name="ieee14", kind="sweep", n_scenarios=4,
                    ac_mode="cold",
                ))
                ask = await svc.ask("a", "Solve the IEEE 14 bus case")
                spans = svc.tracer.spans()
                store = ResultStore(tmp_path)
                sidecar = store.load_trace(reply.study_key)
                return reply, ask, spans, sidecar

        reply, ask, spans, sidecar = asyncio.run(run())
        assert get_tracer() is not None and not get_tracer().enabled  # restored
        assert reply.trace_id
        names = {d["name"] for d in sidecar}
        # The acceptance bar: the exported trace spans >= 3 layers.
        assert {"service.run_study", "study.run", "worker.chunk",
                "scenario.run", "solve.newton"} <= names
        assert {d["trace_id"] for d in sidecar} == {reply.trace_id}
        # The conversational path traces too: session.turn under
        # service.ask, agent + tool spans below.
        by_name = _by_name(spans)
        (service_ask,) = by_name["service.ask"]
        (turn,) = by_name["session.turn"]
        assert turn.parent_id == service_ask.span_id
        assert any(n.startswith("agent.") for n in by_name)
        assert any(n.startswith("tool.") for n in by_name)

    def test_untraced_service_reply_has_no_trace_id(self, tmp_path):
        async def run():
            async with GridMindService(
                max_workers=1, store_dir=str(tmp_path)
            ) as svc:
                return await svc.run_study(StudyRequest(
                    case_name="ieee14", kind="sweep", n_scenarios=2,
                ))

        reply = asyncio.run(run())
        assert reply.trace_id is None
        with pytest.raises(StudyNotFound):
            ResultStore(tmp_path).load_trace(reply.study_key)

    def test_metrics_text_exposition(self, tmp_path, fresh_metrics):
        async def run():
            async with GridMindService(max_workers=1) as svc:
                await svc.ask("a", "Solve the IEEE 14 bus case")
                return svc.metrics_text()

        text = asyncio.run(run())
        assert "# TYPE gridmind_requests_total counter" in text
        assert 'gridmind_requests_total{model="gpt-5-mini",success="True"} 1' in text
        assert "gridmind_tool_calls_total" in text


class TestTraceCLI:
    def test_trace_subcommand_renders_store_sidecar(self, tmp_path, case14, capsys):
        from repro.core.cli import main

        store = ResultStore(tmp_path)
        scenarios = load_sweep(0.95, 1.05, 3)
        # ac_mode="cold": the rendered report asserts per-scenario spans.
        runner = BatchStudyRunner(analysis="powerflow", ac_mode="cold")
        with tracing() as tracer:
            with tracer.span("study.run"):
                study = runner.run(case14, scenarios)
        key = store.put(case14, runner.config(), scenarios, study)
        store.put_trace(key, tracer.spans())

        assert main(["trace", "--store", str(tmp_path)]) == 0  # latest
        out = capsys.readouterr().out
        assert "study.run" in out
        assert "serial.dispatch" in out
        assert "critical path (self time by span name):" in out

        assert main(["trace", key[:8], "--store", str(tmp_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert {d["name"] for d in data} >= {"study.run", "scenario.run"}

    def test_trace_subcommand_reads_raw_file(self, tmp_path, capsys):
        from repro.core.cli import main

        tracer = Tracer()
        with tracer.span("root"):
            pass
        path = tmp_path / "t.jsonl"
        tracer.export_jsonl(path)
        assert main(["trace", "--file", str(path)]) == 0
        assert "root" in capsys.readouterr().out

    def test_trace_subcommand_errors_cleanly(self, tmp_path, capsys):
        from repro.core.cli import main

        assert main(["trace", "nope", "--store", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err
        assert main(["trace"]) == 2  # neither --store nor --file

    def test_study_trace_flag_prints_report(self, capsys):
        from repro.core.cli import main

        rc = main([
            "study", "--case", "ieee14", "--kind", "sweep", "-n", "3",
            "--trace",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "[gridmind] trace" in err
        assert "study.run" in err
        assert "solve.newton" in err
        assert not get_tracer().enabled  # scoped install was restored
