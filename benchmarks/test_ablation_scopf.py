"""E10 — Ablation: economic vs security-constrained operation.

Paper Appendix B.4 lists "comparative studies (economic vs.
security-constrained operation)" as a supported workflow.  This bench
prices N-1 security on the 30-bus system across relief levels (relief =
allowed short-term emergency loading after an outage).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.grid.cases import load_case
from repro.opf import solve_scopf

RELIEFS = (1.15, 1.25, 1.4)


def _run():
    rows = []
    for relief in RELIEFS:
        res = solve_scopf(load_case("ieee30"), relief=relief)
        rows.append(
            {
                "relief": relief,
                "economic": res.economic_cost,
                "secured": res.opf.objective_cost,
                "premium": res.security_cost,
                "violations": res.violations_history,
                "cuts": len(res.constraints),
                "unattainable": len(res.unattainable),
                "converged": res.converged,
            }
        )
    return rows


def test_ablation_scopf(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    widths = [-8, -12, -12, -10, -6, -14, 20]
    lines = [
        fmt_row(
            ["relief", "econ $/h", "secured $/h", "premium", "cuts",
             "unattainable", "violations trace"],
            widths,
        ),
        "-" * 92,
    ]
    for r in rows:
        lines.append(
            fmt_row(
                [f"{r['relief']:.2f}", f"{r['economic']:.0f}",
                 f"{r['secured']:.0f}", f"{r['premium']:.0f}", r["cuts"],
                 r["unattainable"], str(r["violations"])],
                widths,
            )
        )
    lines.append("")
    lines.append(
        "premium = $/h paid to pre-position dispatch against N-1 overloads; "
        "unattainable pairs need remedial action, not redispatch."
    )
    emit("ablation_scopf", "E10 — economic vs security-constrained dispatch", lines)

    for r in rows:
        assert r["converged"]
        assert r["premium"] >= -1e-6
        assert r["violations"][-1] <= r["violations"][0]
    # Stricter security costs at least as much.
    premiums = [r["premium"] for r in rows]
    assert premiums[0] >= premiums[-1] - 1e-6