"""ResultStore: content-addressed, on-disk persistence of study results.

A batch study used to live only inside one session's
``AgentContext.study_summary`` — an aggregate, in memory, gone when the
process exits.  The store persists the *full per-scenario result set*
under a content-hash key::

    <network content hash>-<spec hash>

where the network hash covers the base operating point (loads, topology,
dispatch, limits) and the spec hash covers the study definition (analysis
config plus every scenario's perturbation records and tags).  The key is
therefore deterministic: re-running an identical study addresses the same
entry, while any change to the base case or the scenario family produces
a new one.  Any session — including a brand-new one — can list entries,
reload the exact :class:`~repro.scenarios.runner.ScenarioResult` records,
and answer "compare today's sweep with yesterday's".

Files are one JSON document per study (``<key>.json`` under the store
root), written atomically via a temp-file rename.  JSON round-trips
Python floats exactly (shortest-repr encoding), so a reloaded result set
is bit-identical to what the runner produced — a property the test suite
asserts.

Each study also gets a compact **aggregate-index sidecar**
(``<key>.index``): the full (possibly tag-sliced) ensemble aggregate
plus a small worst-scenario slice and the results checksum.  Aggregate
questions — :meth:`ResultStore.compare`, :meth:`latest_summary` —
answer from indexes alone, so their cost scales with the study *count*,
never the stored per-scenario result bytes; a missing or unreadable
index is rebuilt from the payload on demand, and :meth:`verify` reports
missing/stale indexes (optionally rebuilding them).
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from ..contingency.cache import network_content_hash
from ..grid.network import Network
from ..instrumentation.metrics import get_metrics
from ..scenarios.aggregate import (
    DEFAULT_SLICE_MAX_VALUES,
    SliceSpec,
    aggregate_study,
)
from ..scenarios.runner import ScenarioResult, StudyConfig, StudyResult
from ..scenarios.spec import Scenario

FORMAT = "gridmind-study-v1"
INDEX_FORMAT = "gridmind-study-index-v1"


def slice_spec_from_config(config: dict | None) -> SliceSpec:
    """Reconstruct a study's :class:`SliceSpec` from its stored config.

    Pre-slicing payloads have no ``slice_by`` entry and fall back to the
    empty spec, so old stores index (and re-aggregate) exactly as before.
    """
    config = config or {}
    return SliceSpec(
        by=tuple(config.get("slice_by") or ()),
        max_values=int(config.get("slice_max_values") or DEFAULT_SLICE_MAX_VALUES),
    )


class StudyNotFound(KeyError):
    """No stored study matches the requested key/label."""


def _results_digest(results: list[dict]) -> str:
    """Checksum of the serialised result records (for :meth:`verify`)."""
    blob = json.dumps(results, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=8).hexdigest()


def spec_hash(config: StudyConfig, scenarios: list[Scenario]) -> str:
    """Deterministic digest of a study definition (config + scenarios).

    The slice declaration (``slice_by``/``slice_max_values``) is
    excluded: it shapes the derived aggregate index, never the
    per-scenario results, so re-running the same physics with a
    different slicing overwrites one entry (the index sidecar is
    refreshed with the new slices) instead of duplicating a multi-MB
    payload — and keys minted before slicing existed keep matching.
    ``batch_kernels`` is excluded for the same reason: the batched and
    scalar paths produce bit-identical records, so toggling the fast
    path must not mint a second store entry.  ``ac_mode``/``ac_fd_sweeps``
    are excluded likewise — the warm AC path's parity contract makes the
    two modes the same study.  (``ac_budget`` stays hashed: it changes
    which outages get AC-verified, i.e. the results themselves.)
    """
    excluded = ("batch_kernels", "ac_mode", "ac_fd_sweeps")
    canon = {
        "config": {
            k: v
            for k, v in dataclasses.asdict(config).items()
            if not k.startswith("slice_") and k not in excluded
        },
        "scenarios": [
            {
                "name": s.name,
                "tags": s.tags,
                "perturbations": [
                    {"kind": type(p).__name__, **dataclasses.asdict(p)}
                    for p in s.perturbations
                ],
            }
            for s in scenarios
        ],
    }
    blob = json.dumps(canon, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=8).hexdigest()


@dataclass(frozen=True)
class StoredStudyMeta:
    """Directory entry for one persisted study."""

    key: str
    case_name: str
    analysis: str
    study_kind: str
    label: str
    created_at: float
    n_scenarios: int
    n_jobs: int
    runtime_s: float

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["created_at_iso"] = time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.localtime(self.created_at)
        )
        return out


class ResultStore:
    """Directory-backed store of full per-scenario study result sets."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # keys and paths
    # ------------------------------------------------------------------
    def key_for(
        self, base: Network, config: StudyConfig, scenarios: list[Scenario]
    ) -> str:
        return f"{network_content_hash(base)}-{spec_hash(config, scenarios)}"

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _meta_path(self, key: str) -> Path:
        # Deliberately not *.json so directory listings can glob payloads
        # and sidecars separately.
        return self.root / f"{key}.meta"

    def _index_path(self, key: str) -> Path:
        return self.root / f"{key}.index"

    def _trace_path(self, key: str) -> Path:
        # JSON-lines span export (one span dict per line), written by
        # :meth:`put_trace` for traced studies; see
        # :mod:`repro.instrumentation.trace`.
        return self.root / f"{key}.trace"

    def _write_atomic(self, path: Path, text: str) -> None:
        """Write via a unique temp file + rename: concurrent puts of the
        same study (identical content-hash key) must not fight over one
        temp name, and readers never see partial files."""
        fd, tmp = tempfile.mkstemp(
            prefix=f".{path.name}.", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    # write
    # ------------------------------------------------------------------
    def put(
        self,
        base: Network,
        config: StudyConfig,
        scenarios: list[Scenario],
        study: StudyResult,
        *,
        study_kind: str = "",
        label: str = "",
    ) -> str:
        """Persist a full study result set; returns its content-hash key."""
        if study.n_scenarios and not study.results:
            raise ValueError(
                "study holds no per-scenario records (streamed with "
                "keep_results=False); re-run with keep_results=True to persist"
            )
        # One expansion of the (possibly lazy) stream for both the key
        # and the payload — counted against the study so a consumed
        # one-shot generator (which would silently hash as an *empty*
        # spec and collide every study onto one key) is rejected.
        scenarios = list(scenarios)
        if len(scenarios) != study.n_scenarios:
            raise ValueError(
                f"scenario stream yields {len(scenarios)} scenarios but the "
                f"study ran {study.n_scenarios} — pass the same re-iterable "
                "family (a ScenarioStream or list), not a consumed iterator"
            )
        net_hash = network_content_hash(base)
        sp_hash = spec_hash(config, scenarios)
        key = f"{net_hash}-{sp_hash}"
        meta = StoredStudyMeta(
            key=key,
            case_name=study.case_name,
            analysis=study.analysis,
            study_kind=study_kind,
            label=label,
            created_at=time.time(),
            n_scenarios=study.n_scenarios,
            n_jobs=study.n_jobs,
            runtime_s=study.runtime_s,
        )
        records = [dataclasses.asdict(r) for r in study.results]
        digest = _results_digest(records)
        payload = {
            "format": FORMAT,
            **dataclasses.asdict(meta),
            "network_hash": net_hash,
            "spec_hash": sp_hash,
            "config": dataclasses.asdict(config),
            "results_digest": digest,
            "results": records,
        }
        self._write_atomic(self._path(key), json.dumps(payload, default=str))
        # Aggregate-index sidecar: the (possibly sliced) ensemble
        # aggregate plus a small worst-scenario slice, checksummed
        # against the payload records — what compare/latest_summary read
        # instead of the payload.  Written after the payload so an index
        # never points at a missing one.
        self._write_index(
            key, self._index_doc(key, study.aggregate().to_dict(), study.worst(5), digest)
        )
        # Sidecar metadata keeps directory listings O(studies), not
        # O(total stored result bytes).
        self._write_atomic(
            self._meta_path(key), json.dumps(dataclasses.asdict(meta))
        )
        metrics = get_metrics()
        metrics.counter("gridmind_store_puts_total", "Studies persisted").inc()
        metrics.counter(
            "gridmind_store_bytes_written_total", "Bytes written to the store"
        ).inc(self._entry_bytes(key))
        return key

    # ------------------------------------------------------------------
    # trace sidecars
    # ------------------------------------------------------------------
    def put_trace(self, key: str, spans: list) -> Path:
        """Persist a study's trace as a JSON-lines ``<key>.trace`` sidecar.

        ``spans`` are :class:`~repro.instrumentation.trace.Span` objects
        or their dicts.  The sidecar lives alongside the study payload
        under the same content-hash key, so ``gridmind trace <ref>`` can
        resolve it through the usual key/prefix/label forms; it is
        removed with the entry on :meth:`prune`.
        """
        lines = []
        for span in spans:
            data = span.to_dict() if hasattr(span, "to_dict") else span
            lines.append(json.dumps(data, default=str))
        path = self._trace_path(self.resolve(key))
        self._write_atomic(path, "\n".join(lines) + ("\n" if lines else ""))
        get_metrics().counter(
            "gridmind_store_traces_total", "Trace sidecars persisted"
        ).inc()
        return path

    def load_trace(self, ref: str) -> list[dict]:
        """Parsed span dicts for a stored study's trace sidecar."""
        key = self.resolve(ref)
        path = self._trace_path(key)
        if not path.exists():
            raise StudyNotFound(
                f"study {key} has no trace sidecar (was it run with --trace?)"
            )
        return [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]

    # ------------------------------------------------------------------
    # health snapshot sidecar
    # ------------------------------------------------------------------
    #: Max JSONL lines retained in the health sidecar before rotation
    #: (at the service's 5 s sampling default: ~5.7 h of trend).
    HEALTH_SNAPSHOT_CAP = 4096

    def _health_path(self) -> Path:
        # Store-wide (not per-study): the health trend describes the
        # *service* over this store, so one ``health-snapshots.jsonl``
        # file — its name can never collide with a content-hash key.
        return self.root / "health-snapshots.jsonl"

    def append_health_snapshot(self, snapshot: dict) -> Path:
        """Append one metrics snapshot to the store's health sidecar.

        The sidecar is the persistence half of
        :class:`~repro.instrumentation.rollup.MetricsSampler`: trends
        survive restarts, and ``gridmind health`` / ``gridmind top``
        evaluate from it without embedding the service.  When the file
        exceeds :attr:`HEALTH_SNAPSHOT_CAP` lines it is rotated in place
        to its newest half (atomically, so concurrent readers always see
        a complete file).
        """
        path = self._health_path()
        line = json.dumps(snapshot, default=str)
        with open(path, "a") as fh:
            fh.write(line + "\n")
        try:
            with open(path) as fh:
                lines = fh.read().splitlines()
        except OSError:
            return path
        if len(lines) > self.HEALTH_SNAPSHOT_CAP:
            keep = lines[-(self.HEALTH_SNAPSHOT_CAP // 2):]
            self._write_atomic(path, "\n".join(keep) + "\n")
        return path

    def load_health_snapshots(self, limit: int | None = None) -> list[dict]:
        """Parsed snapshot dicts from the health sidecar, oldest first.

        ``limit`` keeps only the newest N.  Unparseable lines (a crash
        mid-append on a non-atomic write) are skipped, not fatal — the
        sidecar is an operational trail, not a ledger.
        """
        path = self._health_path()
        if not path.exists():
            return []
        snaps: list[dict] = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                snaps.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        if limit is not None:
            snaps = snaps[-limit:]
        return snaps

    @staticmethod
    def _index_doc(
        key: str, aggregate: dict, worst: list[ScenarioResult], digest: str
    ) -> dict:
        """The one place the index document's shape is defined — both
        :meth:`put` and the rebuild path compose it here, so a rebuilt
        index is identical to a put-written one by construction."""
        return {
            "format": INDEX_FORMAT,
            "key": key,
            "results_digest": digest,
            "aggregate": aggregate,
            "worst_scenarios": [r.to_dict() for r in worst],
        }

    def _write_index(self, key: str, index: dict) -> dict:
        self._write_atomic(self._index_path(key), json.dumps(index, default=str))
        return index

    # ------------------------------------------------------------------
    # read
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict:
        """Raw stored payload for ``key`` (resolves label/prefix refs)."""
        path = self._path(key)
        if not path.exists():
            key = self.resolve(key)
            path = self._path(key)
        payload = json.loads(path.read_text())
        if payload.get("format") != FORMAT:
            raise ValueError(f"{path}: not a {FORMAT} file")
        metrics = get_metrics()
        metrics.counter("gridmind_store_hits_total", "Stored-study payload reads").inc()
        metrics.counter(
            "gridmind_store_bytes_read_total", "Bytes read from the store"
        ).inc(path.stat().st_size)
        return payload

    def load_result(self, key: str) -> StudyResult:
        """Reconstruct the full :class:`StudyResult` for ``key``."""
        payload = self.get(key)
        results = [ScenarioResult(**r) for r in payload["results"]]
        slice_spec = slice_spec_from_config(payload.get("config"))
        return StudyResult(
            case_name=payload["case_name"],
            analysis=payload["analysis"],
            results=results,
            runtime_s=payload["runtime_s"],
            n_jobs=payload["n_jobs"],
            slice_spec=slice_spec if slice_spec.by else None,
        )

    # ------------------------------------------------------------------
    # aggregate indexes
    # ------------------------------------------------------------------
    def _read_index(self, key: str) -> dict | None:
        """The raw index sidecar for ``key``, or ``None`` if unusable."""
        path = self._index_path(key)
        try:
            index = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if index.get("format") != INDEX_FORMAT or index.get("key") != key:
            return None
        if not isinstance(index.get("aggregate"), dict):
            return None
        return index

    def _compute_index(self, key: str, payload: dict | None = None) -> dict:
        """Recompute one study's index document from its payload (no I/O
        beyond reading the payload).

        The only path that touches the full payload: the aggregate is
        re-sliced with the spec the payload's config declares, so a
        recomputed index is identical to the one :meth:`put` wrote.
        """
        payload = payload if payload is not None else self.get(key)
        results = [ScenarioResult(**r) for r in payload.get("results", [])]
        aggregate = aggregate_study(
            results, slice_spec=slice_spec_from_config(payload.get("config"))
        ).to_dict()
        worst = sorted(results, key=lambda r: -r.max_loading_percent)[:5]
        digest = payload.get("results_digest") or _results_digest(
            payload.get("results", [])
        )
        return self._index_doc(key, aggregate, worst, digest)

    def rebuild_index(self, key: str, payload: dict | None = None) -> dict:
        """Recompute and persist one study's index sidecar (raises when
        the store directory is not writable — :meth:`verify` wants that
        surfaced, the read paths below use the best-effort variant)."""
        return self._write_index(key, self._compute_index(key, payload))

    def _index_or_rebuild(self, key: str) -> dict:
        """The index for ``key``; a missing/unreadable sidecar is
        recomputed in memory and written back best-effort, so read-only
        paths (:meth:`compare`, :meth:`latest_summary`) keep answering on
        stores this process cannot write to."""
        index = self._read_index(key)
        if index is None:
            index = self._compute_index(key)
            with contextlib.suppress(OSError):
                self._write_index(key, index)
        return index

    def aggregate_index(self, ref: str) -> dict:
        """The aggregate index for ``ref`` (key/prefix/label), rebuilding
        from the payload only when the sidecar is missing or unreadable."""
        return self._index_or_rebuild(self.resolve(ref))

    @staticmethod
    def _meta_from(payload: dict) -> StoredStudyMeta:
        return StoredStudyMeta(
            key=payload["key"],
            case_name=payload.get("case_name", ""),
            analysis=payload.get("analysis", ""),
            study_kind=payload.get("study_kind", ""),
            label=payload.get("label", ""),
            created_at=float(payload.get("created_at", 0.0)),
            n_scenarios=int(payload.get("n_scenarios", 0)),
            n_jobs=int(payload.get("n_jobs", 1)),
            runtime_s=float(payload.get("runtime_s", 0.0)),
        )

    def list_studies(self) -> list[StoredStudyMeta]:
        """All stored studies, oldest first by creation time.

        Reads the per-study ``.meta`` sidecars, so listing cost scales
        with the study count, not the stored result bytes; payloads
        missing a sidecar (older stores, interrupted writes) fall back
        to a full parse.
        """
        entries = []
        for path in self.root.glob("*.json"):
            key = path.stem
            meta_path = self._meta_path(key)
            payload = None
            if meta_path.exists():
                try:
                    payload = json.loads(meta_path.read_text())
                except (OSError, json.JSONDecodeError):
                    payload = None
            if payload is None:
                try:
                    payload = json.loads(path.read_text())
                except (OSError, json.JSONDecodeError):
                    continue
                if payload.get("format") != FORMAT:
                    continue
            try:
                entries.append(self._meta_from(payload))
            except (KeyError, TypeError, ValueError):
                continue
        entries.sort(key=lambda m: (m.created_at, m.key))
        return entries

    def __len__(self) -> int:
        return len(self.list_studies())

    def resolve(self, ref: str, entries: list[StoredStudyMeta] | None = None) -> str:
        """Turn a key, unique key prefix, or label into a concrete key.

        ``entries`` lets callers that already hold a directory listing
        avoid a second store scan.
        """
        if entries is None:
            entries = self.list_studies()
        by_key = [m.key for m in entries if m.key == ref]
        if by_key:
            return by_key[0]
        by_prefix = [m.key for m in entries if m.key.startswith(ref)] if ref else []
        if len(by_prefix) == 1:
            return by_prefix[0]
        # Labels may repeat (e.g. a nightly sweep): newest wins.
        by_label = [m.key for m in entries if m.label and m.label == ref]
        if by_label:
            return by_label[-1]
        raise StudyNotFound(
            f"no stored study matches {ref!r} "
            f"({len(entries)} studies in {self.root})"
        )

    def latest_summary(self) -> dict | None:
        """Agent-shaped summary of the newest stored study (or ``None``).

        The payload mirrors what the study tools deposit into
        ``AgentContext.study_summary``, so a fresh session can answer
        study-status questions from disk alone — served entirely from
        the meta + aggregate-index sidecars, never the full result set.
        """
        entries = self.list_studies()
        if not entries:
            return None
        meta = entries[-1]
        index = self._index_or_rebuild(meta.key)
        return {
            "case_name": meta.case_name,
            "analysis": meta.analysis,
            "n_scenarios": meta.n_scenarios,
            "n_jobs": meta.n_jobs,
            "runtime_s": round(meta.runtime_s, 3),
            "aggregate": index["aggregate"],
            "worst_scenarios": (index.get("worst_scenarios") or [])[:5],
            "study_kind": meta.study_kind,
            "study_key": meta.key,
            "source": "result_store",
        }

    # ------------------------------------------------------------------
    # lifecycle: retention and integrity
    # ------------------------------------------------------------------
    def _entry_bytes(self, key: str) -> int:
        """On-disk footprint of one study (payload + all sidecars)."""
        size = 0
        for path in (
            self._path(key),
            self._meta_path(key),
            self._index_path(key),
            self._trace_path(key),
        ):
            try:
                size += path.stat().st_size
            except OSError:
                pass
        return size

    def _delete(self, key: str) -> None:
        for path in (
            self._path(key),
            self._meta_path(key),
            self._index_path(key),
            self._trace_path(key),
        ):
            with contextlib.suppress(OSError):
                path.unlink()

    def prune(
        self,
        *,
        max_age_s: float | None = None,
        max_bytes: int | None = None,
        now: float | None = None,
    ) -> dict:
        """Apply retention policy: drop old studies, then cap total bytes.

        ``max_age_s`` removes every study older than that; ``max_bytes``
        then evicts oldest-first until the remaining payloads (plus
        sidecars) fit.  Content-hash keys make pruning safe: re-running
        an identical study simply recreates its entry.  Returns a report
        of what was removed and what remains.
        """
        entries = self.list_studies()  # oldest first
        removed: list[str] = []
        kept = list(entries)
        if max_age_s is not None:
            cutoff = (now if now is not None else time.time()) - max_age_s
            stale = [m for m in kept if m.created_at < cutoff]
            removed.extend(m.key for m in stale)
            kept = [m for m in kept if m.created_at >= cutoff]
        if max_bytes is not None:
            sizes = {m.key: self._entry_bytes(m.key) for m in kept}
            total = sum(sizes.values())
            while kept and total > max_bytes:
                oldest = kept.pop(0)
                total -= sizes[oldest.key]
                removed.append(oldest.key)
        for key in removed:
            self._delete(key)
        return {
            "n_removed": len(removed),
            "removed": removed,
            "n_kept": len(kept),
            "bytes_kept": sum(self._entry_bytes(m.key) for m in kept),
        }

    def verify(self, *, rebuild_indexes: bool = False) -> dict:
        """Integrity-check every stored study against its content-hash key.

        Checks, per payload: parseable JSON in the current format, the
        filename key matching the stored ``network_hash``/``spec_hash``
        pair, the result-record checksum (when present — older stores
        predate it), record-count consistency, and that every record
        reconstructs as a :class:`ScenarioResult`.  Sidecars pointing at
        missing payloads are reported as orphans (and are safe to prune).

        Aggregate-index sidecars are verified too: a missing, unreadable,
        or stale index (its ``results_digest`` no longer matching the
        payload's records) is reported under ``index_issues`` — and
        rebuilt from the payload when ``rebuild_indexes=True``, so a
        verify pass can bring an old or damaged store back to
        index-served comparisons.
        """
        ok: list[str] = []
        corrupt: list[dict] = []
        index_issues: list[dict] = []
        n_rebuilt = 0
        for path in sorted(self.root.glob("*.json")):
            key = path.stem
            try:
                payload = json.loads(path.read_text())
                if payload.get("format") != FORMAT:
                    raise ValueError(f"not a {FORMAT} payload")
                stored_key = (
                    f"{payload.get('network_hash', '')}-{payload.get('spec_hash', '')}"
                )
                if stored_key != key:
                    raise ValueError(
                        f"content-hash mismatch: file {key}, payload {stored_key}"
                    )
                records = payload.get("results", [])
                if payload.get("n_scenarios") != len(records):
                    raise ValueError(
                        f"record count {len(records)} != n_scenarios "
                        f"{payload.get('n_scenarios')}"
                    )
                digest = payload.get("results_digest")
                if digest is not None and digest != _results_digest(records):
                    raise ValueError("results checksum mismatch")
                for r in records:
                    ScenarioResult(**r)
            except (OSError, json.JSONDecodeError, TypeError, ValueError) as exc:
                corrupt.append({"key": key, "error": str(exc)})
                continue
            ok.append(key)
            issue = self._index_issue(key, payload)
            if issue is not None:
                if rebuild_indexes:
                    self.rebuild_index(key, payload)
                    issue["rebuilt"] = True
                    n_rebuilt += 1
                index_issues.append(issue)
        payload_keys = {p.stem for p in self.root.glob("*.json")}
        orphans = sorted(
            p.stem for p in self.root.glob("*.meta") if p.stem not in payload_keys
        )
        orphan_indexes = sorted(
            p.stem for p in self.root.glob("*.index") if p.stem not in payload_keys
        )
        return {
            "n_studies": len(ok) + len(corrupt),
            "n_ok": len(ok),
            "ok": ok,
            "corrupt": corrupt,
            "orphan_sidecars": orphans,
            "orphan_indexes": orphan_indexes,
            "index_issues": index_issues,
            "n_indexes_rebuilt": n_rebuilt,
        }

    def _index_issue(self, key: str, payload: dict) -> dict | None:
        """Classify one study's index sidecar problem (``None`` = healthy)."""
        if not self._index_path(key).exists():
            return {"key": key, "issue": "missing_index"}
        index = self._read_index(key)
        if index is None:
            return {"key": key, "issue": "corrupt_index"}
        # Pre-digest payloads (older stores) carry no results_digest;
        # compare against one recomputed from the records so their
        # rebuilt indexes verify as healthy instead of stale forever.
        expected = payload.get("results_digest") or _results_digest(
            payload.get("results", [])
        )
        if index.get("results_digest") != expected:
            return {"key": key, "issue": "stale_index"}
        return None

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    @staticmethod
    def _slice_delta(agg_a: dict, agg_b: dict) -> dict:
        """Per-cell deltas for every slice dimension both studies share.

        Cells are matched by tag value; values present on only one side
        are skipped (a shorter sweep simply compares where it overlaps).
        """
        out: dict = {}
        slices_a = agg_a.get("slices") or {}
        for dim, block_b in (agg_b.get("slices") or {}).items():
            block_a = slices_a.get(dim)
            if not block_a:
                continue
            cells_a = {c["value"]: c for c in block_a.get("cells", [])}
            rows = []
            for cell_b in block_b.get("cells", []):
                cell_a = cells_a.get(cell_b["value"])
                if cell_a is None:
                    continue
                row = {
                    "value": cell_b["value"],
                    "violation_rate": round(
                        cell_b["violation_rate"] - cell_a["violation_rate"], 4
                    ),
                }
                ca, cb = cell_a.get("cost_stats"), cell_b.get("cost_stats")
                if ca and cb:
                    row["cost_p50"] = round(cb["p50"] - ca["p50"], 4)
                la, lb = cell_a.get("loading_stats"), cell_b.get("loading_stats")
                if la and lb:
                    row["loading_max"] = round(lb["max"] - la["max"], 4)
                rows.append(row)
            if rows:
                out[dim] = rows
        return out

    def compare(self, ref_a: str | None = None, ref_b: str | None = None) -> dict:
        """Diff two stored studies' ensemble aggregates.

        With refs omitted, compares the two most recent studies (``a`` =
        older, ``b`` = newer) — the "today's sweep vs yesterday's" path.
        Both sides are read from the aggregate-index sidecars (rebuilt
        on demand when absent), so comparing two 10k-scenario studies
        never loads a per-scenario payload.  Studies sliced over a
        shared dimension additionally report per-cell deltas
        (``delta["slices"]``) — "how did cost-vs-hour move overnight".
        """
        entries = self.list_studies()
        if ref_a is None or ref_b is None:
            if len(entries) < 2:
                raise StudyNotFound(
                    f"need two stored studies to compare, have {len(entries)}"
                )
            ref_a = ref_a or entries[-2].key
            ref_b = ref_b or entries[-1].key
        key_a = self.resolve(ref_a, entries)
        key_b = self.resolve(ref_b, entries)
        meta = {m.key: m for m in entries}
        agg_a = self._index_or_rebuild(key_a)["aggregate"]
        agg_b = self._index_or_rebuild(key_b)["aggregate"]

        delta: dict = {}
        for rate in ("violation_rate", "overload_rate", "voltage_violation_rate"):
            delta[rate] = round(agg_b[rate] - agg_a[rate], 4)
        for stats_key, fields in (
            ("cost_stats", ("p50", "p95", "max")),
            ("loading_stats", ("p50", "max")),
            ("min_voltage_stats", ("min",)),
        ):
            sa, sb = agg_a.get(stats_key), agg_b.get(stats_key)
            if sa and sb:
                delta[stats_key] = {
                    f: round(sb[f] - sa[f], 4) for f in fields
                }
        slice_delta = self._slice_delta(agg_a, agg_b)
        if slice_delta:
            delta["slices"] = slice_delta

        freq_a = {int(k) for k in (agg_a.get("branch_overload_freq") or {})}
        freq_b = {int(k) for k in (agg_b.get("branch_overload_freq") or {})}
        return {
            "a": meta[key_a].to_dict() if key_a in meta else {"key": key_a},
            "b": meta[key_b].to_dict() if key_b in meta else {"key": key_b},
            "aggregate_a": agg_a,
            "aggregate_b": agg_b,
            "delta": delta,
            "newly_overloaded_branches": sorted(freq_b - freq_a),
            "cleared_branches": sorted(freq_a - freq_b),
            "same_base_network": key_a.split("-")[0] == key_b.split("-")[0],
        }
