"""The watch engine: fleet -> feed -> rolling windows -> health -> alerts.

One synchronous loop shared by every watch front end (the ``gridmind
watch`` CLI, the service's ``WatchRequest`` surface, and the study
agent's watch tool): drive the telemetry stream tick by tick, evaluate
each tick's operating point through the same worker-state code path
batch studies use, fold the result into the rolling-window study, and —
on every closed window — publish the rollup to the metrics registry,
take a simulated-clock sampler snapshot, and let the health monitor turn
it into edge-triggered alerts.

Determinism: with ``pace="simulated"`` everything the loop touches is a
pure function of (network, fleet spec, window spec) — per-device seeds,
per-tick solves, reducer folds, and sampler timestamps (simulated
seconds, ``end_tick * interval_s``, never the wall clock).  Two runs with
the same inputs produce bit-identical per-window aggregates (asserted
via :func:`~repro.telemetry.window.windows_digest`) and the same alert
sequence.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from ..grid.network import Network
from ..instrumentation.health import AlertEvent, HealthMonitor, HealthRule
from ..instrumentation.metrics import get_metrics
from ..instrumentation.rollup import MetricsSampler
from ..instrumentation.trace import get_tracer
from ..scenarios.aggregate import DEFAULT_SLICE_MAX_VALUES
from ..scenarios.runner import StudyConfig, _WorkerState
from .feed import DEFAULT_SPEEDUP, PACE_SIMULATED, TelemetryStream
from .fleet import DEFAULT_INTERVAL_S, AnomalySpec, DeviceFleet, FleetSpec
from .window import (
    DEFAULT_WINDOW_SLICES,
    RollingWindowStudy,
    WindowResult,
    WindowSpec,
    telemetry_rules,
    windows_digest,
)


def run_watch(
    net: Network,
    *,
    n_devices: int,
    n_ticks: int,
    window_ticks: int,
    slide_ticks: int | None = None,
    seed: int = 0,
    interval_s: float = DEFAULT_INTERVAL_S,
    sigma: float = 0.02,
    der_fraction: float = 0.25,
    anomaly: AnomalySpec | None = None,
    analysis: str = "powerflow",
    slice_by: Sequence[str] = DEFAULT_WINDOW_SLICES,
    max_values: int = DEFAULT_SLICE_MAX_VALUES,
    pace: str = PACE_SIMULATED,
    speedup: float = DEFAULT_SPEEDUP,
    rules: Sequence[HealthRule] | None = None,
    on_window: Callable[[dict], None] | None = None,
) -> dict:
    """Run a bounded watch and return its full, JSON-ready outcome.

    ``on_window`` (optional) receives one dict per closed window *as it
    closes* — the window's aggregate plus the alert events it triggered
    — which is how the CLI and service stream summaries live.  The
    return value repeats every window (with alerts attached), the alert
    log, and a digest over the pure window aggregates for determinism
    checks.
    """
    fleet_spec = FleetSpec(
        n_devices=n_devices,
        seed=seed,
        interval_s=interval_s,
        sigma=sigma,
        der_fraction=der_fraction,
        anomalies=(anomaly,) if anomaly is not None else (),
    )
    fleet = DeviceFleet(net, fleet_spec)
    stream = TelemetryStream(fleet, n_ticks, pace=pace, speedup=speedup)
    window_spec = WindowSpec(
        size_ticks=window_ticks,
        slide_ticks=slide_ticks,
        slice_by=tuple(slice_by),
        max_values=max_values,
    )
    study = RollingWindowStudy(window_spec)
    state = _WorkerState(net, StudyConfig(analysis=analysis))

    registry = get_metrics()
    # A dedicated sampler/monitor pair on simulated time: the service's
    # wall-clock sampler keeps its own cadence, while alert evaluation
    # here must be a pure function of the feed for replay determinism.
    sampler = MetricsSampler(interval_s=max(interval_s, 1e-6), max_samples=720)
    monitor = HealthMonitor(rules=tuple(rules) if rules is not None else tuple(telemetry_rules()))

    frames_counter = registry.counter(
        "gridmind_telemetry_frames_total", "Telemetry frames ingested, by device kind"
    )
    anomaly_frames = registry.counter(
        "gridmind_telemetry_anomaly_frames_total", "Telemetry frames carrying an injected anomaly"
    )
    ticks_counter = registry.counter(
        "gridmind_telemetry_ticks_total", "Telemetry ticks evaluated"
    )
    results_counter = registry.counter(
        "gridmind_telemetry_results_total", "Tick results offered to the rolling windows"
    )
    late_counter = registry.counter(
        "gridmind_telemetry_late_results_total",
        "Tick results arriving too late for any open window",
    )
    windows_counter = registry.counter(
        "gridmind_telemetry_windows_total", "Rolling windows closed"
    )
    violation_gauge = registry.gauge(
        "gridmind_telemetry_window_violation_rate",
        "Latest closed window's violation rate",
    )
    anomaly_gauge = registry.gauge(
        "gridmind_telemetry_window_anomaly_rate",
        "Latest closed window's anomalous-tick rate",
    )
    open_gauge = registry.gauge(
        "gridmind_telemetry_open_windows", "Rolling windows currently open"
    )

    windows: list[dict] = []
    pure_windows: list[WindowResult] = []
    alerts: list[AlertEvent] = []
    last_seq = -1
    n_frames = 0
    n_anomaly_frames = 0
    late_before = 0

    def close_window(window: WindowResult) -> None:
        nonlocal last_seq, late_before
        windows_counter.inc()
        violation_gauge.set(window.violation_rate)
        anomaly_gauge.set(window.anomaly_rate)
        open_gauge.set(study.n_open)
        new_late = study.n_late_dropped - late_before
        if new_late:
            late_counter.inc(new_late)
            late_before = study.n_late_dropped
        sim_now = window.end_tick * interval_s
        sampler.sample(now=sim_now)
        report = monitor.evaluate(sampler, now=sim_now)
        events = monitor.alerts(last_seq)
        if events:
            last_seq = events[-1].seq
        alerts.extend(events)
        pure_windows.append(window)
        update = window.to_dict()
        update["status"] = report.status
        update["alerts"] = [e.to_dict() for e in events]
        windows.append(update)
        if on_window is not None:
            on_window(update)

    start = time.perf_counter()
    with get_tracer().span(
        "telemetry.watch", case=net.name, n_devices=n_devices, n_ticks=n_ticks
    ):
        for tick, frames in stream.tick_batches():
            ticks_counter.inc()
            for frame in frames:
                frames_counter.inc(kind=frame.kind)
                if frame.anomaly:
                    anomaly_frames.inc(kind=frame.anomaly)
                    n_anomaly_frames += 1
            n_frames += len(frames)
            scenario = stream.scenario_for_tick(tick, frames)
            result = state.run_scenario(scenario)
            results_counter.inc()
            for closed in study.add(result):
                close_window(closed)
        for closed in study.finalize():
            close_window(closed)

    return {
        "case_name": net.name,
        "analysis": analysis,
        "n_devices": n_devices,
        "n_ticks": n_ticks,
        "n_frames": n_frames,
        "n_anomaly_frames": n_anomaly_frames,
        "interval_s": interval_s,
        "window_ticks": window_spec.size_ticks,
        "slide_ticks": window_spec.slide_ticks,
        "slice_by": list(window_spec.slice_by),
        "n_windows": len(windows),
        "windows": windows,
        "alerts": [e.to_dict() for e in alerts],
        "n_alerts": len(alerts),
        "n_late_dropped": study.n_late_dropped,
        "peak_open_windows": study.peak_open_windows,
        "digest": windows_digest(pure_windows),
        "anomaly": anomaly.to_dict() if anomaly is not None else None,
        "status": windows[-1]["status"] if windows else "ok",
        "runtime_s": round(time.perf_counter() - start, 3),
    }
