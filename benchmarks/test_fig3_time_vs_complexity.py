"""E3 — Figure 3 (right): execution time vs case complexity.

Paper: across IEEE 14/30/57/118/300 there is "no significant trend" of
total time with case size — LLM latency dominates, and only the solver
share grows with the network.  The harness solves each case once per
model and decomposes total time into LLM latency and solver compute.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.core.session import GridMindSession

CASES = ("ieee14", "ieee30", "ieee57", "ieee118", "ieee300")


def _sweep(paper_models):
    rows = []
    for case in CASES:
        for model in paper_models:
            session = GridMindSession(model=model, seed=5)
            session.ask(f"Solve {case}")
            rec = session.last_record
            rows.append(
                {
                    "case": case,
                    "model": model,
                    "total_s": rec.total_s,
                    "llm_s": rec.latency_virtual_s,
                    "solver_s": rec.wall_s,
                    "success": rec.success,
                }
            )
    return rows


def test_fig3_right_time_vs_complexity(benchmark, paper_models):
    rows = benchmark.pedantic(_sweep, args=(paper_models,), rounds=1, iterations=1)

    widths = [10, 18, -9, -9, -10]
    lines = [
        fmt_row(["Case", "Model", "total s", "llm s", "solver s"], widths),
        "-" * 64,
    ]
    for r in rows:
        lines.append(
            fmt_row(
                [r["case"], r["model"], r["total_s"], r["llm_s"], r["solver_s"]],
                widths,
            )
        )

    # Trend statistic: correlation of total time with case size per model
    # should be weak (LLM-dominated), while solver time clearly grows.
    sizes = {c: int(c.replace("ieee", "")) for c in CASES}
    lines.append("")
    for model in paper_models:
        sub = [r for r in rows if r["model"] == model]
        x = np.array([sizes[r["case"]] for r in sub], dtype=float)
        total = np.array([r["total_s"] for r in sub])
        share = np.array([r["solver_s"] for r in sub]) / total
        corr = float(np.corrcoef(x, total)[0, 1])
        lines.append(
            f"  {model:18s} corr(size, total time) = {corr:+.2f}; "
            f"solver share {share.min()*100:.0f}%..{share.max()*100:.0f}%"
        )
    emit(
        "fig3_right_time_vs_complexity",
        "Fig. 3 (right) — execution time vs case complexity",
        lines,
    )

    assert all(r["success"] for r in rows)
    # Paper shape: solver compute is a minority share of total time even
    # on the 300-bus system for the slower models.
    slow = [r for r in rows if r["model"] == "gpt-5" and r["case"] == "ieee300"]
    assert slow[0]["solver_s"] < 0.5 * slow[0]["total_s"]
