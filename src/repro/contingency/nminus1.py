"""Full AC N-1 contingency sweep.

For every in-service branch: detach it, decide islanding from the
topology (bridges are precomputed once), otherwise re-solve the AC power
flow warm-started from the base voltages, and record violations.  The
sweep can fan out across processes (``n_jobs``) — each worker gets a
pickled copy of the network and a chunk of branch ids, the classic
embarrassingly-parallel HPC pattern for this workload.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..grid import graph as gridgraph
from ..grid.network import Network
from ..powerflow.newton import solve_newton
from ..powerflow.solution import PowerFlowResult
from .outcomes import ContingencyOutcome


@dataclass
class NMinus1Report:
    """Everything one sweep produced, plus bookkeeping for the agents."""

    case_name: str
    base: PowerFlowResult
    outcomes: list[ContingencyOutcome]
    runtime_s: float
    n_jobs: int = 1
    vmin: float = 0.94
    vmax: float = 1.06
    extras: dict = field(default_factory=dict)

    @property
    def n_contingencies(self) -> int:
        return len(self.outcomes)

    @property
    def n_violations(self) -> int:
        return sum(1 for o in self.outcomes if o.has_violations)

    @property
    def max_overload_percent(self) -> float:
        """Worst post-contingency loading across the whole sweep."""
        vals = [o.max_loading_percent for o in self.outcomes if o.converged and not o.islanded]
        return max(vals) if vals else 0.0

    def worst(self, n: int = 5) -> list[ContingencyOutcome]:
        return sorted(self.outcomes, key=lambda o: -o.severity())[:n]


def run_n_minus_1(
    net: Network,
    *,
    branch_ids: list[int] | None = None,
    vmin: float = 0.94,
    vmax: float = 1.06,
    overload_threshold: float = 100.0,
    n_jobs: int = 1,
    base_result: PowerFlowResult | None = None,
    kernel=None,
) -> NMinus1Report:
    """Sweep single-branch outages and report post-contingency stress.

    ``branch_ids`` restricts the sweep (used by DC screening); by default
    every in-service branch is outaged once.  The input network is left
    untouched — all work happens on copies.  ``kernel`` accepts an
    :class:`~repro.powerflow.ac_batch.AcKernel` for the same topology:
    its cached base solve then seeds the sweep (no fresh base Newton run)
    and its voltage warm-starts every outage solve, which is what makes
    repeated sweeps over one operating point cheap.
    """
    start = time.perf_counter()
    work = net.copy()

    if base_result is None and kernel is not None:
        base_result = kernel.base_result()
    base = base_result or solve_newton(work)
    if not base.converged:
        raise ValueError(
            "base case power flow does not converge; fix the operating "
            "point before running contingency analysis"
        )
    v_base = base.extras.get("v_complex")

    candidates = branch_ids if branch_ids is not None else work.in_service_branch_ids()
    bridges = gridgraph.bridge_branches(work)

    if n_jobs <= 1 or len(candidates) < 8:
        outcomes = _sweep_chunk(work, candidates, bridges, v_base, vmin, vmax, overload_threshold)
        jobs = 1
    else:
        jobs = min(n_jobs, os.cpu_count() or 1, len(candidates))
        chunks = [list(c) for c in np.array_split(np.array(candidates), jobs)]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            parts = pool.map(
                _sweep_chunk_star,
                [
                    (work, chunk, bridges, v_base, vmin, vmax, overload_threshold)
                    for chunk in chunks
                    if chunk
                ],
            )
            outcomes = [o for part in parts for o in part]
        outcomes.sort(key=lambda o: o.branch_id)

    return NMinus1Report(
        case_name=net.metadata.case_name,
        base=base,
        outcomes=outcomes,
        runtime_s=time.perf_counter() - start,
        n_jobs=jobs,
        vmin=vmin,
        vmax=vmax,
    )


def _sweep_chunk_star(args) -> list[ContingencyOutcome]:
    return _sweep_chunk(*args)


def _sweep_chunk(
    net: Network,
    branch_ids: list[int],
    bridges: set[int],
    v_base: np.ndarray | None,
    vmin: float,
    vmax: float,
    overload_threshold: float,
) -> list[ContingencyOutcome]:
    outcomes = []
    for bid in branch_ids:
        outcomes.append(
            analyze_single_outage(
                net,
                int(bid),
                bridges=bridges,
                v_base=v_base,
                vmin=vmin,
                vmax=vmax,
                overload_threshold=overload_threshold,
            )
        )
    return outcomes


def analyze_single_outage(
    net: Network,
    branch_id: int,
    *,
    bridges: set[int] | None = None,
    v_base: np.ndarray | None = None,
    vmin: float = 0.94,
    vmax: float = 1.06,
    overload_threshold: float = 100.0,
) -> ContingencyOutcome:
    """Evaluate one branch outage.  Mutates ``net`` only transiently."""
    br = net.branches[branch_id]
    if not br.in_service:
        raise ValueError(f"branch {branch_id} is already out of service")
    tick = time.perf_counter()

    is_bridge = (
        branch_id in bridges
        if bridges is not None
        else not gridgraph.is_connected(net, {branch_id})
    )
    if is_bridge:
        stranded = gridgraph.stranded_load_mw(net, {branch_id})
        return ContingencyOutcome(
            branch_id=branch_id,
            branch_name=br.name,
            from_bus=br.from_bus,
            to_bus=br.to_bus,
            is_transformer=br.is_transformer,
            converged=False,
            islanded=True,
            stranded_load_mw=stranded,
            solve_time_s=time.perf_counter() - tick,
            message="outage splits the network",
        )

    net.set_branch_status(branch_id, False)
    try:
        res = solve_newton(net, v0=v_base, max_iter=25)
        if not res.converged:
            # The paper's recovery behaviour: fall back through alternative
            # algorithms before declaring the contingency non-convergent.
            # The base voltage threads through every rung that takes one.
            from ..powerflow.recovery import solve_with_recovery

            res, _ = solve_with_recovery(net, tol=1e-6, v0=v_base)
    finally:
        net.set_branch_status(branch_id, True)

    if not res.converged:
        return ContingencyOutcome(
            branch_id=branch_id,
            branch_name=br.name,
            from_bus=br.from_bus,
            to_bus=br.to_bus,
            is_transformer=br.is_transformer,
            converged=False,
            solve_time_s=time.perf_counter() - tick,
            message=res.message,
        )

    overloads = res.overloaded_branches(overload_threshold)
    violations = res.voltage_violations(vmin, vmax)
    # Curtailment exposure: MW-equivalent of flow above each rating —
    # the redispatch/shed proxy the paper's CA agent narrates with.
    curtailment = 0.0
    arr = net.compile()
    rate_by_id = {int(b): float(r) for b, r in zip(arr.branch_ids, arr.rate_a * arr.base_mva)}
    for bid2, pct in overloads:
        rate = rate_by_id.get(bid2, 0.0)
        curtailment += max(0.0, (pct - 100.0) / 100.0) * rate

    return ContingencyOutcome(
        branch_id=branch_id,
        branch_name=br.name,
        from_bus=br.from_bus,
        to_bus=br.to_bus,
        is_transformer=br.is_transformer,
        converged=True,
        max_loading_percent=res.max_loading_percent,
        overloads=overloads,
        min_voltage_pu=res.min_voltage_pu,
        max_voltage_pu=res.max_voltage_pu,
        voltage_violations=violations,
        estimated_curtailment_mw=curtailment,
        solve_time_s=time.perf_counter() - tick,
        method=res.method,
        message=res.message,
    )
