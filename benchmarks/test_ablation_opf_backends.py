"""E7 — Ablation: OPF solver backends.

DESIGN.md's recovery ladder rests on the backends agreeing where they
overlap and on the PDIPM being the fast path.  Compares the MIPS-style
interior point, the scipy trust-constr fallback (small cases — it is
orders of magnitude slower), and the DCOPF LP baseline.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.grid.cases import load_case
from repro.opf import solve_acopf, solve_acopf_scipy, solve_dcopf

CASES_IPM = ("ieee14", "ieee30", "ieee57", "ieee118", "ieee300")
CASES_SCIPY = ("ieee14",)  # trust-constr is O(minutes) beyond ~30 buses


def _run_backends():
    rows = []
    for name in CASES_IPM:
        net = load_case(name)
        t0 = time.perf_counter()
        ipm = solve_acopf(net)
        t_ipm = time.perf_counter() - t0

        t0 = time.perf_counter()
        dc = solve_dcopf(net)
        t_dc = time.perf_counter() - t0

        row = {
            "case": name,
            "ipm_obj": ipm.objective_cost,
            "ipm_s": t_ipm,
            "ipm_ok": ipm.converged,
            "dc_obj": dc.objective_cost,
            "dc_s": t_dc,
            "dc_ok": dc.converged,
            "scipy_obj": None,
            "scipy_s": None,
        }
        if name in CASES_SCIPY:
            t0 = time.perf_counter()
            sp = solve_acopf_scipy(net)
            row["scipy_obj"] = sp.objective_cost
            row["scipy_s"] = time.perf_counter() - t0
            row["scipy_ok"] = sp.converged
        rows.append(row)
    return rows


def test_ablation_opf_backends(benchmark):
    rows = benchmark.pedantic(_run_backends, rounds=1, iterations=1)

    widths = [10, -12, -7, -12, -7, -12, -7]
    lines = [
        fmt_row(["Case", "IPM $/h", "s", "DCOPF $/h", "s", "scipy $/h", "s"], widths),
        "-" * 72,
    ]
    for r in rows:
        lines.append(
            fmt_row(
                [
                    r["case"],
                    f"{r['ipm_obj']:.0f}",
                    r["ipm_s"],
                    f"{r['dc_obj']:.0f}",
                    r["dc_s"],
                    f"{r['scipy_obj']:.0f}" if r["scipy_obj"] else "-",
                    r["scipy_s"] if r["scipy_s"] else "-",
                ],
                widths,
            )
        )
    emit("ablation_opf_backends", "E7 — OPF backend comparison", lines)

    for r in rows:
        assert r["ipm_ok"] and r["dc_ok"]
        # Lossless DC is cheaper but in the same ballpark (<15 % gap).
        assert r["dc_obj"] < r["ipm_obj"]
        assert r["dc_obj"] > 0.8 * r["ipm_obj"]
    # Cross-backend agreement on the genuine IEEE 14 data.
    r14 = rows[0]
    assert abs(r14["scipy_obj"] - r14["ipm_obj"]) / r14["ipm_obj"] < 1e-3
