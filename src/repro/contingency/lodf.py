"""PTDF / LODF sensitivity matrices for fast DC contingency screening.

Power Transfer Distribution Factors map bus injections to branch flows in
the DC model; Line Outage Distribution Factors map a branch's pre-outage
flow to the flow picked up by every other branch when it trips.  Both are
dense (n_branch x n_bus / n_branch x n_branch) but computed with one
sparse factorisation and BLAS-level matrix products — the fully
vectorised screening path (no per-outage loop at all).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.network import Network, NetworkArrays
from ..powerflow.batch import DcKernel

#: |1 - M_kk| below this means outaging k islands the system (radial line).
_ISLANDING_TOL = 1e-8


@dataclass(frozen=True)
class SensitivityFactors:
    """PTDF/LODF bundle for one network topology."""

    ptdf: np.ndarray  # (n_branch, n_bus), slack column(s) zero
    lodf: np.ndarray  # (n_branch, n_branch); column k = outage of k
    islanding_outages: np.ndarray  # branch rows whose outage islands the grid
    branch_ids: np.ndarray
    ref_bus: int


def compute_ptdf(arr: NetworkArrays, *, kernel: DcKernel | None = None) -> np.ndarray:
    """PTDF matrix w.r.t. the slack bus (dense).

    ``kernel`` reuses an existing factorization of this topology
    (:class:`~repro.powerflow.batch.DcKernel`); by default one is built —
    either way the LU that solves power flows is the LU that produces
    sensitivities, never a second ``splu`` + dense round trip.
    """
    return (kernel or DcKernel(arr)).ptdf()


def compute_factors(
    net: Network, *, kernel: DcKernel | None = None
) -> SensitivityFactors:
    """Compute PTDF and LODF for the current in-service topology."""
    arr = net.compile()
    ptdf = compute_ptdf(arr, kernel=kernel)

    # M[l, k] = flow change on l per MW transferred f_k -> t_k.
    m = ptdf[:, arr.f_bus] - ptdf[:, arr.t_bus]
    denom = 1.0 - np.diag(m)
    islanding = np.flatnonzero(np.abs(denom) < _ISLANDING_TOL)

    with np.errstate(divide="ignore", invalid="ignore"):
        lodf = m / denom[np.newaxis, :]
    lodf[:, islanding] = 0.0
    np.fill_diagonal(lodf, -1.0)

    return SensitivityFactors(
        ptdf=ptdf,
        lodf=lodf,
        islanding_outages=arr.branch_ids[islanding],
        branch_ids=arr.branch_ids.copy(),
        ref_bus=int(arr.slack_buses[0]),
    )


def post_outage_flows(
    factors: SensitivityFactors, base_flow_mw: np.ndarray
) -> np.ndarray:
    """All post-outage DC flows at once.

    Returns F of shape (n_branch, n_branch) where ``F[l, k]`` is the flow
    on branch ``l`` after outaging branch ``k``:
    ``F = f0[:,None] + LODF * f0[None,:]`` — one vectorised outer update.
    Columns for islanding outages are meaningless and should be masked by
    the caller using ``factors.islanding_outages``.
    """
    f0 = np.asarray(base_flow_mw, dtype=float)
    post = f0[:, np.newaxis] + factors.lodf * f0[np.newaxis, :]
    # The outaged branch itself carries nothing.
    np.fill_diagonal(post, 0.0)
    return post
