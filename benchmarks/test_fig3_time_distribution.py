"""E2 — Figure 3 (middle): execution-time distribution by model.

Paper: case118 solved 5 times per model; o4-mini under 10 s, GPT-5 /
Claude / the GPT-5 family substantially slower due to reasoning latency.
Times here are virtual-LLM latency + real solver wall time (DESIGN.md
"latency realism").  The reproduction claim is the *ordering* and rough
magnitudes, not exact seconds.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.core.session import GridMindSession

RUNS = 5

# Approximate per-model total-time bands read off the paper's Fig. 3
# (middle panel), seconds.
PAPER_BANDS = {
    "gpt-5": (50.0, 85.0),
    "gpt-5-mini": (30.0, 60.0),
    "gpt-5-nano": (25.0, 60.0),
    "gpt-o4-mini": (3.0, 12.0),
    "gpt-o3": (12.0, 30.0),
    "claude-4-sonnet": (40.0, 75.0),
}


def _distributions(paper_models) -> dict[str, np.ndarray]:
    out = {}
    for model in paper_models:
        times = []
        for run in range(RUNS):
            session = GridMindSession(model=model, seed=100 + run)
            session.ask("Solve IEEE 118")
            times.append(session.last_record.total_s)
        out[model] = np.array(times)
    return out


def test_fig3_middle_time_distribution(benchmark, paper_models):
    dists = benchmark.pedantic(_distributions, args=(paper_models,), rounds=1, iterations=1)

    widths = [18, -16, -8, -8, -8]
    lines = [
        fmt_row(["Model", "Paper band (s)", "min", "median", "max"], widths),
        "-" * 66,
    ]
    for model in paper_models:
        t = dists[model]
        lo, hi = PAPER_BANDS[model]
        lines.append(
            fmt_row(
                [model, f"{lo:.0f}-{hi:.0f}", float(t.min()),
                 float(np.median(t)), float(t.max())],
                widths,
            )
        )
    emit(
        "fig3_middle_time_distribution",
        "Fig. 3 (middle) — execution-time distribution by model (case118, 5 runs)",
        lines,
    )

    # Shape assertions: o4-mini fastest, GPT-5 slowest (paper ordering).
    medians = {m: float(np.median(t)) for m, t in dists.items()}
    assert medians["gpt-o4-mini"] == min(medians.values())
    assert medians["gpt-5"] == max(medians.values())
    # o4-mini's median lands under ~12 s as in the paper.
    assert medians["gpt-o4-mini"] < 12.0
