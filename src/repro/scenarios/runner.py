"""BatchStudyRunner: execute a scenario stream against one analysis engine.

Each scenario realises a fresh network copy and runs one of six
analyses: AC power flow, linear DC screening, DCOPF, ACOPF, two-stage
contingency screening, or preventive SCOPF.  Scenarios are independent,
so the runner fans chunks out over a ``concurrent.futures`` process
pool; every worker is initialised once with the pickled base network and
then amortises the expensive shared state across all scenarios it
processes:

* the compiled DC kernels and PTDF/LODF sensitivity factors, keyed by an
  electrical-topology digest (load-only perturbations reuse one
  factorisation for the whole ensemble), and
* the composite-key contingency cache, so identical (content, outage)
  evaluations are never repeated within a worker.

Chunks, not scenarios, are the worker's unit of work: injection-only
chunks of the linear analyses route through the batched physics kernels
(:mod:`repro.powerflow.batch`) — one stacked multi-RHS solve per chunk,
bit-identical to the scalar loop — while mixed or topology-changing
chunks degrade gracefully to per-scenario evaluation.

Results are plain-data :class:`ScenarioResult` records — cheap to pickle
back — and the chunked dispatch preserves scenario order, so serial,
parallel, and streamed runs aggregate identically (a property the test
suite asserts).

The execution pipeline is *streaming*: chunks are drawn lazily from the
scenario stream, at most a bounded window of chunks is in flight at once
(backpressure against the pool), and completed chunks are folded straight
into an online :class:`~repro.scenarios.aggregate.StudyReducer` plus a
capped worst-K heap instead of accumulating every result.  ``run(...,
keep_results=True)`` (the default) still materialises the full result
list for persistence and bit-identical determinism checks; large
ensembles opt out and hold O(window x chunk + K) results at peak.
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from ..instrumentation.accounting import record_chunk, record_study
from ..instrumentation.metrics import (
    ITERATION_BUCKETS,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    state_delta,
)
from ..instrumentation.trace import current_trace_context, get_tracer, worker_trace
from ..contingency.cache import ContingencyCache
from ..contingency.lodf import SensitivityFactors, compute_factors
from ..contingency.nminus1 import NMinus1Report, analyze_single_outage
from ..contingency.ranking import rank_critical_elements
from ..contingency.screening import screen_dc, screen_dc_many
from ..grid import graph as gridgraph
from ..grid.network import Network
from ..powerflow.ac_batch import AcKernel
from ..powerflow.batch import DcKernel, topology_digest
from .aggregate import (
    DEFAULT_SLICE_MAX_VALUES,
    SlicedReducer,
    SliceSpec,
    StudyAggregate,
    aggregate_study,
)
from .spec import Scenario, ScenarioError
from .stream import as_stream, stream_length

ANALYSES = ("powerflow", "dc", "dcopf", "acopf", "screening", "scopf")

#: Chunk-size ceiling (also the size used when the stream's length is
#: unknown).  The ~4-chunks-per-worker split is capped here so the
#: in-flight window's worst-case resident results stay O(window x
#: constant) however large the ensemble — an uncapped split would make
#: chunk (and therefore streamed peak memory) scale with n.
DEFAULT_STREAM_CHUNK = 32

#: Default cap on the worst-scenario heap a streamed study retains.
DEFAULT_WORST_K = 20


@dataclass
class ScenarioResult:
    """Per-scenario outcome, reduced to picklable plain data."""

    name: str
    tags: dict
    converged: bool
    objective_cost: float | None = None
    max_loading_percent: float = 0.0
    min_voltage_pu: float | None = None
    max_voltage_pu: float | None = None
    losses_mw: float | None = None
    overloaded_branches: list[int] = field(default_factory=list)
    n_voltage_violations: int = 0
    critical_branches: list[int] | None = None
    n_contingency_violations: int | None = None
    security_cost: float | None = None  # SCOPF premium over economic dispatch
    solve_time_s: float = 0.0
    error: str = ""

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "converged": self.converged,
            "max_loading_percent": round(self.max_loading_percent, 2),
        }
        if self.objective_cost is not None:
            out["objective_cost"] = round(self.objective_cost, 2)
        if self.min_voltage_pu is not None:
            out["min_voltage_pu"] = round(self.min_voltage_pu, 4)
        if self.overloaded_branches:
            out["overloaded_branches"] = list(self.overloaded_branches)
        if self.critical_branches is not None:
            out["critical_branches"] = list(self.critical_branches)
        if self.n_contingency_violations is not None:
            out["n_contingency_violations"] = self.n_contingency_violations
        if self.security_cost is not None:
            out["security_cost"] = round(self.security_cost, 2)
        if self.error:
            out["error"] = self.error
        return out


@dataclass(frozen=True)
class StudyProgress:
    """One incremental checkpoint of a running study (per completed chunk).

    ``chunk_wall_s`` and ``worker_pid`` describe the chunk that produced
    this event (wall-clock inside the worker, and which process served
    it) — the per-chunk timing trail that makes the service's progress
    feed useful even without full tracing enabled.
    """

    n_done: int
    n_total: int | None  # None when the stream length is unknown
    n_chunks: int
    n_converged: int
    n_errors: int
    violation_rate: float  # over converged scenarios so far
    elapsed_s: float
    chunk_wall_s: float = 0.0  # wall time of this event's chunk
    worker_pid: int = 0  # process that evaluated this event's chunk

    @property
    def fraction(self) -> float | None:
        if not self.n_total:
            return None
        return self.n_done / self.n_total

    def to_dict(self) -> dict:
        out = {
            "n_done": self.n_done,
            "n_total": self.n_total,
            "n_chunks": self.n_chunks,
            "n_converged": self.n_converged,
            "n_errors": self.n_errors,
            "violation_rate": round(self.violation_rate, 4),
            "elapsed_s": round(self.elapsed_s, 3),
            "chunk_wall_s": round(self.chunk_wall_s, 4),
            "worker_pid": self.worker_pid,
        }
        if self.fraction is not None:
            out["fraction"] = round(self.fraction, 4)
        return out


class _WorstK:
    """Bounded min-heap keeping the K most stressed scenarios.

    Replicates the historical ``sorted(results, key=-loading)[:k]``
    ordering exactly (ties resolve to earlier scenarios) while holding
    only K results, so a streamed study's ``worst_scenarios`` slice
    matches the materialised one for any request ``n <= k``.
    """

    def __init__(self, k: int) -> None:
        self.k = max(0, int(k))
        self._heap: list[tuple[float, int, ScenarioResult]] = []
        self._seq = 0

    def push(self, result: ScenarioResult) -> None:
        if self.k == 0:
            return
        # Min-heap on (loading, -seq): among equal loadings the *latest*
        # scenario is evicted first, preserving stable-sort semantics.
        entry = (result.max_loading_percent, -self._seq, result)
        self._seq += 1
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)

    def __len__(self) -> int:
        return len(self._heap)

    def worst(self) -> list[ScenarioResult]:
        """Most stressed first; ties in original scenario order."""
        return [
            r
            for _, _, r in sorted(self._heap, key=lambda t: (-t[0], -t[1]))
        ]


@dataclass
class StudyResult:
    """Everything one batch study produced.

    ``results`` holds the full per-scenario record list when the study
    ran with ``keep_results=True`` (the default, required for store
    persistence and exact determinism diffs) and is empty for streamed
    studies, which retain only the aggregate, the capped worst-K slice
    (``worst_results``), and the progress/residency instrumentation.
    """

    case_name: str
    analysis: str
    results: list[ScenarioResult]
    runtime_s: float
    n_jobs: int = 1
    n_scenarios: int = -1  # -1 -> len(results) (set in __post_init__)
    worst_results: list[ScenarioResult] | None = None
    n_progress_events: int = 0
    peak_resident_results: int | None = None
    slice_spec: SliceSpec | None = None  # dimensional aggregation, if any
    _aggregate: StudyAggregate | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_scenarios < 0:
            self.n_scenarios = len(self.results)

    def aggregate(self) -> StudyAggregate:
        if self._aggregate is None:
            self._aggregate = aggregate_study(
                self.results, slice_spec=self.slice_spec
            )
        return self._aggregate

    def worst(self, n: int = 5) -> list[ScenarioResult]:
        """Most stressed scenarios first (by post-analysis peak loading)."""
        if self.results:
            return sorted(self.results, key=lambda r: -r.max_loading_percent)[:n]
        return (self.worst_results or [])[:n]

    def to_dict(self, max_scenarios: int = 20) -> dict:
        """JSON-ready study summary (what the agent tools return)."""
        out = {
            "case_name": self.case_name,
            "analysis": self.analysis,
            "n_scenarios": self.n_scenarios,
            "n_jobs": self.n_jobs,
            "runtime_s": round(self.runtime_s, 3),
            "aggregate": self.aggregate().to_dict(),
            "worst_scenarios": [r.to_dict() for r in self.worst(max_scenarios)],
        }
        if self.n_progress_events:
            out["n_progress_events"] = self.n_progress_events
        if self.peak_resident_results is not None:
            out["peak_resident_results"] = self.peak_resident_results
        return out


@dataclass(frozen=True)
class StudyConfig:
    """Per-study analysis knobs, shipped once to each worker.

    ``slice_by``/``slice_max_values`` declare the study's dimensional
    aggregation (see :class:`~repro.scenarios.aggregate.SliceSpec`); the
    parent-side reducer consumes them.  They ride along here so one
    validated bundle carries the whole study definition, but the store's
    spec hash deliberately excludes them — slicing shapes the derived
    aggregate index, not the per-scenario results.
    """

    analysis: str = "powerflow"
    overload_threshold: float = 100.0
    vmin: float = 0.94
    vmax: float = 1.06
    ac_budget: int = 20
    top_n: int = 5
    slice_by: tuple[str, ...] = ()
    slice_max_values: int = DEFAULT_SLICE_MAX_VALUES
    #: Route injection-only chunks of the linear analyses ("dc",
    #: "screening") through the batched kernels.  Results are
    #: bit-identical either way (the ablation's point), so the store's
    #: spec hash excludes this knob exactly like the ``slice_*`` pair.
    batch_kernels: bool = True
    #: AC ensemble mode for ``analysis="powerflow"``: "warm" routes
    #: injection-only chunks through the topology-cached AC kernel
    #: (vectorized warm-start screen, fast-decoupled correctors,
    #: warm-started Newton polish); "cold" forces the exact legacy
    #: per-scenario solve.  Excluded from the store's spec hash like
    #: ``batch_kernels`` — the parity contract (identical converged
    #: flags and violation sets, aggregates within 1e-6) means toggling
    #: it must not mint a second store entry.
    ac_mode: str = "warm"
    #: Fast-decoupled corrector half-iteration sweeps the warm AC path
    #: runs before the Newton polish (0 disables the corrector tier).
    #: Sweeps are multi-RHS triangular solves — near-free next to a
    #: Jacobian build — so the default runs enough of them that the
    #: Newton polish usually reduces to a single mismatch check.
    ac_fd_sweeps: int = 8

    def slice_spec(self) -> SliceSpec:
        return SliceSpec(by=tuple(self.slice_by), max_values=self.slice_max_values)


class _WorkerState:
    """One worker's long-lived state: base network plus reusable caches."""

    #: Entry cap for the per-worker contingency cache.  Load-perturbation
    #: ensembles give every scenario a distinct content hash, so the cache
    #: would otherwise grow without bound while never hitting; past the
    #: cap it is simply dropped (reuse is an optimisation, not state).
    CA_CACHE_MAX_ENTRIES = 20_000

    #: Entry caps for the topology-keyed factor and kernel caches.  Outage
    #: ensembles mint a new digest per scenario, so without a cap these
    #: grow with the ensemble (dense PTDF/LODF matrices and LU objects,
    #: respectively — far heavier per entry than the CA cache's records).
    #: Past the cap the cache is dropped, same policy as the CA cache.
    FACTORS_CACHE_MAX_ENTRIES = 256
    KERNEL_CACHE_MAX_ENTRIES = 64

    def __init__(self, base: Network, config: StudyConfig) -> None:
        self.base = base
        self.config = config
        self.factors_cache: dict[bytes, SensitivityFactors] = {}
        self.kernel_cache: dict[bytes, DcKernel] = {}
        self.ac_kernel_cache: dict[bytes, AcKernel] = {}
        self.ca_cache = ContingencyCache()

    # ------------------------------------------------------------------
    def kernel_for(self, net: Network) -> DcKernel:
        """Compiled :class:`DcKernel`, cached on the topology digest.

        One factorization per electrical topology per worker: the whole
        load-perturbation ensemble (and every PTDF computation for it)
        reuses this kernel's LU.
        """
        arr = net.compile()
        key = topology_digest(arr)
        kernel = self.kernel_cache.get(key)
        if kernel is None:
            if len(self.kernel_cache) >= self.KERNEL_CACHE_MAX_ENTRIES:
                self.kernel_cache.clear()
            kernel = DcKernel(arr)
            self.kernel_cache[key] = kernel
        return kernel

    def ac_kernel_for(self, net: Network) -> AcKernel:
        """Warm-start :class:`AcKernel`, cached on the topology digest.

        One base solve and one B'/B'' factorization pair per electrical
        topology per worker — the whole injection-only AC ensemble warm
        starts from this kernel's cached base voltage.  Capped like the
        DC kernel cache (SuperLU objects are heavy and unpicklable, so
        the cache is strictly worker-local).
        """
        arr = net.compile()
        key = topology_digest(arr)
        kernel = self.ac_kernel_cache.get(key)
        if kernel is None:
            if len(self.ac_kernel_cache) >= self.KERNEL_CACHE_MAX_ENTRIES:
                self.ac_kernel_cache.clear()
            kernel = AcKernel(net)
            self.ac_kernel_cache[key] = kernel
        return kernel

    def factors_for(self, net: Network) -> SensitivityFactors:
        """PTDF/LODF factors, cached on the electrical-topology digest.

        The digest covers everything the DC factors depend on (incidence,
        impedances, taps, shifts, bus types) but *not* loads — so a
        load-perturbation ensemble computes one factorisation total, and
        the PTDF comes through the same LU the kernel cache holds.
        """
        arr = net.compile()
        key = topology_digest(arr)
        factors = self.factors_cache.get(key)
        if factors is None:
            if len(self.factors_cache) >= self.FACTORS_CACHE_MAX_ENTRIES:
                self.factors_cache.clear()
            factors = compute_factors(net, kernel=self.kernel_for(net))
            self.factors_cache[key] = factors
        return factors

    # ------------------------------------------------------------------
    def run_chunk(self, scenarios: list[Scenario]) -> list[ScenarioResult]:
        """Chunk-level entry point every execution path funnels through.

        Scenarios are grouped by whether they keep the base electrical
        topology: for the linear analyses, the injection-only group maps
        onto one topology digest (the base's) and is solved through the
        batched kernels in one multi-RHS pass (bit-identical to the
        scalar path); for ``analysis="powerflow"`` with ``ac_mode="warm"``
        the injection-only group routes through the warm-start AC kernel
        (parity contract, not bit-identity — Newton iterates are
        path-dependent).  Topology-changing scenarios, rows the warm path
        cannot converge, and every scenario of the other nonlinear
        analyses take the scalar per-scenario loop.  Chunk results come
        back in submission order either way.
        """
        cfg = self.config
        fast_group = None
        min_group = 2
        if (
            cfg.batch_kernels
            and cfg.analysis in ("dc", "screening")
            and len(scenarios) >= 2
        ):
            fast_group = self._run_chunk_batched
        elif cfg.analysis == "powerflow" and cfg.ac_mode == "warm":
            # The warm path solves rows independently (the screen, the
            # multi-RHS corrector sweeps, and the Newton polish never mix
            # rows), so it engages even for singleton groups: a scenario's
            # iterate path then depends only on the base case and its own
            # injection, never on chunking — which is what keeps serial,
            # pooled, and executor dispatch producing identical records.
            fast_group = self._run_chunk_ac
            min_group = 1
        if fast_group is not None:
            batch_idx = [i for i, s in enumerate(scenarios) if s.injection_only]
            if len(batch_idx) >= min_group:
                batched = fast_group([scenarios[i] for i in batch_idx])
                if batched is not None:
                    out: list[ScenarioResult | None] = [None] * len(scenarios)
                    for i, r in zip(batch_idx, batched):
                        out[i] = r
                    for i, s in enumerate(scenarios):
                        if out[i] is None:
                            out[i] = self.run_scenario(s)
                    return out  # type: ignore[return-value]
        return [self.run_scenario(s) for s in scenarios]

    def _run_chunk_batched(
        self, scenarios: list[Scenario]
    ) -> list[ScenarioResult] | None:
        """Evaluate an injection-only group through the batched kernels.

        Returns ``None`` to signal "degrade to the scalar loop" — when the
        base case itself is disconnected (the scalar path's per-scenario
        stranded-MW message needs each realized network) or the kernel
        cannot be built.  Per-scenario perturbation errors do *not* sink
        the group: the offending scenario gets the same error record the
        scalar path would produce and the rest still batch.
        """
        cfg = self.config
        base = self.base
        if not gridgraph.is_connected(base):
            return None
        try:
            kernel = self.kernel_for(base)
        except Exception:
            return None

        tick = time.perf_counter()
        results: list[ScenarioResult | None] = [None] * len(scenarios)
        vectors: list[np.ndarray] = []
        live: list[int] = []
        for i, scenario in enumerate(scenarios):
            try:
                vectors.append(scenario.injection_vector(base))
                live.append(i)
            except ScenarioError as exc:
                results[i] = ScenarioResult(
                    name=scenario.name, tags=dict(scenario.tags),
                    converged=False, error=str(exc),
                )
            except Exception as exc:
                results[i] = ScenarioResult(
                    name=scenario.name, tags=dict(scenario.tags),
                    converged=False,
                    error=f"{type(exc).__name__}: {exc}",
                )

        metrics = get_metrics()
        with get_tracer().span(
            "chunk.batch", analysis=cfg.analysis, n_scenarios=len(live)
        ):
            if live:
                p_inj = np.vstack(vectors)
                if cfg.analysis == "dc":
                    batch = kernel.solve_many(p_inj)
                    per_scn = (time.perf_counter() - tick) / len(live)
                    for j, i in enumerate(live):
                        results[i] = self._dc_result(
                            scenarios[i], kernel.arr, batch.loading_percent[j]
                        )
                        results[i].solve_time_s = per_scn
                else:  # screening: batch the DC estimate, AC-verify per scenario
                    factors = self.factors_for(base)
                    estimates = screen_dc_many(kernel, factors, p_inj)
                    for j, i in enumerate(live):
                        results[i] = self.run_scenario(
                            scenarios[i], estimate=estimates[j]
                        )
                metrics.counter(
                    "gridmind_batch_solves_total",
                    "Multi-RHS batched kernel solve calls",
                ).inc(analysis=cfg.analysis)
                metrics.counter(
                    "gridmind_batch_rows_total",
                    "Scenario rows solved through the batched kernels",
                ).inc(len(live), analysis=cfg.analysis)

        # Metric parity with the scalar loop: screening rows already went
        # through run_scenario; the dc rows (and error records) have not.
        if cfg.analysis == "dc":
            counter = metrics.counter(
                "gridmind_scenarios_total", "Scenario evaluations by outcome"
            )
            for r in results:
                counter.inc(analysis=cfg.analysis, converged=r.converged)
        return results  # type: ignore[return-value]

    def _dc_result(
        self, scenario: Scenario, arr, loading: np.ndarray
    ) -> ScenarioResult:
        """Reduce one DC loading vector to a result record — the single
        reduction both the scalar and batched dc paths run, so their
        records are bit-identical by construction."""
        cfg = self.config
        over_rows = np.flatnonzero(loading > cfg.overload_threshold)
        # DC holds every voltage at 1.0 p.u. flat by construction.
        n_volt = arr.n_bus if (1.0 < cfg.vmin or 1.0 > cfg.vmax) else 0
        return ScenarioResult(
            name=scenario.name,
            tags=dict(scenario.tags),
            converged=True,
            max_loading_percent=float(loading.max()) if loading.size else 0.0,
            min_voltage_pu=1.0,
            max_voltage_pu=1.0,
            losses_mw=0.0,
            overloaded_branches=[int(arr.branch_ids[r]) for r in over_rows],
            n_voltage_violations=n_volt,
        )

    def _run_chunk_ac(
        self, scenarios: list[Scenario]
    ) -> list[ScenarioResult | None] | None:
        """Evaluate an injection-only AC group through the warm kernel.

        Returns ``None`` to signal "degrade the whole group to the scalar
        loop" — when the base case is disconnected, the kernel cannot be
        built, or the base Newton solve itself does not converge (no
        voltage to warm-start from).  Individual rows degrade too: a
        perturbation error gets the same error record the scalar path
        would produce, and a row whose warm Newton polish fails comes
        back as ``None`` so the caller reruns it through the exact cold
        ladder (``solve_newton`` then ``solve_with_recovery``), making
        error records byte-identical on both paths.
        """
        cfg = self.config
        base = self.base
        if not gridgraph.is_connected(base):
            return None
        try:
            kernel = self.ac_kernel_for(base)
            if not kernel.usable:
                return None
        except Exception:
            return None

        tick = time.perf_counter()
        results: list[ScenarioResult | None] = [None] * len(scenarios)
        rows: list[np.ndarray] = []
        loads: list[tuple[np.ndarray, np.ndarray]] = []
        live: list[int] = []
        for i, scenario in enumerate(scenarios):
            try:
                sbus, pd, qd = scenario.ac_injection(base)
                rows.append(sbus)
                loads.append((pd, qd))
                live.append(i)
            except ScenarioError as exc:
                results[i] = ScenarioResult(
                    name=scenario.name, tags=dict(scenario.tags),
                    converged=False, error=str(exc),
                )
            except Exception as exc:
                results[i] = ScenarioResult(
                    name=scenario.name, tags=dict(scenario.tags),
                    converged=False,
                    error=f"{type(exc).__name__}: {exc}",
                )

        metrics = get_metrics()
        with get_tracer().span(
            "chunk.ac_batch", analysis=cfg.analysis, n_scenarios=len(live)
        ):
            if live:
                sol = kernel.solve_chunk(
                    np.vstack(rows), fd_sweeps=cfg.ac_fd_sweeps
                )
                per_scn = (time.perf_counter() - tick) / len(live)
                iters_hist = metrics.histogram(
                    "gridmind_ac_newton_iterations",
                    "Newton iterations per AC ensemble scenario",
                    buckets=ITERATION_BUCKETS,
                )
                n_warm = 0
                n_skipped = 0
                for j, i in enumerate(live):
                    if not sol.converged[j]:
                        continue  # leave None: caller runs the cold ladder
                    pd, qd = loads[j]
                    res = kernel.finalize_row(
                        sol.v[j], pd, qd,
                        converged=True,
                        iterations=int(sol.iterations[j]),
                        norm=float(sol.norms[j]),
                    )
                    results[i] = self._pf_record(scenarios[i], res)
                    results[i].solve_time_s = per_scn
                    iters_hist.observe(float(sol.iterations[j]), mode="warm")
                    if sol.skipped[j]:
                        n_skipped += 1
                    else:
                        n_warm += 1
                if n_warm:
                    metrics.counter(
                        "gridmind_ac_warm_solves_total",
                        "AC ensemble rows solved warm through the kernel",
                    ).inc(n_warm)
                if n_skipped:
                    metrics.counter(
                        "gridmind_ac_skipped_converged_total",
                        "AC ensemble rows already converged at the warm start",
                    ).inc(n_skipped)

        # Metric parity with the scalar loop for the rows handled here
        # (error records and warm-converged rows); fallback rows bill
        # themselves inside run_scenario.
        counter = metrics.counter(
            "gridmind_scenarios_total", "Scenario evaluations by outcome"
        )
        for r in results:
            if r is not None:
                counter.inc(analysis=cfg.analysis, converged=r.converged)
        return results

    # ------------------------------------------------------------------
    def run_scenario(self, scenario: Scenario, **hints) -> ScenarioResult:
        with get_tracer().span("scenario.run", scenario=scenario.name) as span:
            result = self._run_scenario(scenario, **hints)
            span.tags["converged"] = result.converged
            if result.error:
                span.status = "error"
                span.error = result.error
        get_metrics().counter(
            "gridmind_scenarios_total", "Scenario evaluations by outcome"
        ).inc(analysis=self.config.analysis, converged=result.converged)
        return result

    def _run_scenario(self, scenario: Scenario, **hints) -> ScenarioResult:
        tick = time.perf_counter()
        try:
            net = scenario.realize(self.base)
            if not gridgraph.is_connected(net):
                # Outage combinations can island the system (N-2 over a
                # bridge); no solver can run, but the study must record
                # the scenario rather than die on a singular matrix.
                result = ScenarioResult(
                    name=scenario.name, tags=dict(scenario.tags),
                    converged=False,
                    error=(
                        "scenario islands the network "
                        f"({gridgraph.stranded_load_mw(net, frozenset()):.1f} MW stranded)"
                    ),
                )
            else:
                runner = getattr(self, f"_run_{self.config.analysis}")
                result = runner(net, scenario, **hints)
        except ScenarioError as exc:
            result = ScenarioResult(
                name=scenario.name, tags=dict(scenario.tags),
                converged=False, error=str(exc),
            )
        except Exception as exc:  # solver edge cases must not kill the batch
            result = ScenarioResult(
                name=scenario.name, tags=dict(scenario.tags),
                converged=False,
                error=f"{type(exc).__name__}: {exc}",
            )
        result.solve_time_s = time.perf_counter() - tick
        return result

    # ------------------------------------------------------------------
    def _solve_pf(self, net: Network):
        from ..powerflow.newton import solve_newton
        from ..powerflow.recovery import solve_with_recovery

        res = solve_newton(net)
        if not res.converged:
            res, _trace = solve_with_recovery(net)
        return res

    def _pf_record(self, scenario: Scenario, res) -> ScenarioResult:
        """Reduce one converged AC result to a record — the single
        reduction the scalar and warm-kernel paths share, so their
        violation sets and aggregate fields agree by construction."""
        cfg = self.config
        overloads = res.overloaded_branches(cfg.overload_threshold)
        violations = res.voltage_violations(cfg.vmin, cfg.vmax)
        return ScenarioResult(
            name=scenario.name,
            tags=dict(scenario.tags),
            converged=True,
            max_loading_percent=res.max_loading_percent,
            min_voltage_pu=res.min_voltage_pu,
            max_voltage_pu=res.max_voltage_pu,
            losses_mw=res.losses_mw,
            overloaded_branches=[b for b, _pct in overloads],
            n_voltage_violations=len(violations),
        )

    def _run_powerflow(self, net: Network, scenario: Scenario) -> ScenarioResult:
        res = self._solve_pf(net)
        if res.method == "newton":
            get_metrics().histogram(
                "gridmind_ac_newton_iterations",
                "Newton iterations per AC ensemble scenario",
                buckets=ITERATION_BUCKETS,
            ).observe(float(res.iterations), mode="cold")
        if not res.converged:
            return ScenarioResult(
                name=scenario.name, tags=dict(scenario.tags),
                converged=False, error=res.message or "power flow diverged",
            )
        return self._pf_record(scenario, res)

    def _reduce_opf(self, scenario: Scenario, res) -> ScenarioResult:
        """Shared OPF-result reduction (DCOPF / ACOPF / SCOPF master)."""
        cfg = self.config
        over_rows = np.flatnonzero(res.loading_percent > cfg.overload_threshold)
        n_volt = int(
            np.count_nonzero((res.vm < cfg.vmin) | (res.vm > cfg.vmax))
        )
        return ScenarioResult(
            name=scenario.name,
            tags=dict(scenario.tags),
            converged=True,
            objective_cost=float(res.objective_cost),
            max_loading_percent=res.max_loading_percent,
            min_voltage_pu=res.min_voltage_pu,
            max_voltage_pu=res.max_voltage_pu,
            losses_mw=float(res.losses_mw),
            overloaded_branches=[int(res.branch_ids[r]) for r in over_rows],
            n_voltage_violations=n_volt,
        )

    def _run_opf(self, net: Network, scenario: Scenario, solve) -> ScenarioResult:
        res = solve(net)
        if not res.converged:
            return ScenarioResult(
                name=scenario.name, tags=dict(scenario.tags),
                converged=False, error=res.message or "OPF did not converge",
            )
        return self._reduce_opf(scenario, res)

    def _run_dc(self, net: Network, scenario: Scenario) -> ScenarioResult:
        """Linear DC screening solve — the scalar side of the batched
        kernels' fast path (chunks of injection-only scenarios route
        through :meth:`run_chunk` / ``solve_many`` instead)."""
        from ..powerflow.dc import solve_dc

        kernel = self.kernel_for(net)
        res = solve_dc(net, kernel=kernel)
        return self._dc_result(scenario, net.compile(), res.loading_percent)

    def _run_dcopf(self, net: Network, scenario: Scenario) -> ScenarioResult:
        from ..opf.dcopf import solve_dcopf

        return self._run_opf(net, scenario, solve_dcopf)

    def _run_acopf(self, net: Network, scenario: Scenario) -> ScenarioResult:
        from ..opf.acopf import solve_acopf

        return self._run_opf(net, scenario, solve_acopf)

    def _run_scopf(self, net: Network, scenario: Scenario) -> ScenarioResult:
        """Preventive SCOPF: the study reports *secured* cost distributions."""
        from ..opf.scopf import solve_scopf

        res = solve_scopf(net)
        if not res.converged:
            return ScenarioResult(
                name=scenario.name, tags=dict(scenario.tags),
                converged=False,
                error=res.opf.message or "SCOPF master did not converge",
            )
        out = self._reduce_opf(scenario, res.opf)
        out.security_cost = float(res.security_cost)
        # Pairs no preventive redispatch can secure — the honest residual.
        out.n_contingency_violations = len(res.unattainable)
        return out

    def _run_screening(
        self, net: Network, scenario: Scenario, estimate=None
    ) -> ScenarioResult:
        cfg = self.config
        base = self._solve_pf(net)
        if not base.converged:
            return ScenarioResult(
                name=scenario.name, tags=dict(scenario.tags),
                converged=False,
                error=base.message or "base power flow diverged",
            )

        if estimate is None:
            # ``estimate`` arrives precomputed from the chunk fast path
            # (one stacked solve + LODF product for the whole group);
            # the scalar path computes the identical estimate here.
            factors = self.factors_for(net)
            estimate = screen_dc(net, factors=factors)
        candidates = sorted(
            set(estimate.top(cfg.ac_budget))
            | set(int(b) for b in estimate.islanding)
        )

        # One content hash for the whole sweep (lookup + put), then AC
        # verification only for the outages this worker has not seen.
        cached, missing = self.ca_cache.lookup_sweep(net, candidates)
        bridges = gridgraph.bridge_branches(net) if missing else set()
        v_base = base.extras.get("v_complex")
        fresh = [
            analyze_single_outage(
                net,
                bid,
                bridges=bridges,
                v_base=v_base,
                vmin=cfg.vmin,
                vmax=cfg.vmax,
                overload_threshold=cfg.overload_threshold,
            )
            for bid in missing
        ]
        if fresh:
            if self.ca_cache.size >= self.CA_CACHE_MAX_ENTRIES:
                self.ca_cache.clear()
            self.ca_cache.put_many(net, fresh)
        outcomes = sorted([*cached.values(), *fresh], key=lambda o: o.branch_id)

        report = NMinus1Report(
            case_name=net.name, base=base, outcomes=outcomes,
            runtime_s=0.0, vmin=cfg.vmin, vmax=cfg.vmax,
        )
        ranked = rank_critical_elements(report, top_n=cfg.top_n)

        post_overloads = sorted(
            {int(b) for o in outcomes if o.converged for b, _pct in o.overloads}
        )
        return ScenarioResult(
            name=scenario.name,
            tags=dict(scenario.tags),
            converged=True,
            max_loading_percent=report.max_overload_percent,
            min_voltage_pu=base.min_voltage_pu,
            max_voltage_pu=base.max_voltage_pu,
            losses_mw=base.losses_mw,
            overloaded_branches=post_overloads,
            n_voltage_violations=len(base.voltage_violations(cfg.vmin, cfg.vmax)),
            critical_branches=ranked.critical_branch_ids,
            n_contingency_violations=report.n_violations,
        )


# ----------------------------------------------------------------------
# process-pool plumbing: one _WorkerState per worker, chunked dispatch
# ----------------------------------------------------------------------


@dataclass
class ChunkOutcome:
    """One evaluated chunk plus its observability payload.

    What every execution path (serial, per-run pool, shared executor)
    yields to the runner's fold loop: the results themselves, the
    worker's identity and wall time (surfaced on ``StudyProgress``), the
    finished span dicts recorded inside the worker (stitched into the
    parent trace via :meth:`~repro.instrumentation.trace.Tracer.adopt`),
    and the worker-local metrics delta (folded into the parent registry
    via :meth:`~repro.instrumentation.metrics.MetricsRegistry.merge_state`).
    """

    results: list[ScenarioResult]
    worker_pid: int = 0
    wall_s: float = 0.0
    spans: list[dict] = field(default_factory=list)
    metrics: dict | None = None


def _execute_chunk(
    state: _WorkerState,
    scenarios: list[Scenario],
    trace_ctx: tuple[str, str] | None,
    collect_metrics: bool,
) -> ChunkOutcome:
    """Evaluate one chunk inside a worker process, instrumented.

    ``trace_ctx`` is the dispatcher's serialised span context (``None``
    for untraced studies — the worker then pays only this check): a
    private chunk tracer is activated under it, so the ``worker.chunk``
    span and everything beneath (scenario, solver) reparent correctly
    once adopted.  ``collect_metrics`` ships the worker-local
    counter/histogram delta for this chunk back to the parent.
    """
    tick = time.perf_counter()
    # Mirror the dispatcher's collection flag regardless of what registry
    # this worker inherited at fork time: a worker forked during an
    # untraced study must still collect for a later metered one, and with
    # collection off the increments should no-op rather than accumulate
    # into a registry nobody will ever drain.
    previous = None
    if collect_metrics != get_metrics().enabled:
        previous = set_metrics(MetricsRegistry(enabled=collect_metrics))
    before = get_metrics().state() if collect_metrics else None
    try:
        with worker_trace(trace_ctx) as tracer:
            with tracer.span("worker.chunk", n_scenarios=len(scenarios)):
                results = state.run_chunk(scenarios)
        delta = (
            state_delta(get_metrics().state(), before)
            if collect_metrics
            else None
        )
    finally:
        if previous is not None:
            set_metrics(previous)
    return ChunkOutcome(
        results=results,
        worker_pid=os.getpid(),
        wall_s=time.perf_counter() - tick,
        spans=tracer.drain_dicts(),
        metrics=delta,
    )


_WORKER: _WorkerState | None = None


def _init_worker(base: Network, config: StudyConfig) -> None:
    global _WORKER
    _WORKER = _WorkerState(base, config)


def _run_chunk(
    scenarios: list[Scenario],
    trace_ctx: tuple[str, str] | None = None,
    collect_metrics: bool = True,
) -> ChunkOutcome:
    assert _WORKER is not None, "worker used before initialisation"
    return _execute_chunk(_WORKER, scenarios, trace_ctx, collect_metrics)


def default_chunk_size(total: int | None, n_jobs: int) -> int:
    """~4 chunks per worker for sized ensembles, capped at the stream stride."""
    if total is None:
        return DEFAULT_STREAM_CHUNK
    return max(1, min(math.ceil(total / (max(1, n_jobs) * 4)), DEFAULT_STREAM_CHUNK))


def iter_chunks(
    scenarios: Iterable[Scenario], chunk: int
) -> Iterator[list[Scenario]]:
    """Order-preserving dispatch chunks drawn lazily from the stream."""
    if chunk < 1:
        raise ValueError(f"chunk size must be >= 1, got {chunk}")
    it = iter(scenarios)
    while batch := list(itertools.islice(it, chunk)):
        yield batch


def windowed_map(
    submit: Callable[[list[Scenario]], object],
    chunks: Iterator[list[Scenario]],
    window: int,
) -> Iterator[ChunkOutcome]:
    """Submit chunks with at most ``window`` in flight; yield results in order.

    The backpressure loop for the runner's per-run pool path: the
    scenario stream is advanced only as completed chunks drain, so
    neither the pending futures nor the undispatched ensemble ever
    materialise.  (:meth:`repro.service.executor.StudyExecutor
    .run_study_iter` implements the same discipline inline, where
    submission must interleave with the shared pool's lock and
    broken-pool bookkeeping.)
    """
    if window < 1:
        raise ValueError(f"in-flight window must be >= 1, got {window}")
    pending: deque = deque()
    try:
        for chunk in itertools.islice(chunks, window):
            pending.append(submit(chunk))
        while pending:
            results = pending.popleft().result()
            nxt = next(chunks, None)
            if nxt is not None:
                pending.append(submit(nxt))
            yield results
    finally:
        # Early consumer exit must not leave queued chunks running.
        for future in pending:
            future.cancel()


@dataclass
class BatchStudyRunner:
    """Execute scenario streams with optional process-pool parallelism.

    ``n_jobs <= 1`` runs in-process through the exact same worker-state
    code path, so parallel and serial studies produce identical results.
    ``chunk_size`` controls dispatch granularity (default: ~4 chunks per
    worker, balancing load against per-chunk pickling overhead).

    ``executor`` injects a long-lived shared pool (duck-typed to
    :class:`repro.service.executor.StudyExecutor`): when set, chunks are
    routed through it instead of spawning a per-``run()`` pool, so
    back-to-back studies amortise worker start-up.  The executor decides
    its own worker count; ``n_jobs`` is ignored on that path.

    Streaming controls:

    * ``window`` — max chunks in flight at once (backpressure; default
      2x the worker count),
    * ``worst_k`` — how many most-stressed scenarios a study retains when
      the full result list is dropped,
    * ``run(..., keep_results=False)`` — stream-reduce without
      materialising results; ``run(..., progress=cb)`` — invoke ``cb``
      with a :class:`StudyProgress` after every completed chunk.
    """

    analysis: str = "powerflow"
    n_jobs: int = 1
    chunk_size: int | None = None
    overload_threshold: float = 100.0
    vmin: float = 0.94
    vmax: float = 1.06
    ac_budget: int = 20
    top_n: int = 5
    executor: object | None = None  # shared StudyExecutor (service layer)
    window: int | None = None  # max in-flight chunks (pool paths)
    worst_k: int = DEFAULT_WORST_K
    #: Tag dimensions for sliced aggregation: a tuple of tag names, or a
    #: comma-separated string of names/aliases ("hour, zone") which is
    #: parsed through :func:`~repro.scenarios.generators.resolve_slice_by`.
    slice_by: tuple[str, ...] | str = ()
    slice_max_values: int = DEFAULT_SLICE_MAX_VALUES
    #: Batched-kernel fast path for injection-only chunks of the linear
    #: analyses; off forces the scalar loop (the ablation baseline).
    batch_kernels: bool = True
    #: Warm AC fast path for injection-only ``powerflow`` chunks
    #: ("warm", the default) vs the exact legacy per-scenario solve
    #: ("cold", the ablation baseline).
    ac_mode: str = "warm"
    #: Fast-decoupled corrector sweeps before the warm Newton polish.
    ac_fd_sweeps: int = 8

    def config(self) -> StudyConfig:
        """The validated per-study knob bundle shipped to every worker."""
        if self.analysis not in ANALYSES:
            raise ValueError(
                f"unknown analysis {self.analysis!r}; use one of {ANALYSES}"
            )
        if self.ac_mode not in ("warm", "cold"):
            raise ValueError(
                f"unknown ac_mode {self.ac_mode!r}; use 'warm' or 'cold'"
            )
        slice_by = self.slice_by
        if isinstance(slice_by, str):
            from .generators import resolve_slice_by

            slice_by = resolve_slice_by(slice_by)
        config = StudyConfig(
            analysis=self.analysis,
            overload_threshold=self.overload_threshold,
            vmin=self.vmin,
            vmax=self.vmax,
            ac_budget=self.ac_budget,
            top_n=self.top_n,
            slice_by=tuple(slice_by),
            slice_max_values=self.slice_max_values,
            batch_kernels=self.batch_kernels,
            ac_mode=self.ac_mode,
            ac_fd_sweeps=self.ac_fd_sweeps,
        )
        config.slice_spec()  # validate dimensions/cap before dispatch
        return config

    # ------------------------------------------------------------------
    def _serial_chunks(
        self, base: Network, config: StudyConfig, scenarios, chunk: int
    ) -> Iterator[ChunkOutcome]:
        # Generator bodies run in the *caller's* context, so these live
        # ``worker.chunk`` spans parent under whatever span the fold loop
        # holds open when it draws the next chunk — same tree shape as
        # the pool paths, without serialising anything.
        tracer = get_tracer()
        state = _WorkerState(base.copy(), config)
        for chunk_scns in iter_chunks(scenarios, chunk):
            tick = time.perf_counter()
            with tracer.span("worker.chunk", n_scenarios=len(chunk_scns)):
                results = state.run_chunk(chunk_scns)
            yield ChunkOutcome(
                results=results,
                worker_pid=os.getpid(),
                wall_s=time.perf_counter() - tick,
            )

    def _pool_chunks(
        self,
        base: Network,
        config: StudyConfig,
        scenarios,
        chunk: int,
        jobs: int,
        window: int,
    ) -> Iterator[ChunkOutcome]:
        collect = get_metrics().enabled
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=_init_worker, initargs=(base, config)
        ) as pool:
            # Trace context is captured per submission: submissions are
            # driven by the consumer draining chunks, so they see the
            # fold loop's active dispatch span.
            yield from windowed_map(
                lambda c: pool.submit(
                    _run_chunk, c, current_trace_context(), collect
                ),
                iter_chunks(scenarios, chunk),
                window,
            )

    # ------------------------------------------------------------------
    def run(
        self,
        base: Network,
        scenarios: Iterable[Scenario],
        *,
        progress: Callable[[StudyProgress], None] | None = None,
        keep_results: bool = True,
    ) -> StudyResult:
        config = self.config()
        tracer = get_tracer()
        metrics = get_metrics()
        start = time.perf_counter()
        # One-shot iterators are materialised up front (lists and
        # ScenarioStreams pass through lazily): the stream is re-read
        # after execution by store persistence (spec hashing), and a
        # consumed generator would silently hash as an empty study.
        scenarios = as_stream(scenarios)
        total = stream_length(scenarios)

        if self.executor is not None and (total is None or total >= 2):
            jobs = getattr(self.executor, "max_workers", 1)
            dispatch_name = "executor.dispatch"
            # Ask the executor for its chunk/window plan so the residency
            # bound below accounts for its undrained futures (duck-typed;
            # executors without one get the per-run defaults).
            plan = getattr(self.executor, "dispatch_plan", None)
            if plan is not None:
                chunk, window = plan(
                    total, chunk_size=self.chunk_size, window=self.window
                )
            else:
                chunk = self.chunk_size or default_chunk_size(total, jobs)
                window = max(1, self.window or 2 * jobs)
            in_flight_extra = (window - 1) * chunk
            run_chunks = getattr(self.executor, "run_study_chunks", None)
            if run_chunks is not None:
                chunk_iter = run_chunks(
                    base, config, scenarios,
                    chunk_size=self.chunk_size, window=self.window,
                )
            else:  # duck-typed executor without the instrumented API
                chunk_iter = (
                    ChunkOutcome(results=r)
                    for r in self.executor.run_study_iter(
                        base, config, scenarios,
                        chunk_size=self.chunk_size, window=self.window,
                    )
                )
        elif self.n_jobs <= 1 or (total is not None and total < 2):
            jobs = 1
            dispatch_name = "serial.dispatch"
            chunk = self.chunk_size or default_chunk_size(total, 1)
            in_flight_extra = 0
            chunk_iter = self._serial_chunks(base, config, scenarios, chunk)
        else:
            jobs = self.n_jobs if total is None else min(self.n_jobs, total)
            dispatch_name = "pool.dispatch"
            chunk = self.chunk_size or default_chunk_size(total, jobs)
            window = max(1, self.window or 2 * jobs)
            in_flight_extra = (window - 1) * chunk
            chunk_iter = self._pool_chunks(
                base, config, scenarios, chunk, jobs, window
            )

        # The dimensional reducer degenerates to the plain global one for
        # an empty slice spec, so every study takes the same path.
        reducer = SlicedReducer(config.slice_spec())
        heap = _WorstK(self.worst_k)
        kept: list[ScenarioResult] | None = [] if keep_results else None
        n_done = 0
        n_chunks = 0
        n_events = 0
        peak_resident = 0

        # The dispatch span is held open by *this* consumer loop: chunk
        # iterators are generators, so every submission they make while
        # being drained captures this span as the remote parent — which
        # is how worker-chunk spans end up parented under it.
        with tracer.span("study.run", analysis=self.analysis, case=base.name) as root:
            with tracer.span(dispatch_name, n_jobs=jobs):
                for outcome in chunk_iter:
                    chunk_results = outcome.results
                    n_done += len(chunk_results)
                    n_chunks += 1
                    tracer.adopt(outcome.spans)
                    metrics.merge_state(outcome.metrics)
                    # Worker-side chunk wall: the latency signal the
                    # chunk_wall_p95 health rule watches, and the
                    # executor occupancy billed to the session.
                    metrics.histogram(
                        "gridmind_chunk_wall_seconds",
                        "Worker-side study chunk wall time",
                    ).observe(outcome.wall_s)
                    record_chunk(len(chunk_results), outcome.wall_s)
                    with tracer.span("study.reduce", n_results=len(chunk_results)):
                        reducer.add_many(chunk_results)
                        for r in chunk_results:
                            heap.push(r)
                    if kept is not None:
                        kept.extend(chunk_results)
                    # Parent-resident records right now: the kept list (or just
                    # this chunk when dropping), the worst-K slice, plus the
                    # worst-case results buffered in completed-but-undrained
                    # futures of the in-flight window.
                    resident = (len(kept) if kept is not None else len(chunk_results))
                    peak_resident = max(
                        peak_resident, resident + len(heap) + in_flight_extra
                    )
                    if progress is not None:
                        snap = reducer.snapshot()
                        n_events += 1
                        progress(
                            StudyProgress(
                                n_done=n_done,
                                n_total=total,
                                n_chunks=n_chunks,
                                n_converged=snap["n_converged"],
                                n_errors=snap["n_errors"],
                                violation_rate=snap["violation_rate"],
                                elapsed_s=time.perf_counter() - start,
                                chunk_wall_s=outcome.wall_s,
                                worker_pid=outcome.worker_pid,
                            )
                        )
            root.tags["n_scenarios"] = n_done
            root.tags["n_chunks"] = n_chunks

        metrics.counter(
            "gridmind_studies_total", "Batch studies by analysis"
        ).inc(analysis=self.analysis)
        record_study()
        metrics.histogram(
            "gridmind_study_seconds", "End-to-end study wall time"
        ).observe(time.perf_counter() - start)

        return StudyResult(
            case_name=base.name,
            analysis=self.analysis,
            results=kept if kept is not None else [],
            runtime_s=time.perf_counter() - start,
            n_jobs=jobs,
            n_scenarios=n_done,
            worst_results=heap.worst(),
            n_progress_events=n_events,
            peak_resident_results=peak_resident,
            slice_spec=config.slice_spec() if config.slice_by else None,
            _aggregate=reducer.result(),
        )
