"""The simulated language model: deterministic plan-and-call policy.

``SimulatedLLM`` implements the :class:`~repro.llm.base.LLMBackend`
protocol the way a provider API would behave in an agent loop — it is
*stateless across calls*, deriving everything from the message history:

1. parse the latest user message with the rule-grammar NLU,
2. plan the tool-call sequence its intent requires (consulting the
   structured context summary the agent injects, so fresh solutions are
   reused instead of re-solved — the paper's memory behaviour),
3. on each call, either emit the next tool call of the plan or, when all
   results are in, narrate them with every number drawn from the returned
   JSON (no fabrication path exists by construction).

Model profiles modulate latency (virtual clock), verbosity, token
throughput and the contingency-ranking emphasis; the numerical answers
come from the tools and are therefore profile-independent — the paper's
headline result.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from .base import ChatMessage, LLMResponse, ToolCallRequest, ToolSpec
from .latency import LatencyModel, VirtualClock, rng_for
from .nlu import Intent, ParsedIntent, classify
from . import narration
from .profiles import ModelProfile, get_profile
from .tokens import usage_for

#: Marker the agent layer uses when injecting structured context summaries.
CONTEXT_MARKER = "[context]"

#: Batch-study tools (one per scenario family the study agent exposes).
STUDY_TOOLS = (
    "run_load_sweep_study",
    "run_monte_carlo_study",
    "run_outage_study",
    "run_daily_profile_study",
)


@dataclass
class PlannedStep:
    """One tool invocation the policy intends to make."""

    tool: str
    arguments: dict = field(default_factory=dict)


class SimulatedLLM:
    """Deterministic simulated chat model with tool calling."""

    def __init__(
        self,
        model: str | ModelProfile = "gpt-5-mini",
        *,
        seed: int = 0,
        clock: VirtualClock | None = None,
    ) -> None:
        self.profile = model if isinstance(model, ModelProfile) else get_profile(model)
        self.name = self.profile.name
        self.clock = clock or VirtualClock()
        self._rng = rng_for(self.profile.name, seed)
        self._call_counter = 0

    # ------------------------------------------------------------------
    def complete(
        self, messages: list[ChatMessage], tools: list[ToolSpec]
    ) -> LLMResponse:
        """Produce the next assistant message for this conversation."""
        tool_names = {t.name for t in tools}
        latency_model = self._latency_model(tool_names)

        user_idx = self._last_user_index(messages)
        if user_idx is None:
            reply = ChatMessage(
                role="assistant",
                content=(
                    "Hello! I can solve ACOPF cases, modify loads, and run N-1 "
                    "contingency analysis on the IEEE test systems."
                ),
            )
            return self._respond(messages, reply, latency_model)

        user_msg = messages[user_idx]
        context = self._latest_context(messages[: user_idx + 1])
        parsed = classify(user_msg.content)

        plan = self._plan(parsed, context, tool_names)
        if plan is None:  # clarification needed; final text, no tools
            missing = self._missing_entity(parsed, context)
            reply = ChatMessage(
                role="assistant", content=narration.narrate_clarification(missing)
            )
            return self._respond(messages, reply, latency_model)

        issued, results = self._progress(messages[user_idx + 1 :])

        # Surface tool errors instead of continuing a broken plan.
        if results:
            last = results[-1]
            if isinstance(last.get("payload"), dict) and "error" in last["payload"]:
                reply = ChatMessage(
                    role="assistant",
                    content=narration.narrate_error(
                        str(last["payload"]["error"]), last["tool"]
                    ),
                )
                return self._respond(messages, reply, latency_model)

        if issued < len(plan):
            step = plan[issued]
            self._call_counter += 1
            reply = ChatMessage(
                role="assistant",
                content=self._reasoning_preamble(parsed, step),
                tool_calls=[
                    ToolCallRequest(
                        call_id=f"call_{self._call_counter}",
                        name=step.tool,
                        arguments=step.arguments,
                    )
                ],
            )
            return self._respond(messages, reply, latency_model)

        reply = ChatMessage(
            role="assistant",
            content=self._narrate(parsed, context, results),
        )
        return self._respond(messages, reply, latency_model)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _latency_model(self, tool_names: set[str]) -> LatencyModel:
        is_deep_task = any(
            t in tool_names
            for t in (
                "run_n1_contingency_analysis",
                "analyze_specific_contingency",
                "watch_telemetry",
                *STUDY_TOOLS,
            )
        )
        return self.profile.deep_latency if is_deep_task else self.profile.chat_latency

    def _respond(
        self,
        messages: list[ChatMessage],
        reply: ChatMessage,
        latency_model: LatencyModel,
    ) -> LLMResponse:
        latency = latency_model.sample(self._rng)
        usage = usage_for(messages, reply)
        latency += usage.completion_tokens / self.profile.output_tokens_per_s
        self.clock.advance(latency)
        return LLMResponse(
            message=reply, usage=usage, latency_s=latency, model=self.profile.name
        )

    @staticmethod
    def _last_user_index(messages: list[ChatMessage]) -> int | None:
        for i in range(len(messages) - 1, -1, -1):
            if messages[i].role == "user":
                return i
        return None

    @staticmethod
    def _latest_context(messages: list[ChatMessage]) -> dict:
        """Parse the most recent structured context summary, if any."""
        for msg in reversed(messages):
            if msg.role == "system" and msg.content.startswith(CONTEXT_MARKER):
                try:
                    return json.loads(msg.content[len(CONTEXT_MARKER):])
                except json.JSONDecodeError:
                    return {}
        return {}

    @staticmethod
    def _progress(tail: list[ChatMessage]) -> tuple[int, list[dict]]:
        """Count tool calls already issued after the user message and
        collect their parsed results in order."""
        issued = 0
        results: list[dict] = []
        pending_names: dict[str, str] = {}
        for msg in tail:
            if msg.role == "assistant" and msg.tool_calls:
                issued += len(msg.tool_calls)
                for tc in msg.tool_calls:
                    pending_names[tc.call_id] = tc.name
            elif msg.role == "tool":
                try:
                    payload = json.loads(msg.content)
                except json.JSONDecodeError:
                    payload = {"raw": msg.content}
                results.append(
                    {
                        "tool": pending_names.get(msg.tool_call_id, msg.name or "?"),
                        "payload": payload,
                    }
                )
        return issued, results

    # ------------------------------------------------------------------
    def _plan(
        self, parsed: ParsedIntent, context: dict, tool_names: set[str]
    ) -> list[PlannedStep] | None:
        """Tool-call plan for the intent, or None if clarification needed."""
        ents = parsed.entities
        case = ents.get("case") or context.get("case")
        have_fresh = bool(context.get("solved")) and bool(context.get("fresh"))
        prof = self.profile

        if parsed.intent == Intent.SOLVE_CASE:
            if case is None:
                return None
            return [PlannedStep("solve_acopf_case", {"case_name": case})]

        if parsed.intent == Intent.MODIFY_LOAD:
            bus = ents.get("bus")
            if bus is None or case is None:
                return None
            args: dict = {"bus": bus}
            if "mw" in ents:
                mw = ents["mw"]
                if ents.get("mode") == "delta":
                    if ents.get("direction") == "decrease" and mw > 0:
                        mw = -mw
                    args["delta_mw"] = mw
                else:
                    args["pd_mw"] = mw
            elif "percent" in ents:
                pct = ents["percent"]
                if ents.get("direction") == "decrease" and pct > 0:
                    pct = -pct
                args["percent"] = pct
            else:
                return None
            steps = []
            if not context.get("solved"):
                steps.append(PlannedStep("solve_acopf_case", {"case_name": case}))
            steps.append(PlannedStep("modify_bus_load", args))
            return steps

        if parsed.intent == Intent.NETWORK_STATUS:
            if "get_network_status" in tool_names:
                return [PlannedStep("get_network_status", {})]
            return [PlannedStep("get_contingency_status", {})]

        if parsed.intent == Intent.SOLUTION_QUALITY:
            if "assess_solution_quality" in tool_names:
                steps = []
                if case is not None and not have_fresh:
                    steps.append(PlannedStep("solve_acopf_case", {"case_name": case}))
                steps.append(PlannedStep("assess_solution_quality", {}))
                return steps
            return [PlannedStep("get_network_status", {})]

        if parsed.intent == Intent.RUN_CONTINGENCY:
            if case is None:
                return None
            steps = []
            if not have_fresh or "solve_base_case" in tool_names:
                steps.append(PlannedStep("solve_base_case", {"case_name": case}))
            steps.append(
                PlannedStep(
                    "run_n1_contingency_analysis",
                    {
                        "top_n": ents.get("top_n", 5),
                        "weights_profile": prof.ca_weights_profile,
                        "overload_threshold": prof.ca_overload_threshold,
                        "ranking_metric": (
                            "peak_overload"
                            if prof.quirks.get("reports_extra_stress")
                            else "severity"
                        ),
                    },
                )
            )
            return steps

        if parsed.intent == Intent.ANALYZE_OUTAGE:
            if case is None:
                return None
            target = self._outage_args(ents)
            if target is None:
                return None
            steps = []
            if not have_fresh:
                steps.append(PlannedStep("solve_base_case", {"case_name": case}))
            steps.append(PlannedStep("analyze_specific_contingency", target))
            return steps

        if parsed.intent == Intent.ECONOMIC_IMPACT:
            if case is None:
                return None
            target = self._outage_args(ents)
            if target is None:
                return None
            steps = []
            if not have_fresh:
                steps.append(PlannedStep("solve_acopf_case", {"case_name": case}))
            steps.append(PlannedStep("apply_branch_outage", target))
            steps.append(PlannedStep("solve_acopf_case", {"case_name": case}))
            return steps

        if parsed.intent == Intent.WATCH_TELEMETRY:
            if case is None:
                return None
            args: dict = {"case_name": case}
            if "n_devices" in ents:
                args["n_devices"] = ents["n_devices"]
            if "n_windows" in ents:
                args["n_windows"] = ents["n_windows"]
            return [PlannedStep("watch_telemetry", args)]

        if parsed.intent == Intent.RUN_STUDY:
            # Comparison questions target the cross-session result store,
            # not a fresh run — and need no case (the store is addressed
            # by content-hash keys).  Checked before the kind keywords so
            # "compare today's sweep with yesterday's" never re-runs a
            # sweep.
            if ents.get("study_compare"):
                return [PlannedStep("compare_studies", {})]
            # Status/summary questions about an earlier study need no case —
            # and must not re-run the (expensive) study even when the
            # question names its kind ("results of the Monte Carlo study?").
            is_status_question = re.search(
                r"status|summar|result|how did", parsed.text, re.I
            ) and not re.search(
                r"\b(run|execute|perform|launch|start|do|repeat)\b",
                parsed.text,
                re.I,
            )
            if is_status_question:
                return [PlannedStep("get_study_status", {})]
            if case is None:
                return None
            kind = ents.get("study", "monte_carlo")
            analysis = ents.get("study_analysis")
            # An explicit "slice by hour" style request overrides the
            # study tool's own family inference; omitted, the tool infers.
            slice_args = (
                {"slice_by": ents["slice_by"]} if "slice_by" in ents else {}
            )
            if kind == "sweep":
                args = {
                    "case_name": case,
                    "lo_percent": ents.get("sweep_lo_percent", 80.0),
                    "hi_percent": ents.get("sweep_hi_percent", 120.0),
                    "steps": ents.get("n_scenarios", 9),
                    "analysis": analysis or "acopf",
                    **slice_args,
                }
                return [PlannedStep("run_load_sweep_study", args)]
            if kind == "outage":
                return [
                    PlannedStep(
                        "run_outage_study",
                        {
                            "case_name": case,
                            "limit": ents.get("n_scenarios", 50),
                            "analysis": analysis or "powerflow",
                            **slice_args,
                        },
                    )
                ]
            if kind == "profile":
                return [
                    PlannedStep(
                        "run_daily_profile_study",
                        {
                            "case_name": case,
                            "steps": ents.get("n_scenarios", 24),
                            "analysis": analysis or "powerflow",
                            **slice_args,
                        },
                    )
                ]
            mc_args = {
                "case_name": case,
                "n_scenarios": ents.get("n_scenarios", 200),
                "sigma_percent": ents.get("sigma_percent", 5.0),
                "analysis": analysis or "powerflow",
                **slice_args,
            }
            # Zonal correlated draws ("4 zones correlated 60%"); a bare
            # "by zone" request implies zones so the tool can tag them.
            if "n_zones" in ents:
                mc_args["n_zones"] = ents["n_zones"]
            elif ents.get("slice_by") == "hot_zone":
                mc_args["n_zones"] = 4
            if "rho_percent" in ents:
                mc_args["rho_percent"] = ents["rho_percent"]
            return [PlannedStep("run_monte_carlo_study", mc_args)]

        if parsed.intent == Intent.HELP:
            return []

        return None if parsed.intent == Intent.UNKNOWN else []

    @staticmethod
    def _outage_args(ents: dict) -> dict | None:
        if "branch_id" in ents:
            return {"branch_id": ents["branch_id"]}
        if "from_bus" in ents and "to_bus" in ents:
            return {"from_bus": ents["from_bus"], "to_bus": ents["to_bus"]}
        return None

    @staticmethod
    def _missing_entity(parsed: ParsedIntent, context: dict) -> str:
        ents = parsed.entities
        case = ents.get("case") or context.get("case")
        if parsed.intent in (
            Intent.SOLVE_CASE,
            Intent.RUN_CONTINGENCY,
            Intent.ANALYZE_OUTAGE,
            Intent.ECONOMIC_IMPACT,
            Intent.RUN_STUDY,
            Intent.WATCH_TELEMETRY,
        ) and case is None:
            return "case"
        if parsed.intent == Intent.MODIFY_LOAD:
            if ents.get("bus") is None:
                return "bus"
            if "mw" not in ents and "percent" not in ents:
                return "value"
        if parsed.intent in (Intent.ANALYZE_OUTAGE, Intent.ECONOMIC_IMPACT):
            return "branch"
        return "general"

    def _reasoning_preamble(self, parsed: ParsedIntent, step: PlannedStep) -> str:
        """Short chain-of-thought style note accompanying a tool call."""
        if self.profile.verbosity == 0:
            return ""
        notes = {
            "solve_acopf_case": "Invoking the ACOPF solver for a validated dispatch.",
            "modify_bus_load": "Applying the load modification and re-dispatching.",
            "get_network_status": "Retrieving the current network state from context.",
            "assess_solution_quality": "Scoring the stored solution against quality metrics.",
            "solve_base_case": "Establishing a validated base case before contingencies.",
            "run_n1_contingency_analysis": (
                "Sweeping single-element outages with the power-flow solver."
            ),
            "analyze_specific_contingency": "Simulating the requested outage.",
            "apply_branch_outage": "Removing the branch from service in the model.",
            "run_load_sweep_study": (
                "Expanding the load sweep lazily and streaming the batch "
                "through the online reducer."
            ),
            "run_monte_carlo_study": (
                "Streaming the Monte Carlo ensemble through the batch "
                "runner with incremental aggregation."
            ),
            "run_outage_study": (
                "Enumerating outage combinations lazily and streaming the "
                "batch study."
            ),
            "run_daily_profile_study": (
                "Stepping through the daily load profile with the "
                "streaming batch runner."
            ),
            "watch_telemetry": (
                "Attaching a simulated device fleet and streaming the live "
                "feed through the rolling-window study."
            ),
            "compare_studies": (
                "Retrieving both persisted result sets and diffing their aggregates."
            ),
            "list_stored_studies": "Listing the persisted studies in the store.",
        }
        return notes.get(step.tool, f"Calling {step.tool}.")

    # ------------------------------------------------------------------
    def _narrate(
        self, parsed: ParsedIntent, context: dict, results: list[dict]
    ) -> str:
        verb = self.profile.verbosity
        by_tool: dict[str, dict] = {r["tool"]: r["payload"] for r in results}

        if parsed.intent == Intent.HELP or not results:
            return (
                "I can: solve ACOPF for the IEEE 14/30/57/118/300 cases, modify "
                "bus loads and re-dispatch, report network status, run full N-1 "
                "contingency analysis, analyse specific outages, rank critical "
                "elements with reinforcement recommendations, and run batch "
                "scenario studies (load sweeps, Monte Carlo ensembles, N-2 "
                "outage combinations, daily load profiles), and watch a live "
                "telemetry feed through rolling-window studies."
            )

        if parsed.intent == Intent.ECONOMIC_IMPACT:
            solves = [r["payload"] for r in results if r["tool"] == "solve_acopf_case"]
            outage = by_tool.get("apply_branch_outage", {})
            if solves:
                final = dict(solves[-1])
                base_cost = (
                    solves[0]["objective_cost"]
                    if len(solves) > 1
                    else context.get("objective_cost", final.get("objective_cost"))
                )
                final["base_objective_cost"] = base_cost
                final["branch_desc"] = outage.get(
                    "branch_desc", outage.get("branch_id", "the branch")
                )
                return narration.narrate_economic_impact(final, verb)

        if parsed.intent == Intent.MODIFY_LOAD and "modify_bus_load" in by_tool:
            return narration.narrate_load_change(by_tool["modify_bus_load"], verb)

        if parsed.intent == Intent.RUN_CONTINGENCY and (
            "run_n1_contingency_analysis" in by_tool
        ):
            return narration.narrate_contingency(
                by_tool["run_n1_contingency_analysis"], verb
            )

        if parsed.intent == Intent.ANALYZE_OUTAGE and (
            "analyze_specific_contingency" in by_tool
        ):
            return narration.narrate_specific_outage(
                by_tool["analyze_specific_contingency"], verb
            )

        if parsed.intent == Intent.SOLUTION_QUALITY and (
            "assess_solution_quality" in by_tool
        ):
            return narration.narrate_quality(by_tool["assess_solution_quality"], verb)

        if parsed.intent == Intent.WATCH_TELEMETRY and "watch_telemetry" in by_tool:
            return narration.narrate_watch(by_tool["watch_telemetry"], verb)

        if parsed.intent == Intent.RUN_STUDY:
            if "compare_studies" in by_tool:
                return narration.narrate_study_comparison(
                    by_tool["compare_studies"], verb
                )
            for tool in STUDY_TOOLS:
                if tool in by_tool:
                    return narration.narrate_study(by_tool[tool], verb)
            if "get_study_status" in by_tool:
                return narration.narrate_study(
                    by_tool["get_study_status"].get("study") or {}, verb
                )

        if parsed.intent == Intent.NETWORK_STATUS:
            payload = by_tool.get("get_network_status") or by_tool.get(
                "get_contingency_status", {}
            )
            return narration.narrate_status(payload, verb)

        if "solve_acopf_case" in by_tool:
            return narration.narrate_acopf(by_tool["solve_acopf_case"], verb)
        if "solve_base_case" in by_tool:
            return narration.narrate_acopf(by_tool["solve_base_case"], verb)

        # Fallback: report the last structured payload verbatim.
        return json.dumps(results[-1]["payload"], indent=2, default=str)
