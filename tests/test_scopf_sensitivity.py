"""Security-constrained OPF and sensitivity analysis."""

import numpy as np
import pytest

from repro.grid.cases import load_case
from repro.opf import (
    analyze_sensitivities,
    estimate_load_impact,
    flow_sensitivities,
    solve_acopf,
    solve_scopf,
)
from repro.opf.scopf import _screen_violations


class TestSCOPF:
    @pytest.fixture(scope="class")
    def secured30(self):
        return solve_scopf(load_case("ieee30"), relief=1.25)

    def test_converges_and_prices_security(self, secured30):
        assert secured30.converged
        assert secured30.security_cost >= 0.0
        assert secured30.opf.objective_cost == pytest.approx(
            secured30.economic_cost + secured30.security_cost
        )

    def test_violations_reduced(self, secured30):
        hist = secured30.violations_history
        assert hist[-1] < hist[0]

    def test_unattainable_reported_not_hidden(self, secured30):
        # The synthetic cases have load-driven overloads: honesty required.
        for sc in secured30.unattainable:
            assert sc.severity > 1.25
            assert "limits branch" in sc.describe()

    def test_secured_dispatch_differs_from_economic(self, secured30):
        econ = solve_acopf(load_case("ieee30"))
        assert not np.allclose(secured30.opf.pg_mw, econ.pg_mw, atol=0.5)

    def test_screen_at_relief_one_finds_known_overloads(self):
        net = load_case("ieee30")
        econ = solve_acopf(net)
        cons = _screen_violations(net, econ.pg_mw / 100.0, relief=1.0)
        assert cons  # the case is not N-1 clean by design
        # One cut per limited branch (dedup invariant).
        limited = [sc.limited_branch for sc in cons]
        assert len(limited) == len(set(limited))
        # Sorted most severe first.
        sevs = [sc.severity for sc in cons]
        assert sevs == sorted(sevs, reverse=True)

    def test_higher_relief_fewer_cuts(self):
        net = load_case("ieee30")
        econ = solve_acopf(net)
        strict = _screen_violations(net, econ.pg_mw / 100.0, relief=1.0)
        loose = _screen_violations(net, econ.pg_mw / 100.0, relief=1.5)
        assert len(loose) <= len(strict)

    def test_fully_secure_flag_semantics(self, secured30):
        # With unattainable cuts present, the system is NOT fully secure.
        if secured30.unattainable:
            assert not secured30.fully_secure


class TestSensitivities:
    @pytest.fixture(scope="class")
    def report30(self):
        return analyze_sensitivities(load_case("ieee30"))

    def test_reference_price_positive(self, report30):
        assert 10.0 < report30.reference_price < 100.0

    def test_congestion_zero_at_slack(self, report30):
        net = load_case("ieee30")
        slack = net.slack_bus()
        assert report30.congestion_component[slack] == pytest.approx(0.0)

    def test_extreme_buses_ordered(self, report30):
        cheapest = report30.cheapest_buses
        priciest = report30.most_expensive_buses
        assert cheapest[0][1] <= priciest[0][1]

    def test_predicted_cost_delta_uses_lmp(self, report30):
        bus = 3
        assert report30.predicted_cost_delta(bus, 10.0) == pytest.approx(
            10.0 * report30.lmp_mw[bus]
        )

    def test_flow_sensitivities_row(self):
        net = load_case("ieee30")
        row = flow_sensitivities(net, 0)
        assert row.shape == (30,)
        assert np.all(np.abs(row) <= 1.0 + 1e-9)

    def test_flow_sensitivities_missing_branch(self):
        net = load_case("ieee30")
        net.set_branch_status(0, False)
        with pytest.raises(KeyError, match="not in service"):
            flow_sensitivities(net, 0)

    def test_load_impact_first_order_accuracy(self):
        """LMP-based prediction within ~10 % of the exact re-solve for a
        small change (first-order validity)."""
        net = load_case("ieee30")
        impact = estimate_load_impact(net, 3, 10.0)
        assert impact.actual_delta_cost > 0
        assert impact.prediction_error_percent < 10.0

    def test_load_impact_infeasible_raises(self):
        net = load_case("ieee30")
        with pytest.raises(ValueError, match="infeasible"):
            estimate_load_impact(net, 3, 5000.0)
