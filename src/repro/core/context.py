"""Shared, versioned agent context (paper Sections 3.3-3.4).

One :class:`AgentContext` instance is shared by every agent in a session.
It tracks the active network, the latest validated artefacts
(ACOPF solution, base power flow, contingency result set), a chronological
diff log of modifications, provenance records, and the contingency cache.
Freshness is decided by comparing the network's version counter against
the version each artefact was computed at — the mechanism that lets the
CA agent "inspect freshness against the diff log to decide whether it can
reuse that base point".

``save`` / ``load`` persist the whole session state as JSON for seamless
resumption.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..contingency.cache import ContingencyCache
from ..grid.cases import load_case
from ..grid.io import from_matpower, to_matpower
from ..grid.network import Network
from ..opf.result import OPFResult
from ..powerflow.solution import PowerFlowResult
from .schemas import (
    ACOPFSolution,
    ContingencyAnalysisResult,
    Modification,
    PowerSystemModel,
    ProvenanceRecord,
)


@dataclass
class AgentContext:
    """Structured session state shared across agents."""

    network: Network | None = None
    acopf_solution: ACOPFSolution | None = None
    acopf_raw: OPFResult | None = None
    acopf_version: int = -1  # network version the solution belongs to
    base_pf: PowerFlowResult | None = None
    base_pf_version: int = -1
    ca_result: ContingencyAnalysisResult | None = None
    ca_version: int = -1
    modifications: list[Modification] = field(default_factory=list)
    provenance: list[ProvenanceRecord] = field(default_factory=list)
    contingency_cache: ContingencyCache = field(default_factory=ContingencyCache)
    study_summary: dict | None = None  # last batch-study payload (JSON-ready)
    #: Optional cross-session result store (duck-typed to
    #: :class:`repro.service.store.ResultStore`; kept loose so core never
    #: imports the service layer).  Runtime wiring only — not persisted.
    result_store: object | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # case management
    # ------------------------------------------------------------------
    @property
    def case_name(self) -> str:
        return self.network.metadata.case_name if self.network else ""

    def activate_case(self, name: str) -> Network:
        """Load a case, resetting per-case artefacts if the case changes."""
        if self.network is not None and self.case_name == name:
            return self.network
        self.network = load_case(name)
        self.acopf_solution = None
        self.acopf_raw = None
        self.acopf_version = -1
        self.base_pf = None
        self.base_pf_version = -1
        self.ca_result = None
        self.ca_version = -1
        self.study_summary = None
        self.modifications.clear()
        return self.network

    def require_network(self) -> Network:
        if self.network is None:
            raise ValueError("no case loaded; solve or load a case first")
        return self.network

    # ------------------------------------------------------------------
    # artefact freshness
    # ------------------------------------------------------------------
    def acopf_fresh(self) -> bool:
        return (
            self.network is not None
            and self.acopf_solution is not None
            and self.acopf_solution.solved
            and self.acopf_version == self.network.version
        )

    def base_pf_fresh(self) -> bool:
        return (
            self.network is not None
            and self.base_pf is not None
            and self.base_pf.converged
            and self.base_pf_version == self.network.version
        )

    def ca_fresh(self) -> bool:
        return (
            self.network is not None
            and self.ca_result is not None
            and self.ca_version == self.network.version
        )

    def deposit_acopf(self, solution: ACOPFSolution, raw: OPFResult) -> None:
        self.acopf_solution = solution
        self.acopf_raw = raw
        self.acopf_version = self.require_network().version

    def deposit_base_pf(self, result: PowerFlowResult) -> None:
        self.base_pf = result
        self.base_pf_version = self.require_network().version

    def deposit_ca(self, result: ContingencyAnalysisResult) -> None:
        self.ca_result = result
        self.ca_version = self.require_network().version

    # ------------------------------------------------------------------
    # study retrieval (in-memory first, then the cross-session store)
    # ------------------------------------------------------------------
    def latest_study_summary(self) -> dict | None:
        """The most recent study payload this context can see.

        Prefers the in-memory summary (this session's last study); when a
        result store is attached, falls back to the newest *persisted*
        study — so a brand-new session can answer "what did the last
        study find?" about work another session ran.
        """
        if self.study_summary is not None:
            return self.study_summary
        if self.result_store is None:
            return None
        try:
            return self.result_store.latest_summary()
        except Exception:
            # A corrupt/unreadable store must degrade to "no study", not
            # break status questions.
            return None

    # ------------------------------------------------------------------
    # diff log & provenance
    # ------------------------------------------------------------------
    def record_modification(self, kind: str, description: str, **params) -> None:
        self.modifications.append(
            Modification(
                kind=kind,
                description=description,
                params=params,
                network_version=self.require_network().version,
            )
        )

    def record_provenance(
        self, tool: str, solver: str = "", ok: bool = True, duration_s: float = 0.0, **options
    ) -> None:
        self.provenance.append(
            ProvenanceRecord(
                tool=tool, solver=solver, ok=ok, duration_s=duration_s, options=options
            )
        )

    # ------------------------------------------------------------------
    # summaries (what the simulated model reads; CONTEXT_MARKER payload)
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        out: dict = {
            "case": self.case_name or None,
            "solved": bool(self.acopf_solution and self.acopf_solution.solved),
            "fresh": self.acopf_fresh(),
            "base_pf_fresh": self.base_pf_fresh(),
            "n_modifications": len(self.modifications),
        }
        if self.acopf_solution is not None:
            out["objective_cost"] = self.acopf_solution.objective_cost
            out["min_voltage_pu"] = self.acopf_solution.min_voltage_pu
            out["max_thermal_loading"] = self.acopf_solution.max_loading_percent
        if self.ca_result is not None:
            out["ca_fresh"] = self.ca_fresh()
            out["ca_max_overload_percent"] = self.ca_result.max_overload_percent
        if self.study_summary is not None:
            out["study_kind"] = self.study_summary.get("study_kind")
            out["study_n_scenarios"] = self.study_summary.get("n_scenarios")
        return out

    def system_model(self) -> PowerSystemModel:
        net = self.require_network()
        return PowerSystemModel(
            case_name=net.metadata.case_name,
            n_bus=net.n_bus,
            n_gen=net.n_gen,
            n_load=net.n_load,
            n_branch=net.n_branch,
            n_line=net.n_line,
            n_transformer=net.n_transformer,
            base_mva=net.base_mva,
            total_load_mw=net.total_load_mw(),
            total_load_mvar=net.total_load_mvar(),
            gen_capacity_mw=net.total_gen_capacity_mw(),
            description=net.metadata.description,
            source=net.metadata.source,
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Serialise session state (network, artefacts, diff log) to JSON."""
        payload: dict = {
            "format": "gridmind-session-v1",
            "case_name": self.case_name,
            "network": to_matpower(self.network) if self.network else None,
            "network_meta": {
                "name": self.case_name,
                "description": self.network.metadata.description if self.network else "",
                "source": self.network.metadata.source if self.network else "",
            },
            "acopf_solution": (
                self.acopf_solution.model_dump() if self.acopf_solution else None
            ),
            "acopf_is_fresh": self.acopf_fresh(),
            "ca_result": self.ca_result.model_dump() if self.ca_result else None,
            "ca_is_fresh": self.ca_fresh(),
            "study_summary": self.study_summary,
            "modifications": [m.model_dump() for m in self.modifications],
            "provenance": [p.model_dump() for p in self.provenance],
        }
        Path(path).write_text(json.dumps(payload, indent=1, default=str))

    @classmethod
    def load(cls, path: str | Path) -> "AgentContext":
        payload = json.loads(Path(path).read_text())
        if payload.get("format") != "gridmind-session-v1":
            raise ValueError(f"{path}: not a gridmind-session-v1 file")
        ctx = cls()
        if payload.get("network") is not None:
            meta = payload.get("network_meta", {})
            ctx.network = from_matpower(
                payload["network"],
                name=meta.get("name", ""),
                source=meta.get("source", ""),
            )
            ctx.network.metadata.description = meta.get("description", "")
        if payload.get("acopf_solution"):
            ctx.acopf_solution = ACOPFSolution(**payload["acopf_solution"])
            if payload.get("acopf_is_fresh") and ctx.network is not None:
                ctx.acopf_version = ctx.network.version
        if payload.get("ca_result"):
            ctx.ca_result = ContingencyAnalysisResult(**payload["ca_result"])
            if payload.get("ca_is_fresh") and ctx.network is not None:
                ctx.ca_version = ctx.network.version
        ctx.study_summary = payload.get("study_summary")
        ctx.modifications = [
            Modification(**m) for m in payload.get("modifications", [])
        ]
        ctx.provenance = [
            ProvenanceRecord(**p) for p in payload.get("provenance", [])
        ]
        return ctx
