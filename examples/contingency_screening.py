#!/usr/bin/env python
"""Contingency screening at scale: full AC N-1 vs LODF-accelerated.

Production contingency analysis rarely runs the full AC sweep — it
screens with linear sensitivities (PTDF/LODF) and verifies only the
dangerous slice with AC power flows.  This example runs both paths on
the 118-bus system, compares wall time and ranking agreement, and prints
the critical-element report with reinforcement recommendations
(paper Section 3.2.3's output, produced by the core library directly).

Run:  python examples/contingency_screening.py [case] [ac_budget]
"""

from __future__ import annotations

import sys
import time

from repro import load_case
from repro.contingency import (
    rank_critical_elements,
    run_n_minus_1,
    run_screened_n_minus_1,
)


def main() -> None:
    case = sys.argv[1] if len(sys.argv) > 1 else "ieee118"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 25
    net = load_case(case)
    print(f"case: {case} — {net.n_branch} branches to outage\n")

    t0 = time.perf_counter()
    full = run_n_minus_1(net)
    t_full = time.perf_counter() - t0

    t0 = time.perf_counter()
    screened, estimate = run_screened_n_minus_1(net, ac_budget=budget)
    t_screen = time.perf_counter() - t0

    print(f"full AC sweep     : {full.n_contingencies:4d} AC solves, "
          f"{t_full:6.2f}s, {full.n_violations} outages with violations")
    print(f"LODF + AC verify  : {screened.n_contingencies:4d} AC solves, "
          f"{t_screen:6.2f}s (screen itself {estimate.runtime_s*1000:.0f} ms) "
          f"-> {t_full / max(t_screen, 1e-9):.1f}x speedup")

    rank_full = rank_critical_elements(full, top_n=5)
    rank_screen = rank_critical_elements(screened, top_n=5)
    agree = len(
        set(rank_full.critical_branch_ids) & set(rank_screen.critical_branch_ids)
    )
    print(f"top-5 agreement   : {agree}/5 "
          f"(full={rank_full.critical_branch_ids}, "
          f"screened={rank_screen.critical_branch_ids})\n")

    print("critical-element report (full sweep):")
    for r in rank_full.ranked:
        print(f"  {r.rank}. {r.justification}")
    print("\nrecommendations:")
    for rec in rank_full.recommendations:
        print(f"  - {rec}")


if __name__ == "__main__":
    main()
