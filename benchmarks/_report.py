"""Benchmark report emission: paper-vs-measured tables.

pytest's default capture intercepts file descriptor 1 itself, so tables
printed during a test only surface on failure.  ``emit`` therefore (a)
archives every table under ``benchmarks/results/`` and (b) queues it for
the ``pytest_terminal_summary`` hook in ``benchmarks/conftest.py``, which
prints after capture ends — so ``pytest benchmarks/ --benchmark-only``
shows the paper-vs-measured tables inline.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Blocks queued for the terminal-summary hook (reset per session).
PENDING_BLOCKS: list[str] = []


def emit(name: str, title: str, lines: list[str]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    block = "\n".join(
        ["", "=" * 78, f"  {title}", "=" * 78, *lines, ""]
    )
    PENDING_BLOCKS.append(block)
    (RESULTS_DIR / f"{name}.txt").write_text(block + "\n")


def fmt_row(cols: list, widths: list[int]) -> str:
    out = []
    for col, width in zip(cols, widths):
        text = f"{col:.1f}" if isinstance(col, float) else str(col)
        out.append(text.ljust(abs(width)) if width > 0 else text.rjust(-width))
    return "  ".join(out)
