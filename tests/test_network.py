"""Network container: construction, mutation, compiled views."""

import numpy as np
import pytest

from repro.grid.components import BusType
from repro.grid.network import Network


def test_add_bus_assigns_contiguous_indices():
    net = Network()
    for _ in range(5):
        net.add_bus()
    assert [b.index for b in net.buses] == [0, 1, 2, 3, 4]


def test_add_gen_to_missing_bus_rejected():
    net = Network()
    net.add_bus()
    with pytest.raises(IndexError):
        net.add_gen(3)


def test_add_branch_to_missing_bus_rejected():
    net = Network()
    net.add_bus()
    with pytest.raises(IndexError):
        net.add_branch(0, 9)


def test_counts(tiny_net):
    assert tiny_net.n_bus == 3
    assert tiny_net.n_gen == 2
    assert tiny_net.n_load == 2
    assert tiny_net.n_branch == 3
    assert tiny_net.n_line == 3
    assert tiny_net.n_transformer == 0


def test_total_load(tiny_net):
    assert tiny_net.total_load_mw() == pytest.approx(80.0)
    assert tiny_net.total_load_mvar() == pytest.approx(25.0)


def test_slack_bus(tiny_net):
    assert tiny_net.slack_bus() == 0


def test_slack_bus_missing_raises():
    net = Network()
    net.add_bus()
    with pytest.raises(ValueError, match="no slack"):
        net.slack_bus()


def test_version_bumps_on_mutation(tiny_net):
    v0 = tiny_net.version
    tiny_net.set_load(1, 70.0)
    assert tiny_net.version > v0


def test_set_load_creates_when_absent(tiny_net):
    tiny_net.set_load(0, 5.0, 1.0)
    assert tiny_net.loads_at_bus(0)[0].pd_mw == pytest.approx(5.0)


def test_set_load_preserves_power_factor(tiny_net):
    # bus1 has 60 MW / 20 MVAr; doubling P should double Q.
    tiny_net.set_load(1, 120.0)
    loads = tiny_net.loads_at_bus(1)
    assert sum(ld.pd_mw for ld in loads) == pytest.approx(120.0)
    assert sum(ld.qd_mvar for ld in loads) == pytest.approx(40.0)


def test_set_load_zeroes_extra_loads():
    net = Network()
    net.add_bus()
    net.add_bus()
    net.buses[0].bus_type = BusType.SLACK
    net.add_load(1, pd_mw=10.0)
    net.add_load(1, pd_mw=20.0)
    net.set_load(1, 12.0, 3.0)
    loads = net.loads_at_bus(1)
    assert sum(ld.pd_mw for ld in loads) == pytest.approx(12.0)


def test_scale_loads(tiny_net):
    tiny_net.scale_loads(0.5)
    assert tiny_net.total_load_mw() == pytest.approx(40.0)


def test_scale_loads_negative_rejected(tiny_net):
    with pytest.raises(ValueError):
        tiny_net.scale_loads(-1.0)


def test_set_branch_status(tiny_net):
    tiny_net.set_branch_status(0, False)
    assert not tiny_net.branches[0].in_service
    assert tiny_net.in_service_branch_ids() == [1, 2]
    tiny_net.set_branch_status(0, True)
    assert tiny_net.branches[0].in_service


def test_set_branch_status_bad_id(tiny_net):
    with pytest.raises(IndexError):
        tiny_net.set_branch_status(99, False)


def test_find_branch_either_orientation(tiny_net):
    assert tiny_net.find_branch(0, 1) == 0
    assert tiny_net.find_branch(1, 0) == 0


def test_find_branch_missing(tiny_net):
    net = tiny_net
    with pytest.raises(KeyError):
        net.find_branch(0, 99)


def test_copy_is_independent(tiny_net):
    clone = tiny_net.copy()
    clone.set_load(1, 999.0)
    assert tiny_net.loads_at_bus(1)[0].pd_mw == pytest.approx(60.0)


def test_compile_caches_until_touch(tiny_net):
    arr1 = tiny_net.compile()
    arr2 = tiny_net.compile()
    assert arr1 is arr2
    tiny_net.touch()
    assert tiny_net.compile() is not arr1


def test_compile_per_unit_loads(tiny_net):
    arr = tiny_net.compile()
    assert arr.pd[1] == pytest.approx(0.6)
    assert arr.qd[1] == pytest.approx(0.2)


def test_compile_excludes_out_of_service_branch(tiny_net):
    tiny_net.set_branch_status(1, False)
    arr = tiny_net.compile()
    assert arr.n_branch == 2
    assert 1 not in arr.branch_ids


def test_compile_excludes_out_of_service_gen(tiny_net):
    tiny_net.gens[1].in_service = False
    tiny_net.touch()
    arr = tiny_net.compile()
    assert arr.n_gen == 1


def test_compile_pv_bus_voltage_seeded_from_vg(tiny_net):
    arr = tiny_net.compile()
    assert arr.vm0[2] == pytest.approx(1.01)


def test_compile_empty_network_raises():
    with pytest.raises(ValueError, match="empty"):
        Network().compile()


def test_gen_connection_matrix(tiny_net):
    arr = tiny_net.compile()
    cg = arr.gen_connection_matrix().toarray()
    assert cg.shape == (3, 2)
    assert cg[0, 0] == 1.0
    assert cg[2, 1] == 1.0
    assert np.count_nonzero(cg) == 2


def test_summary_matches_components(case14):
    s = case14.summary()
    assert s["bus"] == 14
    assert s["gen"] == 5
    assert s["load"] == 11
    assert s["ac_line"] == 17
    assert s["transformer"] == 3
    assert s["total_load_mw"] == pytest.approx(259.0)
