"""Case registry and Table 2 component counts."""

import pytest

from repro.grid.cases import (
    TABLE2_COUNTS,
    available_cases,
    build_synthetic,
    canonical_case_name,
    case_inventory,
    load_case,
)


@pytest.mark.parametrize("name", list(TABLE2_COUNTS))
def test_table2_counts_exact(name):
    """Every paper case matches Table 2's component counts exactly."""
    nb, ng, nl, nline, ntr = TABLE2_COUNTS[name]
    net = load_case(name)
    assert net.n_bus == nb
    assert net.n_gen == ng
    assert net.n_load == nl
    assert net.n_line == nline
    assert net.n_transformer == ntr


def test_case_inventory_covers_all_paper_cases():
    inv = case_inventory()
    assert [row["case"] for row in inv] == list(TABLE2_COUNTS)


@pytest.mark.parametrize(
    "spelling",
    ["ieee118", "IEEE 118", "case118", "118-bus", "the 118 bus system", "118"],
)
def test_canonical_case_name_spellings(spelling):
    assert canonical_case_name(spelling) == "ieee118"


def test_canonical_case_name_unknown():
    assert canonical_case_name("ieee9999") is None
    assert canonical_case_name("hello") is None


def test_load_case_returns_fresh_copies():
    a = load_case("ieee14")
    b = load_case("ieee14")
    a.set_load(1, 999.0)
    assert b.loads_at_bus(1)[0].pd_mw != 999.0


def test_load_case_unknown_raises():
    with pytest.raises(KeyError, match="available"):
        load_case("ieee9999")


def test_available_cases_sorted():
    cases = available_cases()
    assert "ieee14" in cases and "ieee300" in cases


def test_ieee14_is_genuine_data(case14):
    """Spot-check embedded values against the published case."""
    assert case14.base_mva == 100.0
    # Bus 9 (index 8) carries the 19 MVAr shunt.
    assert case14.buses[8].bs_mvar == pytest.approx(19.0)
    # Gen 1 cost coefficients.
    assert case14.gens[0].cost_coeffs[0] == pytest.approx(0.0430292599)
    # Branch 1-2 impedance.
    assert case14.branches[0].r_pu == pytest.approx(0.01938)
    assert case14.branches[0].x_pu == pytest.approx(0.05917)


def test_synthetic_generator_small_case_solves():
    """The live generation path (not the snapshot) produces a solvable net."""
    from repro.powerflow import solve_newton

    net = build_synthetic(
        "test-tiny", n_bus=12, n_gen=3, n_load=8, n_line=14, n_trafo=2,
        mean_load_mw=10.0,
    )
    assert net.n_bus == 12
    assert net.n_line == 14
    assert net.n_transformer == 2
    res = solve_newton(net)
    assert res.converged
    assert res.min_voltage_pu > 0.9


def test_synthetic_generator_is_deterministic():
    a = build_synthetic("det-check", 10, 2, 6, 12, 1, mean_load_mw=8.0)
    b = build_synthetic("det-check", 10, 2, 6, 12, 1, mean_load_mw=8.0)
    from repro.contingency.cache import network_content_hash

    assert network_content_hash(a) == network_content_hash(b)


def test_synthetic_generator_rejects_underconnected():
    with pytest.raises(ValueError, match="edges"):
        build_synthetic("bad", n_bus=10, n_gen=2, n_load=5, n_line=5, n_trafo=2)


def test_synthetic_ratings_are_set(case118):
    assert all(br.rate_a_mva > 0 for br in case118.branches)


def test_snapshot_load_matches_table2_loads(case118):
    # Calibration shaves loads but keeps them realistic for the scale.
    assert 2000.0 < case118.total_load_mw() < 6000.0


@pytest.mark.parametrize(
    "spelling",
    [
        "IEEE-118", "Case 118", "the 118-bus system", "ieee_118",
        "IEEE 118 bus network", "118 bus", "case_118",
    ],
)
def test_canonical_case_name_more_spellings(spelling):
    """Conversational variants all resolve to the registry key."""
    assert canonical_case_name(spelling) == "ieee118"


@pytest.mark.parametrize("name", list(TABLE2_COUNTS))
def test_canonical_case_name_identity(name):
    assert canonical_case_name(name) == name


def test_canonical_case_name_number_without_registry_match():
    """Numbers that parse but match no registered case return None."""
    assert canonical_case_name("ieee 42") is None
    assert canonical_case_name("9999-bus") is None


class TestFreshCopyIsolation:
    """Mutations through any API must never leak into the next load_case."""

    def test_load_mutation_does_not_leak(self):
        a = load_case("ieee14")
        baseline = a.total_load_mw()
        a.scale_loads(3.0)
        assert load_case("ieee14").total_load_mw() == pytest.approx(baseline)

    def test_topology_mutation_does_not_leak(self):
        a = load_case("ieee14")
        a.set_branch_status(0, False)
        a.gens[0].in_service = False
        b = load_case("ieee14")
        assert b.branches[0].in_service
        assert b.gens[0].in_service

    def test_added_components_do_not_leak(self):
        a = load_case("ieee14")
        n_loads = a.n_load
        a.add_load(2, pd_mw=10.0)
        assert load_case("ieee14").n_load == n_loads

    def test_alias_loads_are_independent(self):
        a = load_case("IEEE 14")
        b = load_case("case14")
        a.set_load(1, 777.0)
        assert sum(ld.pd_mw for ld in b.loads_at_bus(1)) != 777.0

    def test_scenario_realization_does_not_leak(self):
        from repro.scenarios import Scenario, UniformLoadScale

        a = load_case("ieee14")
        Scenario("s", (UniformLoadScale(2.0),)).realize(a)
        assert load_case("ieee14").total_load_mw() == pytest.approx(
            a.total_load_mw()
        )
