"""Simulated LLM backend (DESIGN.md S7).

Stands in for the paper's OpenAI/Anthropic APIs: same chat + tool-calling
protocol, deterministic rule-grammar planning, per-model latency/verbosity
profiles calibrated to the paper's measurements.  See DESIGN.md §1 for the
substitution rationale.
"""

from .base import (
    ChatMessage,
    LLMBackend,
    LLMResponse,
    TokenUsage,
    ToolCallRequest,
    ToolSpec,
)
from .latency import LatencyModel, VirtualClock, rng_for
from .nlu import Intent, ParsedIntent, classify, extract_entities, parse_request
from .profiles import PAPER_MODELS, PROFILES, ModelProfile, get_profile
from .simulated import CONTEXT_MARKER, SimulatedLLM
from .tokens import estimate_prompt_tokens, estimate_text_tokens, usage_for

__all__ = [
    "CONTEXT_MARKER",
    "ChatMessage",
    "Intent",
    "LLMBackend",
    "LLMResponse",
    "LatencyModel",
    "ModelProfile",
    "PAPER_MODELS",
    "PROFILES",
    "ParsedIntent",
    "SimulatedLLM",
    "TokenUsage",
    "ToolCallRequest",
    "ToolSpec",
    "VirtualClock",
    "classify",
    "estimate_prompt_tokens",
    "estimate_text_tokens",
    "extract_entities",
    "get_profile",
    "parse_request",
    "rng_for",
    "usage_for",
]
