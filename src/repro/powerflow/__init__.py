"""AC/DC power-flow solvers (DESIGN.md S4).

``solve_newton`` is the production path; ``solve_fast_decoupled`` /
``solve_gauss_seidel`` / ``solve_dc`` provide the recovery ladder and
baselines.  ``solve_with_recovery`` implements the paper's automatic
fallback behaviour (Section 3.2.1).  ``DcKernel`` is the batched DC
physics kernel: one factorization per topology serving single solves,
stacked multi-RHS batches, and PTDF sensitivities.  ``AcKernel`` is its
nonlinear counterpart: topology-cached admittances plus a base solve and
fast-decoupled factorizations serving warm-started stacked AC chunks.
"""

from .ac_batch import AcChunkSolution, AcKernel
from .batch import DcBatch, DcKernel, DcSolution, dc_injections, topology_digest
from .dc import solve_dc
from .fast_decoupled import solve_fast_decoupled
from .gauss_seidel import solve_gauss_seidel
from .newton import solve_newton
from .recovery import solve_with_recovery
from .solution import PowerFlowResult

__all__ = [
    "AcChunkSolution",
    "AcKernel",
    "DcBatch",
    "DcKernel",
    "DcSolution",
    "PowerFlowResult",
    "dc_injections",
    "solve_dc",
    "topology_digest",
    "solve_fast_decoupled",
    "solve_gauss_seidel",
    "solve_newton",
    "solve_with_recovery",
]
