"""Instrumentation bench (DESIGN.md S10): logging, auditing, tracing, metrics."""

from .audit import AuditResult, audit_narration
from .metrics import (
    MetricsRegistry,
    get_metrics,
    render_prometheus,
    set_metrics,
    state_delta,
)
from .ringlog import RingLog
from .runlog import RequestRecord, RunLogger
from .trace import (
    Span,
    Tracer,
    current_trace_context,
    format_trace_report,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "AuditResult",
    "MetricsRegistry",
    "RequestRecord",
    "RingLog",
    "RunLogger",
    "Span",
    "Tracer",
    "audit_narration",
    "current_trace_context",
    "format_trace_report",
    "get_metrics",
    "get_tracer",
    "render_prometheus",
    "set_metrics",
    "set_tracer",
    "state_delta",
    "tracing",
]
