"""N-1 contingency analysis engine (DESIGN.md S6).

``run_n_minus_1`` is the exhaustive AC sweep; ``run_screened_n_minus_1``
the LODF-accelerated two-stage variant; ``rank_critical_elements`` turns a
sweep into the ranked critical-element report the CA agent narrates.
"""

from .cache import CacheKey, ContingencyCache, network_content_hash
from .lodf import SensitivityFactors, compute_factors, compute_ptdf, post_outage_flows
from .nminus1 import NMinus1Report, analyze_single_outage, run_n_minus_1
from .outcomes import (
    BALANCED_WEIGHTS,
    THERMAL_WEIGHTS,
    ContingencyOutcome,
    SeverityWeights,
)
from .ranking import CriticalElementReport, RankedContingency, rank_critical_elements
from .screening import ScreeningEstimate, run_screened_n_minus_1, screen_dc

__all__ = [
    "BALANCED_WEIGHTS",
    "THERMAL_WEIGHTS",
    "CacheKey",
    "ContingencyCache",
    "ContingencyOutcome",
    "CriticalElementReport",
    "NMinus1Report",
    "RankedContingency",
    "ScreeningEstimate",
    "SensitivityFactors",
    "SeverityWeights",
    "analyze_single_outage",
    "compute_factors",
    "compute_ptdf",
    "network_content_hash",
    "post_outage_flows",
    "rank_critical_elements",
    "run_n_minus_1",
    "run_screened_n_minus_1",
    "screen_dc",
]
