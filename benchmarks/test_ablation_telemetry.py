"""E17 — Ablation: telemetry ingest and rolling-window cost vs fleet and window.

The watch loop's cost has two separable parts: *ingest* (per-frame fleet
model evaluation — one small RNG draw per (device, tick), no cross-device
state) and the *windowed study* (one powerflow per tick plus O(1)
reducer folds per result, with a whole-reducer eviction per closed
window).  This benchmark measures both across fleet sizes and window
lengths:

* ingest — raw frames/second from :meth:`DeviceFleet.frames_for_tick`
  alone (no solver, no windows), which should scale linearly in fleet
  size and be independent of the window spec;
* watch — the full :func:`run_watch` loop (solve + fold + close +
  health evaluation) at each (fleet size, window length) point, reported
  as wall seconds and milliseconds per closed window.

The per-window cost should grow roughly linearly with the window length
(more ticks folded per close), while fleet size contributes only the
linear ingest term: the scenario adapter collapses any number of frames
into one per-bus factor map, so the solver's share is flat in fleet
size — that separation is the scalability claim worth guarding.
Determinism is asserted at the smallest point (two runs, identical
digests).

``GRIDMIND_E17_DEVICES`` scales the base fleet (default 100, so tier-1
collection stays fast; the committed table was recorded at 400) and
``GRIDMIND_E17_TICKS`` the feed length.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.grid.cases import load_case
from repro.instrumentation.metrics import MetricsRegistry, set_metrics
from repro.telemetry import DeviceFleet, FleetSpec, run_watch

CASE = "ieee14"
BASE_DEVICES = int(os.environ.get("GRIDMIND_E17_DEVICES", "100"))
N_TICKS = int(os.environ.get("GRIDMIND_E17_TICKS", "16"))
FLEET_SIZES = (BASE_DEVICES // 4, BASE_DEVICES, 4 * BASE_DEVICES)
WINDOW_TICKS = (2, 4, 8)
SEED = 21


def _ingest_rate(fleet: DeviceFleet) -> float:
    """Frames/second of the pure fleet model (no solver, no windows)."""
    tick = time.perf_counter()
    n_frames = 0
    for t in range(N_TICKS):
        n_frames += len(fleet.frames_for_tick(t))
    wall = time.perf_counter() - tick
    return n_frames / wall if wall > 0 else float("inf")


def _watch_once(net, n_devices: int, window: int) -> dict:
    previous = set_metrics(MetricsRegistry())
    try:
        return run_watch(
            net,
            n_devices=n_devices,
            n_ticks=N_TICKS,
            window_ticks=window,
            seed=SEED,
        )
    finally:
        set_metrics(previous)


def test_ablation_telemetry(benchmark):
    net = load_case(CASE)
    ingest: dict[int, float] = {}
    outcomes: dict[tuple[int, int], dict] = {}

    def _run_all():
        for n_devices in FLEET_SIZES:
            fleet = DeviceFleet(net, FleetSpec(n_devices=n_devices, seed=SEED))
            ingest[n_devices] = _ingest_rate(fleet)
            for window in WINDOW_TICKS:
                outcomes[(n_devices, window)] = _watch_once(net, n_devices, window)

    benchmark.pedantic(_run_all, rounds=1, iterations=1)

    # Determinism at the smallest point: a replay agrees bit for bit.
    smallest = (FLEET_SIZES[0], WINDOW_TICKS[0])
    replay = _watch_once(net, *smallest)
    assert replay["digest"] == outcomes[smallest]["digest"]

    for (n_devices, window), out in outcomes.items():
        assert out["n_windows"] == N_TICKS // window
        assert out["peak_open_windows"] <= 1  # tumbling: one reducer resident
        assert out["n_late_dropped"] == 0

    widths = [-9, -8, -7, -9, -13, -11, -11]
    lines = [
        fmt_row(
            ["devices", "window", "ticks", "frames", "ingest kf/s",
             "watch (s)", "ms/window"],
            widths,
        ),
        "-" * 78,
    ]
    for n_devices in FLEET_SIZES:
        for window in WINDOW_TICKS:
            out = outcomes[(n_devices, window)]
            lines.append(fmt_row(
                [
                    n_devices,
                    window,
                    N_TICKS,
                    out["n_frames"],
                    f"{ingest[n_devices] / 1e3:.1f}",
                    f"{out['runtime_s']:.3f}",
                    f"{1e3 * out['runtime_s'] / out['n_windows']:.1f}",
                ],
                widths,
            ))
    lines += [
        "",
        f"{CASE}, seed {SEED}, {N_TICKS} simulated-clock ticks per point | "
        "ingest = pure fleet frame generation (no solver); watch = full "
        "run_watch loop (powerflow per tick + rolling windows + health) | "
        "per-window cost tracks window length (ticks folded per close); "
        "fleet size adds only the linear ingest term — frames collapse into "
        "one per-bus factor map before the solver | tumbling windows keep "
        "exactly one reducer resident (peak_open_windows == 1)",
    ]
    emit(
        "ablation_telemetry",
        "E17 — Telemetry watch: ingest rate and per-window cost vs fleet "
        f"size and window length ({N_TICKS}-tick feed)",
        lines,
    )
