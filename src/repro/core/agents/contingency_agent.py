"""The contingency-analysis agent: N-1 reliability through function tools.

Tools follow the paper's Appendix B.3.2 (``solve_base_case``,
``run_n1_contingency_analysis``, ``analyze_specific_contingency``,
``get_contingency_status``).  The sweep consults the shared composite-key
cache first (case + content hash + outage), computes only the missing
outages, and deposits a validated ``ContingencyAnalysisResult`` that the
narration layer quotes.  Ranking emphasis (``weights_profile``) is a tool
argument so different model profiles can rank with different evidence
weights — the mechanism behind Table 1's divergent row.
"""

from __future__ import annotations

import time

from pydantic import BaseModel, Field

from ...contingency import (
    BALANCED_WEIGHTS,
    THERMAL_WEIGHTS,
    NMinus1Report,
    analyze_single_outage,
    rank_critical_elements,
    run_n_minus_1,
)
from ...grid import graph as gridgraph
from ...llm.base import LLMBackend
from ...powerflow import solve_newton, solve_with_recovery
from ..context import AgentContext
from ..schemas import ContingencyAnalysisResult, ContingencyRecord
from ..tools import ToolError, ToolRegistry
from ..validation import sanity_check_modification, validate_power_flow
from .base import Agent

# Paper Figure 5, abridged to its operative clauses.
CA_SYSTEM_PROMPT = """\
You are an expert Contingency Analysis agent for power system reliability
assessment. Your capabilities include solving base case problems for standard
IEEE test cases, running comprehensive N-1 contingency analysis, analysing
specific element outages, identifying critical contingencies and system
vulnerabilities, and providing recommendations for system reinforcement.
When users ask to analyse contingencies, first ensure a base case is solved.
Never fabricate numbers; anchor every metric to structured solver outputs.
Be professional, accurate, and focus on system reliability and security."""

_WEIGHTS = {"balanced": BALANCED_WEIGHTS, "thermal": THERMAL_WEIGHTS}


class BaseCaseArgs(BaseModel):
    case_name: str = Field(description="IEEE case identifier, e.g. 'ieee118'")


class RunN1Args(BaseModel):
    top_n: int = Field(default=5, ge=1, le=50)
    weights_profile: str = Field(default="balanced")
    overload_threshold: float = Field(default=100.0, gt=0.0)
    ranking_metric: str = Field(default="severity")
    n_jobs: int = Field(default=1, ge=1)


class SpecificArgs(BaseModel):
    branch_id: int | None = Field(default=None, ge=0)
    from_bus: int | None = Field(default=None, ge=0)
    to_bus: int | None = Field(default=None, ge=0)


def build_ca_registry(context: AgentContext) -> ToolRegistry:
    """Register the CA agent's function tools over the shared context."""
    registry = ToolRegistry()

    def solve_base_case(case_name: str) -> dict:
        t0 = time.perf_counter()
        context.activate_case(case_name)
        net = context.require_network()
        if context.base_pf_fresh():
            res = context.base_pf
            message = "reused fresh base case from shared context"
        else:
            res = solve_newton(net)
            if not res.converged:
                res, _trace = solve_with_recovery(net)
            context.deposit_base_pf(res)
            message = res.message
        report = validate_power_flow(res)
        context.record_provenance(
            "solve_base_case",
            solver=res.method,
            ok=report.ok,
            duration_s=time.perf_counter() - t0,
        )
        if not report.ok:
            raise ToolError(f"base case invalid: {report.describe()}")
        return {
            "case_name": context.case_name,
            "solved": True,
            "method": res.method,
            "iterations": res.iterations,
            "max_mismatch_pu": res.max_mismatch_pu,
            "min_voltage_pu": res.min_voltage_pu,
            "max_voltage_pu": res.max_voltage_pu,
            "max_loading_percent": res.max_loading_percent,
            "losses_mw": res.losses_mw,
            "objective_cost": (
                context.acopf_solution.objective_cost
                if context.acopf_fresh()
                else None
            ),
            "convergence_message": message,
        }

    def run_n1_contingency_analysis(
        top_n: int = 5,
        weights_profile: str = "balanced",
        overload_threshold: float = 100.0,
        ranking_metric: str = "severity",
        n_jobs: int = 1,
    ) -> dict:
        net = context.require_network()
        if weights_profile not in _WEIGHTS:
            raise ToolError(
                f"unknown weights profile {weights_profile!r}; "
                f"use one of {sorted(_WEIGHTS)}"
            )
        if ranking_metric not in ("severity", "peak_overload"):
            raise ToolError(
                f"unknown ranking metric {ranking_metric!r}; "
                "use 'severity' or 'peak_overload'"
            )
        if not context.base_pf_fresh():
            solve_base_case(context.case_name)
        t0 = time.perf_counter()

        cache = context.contingency_cache
        candidates = net.in_service_branch_ids()
        cached, missing = cache.lookup_sweep(net, candidates)
        fresh_outcomes = []
        if missing:
            report = run_n_minus_1(
                net,
                branch_ids=missing,
                overload_threshold=overload_threshold,
                n_jobs=n_jobs,
                base_result=context.base_pf,
            )
            fresh_outcomes = report.outcomes
            cache.put_many(net, fresh_outcomes)
        outcomes = sorted(
            [*cached.values(), *fresh_outcomes], key=lambda o: o.branch_id
        )
        merged = NMinus1Report(
            case_name=context.case_name,
            base=context.base_pf,
            outcomes=outcomes,
            runtime_s=time.perf_counter() - t0,
        )
        ranked = rank_critical_elements(
            merged,
            top_n=top_n,
            weights=_WEIGHTS[weights_profile],
            metric=ranking_metric,
        )

        result = ContingencyAnalysisResult(
            case_name=context.case_name,
            base_objective_cost=(
                context.acopf_solution.objective_cost
                if context.acopf_fresh()
                else None
            ),
            n_contingencies=merged.n_contingencies,
            n_violations=merged.n_violations,
            max_overload_percent=ranked.max_overload_percent,
            critical=[
                ContingencyRecord(
                    rank=r.rank,
                    branch_id=r.outcome.branch_id,
                    from_bus=r.outcome.from_bus,
                    to_bus=r.outcome.to_bus,
                    is_transformer=r.outcome.is_transformer,
                    severity=round(r.severity, 3),
                    converged=r.outcome.converged,
                    islanded=r.outcome.islanded,
                    stranded_load_mw=round(r.outcome.stranded_load_mw, 3),
                    n_overloads=r.outcome.n_overloads,
                    max_loading_percent=round(r.outcome.max_loading_percent, 2),
                    min_voltage_pu=round(r.outcome.min_voltage_pu, 4),
                    n_voltage_violations=r.outcome.n_voltage_violations,
                    estimated_curtailment_mw=round(
                        r.outcome.estimated_curtailment_mw, 2
                    ),
                    justification=r.justification,
                )
                for r in ranked.ranked
            ],
            recommendations=ranked.recommendations,
            recurring_bottlenecks=ranked.recurring_bottlenecks,
            weights_profile=weights_profile,
            overload_threshold=overload_threshold,
            runtime_s=merged.runtime_s,
            cache_hits=len(cached),
            cache_misses=len(fresh_outcomes),
        )
        context.deposit_ca(result)
        context.record_provenance(
            "run_n1_contingency_analysis",
            solver="newton+recovery",
            ok=True,
            duration_s=result.runtime_s,
            weights_profile=weights_profile,
            cache_hits=len(cached),
        )
        payload = result.model_dump()
        payload["critical"] = payload["critical"][:top_n]
        return payload

    def analyze_specific_contingency(
        branch_id: int | None = None,
        from_bus: int | None = None,
        to_bus: int | None = None,
    ) -> dict:
        net = context.require_network()
        if branch_id is None:
            if from_bus is None or to_bus is None:
                raise ToolError("give either branch_id or both from_bus and to_bus")
            try:
                branch_id = net.find_branch(from_bus, to_bus)
            except KeyError as exc:
                raise ToolError(str(exc)) from exc
        check = sanity_check_modification(net, branch_id=branch_id)
        if not check.ok:
            raise ToolError(check.describe())
        if not context.base_pf_fresh():
            solve_base_case(context.case_name)

        cache = context.contingency_cache
        outcome = cache.get(net, branch_id)
        if outcome is None:
            v_base = (
                context.base_pf.extras.get("v_complex") if context.base_pf else None
            )
            outcome = analyze_single_outage(net, branch_id, v_base=v_base)
            cache.put(net, outcome)
        return {
            "case_name": context.case_name,
            "branch_id": outcome.branch_id,
            "from_bus": outcome.from_bus,
            "to_bus": outcome.to_bus,
            "is_transformer": outcome.is_transformer,
            "converged": outcome.converged,
            "islanded": outcome.islanded,
            "stranded_load_mw": outcome.stranded_load_mw,
            "max_loading_percent": outcome.max_loading_percent,
            "overloads": outcome.overloads,
            "min_voltage_pu": outcome.min_voltage_pu,
            "max_voltage_pu": outcome.max_voltage_pu,
            "voltage_violations": outcome.voltage_violations,
            "estimated_curtailment_mw": outcome.estimated_curtailment_mw,
            "severity": outcome.severity(),
            "summary_line": outcome.summary_line(),
        }

    def get_contingency_status() -> dict:
        out: dict = {
            "case_name": context.case_name,
            "base_case_solved": context.base_pf_fresh(),
            "cache": context.contingency_cache.stats(),
        }
        out.update(context.summary())
        out["case_name"] = context.case_name
        if context.network is not None:
            model = context.system_model()
            out.update(
                {
                    "n_bus": model.n_bus,
                    "n_gen": model.n_gen,
                    "n_load": model.n_load,
                    "n_branch": model.n_branch,
                }
            )
            out["n_bridges"] = len(gridgraph.bridge_branches(context.network))
        if context.ca_result is not None:
            out["last_analysis"] = {
                "n_contingencies": context.ca_result.n_contingencies,
                "n_violations": context.ca_result.n_violations,
                "max_overload_percent": context.ca_result.max_overload_percent,
                "fresh": context.ca_fresh(),
            }
        out["modifications"] = [m.description for m in context.modifications]
        return out

    registry.register(
        "solve_base_case",
        "Load and solve the base case power flow before contingency analysis.",
        solve_base_case,
        BaseCaseArgs,
    )
    registry.register(
        "run_n1_contingency_analysis",
        "Run comprehensive N-1 analysis with caching and criticality ranking.",
        run_n1_contingency_analysis,
        RunN1Args,
    )
    registry.register(
        "analyze_specific_contingency",
        "Analyse a specific branch (line or transformer) outage.",
        analyze_specific_contingency,
        SpecificArgs,
    )
    registry.register(
        "get_contingency_status",
        "Get current analysis status, cache statistics, and results summary.",
        get_contingency_status,
    )
    return registry


def make_contingency_agent(backend: LLMBackend, context: AgentContext) -> Agent:
    """Assemble the CA agent over a backend and shared context."""
    return Agent(
        name="contingency",
        system_prompt=CA_SYSTEM_PROMPT,
        backend=backend,
        registry=build_ca_registry(context),
        context=context,
    )
