"""GridMindService: the asyncio multi-session front door.

The paper frames GridMind as a *service* engineers talk to; this module
is the top of that stack.  One service owns

* many named :class:`~repro.core.session.GridMindSession` cores, each
  wrapped in a slot with an ``asyncio.Lock`` — turns addressed to the
  same session are serialised (a conversation is a sequence), while
  turns addressed to different sessions run concurrently on worker
  threads,
* one shared :class:`~repro.service.executor.StudyExecutor`, so every
  batch study from every session lands on the same warm process pool,
* optionally one :class:`~repro.service.store.ResultStore`, so study
  result sets persist across sessions and process lifetimes.

Determinism: a session's RNG seed derives from ``(service seed, session
id)`` (:func:`~repro.service.api.derive_session_seed`), never from
creation order, and per-session serialisation means the reply stream of
a session is byte-identical to running the same turns through a
stand-alone ``GridMindSession`` with the derived seed — interleaving N
conversations cannot change any of their answers.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from ..core.session import GridMindSession
from ..instrumentation.accounting import record_turn, session_scope, session_usage
from ..instrumentation.health import HealthMonitor, HealthReport, HealthRule
from ..instrumentation.metrics import get_metrics, render_prometheus
from ..instrumentation.rollup import MetricsSampler
from ..instrumentation.trace import Tracer, get_tracer, set_tracer
from .api import (
    STUDY_KINDS,
    AskReply,
    AskRequest,
    SessionInfo,
    SessionUsage,
    StudyReply,
    StudyRequest,
    WatchReply,
    WatchRequest,
    WatchUpdate,
    derive_session_seed,
    thin_progress,
)
from .executor import StudyExecutor
from .store import ResultStore


class SessionNotFound(KeyError):
    """The addressed session does not exist (and auto-create was off)."""


class ServiceClosed(RuntimeError):
    """The service has been shut down; no further requests are accepted."""


@dataclass
class _SessionSlot:
    """One managed session plus its turn-serialisation lock."""

    session_id: str
    session: GridMindSession
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    turns: int = 0

    def info(self) -> SessionInfo:
        return SessionInfo(
            session_id=self.session_id,
            model=self.session.model,
            seed=self.session.seed,
            n_turns=self.turns,
            case_name=self.session.context.case_name or None,
            usage=SessionUsage(**session_usage(self.session_id)),
        )


class GridMindService:
    """Async façade multiplexing many sessions over shared compute."""

    def __init__(
        self,
        *,
        model: str = "gpt-5-mini",
        seed: int = 0,
        max_workers: int = 2,
        store: ResultStore | None = None,
        store_dir: str | None = None,
        max_sessions: int = 128,
        trace: bool = False,
        retries: int = 0,
        health: bool = True,
        health_rules: list[HealthRule] | None = None,
        sample_interval_s: float = 5.0,
    ) -> None:
        if store is None and store_dir is not None:
            store = ResultStore(store_dir)
        self.model = model
        self.seed = seed
        self.store = store
        # ``trace=True`` installs a recording tracer process-wide for the
        # service's lifetime (restored on aclose): every layer down to
        # the pool workers emits spans, and traced studies export a
        # ``.trace`` sidecar next to their store payload.
        self._prev_tracer: Tracer | None = None
        if trace:
            self._prev_tracer = set_tracer(Tracer())
        self.tracer = get_tracer()
        # Started eagerly: the service construction thread is (normally)
        # the only thread alive, so workers fork before session turns
        # start running on to_thread workers — and the pool is warm for
        # the first study.
        self.executor = StudyExecutor(max_workers=max_workers, retries=retries).start()
        self.max_sessions = max_sessions
        self._slots: dict[str, _SessionSlot] = {}
        self._closed = False
        # Health layer: a rollup sampler feeding an SLO monitor.  The
        # sampler persists every snapshot to the store's health sidecar
        # (when a store is attached), so ``gridmind health``/``top`` can
        # evaluate the same series offline.  The background sampling task
        # starts lazily on the first async entry point — ``__init__`` is
        # sync and may run with no event loop at all.
        self._health_enabled = health
        self.sampler = MetricsSampler(interval_s=sample_interval_s, store=store)
        self.monitor = HealthMonitor(
            rules=tuple(health_rules) if health_rules is not None else ()
        )
        self._sampler_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def create_session(
        self, session_id: str | None = None, *, model: str | None = None
    ) -> SessionInfo:
        """Create (and register) a named session; id defaults to ``s<n>``."""
        self._check_open()
        if session_id is None:
            n = len(self._slots)
            while f"s{n:03d}" in self._slots:
                n += 1
            session_id = f"s{n:03d}"
        if session_id in self._slots:
            raise ValueError(f"session {session_id!r} already exists")
        if len(self._slots) >= self.max_sessions:
            raise RuntimeError(
                f"session limit reached ({self.max_sessions}); close one first"
            )
        session = GridMindSession(
            model=model or self.model,
            seed=derive_session_seed(self.seed, session_id),
            session_id=session_id,
            study_executor=self.executor,
            result_store=self.store,
        )
        self._slots[session_id] = _SessionSlot(session_id, session)
        return self._slots[session_id].info()

    def get_session(self, session_id: str) -> GridMindSession:
        slot = self._slots.get(session_id)
        if slot is None:
            raise SessionNotFound(f"no session {session_id!r}")
        return slot.session

    def close_session(self, session_id: str) -> None:
        if self._slots.pop(session_id, None) is None:
            raise SessionNotFound(f"no session {session_id!r}")

    def sessions(self) -> list[SessionInfo]:
        return [slot.info() for slot in self._slots.values()]

    # ------------------------------------------------------------------
    # conversational turns
    # ------------------------------------------------------------------
    async def ask(
        self, request: AskRequest | str, text: str | None = None
    ) -> AskReply:
        """Process one turn; concurrent calls interleave across sessions.

        Accepts either a validated :class:`AskRequest` envelope or the
        convenience form ``ask(session_id, text)``.
        """
        self._check_open()
        if not isinstance(request, AskRequest):
            if text is None:
                raise TypeError("ask(session_id, text) requires the text argument")
            request = AskRequest(session_id=request, text=text)
        slot = self._slots.get(request.session_id)
        if slot is None:
            if not request.create:
                raise SessionNotFound(f"no session {request.session_id!r}")
            self.create_session(request.session_id)
            slot = self._slots[request.session_id]

        # Serialise turns per session; the blocking solver/LLM work runs
        # on a thread so *other* sessions' turns proceed concurrently.
        # (asyncio.to_thread copies the contextvar context, so the span
        # opened here is the parent of everything the session records.)
        self._ensure_sampler_task()
        async with slot.lock:
            with get_tracer().span("service.ask", session_id=request.session_id):
                # The accounting scope travels with the copied contextvar
                # context into the worker thread, so every chunk the
                # study layer folds during this turn bills to the session.
                with session_scope(request.session_id):
                    record_turn()
                    reply = await asyncio.to_thread(slot.session.ask, request.text)
            slot.turns += 1
            turn = slot.turns
            record = slot.session.last_record

        return AskReply(
            session_id=request.session_id,
            turn=turn,
            text=reply.text,
            agents=reply.agents_involved,
            ok=record.success if record else True,
            model=slot.session.model,
            latency_virtual_s=reply.latency_s,
            wall_s=reply.wall_s,
            total_s=reply.latency_s + reply.wall_s,
            prompt_tokens=reply.usage.prompt_tokens,
            completion_tokens=reply.usage.completion_tokens,
            n_tool_calls=len(reply.tool_calls),
        )

    # ------------------------------------------------------------------
    # direct study submission (no conversation required)
    # ------------------------------------------------------------------
    async def run_study(self, request: StudyRequest, *, progress=None) -> StudyReply:
        """Expand and execute a study on the shared pool; persist if stored.

        ``progress`` (optional) receives a
        :class:`~repro.scenarios.runner.StudyProgress` per completed
        chunk, invoked from the study's worker thread — callers bridging
        to the event loop should use ``loop.call_soon_threadsafe``.  The
        reply additionally carries the (thinned) progress trail, so
        transports without a callback channel still see the timeline.
        """
        self._check_open()
        self._ensure_sampler_task()
        return await asyncio.to_thread(self._run_study_sync, request, progress)

    def _run_study_sync(
        self, request: StudyRequest, progress=None
    ) -> StudyReply:
        with session_scope(request.session_id):
            return self._run_study_inner(request, progress)

    def _run_study_inner(
        self, request: StudyRequest, progress=None
    ) -> StudyReply:
        from ..grid.cases import load_case
        from ..scenarios import BatchStudyRunner, expand_study_kind, resolve_slice_by

        if request.kind not in STUDY_KINDS:
            raise ValueError(
                f"unknown study kind {request.kind!r}; use one of {STUDY_KINDS}"
            )
        slice_by = resolve_slice_by(
            request.slice_by, request.kind, n_zones=request.n_zones
        )
        net = load_case(request.case_name)
        scenarios = expand_study_kind(
            request.kind,
            net,
            n_scenarios=request.n_scenarios,
            lo_percent=request.lo_percent,
            hi_percent=request.hi_percent,
            sigma_percent=request.sigma_percent,
            seed=request.seed,
            depth=request.depth,
            n_zones=request.n_zones,
            rho_percent=request.rho_percent,
        )
        events: list[dict] = []

        def on_chunk(p) -> None:
            events.append(p.to_dict())
            if progress is not None:
                progress(p)

        # The full record list is only retained when a store will persist
        # it; otherwise the study streams through the reducer and holds
        # O(in-flight window + worst-K + n_slices) results at peak.
        runner = BatchStudyRunner(
            analysis=request.analysis,
            executor=self.executor,
            slice_by=slice_by,
            slice_max_values=request.slice_max_values,
            ac_mode=request.ac_mode,
        )
        tracer = get_tracer()
        with tracer.span(
            "service.run_study", kind=request.kind, case=request.case_name
        ) as root:
            study = runner.run(
                net,
                scenarios,
                progress=on_chunk,
                keep_results=self.store is not None,
            )
            key = None
            if self.store is not None:
                key = self.store.put(
                    net,
                    runner.config(),
                    scenarios,
                    study,
                    study_kind=request.kind,
                    label=request.label,
                )
        trace_id = root.trace_id if tracer.enabled else None
        if key and trace_id:
            # Export after the root span closes so it is part of the
            # sidecar; the store resolves the key to the payload path.
            self.store.put_trace(key, tracer.spans(trace_id))
        summary = study.to_dict(max_scenarios=5)
        summary["study_kind"] = request.kind
        if key:
            summary["study_key"] = key
        if trace_id:
            summary["trace_id"] = trace_id
        return StudyReply(
            study_key=key,
            trace_id=trace_id,
            case_name=study.case_name,
            analysis=study.analysis,
            study_kind=request.kind,
            n_scenarios=study.n_scenarios,
            n_jobs=study.n_jobs,
            runtime_s=study.runtime_s,
            slice_by=list(slice_by),
            summary=summary,
            n_progress_events=len(events),
            progress=thin_progress(events),
            peak_resident_results=study.peak_resident_results,
        )

    # ------------------------------------------------------------------
    # standing windowed telemetry studies
    # ------------------------------------------------------------------
    async def watch(
        self, request: WatchRequest, *, on_update=None
    ) -> WatchReply:
        """Run a bounded telemetry watch: fleet -> windows -> alerts.

        ``on_update`` (optional) receives a narrated
        :class:`~repro.service.api.WatchUpdate` per closed window, invoked
        from the watch's worker thread as the window closes — the live
        streaming surface.  The reply echoes every update plus the alert
        log and the determinism digest.
        """
        self._check_open()
        self._ensure_sampler_task()
        return await asyncio.to_thread(self._watch_sync, request, on_update)

    def _watch_sync(self, request: WatchRequest, on_update=None) -> WatchReply:
        with session_scope(request.session_id):
            return self._watch_inner(request, on_update)

    def _watch_inner(self, request: WatchRequest, on_update=None) -> WatchReply:
        from ..grid.cases import load_case
        from ..llm.narration import narrate_watch, narrate_watch_window
        from ..telemetry import AnomalySpec, run_watch

        net = load_case(request.case_name)
        seed = (
            request.seed
            if request.seed is not None
            else derive_session_seed(self.seed, request.session_id)
        )
        anomaly = None
        if request.anomaly_tick is not None:
            anomaly = AnomalySpec(
                start_tick=request.anomaly_tick,
                duration_ticks=request.anomaly_duration,
                kind=request.anomaly_kind,
                feeder=request.anomaly_feeder,
                magnitude=request.anomaly_magnitude,
            )
        updates: list[WatchUpdate] = []

        def on_window(window: dict) -> None:
            update = WatchUpdate(
                index=window["index"],
                start_tick=window["start_tick"],
                end_tick=window["end_tick"],
                n_results=window["n_results"],
                n_anomalous=window["n_anomalous"],
                violation_rate=window["violation_rate"],
                anomaly_rate=window["anomaly_rate"],
                status=window["status"],
                alerts=window["alerts"],
                narration=narrate_watch_window(window, request.verbosity),
            )
            updates.append(update)
            if on_update is not None:
                on_update(update)

        with get_tracer().span(
            "service.watch",
            case=request.case_name,
            session_id=request.session_id,
        ):
            out = run_watch(
                net,
                n_devices=request.n_devices,
                n_ticks=request.n_ticks,
                window_ticks=request.window_ticks,
                slide_ticks=request.slide_ticks,
                seed=seed,
                interval_s=request.interval_s,
                sigma=request.sigma_percent / 100.0,
                der_fraction=request.der_fraction,
                anomaly=anomaly,
                analysis=request.analysis,
                slice_by=tuple(request.slice_by),
                pace=request.pace,
                speedup=request.speedup,
                on_window=on_window,
            )
        return WatchReply(
            session_id=request.session_id,
            case_name=out["case_name"],
            analysis=out["analysis"],
            n_devices=out["n_devices"],
            n_ticks=out["n_ticks"],
            n_frames=out["n_frames"],
            n_anomaly_frames=out["n_anomaly_frames"],
            window_ticks=out["window_ticks"],
            slide_ticks=out["slide_ticks"],
            n_windows=out["n_windows"],
            n_alerts=out["n_alerts"],
            n_late_dropped=out["n_late_dropped"],
            peak_open_windows=out["peak_open_windows"],
            digest=out["digest"],
            status=out["status"],
            runtime_s=out["runtime_s"],
            updates=updates,
            alerts=out["alerts"],
            narration=narrate_watch(out, request.verbosity),
        )

    async def compare_studies(
        self, ref_a: str | None = None, ref_b: str | None = None
    ) -> dict:
        """Diff two stored studies (defaults: the two most recent)."""
        self._check_open()
        if self.store is None:
            raise RuntimeError("service has no result store configured")
        return await asyncio.to_thread(self.store.compare, ref_a, ref_b)

    # ------------------------------------------------------------------
    # lifecycle and instrumentation
    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Service-wide instrumentation: per-session summaries + executor."""
        return {
            "n_sessions": len(self._slots),
            "sessions": {
                sid: slot.session.metrics() for sid, slot in self._slots.items()
            },
            "executor": self.executor.stats(),
            "n_stored_studies": len(self.store) if self.store is not None else 0,
        }

    def metrics_text(self) -> str:
        """The process-wide metrics registry in Prometheus text exposition."""
        return render_prometheus(get_metrics())

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def _ensure_sampler_task(self) -> None:
        """Start the background sampling loop once, lazily.

        ``__init__`` is synchronous (and often runs without a loop), so
        the task is created the first time an async entry point executes
        inside a running loop.  No-op when health is disabled or the
        task is already alive.
        """
        if not self._health_enabled or self._closed:
            return
        if self._sampler_task is not None and not self._sampler_task.done():
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return
        self._sampler_task = loop.create_task(
            self._sample_loop(), name="gridmind-health-sampler"
        )

    async def _sample_loop(self) -> None:
        while not self._closed:
            await asyncio.sleep(self.sampler.interval_s)
            try:
                self.sampler.sample()
                self.monitor.evaluate(self.sampler)
            except Exception:
                # The health loop must never take the service down; a
                # failed sample simply leaves a gap in the series.
                continue

    def health(self, *, sample: bool = True) -> HealthReport:
        """Evaluate the service's health rules right now.

        Takes a fresh snapshot first (so the report reflects this
        instant, not the last background tick) unless ``sample=False``,
        then evaluates through the monitor so alert transitions are
        recorded.  Works with or without the background task running.
        """
        if sample and self._health_enabled:
            self.sampler.sample()
        return self.monitor.evaluate(self.sampler)

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosed("GridMindService is closed")

    async def aclose(self) -> None:
        """Shut down the shared pool and refuse further requests."""
        if self._closed:
            return
        self._closed = True
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except (asyncio.CancelledError, Exception):
                pass
            self._sampler_task = None
        if self._health_enabled:
            # Final snapshot so the persisted series covers the full
            # service lifetime (a short-lived service still leaves >= 1
            # sample per entry point that ran).
            try:
                self.sampler.sample()
            except Exception:
                pass
        if self._prev_tracer is not None:
            set_tracer(self._prev_tracer)
            self._prev_tracer = None
        await asyncio.to_thread(self.executor.shutdown)

    async def __aenter__(self) -> "GridMindService":
        self._ensure_sampler_task()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
