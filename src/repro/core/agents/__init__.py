"""GridMind agents: base loop, domain agents, planner, coordinator."""

from .acopf_agent import ACOPF_SYSTEM_PROMPT, build_acopf_registry, make_acopf_agent
from .base import MAX_STEPS, Agent, AgentReply
from .contingency_agent import (
    CA_SYSTEM_PROMPT,
    build_ca_registry,
    make_contingency_agent,
)
from .coordinator import Coordinator, SessionReply
from .planner import INTENT_ROUTES, PlannerAgent

__all__ = [
    "ACOPF_SYSTEM_PROMPT",
    "Agent",
    "AgentReply",
    "CA_SYSTEM_PROMPT",
    "Coordinator",
    "INTENT_ROUTES",
    "MAX_STEPS",
    "PlannerAgent",
    "SessionReply",
    "build_acopf_registry",
    "build_ca_registry",
    "make_acopf_agent",
    "make_contingency_agent",
]
