"""E16 — Ablation: health sampling/evaluation overhead on a streamed study.

The operational health layer is designed to ride on the always-on
metrics registry for near nothing: sampling is a lock-guarded flattening
of the instrument dicts into plain data on a fixed interval, and rule
evaluation is arithmetic over at most ``max_samples`` retained
snapshots — none of it touches the study hot path.  This benchmark runs
the same Monte-Carlo ensemble through the shared
:class:`~repro.service.executor.StudyExecutor` in two modes —

* ``metrics``        — the E15 metrics-on baseline (registry enabled,
  no sampler),
* ``metrics+health`` — additionally a background thread snapshotting the
  registry and evaluating the builtin rule set every
  ``SAMPLE_INTERVAL_S`` (far more aggressive than the service's 5 s
  production default, so the measured overhead is an upper bound),

alternating the mode order across repeats and keeping the per-mode
minimum wall (the noise-robust estimator).  Acceptance: sampler +
evaluation overhead < 3 % on the metrics baseline at ensemble scale; the
committed table was recorded at 10 000 scenarios.  Small tier-1 runs
assert structure plus a loose noise guard — ``GRIDMIND_E16_SCENARIOS``
scales the ensemble (>= 2000 engages the strict threshold).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.grid.cases import load_case
from repro.instrumentation.health import HealthMonitor
from repro.instrumentation.metrics import MetricsRegistry, set_metrics
from repro.instrumentation.rollup import MetricsSampler
from repro.scenarios import BatchStudyRunner, monte_carlo_ensemble
from repro.service import StudyExecutor

CASE = "ieee14"
N_SCENARIOS = int(os.environ.get("GRIDMIND_E16_SCENARIOS", "400"))
REPEATS = int(os.environ.get("GRIDMIND_E16_REPEATS", "3"))
JOBS = 2
CHUNK = 100
WINDOW = 4
#: 50x the service's production sampling rate: the overhead measured
#: here bounds the deployed cost from far above.
SAMPLE_INTERVAL_S = 0.1

STRICT_SCALE = 2_000
MAX_HEALTH_OVERHEAD = 0.03 if N_SCENARIOS >= STRICT_SCALE else 0.15

MODES = ("metrics", "metrics+health")


class _SamplerThread:
    """Background sample + evaluate loop (what the service task does)."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.sampler = MetricsSampler(registry, interval_s=SAMPLE_INTERVAL_S)
        self.monitor = HealthMonitor()
        self.n_evaluations = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _loop(self) -> None:
        while not self._stop.wait(SAMPLE_INTERVAL_S):
            self.sampler.sample()
            self.monitor.evaluate(self.sampler)
            self.n_evaluations += 1

    def __enter__(self) -> "_SamplerThread":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        # A final tick so even the fastest run retains >= 2 snapshots.
        self.sampler.sample()
        self.monitor.evaluate(self.sampler)
        self.n_evaluations += 1


def _run_once(executor, mode: str):
    net = load_case(CASE)
    scenarios = monte_carlo_ensemble(n=N_SCENARIOS, sigma=0.05, seed=42)
    runner = BatchStudyRunner(
        analysis="powerflow", executor=executor, chunk_size=CHUNK, window=WINDOW
    )
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    health: _SamplerThread | None = None
    try:
        tick = time.perf_counter()
        if mode == "metrics+health":
            with _SamplerThread(registry) as health:
                study = runner.run(net, scenarios, keep_results=False)
                health.sampler.sample()  # snapshot with the study folded in
        else:
            study = runner.run(net, scenarios, keep_results=False)
        wall = time.perf_counter() - tick
    finally:
        set_metrics(previous)
    return study, wall, registry, health


def test_ablation_health(benchmark):
    walls: dict[str, list[float]] = {m: [] for m in MODES}
    studies: dict[str, object] = {}
    registries: dict[str, MetricsRegistry] = {}
    samplers: dict[str, _SamplerThread | None] = {}

    def _run_all():
        with StudyExecutor(max_workers=JOBS, window=WINDOW) as executor:
            _run_once(executor, "metrics")  # warm the pool
            for repeat in range(REPEATS):
                for mode in MODES[repeat % len(MODES):] + MODES[: repeat % len(MODES)]:
                    study, wall, registry, health = _run_once(executor, mode)
                    walls[mode].append(wall)
                    studies[mode] = study
                    registries[mode] = registry
                    samplers[mode] = health

    benchmark.pedantic(_run_all, rounds=1, iterations=1)

    best = {mode: min(walls[mode]) for mode in MODES}
    overhead = best["metrics+health"] / best["metrics"] - 1.0

    # Sampling never changes study results.
    assert (
        studies["metrics+health"].aggregate().to_dict()
        == studies["metrics"].aggregate().to_dict()
    )

    # The health mode really sampled and evaluated every builtin rule.
    health = samplers["metrics+health"]
    assert health is not None and health.sampler.n_samples >= 2
    report = health.monitor.evaluate(health.sampler)
    assert len(report.rules) == len(health.monitor.rules)
    assert report.status in ("ok", "warn", "crit")
    # The windowed series saw the study's chunk-wall observations.
    assert health.sampler.counter_value("gridmind_scenarios_total") == float(
        N_SCENARIOS
    )

    assert overhead < MAX_HEALTH_OVERHEAD, (
        f"health overhead {100 * overhead:.1f}% on the metrics baseline "
        f"exceeds {100 * MAX_HEALTH_OVERHEAD:.0f}%"
    )

    widths = [16, -11, -13, -13, -12, -14]
    lines = [
        fmt_row(
            ["Mode", "scenarios", "best (s)", "median (s)", "overhead", "evaluations"],
            widths,
        ),
        "-" * 86,
    ]
    for mode in MODES:
        series = sorted(walls[mode])
        health = samplers[mode]
        lines.append(fmt_row(
            [
                mode,
                N_SCENARIOS,
                f"{best[mode]:.3f}",
                f"{series[len(series) // 2]:.3f}",
                f"{100 * (best[mode] / best['metrics'] - 1.0):+.1f}%",
                health.n_evaluations if health is not None else 0,
            ],
            widths,
        ))
    lines += [
        "",
        f"min of {REPEATS} alternating repeats per mode | {CASE}, "
        f"{JOBS}-worker shared executor, chunk {CHUNK}, window {WINDOW} | "
        f"sampler+builtin-rule evaluation every {SAMPLE_INTERVAL_S}s (50x the "
        f"5s service default) | aggregates identical in both modes | "
        f"acceptance: health < 3% over metrics-on at >= {STRICT_SCALE} scenarios",
    ]
    emit(
        "ablation_health",
        "E16 — Health layer overhead: rollup sampling + SLO evaluation vs "
        f"metrics-only ({N_SCENARIOS}-scenario streamed Monte Carlo)",
        lines,
    )
