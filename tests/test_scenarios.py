"""Scenario engine: specs, generators, batch runner, aggregation."""

import pytest

from repro.scenarios import (
    BatchStudyRunner,
    BranchOutage,
    GaussianLoadNoise,
    GeneratorOutage,
    PerBusLoadScale,
    RenewableInjection,
    Scenario,
    ScenarioError,
    UniformLoadScale,
    aggregate_study,
    daily_profile,
    load_sweep,
    monte_carlo_ensemble,
    outage_combinations,
    with_branch_outage,
)


class TestSpec:
    def test_realize_leaves_base_untouched(self, case14):
        before = case14.total_load_mw()
        version = case14.version
        scn = Scenario("s", (UniformLoadScale(1.5), BranchOutage(0)))
        net = scn.realize(case14)
        assert case14.total_load_mw() == before
        assert case14.version == version
        assert case14.branches[0].in_service
        assert net.total_load_mw() == pytest.approx(1.5 * before)
        assert not net.branches[0].in_service

    def test_per_bus_scale(self, case14):
        scn = Scenario("s", (PerBusLoadScale(((2, 2.0),)),))
        net = scn.realize(case14)
        base_at_2 = sum(ld.pd_mw for ld in case14.loads_at_bus(2))
        assert sum(ld.pd_mw for ld in net.loads_at_bus(2)) == pytest.approx(
            2.0 * base_at_2
        )

    def test_gaussian_noise_same_seed_identical(self, case14):
        a = Scenario("a", (GaussianLoadNoise(0.1, seed=42),)).realize(case14)
        b = Scenario("b", (GaussianLoadNoise(0.1, seed=42),)).realize(case14)
        c = Scenario("c", (GaussianLoadNoise(0.1, seed=43),)).realize(case14)
        loads = lambda n: [ld.pd_mw for ld in n.loads]  # noqa: E731
        assert loads(a) == loads(b)
        assert loads(a) != loads(c)

    def test_generator_outage(self, case14):
        net = Scenario("s", (GeneratorOutage(1),)).realize(case14)
        assert not net.gens[1].in_service
        assert case14.gens[1].in_service

    def test_renewable_injection_is_negative_load(self, case14):
        before = case14.total_load_mw()
        net = Scenario("s", (RenewableInjection(5, 30.0),)).realize(case14)
        assert net.total_load_mw() == pytest.approx(before - 30.0)

    def test_bad_branch_raises_scenario_error(self, case14):
        with pytest.raises(ScenarioError, match="branch 999"):
            Scenario("s", (BranchOutage(999),)).realize(case14)

    def test_describe_mentions_every_perturbation(self):
        scn = Scenario("s", (UniformLoadScale(1.1), BranchOutage(3)))
        text = scn.describe()
        assert "x1.1" in text and "branch 3" in text


class TestGenerators:
    def test_load_sweep_factors(self):
        scns = load_sweep(0.8, 1.2, 5)
        assert [s.tags["scale"] for s in scns] == pytest.approx(
            [0.8, 0.9, 1.0, 1.1, 1.2]
        )
        assert scns[0].name == "sweep_080"

    def test_monte_carlo_same_seed_same_ensemble(self, case14):
        a = monte_carlo_ensemble(n=6, sigma=0.07, seed=5)
        b = monte_carlo_ensemble(n=6, sigma=0.07, seed=5)
        c = monte_carlo_ensemble(n=6, sigma=0.07, seed=6)
        totals = lambda scns: [  # noqa: E731
            s.realize(case14).total_load_mw() for s in scns
        ]
        assert totals(a) == totals(b)
        assert totals(a) != totals(c)

    def test_monte_carlo_draws_differ_within_ensemble(self, case14):
        scns = monte_carlo_ensemble(n=4, sigma=0.05, seed=0)
        totals = {round(s.realize(case14).total_load_mw(), 6) for s in scns}
        assert len(totals) == 4

    def test_outage_combinations_n2(self, case14):
        scns = outage_combinations(case14, depth=2, limit=10)
        assert len(scns) == 10
        assert all(len(s.perturbations) == 2 for s in scns)
        # Deterministic prefix of the lexicographic enumeration.
        again = outage_combinations(case14, depth=2, limit=10)
        assert [s.name for s in scns] == [s.name for s in again]

    def test_outage_combinations_full_count(self, case14):
        nb = len(case14.in_service_branch_ids())
        scns = outage_combinations(case14, depth=2)
        assert len(scns) == nb * (nb - 1) // 2

    def test_daily_profile_band(self):
        scns = daily_profile(steps=24, trough=0.6, peak=1.0)
        assert len(scns) == 24
        factors = [s.tags["scale"] for s in scns]
        assert min(factors) >= 0.6 - 1e-9
        assert max(factors) <= 1.0 + 1e-9
        # Trough in the early morning, peak in the afternoon.
        assert factors[4] == min(factors)
        assert factors[16] == max(factors)

    def test_with_branch_outage_composition(self):
        scns = with_branch_outage(load_sweep(0.9, 1.1, 3), branch_id=2)
        assert all(s.tags["outage_branch"] == 2 for s in scns)
        assert all(
            isinstance(s.perturbations[-1], BranchOutage) for s in scns
        )


class TestRunner:
    def test_powerflow_study_serial(self, case14):
        study = BatchStudyRunner(analysis="powerflow").run(
            case14, load_sweep(0.9, 1.1, 3)
        )
        assert study.n_scenarios == 3
        assert all(r.converged for r in study.results)
        agg = study.aggregate()
        assert agg.n_converged == 3
        assert agg.loading_stats is not None

    def test_result_order_matches_scenario_order(self, case14):
        scns = monte_carlo_ensemble(n=5, sigma=0.05, seed=2)
        study = BatchStudyRunner(analysis="powerflow").run(case14, scns)
        assert [r.name for r in study.results] == [s.name for s in scns]

    def test_dcopf_study_reports_costs(self, case14):
        study = BatchStudyRunner(analysis="dcopf").run(
            case14, load_sweep(0.9, 1.1, 3)
        )
        agg = study.aggregate()
        assert agg.cost_stats is not None
        # Cost grows with load: min at 90 %, max at 110 %.
        costs = [r.objective_cost for r in study.results]
        assert costs[0] < costs[1] < costs[2]

    def test_screening_study_ranks_criticals(self, case14):
        study = BatchStudyRunner(analysis="screening", ac_budget=6, top_n=3).run(
            case14, load_sweep(0.95, 1.05, 3)
        )
        assert all(r.critical_branches is not None for r in study.results)
        agg = study.aggregate()
        assert agg.rank_stability
        assert agg.stable_critical

    def test_unknown_analysis_raises(self, case14):
        with pytest.raises(ValueError, match="unknown analysis"):
            BatchStudyRunner(analysis="magic").run(case14, load_sweep(0.9, 1.1, 2))

    def test_scenario_error_is_captured_not_raised(self, case14):
        bad = Scenario("bad", (BranchOutage(999),))
        study = BatchStudyRunner(analysis="powerflow").run(
            case14, [*load_sweep(0.9, 1.1, 2), bad]
        )
        assert study.aggregate().n_errors == 1
        assert not study.results[-1].converged
        assert "branch 999" in study.results[-1].error

    def test_islanding_outage_combo_recorded_not_raised(self, case14):
        """An N-2 pair over a bridge must fail cleanly, not kill the batch."""
        from repro.grid import graph as gridgraph

        bridge = sorted(gridgraph.bridge_branches(case14))[0]
        other = next(
            b for b in case14.in_service_branch_ids() if b != bridge
        )
        scn = Scenario("island", (BranchOutage(bridge), BranchOutage(other)))
        study = BatchStudyRunner(analysis="powerflow").run(case14, [scn])
        assert not study.results[0].converged
        assert "islands the network" in study.results[0].error
        assert study.aggregate().n_errors == 1

    def test_serial_and_parallel_aggregates_identical(self, case14):
        scns = monte_carlo_ensemble(n=6, sigma=0.05, seed=9)
        serial = BatchStudyRunner(analysis="powerflow", n_jobs=1).run(case14, scns)
        parallel = BatchStudyRunner(analysis="powerflow", n_jobs=2).run(case14, scns)
        assert parallel.n_jobs == 2
        assert [r.name for r in serial.results] == [r.name for r in parallel.results]
        assert serial.aggregate().to_dict() == parallel.aggregate().to_dict()

    def test_to_dict_is_json_ready(self, case14):
        import json

        study = BatchStudyRunner(analysis="powerflow").run(
            case14, load_sweep(0.9, 1.1, 2)
        )
        payload = json.loads(json.dumps(study.to_dict()))
        assert payload["n_scenarios"] == 2
        assert payload["aggregate"]["n_converged"] == 2


class TestAggregate:
    def test_empty_results(self):
        agg = aggregate_study([])
        assert agg.n_scenarios == 0
        assert agg.violation_rate == 0.0
        assert agg.cost_stats is None

    def test_rates_over_converged_only(self, case14):
        # A mix of stressed (overload-prone) and failed scenarios.
        from repro.scenarios.runner import ScenarioResult

        results = [
            ScenarioResult("a", {}, True, overloaded_branches=[1, 2]),
            ScenarioResult("b", {}, True),
            ScenarioResult("c", {}, False, error="diverged"),
        ]
        agg = aggregate_study(results)
        assert agg.n_converged == 2
        assert agg.n_errors == 1
        assert agg.overload_rate == pytest.approx(0.5)
        assert agg.branch_overload_freq == {1: 0.5, 2: 0.5}
