"""Domain agents, planner, coordinator: the full agentic loop."""

import pytest

from repro.core.agents.planner import INTENT_ROUTES, PlannerAgent
from repro.core.context import AgentContext
from repro.llm.nlu import Intent
from repro.llm.simulated import SimulatedLLM


@pytest.fixture
def acopf_agent():
    from repro.core.agents.acopf_agent import make_acopf_agent

    ctx = AgentContext()
    backend = SimulatedLLM("gpt-o4-mini", seed=0)
    return make_acopf_agent(backend, ctx)


@pytest.fixture
def ca_agent(acopf_agent):
    from repro.core.agents.contingency_agent import make_contingency_agent

    return make_contingency_agent(acopf_agent.backend, acopf_agent.context)


class TestACOPFAgent:
    def test_solve_deposits_fresh_solution(self, acopf_agent):
        reply = acopf_agent.handle("Solve IEEE 14")
        assert "8,081" in reply.text
        assert acopf_agent.context.acopf_fresh()
        assert reply.tool_calls[0].tool == "solve_acopf_case"

    def test_modify_load_resolves(self, acopf_agent):
        acopf_agent.handle("Solve IEEE 14")
        reply = acopf_agent.handle("Increase the load for bus 9 to 50MW")
        assert "50.0 MW" in reply.text
        assert acopf_agent.context.acopf_solution.objective_cost > 8081.52

    def test_modification_logged(self, acopf_agent):
        acopf_agent.handle("Solve IEEE 14")
        acopf_agent.handle("Increase the load for bus 9 to 50MW")
        mods = acopf_agent.context.modifications
        assert len(mods) == 1
        assert mods[0].kind == "load_change"

    def test_status_reports_case(self, acopf_agent):
        acopf_agent.handle("Solve IEEE 14")
        reply = acopf_agent.handle("what's the network status?")
        assert "ieee14" in reply.text
        assert "14 buses" in reply.text

    def test_quality_assessment(self, acopf_agent):
        acopf_agent.handle("Solve IEEE 14")
        reply = acopf_agent.handle("how good is the solution quality?")
        assert "/10" in reply.text

    def test_bad_bus_is_clean_error(self, acopf_agent):
        acopf_agent.handle("Solve IEEE 14")
        reply = acopf_agent.handle("set the load at bus 99 to 10 MW")
        assert "problem" in reply.text
        assert any(not c.ok for c in reply.tool_calls)

    def test_negative_load_rejected(self, acopf_agent):
        acopf_agent.handle("Solve IEEE 14")
        reply = acopf_agent.handle("decrease the load at bus 9 by 5000 MW")
        assert "negative" in reply.text

    def test_economic_impact_workflow(self, acopf_agent):
        reply = acopf_agent.handle(
            "Evaluate the economic impact of removing the line between "
            "buses 4 and 5 in the IEEE 14 case"
        )
        tools = [c.tool for c in reply.tool_calls]
        assert tools == ["solve_acopf_case", "apply_branch_outage", "solve_acopf_case"]
        assert "raises the hourly dispatch cost" in reply.text

    def test_transcript_grows(self, acopf_agent):
        acopf_agent.handle("Solve IEEE 14")
        n1 = len(acopf_agent.transcript)
        acopf_agent.handle("status?")
        assert len(acopf_agent.transcript) > n1


class TestContingencyAgent:
    def test_full_ca_flow(self, ca_agent):
        reply = ca_agent.handle("find the most critical contingencies in ieee14")
        tools = [c.tool for c in reply.tool_calls]
        assert "solve_base_case" in tools
        assert "run_n1_contingency_analysis" in tools
        assert "Most critical contingencies" in reply.text
        assert ca_agent.context.ca_result is not None

    def test_ca_reuses_cache_on_repeat(self, ca_agent):
        ca_agent.handle("run contingency analysis for ieee14")
        first = ca_agent.context.ca_result
        assert first.cache_misses == 20
        ca_agent.handle("run contingency analysis for ieee14")
        second = ca_agent.context.ca_result
        assert second.cache_hits == 20
        assert second.cache_misses == 0

    def test_cache_invalidated_by_modification(self, ca_agent):
        ca_agent.handle("run contingency analysis for ieee14")
        ca_agent.context.network.set_load(3, 80.0)
        ca_agent.handle("run contingency analysis for ieee14")
        assert ca_agent.context.ca_result.cache_misses == 20

    def test_specific_outage(self, ca_agent):
        reply = ca_agent.handle(
            "analyze the contingency of the line between buses 1 and 2 in ieee14"
        )
        assert "Outage of line" in reply.text or "branch" in reply.text.lower()

    def test_status_tool(self, ca_agent):
        ca_agent.handle("run contingency analysis for ieee14")
        reply = ca_agent.handle("what's the contingency status?")
        assert "ieee14" in reply.text


class TestPlanner:
    def test_routes_cover_all_intents(self):
        assert set(INTENT_ROUTES) == set(Intent)

    def test_single_step_plan(self):
        planner = PlannerAgent(SimulatedLLM("gpt-o4-mini", seed=0))
        wf = planner.plan("Solve IEEE 118")
        assert len(wf.steps) == 1
        assert wf.steps[0].agent == "acopf"

    def test_multi_step_plan(self):
        planner = PlannerAgent(SimulatedLLM("gpt-o4-mini", seed=0))
        wf = planner.plan("Solve IEEE 30, then run contingency analysis")
        assert [s.agent for s in wf.steps] == ["acopf", "contingency"]

    def test_inherited_case_annotated(self):
        planner = PlannerAgent(SimulatedLLM("gpt-o4-mini", seed=0))
        wf = planner.plan("Solve IEEE 30, then run contingency analysis")
        assert "ieee30" in wf.steps[1].clause

    def test_planning_charges_latency(self):
        backend = SimulatedLLM("gpt-5", seed=0)
        planner = PlannerAgent(backend, clock=backend.clock)
        before = backend.clock.now
        planner.plan("Solve IEEE 118")
        assert backend.clock.now > before


class TestCoordinator:
    def test_cross_agent_context_sharing(self, session_factory):
        session = session_factory()
        session.ask("Solve IEEE 14")
        cost = session.context.acopf_solution.objective_cost
        reply = session.ask("now run the contingency analysis")
        # The CA result carries the base objective from the shared context.
        assert session.context.ca_result.base_objective_cost == pytest.approx(cost)
        assert reply.agents_involved == ["contingency"]

    def test_multi_agent_single_request(self, session_factory):
        session = session_factory()
        reply = session.ask(
            "Solve IEEE 14 case, then run contingency analysis and identify "
            "critical elements"
        )
        assert reply.agents_involved == ["acopf", "contingency"]
        assert reply.workflow.status == "done"
        assert "[ACOPF analysis]" in reply.text
        assert "[Contingency analysis]" in reply.text

    def test_workflow_history_kept(self, session_factory):
        session = session_factory()
        session.ask("Solve IEEE 14")
        session.ask("status?")
        assert len(session.coordinator.history) == 2
