"""Mutable network container plus the compiled, solver-facing array view.

Two layers on purpose:

* :class:`Network` holds component dataclasses and is what agents mutate —
  load edits, branch outages, limit changes.  Every mutation bumps a
  version counter.
* :class:`NetworkArrays` is the vectorised per-unit snapshot the numerical
  code consumes (packed NumPy arrays for in-service elements only).  It is
  rebuilt lazily when the version changes, so a contingency sweep that
  toggles one branch per iteration pays one recompile per outage and the
  solvers never touch Python-object component lists in their hot loops.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass

import numpy as np

from .components import Branch, Bus, BusType, Generator, Load, NetworkMetadata
from .units import DEFAULT_BASE_MVA, deg_to_rad

#: Default zone-band count for cases that carry no explicit feeder
#: metadata: buses are split into this many contiguous, near-equal index
#: bands (the same partition rule :class:`~repro.scenarios.spec.ZonalLoadScale`
#: has always used), labelled ``feeder_0`` .. ``feeder_{N-1}``.
DEFAULT_ZONE_BANDS = 4


@dataclass
class NetworkArrays:
    """Read-only per-unit snapshot of a :class:`Network` for solvers.

    All powers are per-unit on ``base_mva``; angles are radians.  Gen and
    branch arrays cover *in-service* elements only; ``gen_ids`` /
    ``branch_ids`` map rows back to positions in the owning network's
    component lists.
    """

    base_mva: float
    n_bus: int
    bus_type: np.ndarray  # (n_bus,) int, BusType values
    pd: np.ndarray  # (n_bus,) aggregated in-service load, p.u.
    qd: np.ndarray
    gs: np.ndarray  # (n_bus,) shunt conductance, p.u.
    bs: np.ndarray
    vm0: np.ndarray  # (n_bus,) initial voltage magnitude
    va0: np.ndarray  # (n_bus,) initial angle, rad
    vmin: np.ndarray
    vmax: np.ndarray
    base_kv: np.ndarray

    n_gen: int
    gen_ids: np.ndarray  # (n_gen,) positions in Network.gens
    gen_bus: np.ndarray  # (n_gen,) bus index
    pg0: np.ndarray  # (n_gen,) initial dispatch, p.u.
    qg0: np.ndarray
    pmin: np.ndarray
    pmax: np.ndarray
    qmin: np.ndarray
    qmax: np.ndarray
    vg: np.ndarray

    n_branch: int
    branch_ids: np.ndarray  # (n_branch,) positions in Network.branches
    f_bus: np.ndarray
    t_bus: np.ndarray
    r: np.ndarray
    x: np.ndarray
    b_charge: np.ndarray
    tap: np.ndarray  # effective turns ratio (1.0 for lines)
    shift: np.ndarray  # rad
    rate_a: np.ndarray  # p.u. (0 => unlimited)

    version: int = 0

    @property
    def slack_buses(self) -> np.ndarray:
        return np.flatnonzero(self.bus_type == int(BusType.SLACK))

    @property
    def pv_buses(self) -> np.ndarray:
        return np.flatnonzero(self.bus_type == int(BusType.PV))

    @property
    def pq_buses(self) -> np.ndarray:
        return np.flatnonzero(self.bus_type == int(BusType.PQ))

    def gen_connection_matrix(self):
        """Sparse (n_bus, n_gen) incidence matrix Cg with Cg[b, g] = 1."""
        from scipy import sparse

        data = np.ones(self.n_gen)
        return sparse.csr_matrix(
            (data, (self.gen_bus, np.arange(self.n_gen))),
            shape=(self.n_bus, self.n_gen),
        )


class Network:
    """A mutable power network: buses, generators, loads, branches.

    The builder methods (:meth:`add_bus` etc.) assign contiguous indices so
    downstream array code can use bus ids as positions directly.
    """

    def __init__(
        self,
        base_mva: float = DEFAULT_BASE_MVA,
        metadata: NetworkMetadata | None = None,
    ) -> None:
        if base_mva <= 0:
            raise ValueError(f"base_mva must be positive, got {base_mva}")
        self.base_mva = float(base_mva)
        self.metadata = metadata or NetworkMetadata()
        self.buses: list[Bus] = []
        self.gens: list[Generator] = []
        self.loads: list[Load] = []
        self.branches: list[Branch] = []
        self._version = 0
        # Optional feeder/zone metadata: bus index -> label.  Empty means
        # "use the contiguous-band default" (see bus_zone); the IEEE test
        # cases ship without real feeder topology, so the default keeps
        # zonal studies meaningful while letting importers or operators
        # attach real labels via set_bus_zones.
        self._bus_zones: dict[int, str] = {}
        self._compiled: NetworkArrays | None = None
        # (version, digest) memo maintained by contingency.cache — cleared
        # on every mutation so hot cache-lookup loops only re-serialise the
        # network when its content can actually have changed.
        self._content_hash_memo: tuple[int, str] | None = None
        # (version, AdmittanceMatrices) memo maintained by
        # powerflow.solution.make_admittances — same invalidation rule, so
        # repeated AC solves of an unmodified network (recovery-ladder
        # rungs, warm-started ensembles) stop rebuilding Ybus.
        self._adm_memo: tuple[int, object] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_bus(self, **kwargs) -> Bus:
        """Append a bus; its index is assigned automatically."""
        kwargs.pop("index", None)
        bus = Bus(index=len(self.buses), **kwargs)
        self.buses.append(bus)
        self.touch()
        return bus

    def add_gen(self, bus: int, **kwargs) -> Generator:
        self._check_bus(bus)
        gen = Generator(bus=bus, **kwargs)
        self.gens.append(gen)
        self.touch()
        return gen

    def add_load(self, bus: int, **kwargs) -> Load:
        self._check_bus(bus)
        load = Load(bus=bus, **kwargs)
        self.loads.append(load)
        self.touch()
        return load

    def add_branch(self, from_bus: int, to_bus: int, **kwargs) -> Branch:
        self._check_bus(from_bus)
        self._check_bus(to_bus)
        branch = Branch(from_bus=from_bus, to_bus=to_bus, **kwargs)
        self.branches.append(branch)
        self.touch()
        return branch

    def _check_bus(self, bus: int) -> None:
        if not 0 <= bus < len(self.buses):
            raise IndexError(
                f"bus {bus} does not exist (network has {len(self.buses)} buses)"
            )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_bus(self) -> int:
        return len(self.buses)

    @property
    def n_gen(self) -> int:
        return len(self.gens)

    @property
    def n_load(self) -> int:
        return len(self.loads)

    @property
    def n_branch(self) -> int:
        return len(self.branches)

    @property
    def n_line(self) -> int:
        """Count of non-transformer branches (paper Table 2's "AC line")."""
        return sum(1 for br in self.branches if not br.is_transformer)

    @property
    def n_transformer(self) -> int:
        return sum(1 for br in self.branches if br.is_transformer)

    @property
    def version(self) -> int:
        """Monotone counter; bumps on any mutation through this API."""
        return self._version

    @property
    def name(self) -> str:
        return self.metadata.case_name

    def slack_bus(self) -> int:
        """Index of the (single expected) slack bus."""
        slacks = [b.index for b in self.buses if b.bus_type == BusType.SLACK]
        if not slacks:
            raise ValueError("network has no slack bus")
        return slacks[0]

    def total_load_mw(self) -> float:
        return sum(ld.pd_mw for ld in self.loads if ld.in_service)

    def total_load_mvar(self) -> float:
        return sum(ld.qd_mvar for ld in self.loads if ld.in_service)

    def total_gen_capacity_mw(self) -> float:
        return sum(g.pmax_mw for g in self.gens if g.in_service)

    def loads_at_bus(self, bus: int) -> list[Load]:
        return [ld for ld in self.loads if ld.bus == bus]

    def gens_at_bus(self, bus: int) -> list[Generator]:
        return [g for g in self.gens if g.bus == bus]

    def in_service_branch_ids(self) -> list[int]:
        return [i for i, br in enumerate(self.branches) if br.in_service]

    # ------------------------------------------------------------------
    # zone / feeder metadata
    # ------------------------------------------------------------------
    def set_bus_zones(self, zones: dict[int, str]) -> None:
        """Attach explicit feeder/zone labels (bus index -> label).

        Partial mappings are allowed: unlabelled buses keep the
        contiguous-band default.  Labels also mirror into each
        :class:`~repro.grid.components.Bus`'s ``zone`` field (as the
        label's ordinal) so array-level consumers see the same grouping.
        """
        clean: dict[int, str] = {}
        for bus, label in zones.items():
            self._check_bus(bus)
            if not label or not isinstance(label, str):
                raise ValueError(
                    f"bus {bus}: zone label must be a non-empty string, got {label!r}"
                )
            clean[int(bus)] = label
        self._bus_zones = clean
        ordinals: dict[str, int] = {}
        for bus in sorted(clean):
            label = clean[bus]
            ordinal = ordinals.setdefault(label, len(ordinals) + 1)
            self.buses[bus].zone = ordinal

    def bus_zone(self, bus: int, n_default: int = DEFAULT_ZONE_BANDS) -> str:
        """Feeder label for ``bus``: explicit if set, banded otherwise.

        The default partitions bus indices into ``n_default`` contiguous,
        near-equal bands (bus ``b`` -> band ``b * n // n_bus``) — the same
        deterministic stand-in for missing feeder topology that
        :class:`~repro.scenarios.spec.ZonalLoadScale` uses, so telemetry
        feeder tags and zonal study slices line up by construction.
        """
        self._check_bus(bus)
        label = self._bus_zones.get(bus)
        if label is not None:
            return label
        n = max(1, min(int(n_default), self.n_bus))
        return f"feeder_{bus * n // self.n_bus}"

    def bus_zones(self, n_default: int = DEFAULT_ZONE_BANDS) -> dict[int, str]:
        """Feeder label per bus (explicit labels over banded defaults)."""
        return {b: self.bus_zone(b, n_default) for b in range(self.n_bus)}

    def zone_index(self, bus: int, n_zones: int) -> int:
        """Map ``bus`` to a zone ordinal in ``[0, n_zones)``.

        With explicit labels, distinct labels get ordinals in first-seen
        bus order (wrapped modulo ``n_zones`` if there are more labels
        than zones); without them this is the contiguous-band rule
        ``bus * n_zones // n_bus`` unchanged.
        """
        self._check_bus(bus)
        if n_zones < 1:
            raise ValueError(f"n_zones must be >= 1, got {n_zones}")
        if not self._bus_zones:
            return bus * n_zones // self.n_bus
        label = self.bus_zone(bus, n_zones)
        ordinals: dict[str, int] = {}
        for b in range(self.n_bus):
            ordinals.setdefault(self.bus_zone(b, n_zones), len(ordinals))
        return ordinals[label] % n_zones

    # ------------------------------------------------------------------
    # mutation (agent-facing edits)
    # ------------------------------------------------------------------
    def touch(self) -> None:
        """Invalidate compiled views after an out-of-band component edit."""
        self._version += 1
        self._compiled = None
        self._content_hash_memo = None
        self._adm_memo = None

    def set_load(self, bus: int, pd_mw: float, qd_mvar: float | None = None) -> Load:
        """Set the total load at ``bus``, creating a load if none exists.

        When multiple loads share the bus, the first is set to the target
        and the rest are zeroed, so the bus total equals the request — the
        semantics of the paper's ``modify_bus_load`` tool.
        """
        self._check_bus(bus)
        existing = self.loads_at_bus(bus)
        if qd_mvar is None:
            # Preserve the current power factor if there is one.
            pd_old = sum(ld.pd_mw for ld in existing)
            qd_old = sum(ld.qd_mvar for ld in existing)
            qd_mvar = qd_old * (pd_mw / pd_old) if pd_old else 0.0
        if not existing:
            return self.add_load(bus, pd_mw=pd_mw, qd_mvar=qd_mvar)
        first, *rest = existing
        first.pd_mw = pd_mw
        first.qd_mvar = qd_mvar
        for ld in rest:
            ld.pd_mw = 0.0
            ld.qd_mvar = 0.0
        self.touch()
        return first

    def scale_loads(self, factor: float) -> None:
        """Multiply every in-service load by ``factor`` (what-if studies)."""
        if factor < 0:
            raise ValueError(f"load scale factor must be non-negative, got {factor}")
        for ld in self.loads:
            ld.pd_mw *= factor
            ld.qd_mvar *= factor
        self.touch()

    def set_branch_status(self, branch_id: int, in_service: bool) -> Branch:
        """Switch a branch in or out of service (contingency application)."""
        if not 0 <= branch_id < len(self.branches):
            raise IndexError(
                f"branch {branch_id} does not exist "
                f"(network has {len(self.branches)} branches)"
            )
        br = self.branches[branch_id]
        br.in_service = in_service
        self.touch()
        return br

    def find_branch(self, from_bus: int, to_bus: int) -> int:
        """Locate a branch by its endpoints (either orientation)."""
        for i, br in enumerate(self.branches):
            if {br.from_bus, br.to_bus} == {from_bus, to_bus}:
                return i
        raise KeyError(f"no branch between buses {from_bus} and {to_bus}")

    def copy(self) -> "Network":
        """Deep copy; the copy starts with a fresh compile cache."""
        clone = Network(self.base_mva, _copy.deepcopy(self.metadata))
        clone.buses = _copy.deepcopy(self.buses)
        clone.gens = _copy.deepcopy(self.gens)
        clone.loads = _copy.deepcopy(self.loads)
        clone.branches = _copy.deepcopy(self.branches)
        clone._bus_zones = dict(self._bus_zones)
        return clone

    # ------------------------------------------------------------------
    # compiled view
    # ------------------------------------------------------------------
    def compile(self) -> NetworkArrays:
        """Return the per-unit array snapshot, rebuilding only if stale."""
        if self._compiled is not None and self._compiled.version == self._version:
            return self._compiled
        self._compiled = self._build_arrays()
        return self._compiled

    def _build_arrays(self) -> NetworkArrays:
        nb = self.n_bus
        if nb == 0:
            raise ValueError("cannot compile an empty network")
        base = self.base_mva

        bus_type = np.array([int(b.bus_type) for b in self.buses], dtype=np.int64)
        pd = np.zeros(nb)
        qd = np.zeros(nb)
        for ld in self.loads:
            if ld.in_service:
                pd[ld.bus] += ld.pd_mw / base
                qd[ld.bus] += ld.qd_mvar / base
        gs = np.array([b.gs_mw / base for b in self.buses])
        bs = np.array([b.bs_mvar / base for b in self.buses])
        vm0 = np.array([b.vm_pu for b in self.buses])
        va0 = np.array([deg_to_rad(b.va_deg) for b in self.buses])
        vmin = np.array([b.vmin_pu for b in self.buses])
        vmax = np.array([b.vmax_pu for b in self.buses])
        base_kv = np.array([b.base_kv for b in self.buses])

        gen_rows = [(i, g) for i, g in enumerate(self.gens) if g.in_service]
        gen_ids = np.array([i for i, _ in gen_rows], dtype=np.int64)
        gen_bus = np.array([g.bus for _, g in gen_rows], dtype=np.int64)
        pg0 = np.array([g.pg_mw / base for _, g in gen_rows])
        qg0 = np.array([g.qg_mvar / base for _, g in gen_rows])
        pmin = np.array([g.pmin_mw / base for _, g in gen_rows])
        pmax = np.array([g.pmax_mw / base for _, g in gen_rows])
        qmin = np.array([g.qmin_mvar / base for _, g in gen_rows])
        qmax = np.array([g.qmax_mvar / base for _, g in gen_rows])
        vg = np.array([g.vg_pu for _, g in gen_rows])

        # Seed voltage setpoints: PV/slack buses start at their gen's vg.
        for _, g in gen_rows:
            if bus_type[g.bus] in (int(BusType.PV), int(BusType.SLACK)):
                vm0[g.bus] = g.vg_pu

        br_rows = [(i, br) for i, br in enumerate(self.branches) if br.in_service]
        branch_ids = np.array([i for i, _ in br_rows], dtype=np.int64)
        f_bus = np.array([br.from_bus for _, br in br_rows], dtype=np.int64)
        t_bus = np.array([br.to_bus for _, br in br_rows], dtype=np.int64)
        r = np.array([br.r_pu for _, br in br_rows])
        x = np.array([br.x_pu for _, br in br_rows])
        b_charge = np.array([br.b_pu for _, br in br_rows])
        tap = np.array([br.effective_tap for _, br in br_rows])
        shift = np.array([deg_to_rad(br.shift_deg) for _, br in br_rows])
        rate_a = np.array([br.rate_a_mva / base for _, br in br_rows])

        return NetworkArrays(
            base_mva=base,
            n_bus=nb,
            bus_type=bus_type,
            pd=pd,
            qd=qd,
            gs=gs,
            bs=bs,
            vm0=vm0,
            va0=va0,
            vmin=vmin,
            vmax=vmax,
            base_kv=base_kv,
            n_gen=len(gen_rows),
            gen_ids=gen_ids,
            gen_bus=gen_bus,
            pg0=pg0,
            qg0=qg0,
            pmin=pmin,
            pmax=pmax,
            qmin=qmin,
            qmax=qmax,
            vg=vg,
            n_branch=len(br_rows),
            branch_ids=branch_ids,
            f_bus=f_bus,
            t_bus=t_bus,
            r=r,
            x=x,
            b_charge=b_charge,
            tap=tap,
            shift=shift,
            rate_a=rate_a,
            version=self._version,
        )

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Component counts in the shape of the paper's Table 2."""
        return {
            "case": self.metadata.case_name,
            "bus": self.n_bus,
            "gen": self.n_gen,
            "load": self.n_load,
            "ac_line": self.n_line,
            "transformer": self.n_transformer,
            "total_load_mw": round(self.total_load_mw(), 3),
            "gen_capacity_mw": round(self.total_gen_capacity_mw(), 3),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network({self.metadata.case_name or 'unnamed'}: "
            f"{self.n_bus} buses, {self.n_gen} gens, {self.n_load} loads, "
            f"{self.n_branch} branches)"
        )
