"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The always-on half of the observability layer (the opt-in half is
:mod:`~repro.instrumentation.trace`).  Every layer of the stack records
into one process-wide :class:`MetricsRegistry` — requests, tool calls,
solver invocations and convergence failures, chunks dispatched/retried,
in-flight window occupancy, store hits and bytes — cheap enough (one
lock + dict update per event, microseconds against solver milliseconds)
to stay enabled in production.

Three design points worth knowing:

* **Labels** are plain keyword arguments (``counter.inc(solver="newton")``)
  keyed internally by a sorted item tuple, so one instrument holds a
  small family of series exactly like a Prometheus metric does.
* **Cross-process merge**: pool workers accumulate into their *own*
  process-local registry; chunk payloads carry a counter/histogram delta
  back (:meth:`MetricsRegistry.state` / :func:`state_delta`) which the
  parent folds in with :meth:`MetricsRegistry.merge_state` — so
  solver-level counters from a 10k-scenario pooled study surface in the
  service's registry.  Gauges are point-in-time and deliberately do not
  merge.
* **Exposition**: :func:`render_prometheus` emits the standard text
  format (``# HELP``/``# TYPE``, ``_bucket{le=...}``/``_sum``/``_count``
  for histograms) from any registry snapshot.
"""

from __future__ import annotations

import math
import threading
from typing import Iterator

#: Default histogram bucket upper bounds, in seconds — spans the range
#: from a cached tool call to a long ACOPF ensemble chunk.
DEFAULT_TIME_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0
)

#: Default buckets for iteration-count histograms (solver convergence).
ITERATION_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and newline are the three characters the
    format requires escaping — session ids and case names flow into
    label values, so arbitrary user text must render scrape-safe.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [*key, *extra]
    if not items:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, _escape_label_value(v)) for k, v in items
    )
    return "{" + body + "}"


class Counter:
    """Monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: dict[_LabelKey, float] = {}

    def inc(self, n: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + n

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label series."""
        with self._lock:
            return sum(self._values.values())

    def _series(self) -> Iterator[tuple[_LabelKey, float]]:
        with self._lock:
            yield from sorted(self._values.items())

    def render(self) -> list[str]:
        return [
            f"{self.name}{_render_labels(key)} {_fmt(value)}"
            for key, value in self._series()
        ]


class Gauge(Counter):
    """A value that can go up and down (queue depth, in-flight window)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def dec(self, n: float = 1.0, **labels) -> None:
        self.inc(-n, **labels)

    def set_max(self, value: float, **labels) -> None:
        """Ratchet: keep the largest value ever seen (peak occupancy)."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = max(self._values.get(key, float(value)), float(value))


class Histogram:
    """Fixed-bucket histogram: cumulative bucket counts, sum, and count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram buckets must be sorted and non-empty: {buckets}")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        # Per label series: [per-bucket counts..., +Inf count], sum.
        self._counts: dict[_LabelKey, list[int]] = {}
        self._sums: dict[_LabelKey, float] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.buckets) + 1)
                self._sums[key] = 0.0
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] += value

    def count(self, **labels) -> int:
        counts = self._counts.get(_label_key(labels))
        return sum(counts) if counts else 0

    def sum(self, **labels) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        lines: list[str] = []
        with self._lock:
            for key in sorted(self._counts):
                counts = self._counts[key]
                cumulative = 0
                for bound, n in zip(self.buckets, counts):
                    cumulative += n
                    lines.append(
                        f"{self.name}_bucket"
                        f"{_render_labels(key, (('le', _fmt(bound)),))} {cumulative}"
                    )
                cumulative += counts[-1]
                lines.append(
                    f"{self.name}_bucket{_render_labels(key, (('le', '+Inf'),))} "
                    f"{cumulative}"
                )
                lines.append(
                    f"{self.name}_sum{_render_labels(key)} {_fmt(self._sums[key])}"
                )
                lines.append(f"{self.name}_count{_render_labels(key)} {cumulative}")
        return lines


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _NullInstrument:
    """Shared no-op stand-in when a registry is disabled."""

    def __getattr__(self, _name):
        return self._noop

    @staticmethod
    def _noop(*_args, **_kwargs):
        return 0.0


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named instrument collection; get-or-create, thread-safe, mergeable.

    ``enabled=False`` returns shared no-op instruments from every
    accessor — the instrumentation-off baseline the E15 ablation
    benchmark measures against.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    def _get(self, cls, name: str, help: str, **kwargs):
        if not self.enabled:
            return _NULL
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name, help, **kwargs)
            elif not isinstance(instrument, cls) or type(instrument) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    # ------------------------------------------------------------------
    # cross-process transport
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Plain-data snapshot of counters and histograms (picklable).

        Gauges are excluded: they are point-in-time readings of *this*
        process and summing them across workers is meaningless.
        """
        counters: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        for instrument in self.instruments():
            if isinstance(instrument, Histogram):
                with instrument._lock:
                    histograms[instrument.name] = {
                        "help": instrument.help,
                        "buckets": instrument.buckets,
                        "series": {
                            key: (list(counts), instrument._sums[key])
                            for key, counts in instrument._counts.items()
                        },
                    }
            elif isinstance(instrument, Gauge):
                continue
            elif isinstance(instrument, Counter):
                with instrument._lock:
                    counters[instrument.name] = {
                        "help": instrument.help,
                        "series": dict(instrument._values),
                    }
        return {"counters": counters, "histograms": histograms}

    def merge_state(self, state: dict | None) -> None:
        """Fold a worker's :meth:`state` delta into this registry."""
        if not state:
            return
        for name, block in state.get("counters", {}).items():
            counter = self.counter(name, block.get("help", ""))
            for key, value in block.get("series", {}).items():
                if value:
                    counter.inc(value, **dict(key))
        for name, block in state.get("histograms", {}).items():
            histogram = self.histogram(
                name, block.get("help", ""), buckets=tuple(block.get("buckets", ()))
                or DEFAULT_TIME_BUCKETS,
            )
            for key, (counts, total) in block.get("series", {}).items():
                with histogram._lock:
                    series = histogram._counts.get(key)
                    if series is None:
                        series = histogram._counts[key] = [0] * len(counts)
                        histogram._sums[key] = 0.0
                    for i, n in enumerate(counts):
                        series[i] += n
                    histogram._sums[key] += total
        return


def state_delta(after: dict, before: dict) -> dict:
    """``after - before`` for two :meth:`MetricsRegistry.state` snapshots.

    What a pool worker ships back per chunk: only series that moved
    during the chunk, so idle instruments cost nothing on the wire.
    """
    counters: dict[str, dict] = {}
    for name, block in after.get("counters", {}).items():
        base = before.get("counters", {}).get(name, {}).get("series", {})
        series = {
            key: value - base.get(key, 0.0)
            for key, value in block["series"].items()
            if value != base.get(key, 0.0)
        }
        if series:
            counters[name] = {"help": block.get("help", ""), "series": series}
    histograms: dict[str, dict] = {}
    for name, block in after.get("histograms", {}).items():
        base = before.get("histograms", {}).get(name, {}).get("series", {})
        series = {}
        for key, (counts, total) in block["series"].items():
            base_counts, base_sum = base.get(key, ([0] * len(counts), 0.0))
            delta = [n - b for n, b in zip(counts, base_counts)]
            if any(delta):
                series[key] = (delta, total - base_sum)
        if series:
            histograms[name] = {
                "help": block.get("help", ""),
                "buckets": block.get("buckets", ()),
                "series": series,
            }
    return {"counters": counters, "histograms": histograms}


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every instrument in ``registry``."""
    lines: list[str] = []
    for instrument in registry.instruments():
        if instrument.help:
            lines.append(f"# HELP {instrument.name} {instrument.help}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        lines.extend(instrument.render())
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# process-wide default registry
# ----------------------------------------------------------------------

_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry every layer records into by default."""
    return _METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    Used by the ablation benchmark (instrumentation-off baseline swaps in
    a disabled registry) and by tests that want an isolated registry.
    """
    global _METRICS
    previous = _METRICS
    _METRICS = registry
    return previous
