"""Result validation layer (paper Section 3.2.1, "Tool integration").

Post-execution checks every solver artefact must pass before an agent may
narrate it: convergence flag set, power-balance mismatch under the 1e-4
p.u. tolerance, voltages and dispatch inside limits (with a tolerance for
the interior-point's boundary slack).  Failures produce structured
:class:`ValidationReport` objects that the recovery paths consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..grid.network import Network
from ..grid.units import POWER_BALANCE_TOL_PU
from ..opf.result import OPFResult
from ..powerflow.solution import PowerFlowResult

_LIMIT_SLACK = 1e-5  # p.u. slack allowed on box constraints


@dataclass
class ValidationReport:
    ok: bool
    checks: list[tuple[str, bool, str]] = field(default_factory=list)

    def add(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append((name, passed, detail))
        if not passed:
            self.ok = False

    def failed_checks(self) -> list[str]:
        return [n for n, ok, _ in self.checks if not ok]

    def describe(self) -> str:
        if self.ok:
            return "all validation checks passed"
        parts = [
            f"{name}: {detail}" for name, ok, detail in self.checks if not ok
        ]
        return "; ".join(parts)


def validate_acopf(net: Network, result: OPFResult) -> ValidationReport:
    """Full validation of an ACOPF artefact against the live network."""
    report = ValidationReport(ok=True)
    report.add(
        "convergence",
        result.converged,
        result.message if not result.converged else "",
    )
    if not result.converged:
        return report

    mis = result.max_power_balance_mismatch_pu
    report.add(
        "power_balance",
        mis < POWER_BALANCE_TOL_PU,
        f"max mismatch {mis:.2e} pu exceeds {POWER_BALANCE_TOL_PU:.0e} pu",
    )

    arr = net.compile()
    vm = result.vm
    report.add(
        "voltage_limits",
        bool(np.all(vm >= arr.vmin - _LIMIT_SLACK) and np.all(vm <= arr.vmax + _LIMIT_SLACK)),
        f"voltage range [{vm.min():.4f}, {vm.max():.4f}] pu outside "
        f"[{arr.vmin.min():.2f}, {arr.vmax.max():.2f}]",
    )

    pg = result.pg_mw / arr.base_mva
    report.add(
        "dispatch_limits",
        bool(
            np.all(pg >= arr.pmin - 1e-4)
            and np.all(pg <= arr.pmax + 1e-4)
        ),
        "generator active dispatch outside [Pmin, Pmax]",
    )

    qg = result.qg_mvar / arr.base_mva
    report.add(
        "reactive_limits",
        bool(np.all(qg >= arr.qmin - 1e-4) and np.all(qg <= arr.qmax + 1e-4)),
        "generator reactive dispatch outside [Qmin, Qmax]",
    )

    report.add(
        "thermal_limits",
        result.max_loading_percent <= 100.0 + 0.1,
        f"branch loading {result.max_loading_percent:.2f}% exceeds ratings",
    )
    return report


def validate_power_flow(result: PowerFlowResult) -> ValidationReport:
    """Validation for plain power-flow artefacts (CA base case)."""
    report = ValidationReport(ok=True)
    report.add(
        "convergence",
        result.converged,
        result.message if not result.converged else "",
    )
    if result.converged:
        report.add(
            "power_balance",
            result.max_mismatch_pu < POWER_BALANCE_TOL_PU,
            f"max mismatch {result.max_mismatch_pu:.2e} pu exceeds tolerance",
        )
        finite = bool(np.all(np.isfinite(result.vm)))
        report.add("finite_voltages", finite, "non-finite voltage magnitudes")
    return report


def sanity_check_modification(
    net: Network, bus: int | None = None, branch_id: int | None = None
) -> ValidationReport:
    """Pre-flight checks for modification tools (paper: "sanity checks on
    modified elements")."""
    report = ValidationReport(ok=True)
    if bus is not None:
        report.add(
            "bus_exists",
            0 <= bus < net.n_bus,
            f"bus {bus} does not exist (case has {net.n_bus} buses, 0-indexed)",
        )
    if branch_id is not None:
        ok = 0 <= branch_id < net.n_branch
        report.add(
            "branch_exists",
            ok,
            f"branch {branch_id} does not exist (case has {net.n_branch} branches)",
        )
        if ok:
            report.add(
                "branch_in_service",
                net.branches[branch_id].in_service,
                f"branch {branch_id} is already out of service",
            )
    return report
