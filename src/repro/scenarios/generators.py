"""Scenario family generators: compact study descriptions -> concrete lists.

Each generator expands a few parameters into the N scenarios a study
needs, with deterministic naming and tagging.  Stochastic families derive
one child seed per scenario from the family seed, so the ensemble is
reproducible and independent of execution order (serial, chunked, or
process-parallel).
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from ..grid.network import Network
from .spec import BranchOutage, GaussianLoadNoise, Scenario, UniformLoadScale


def load_sweep(lo: float = 0.8, hi: float = 1.2, steps: int = 9) -> list[Scenario]:
    """Uniform load scaling swept over ``steps`` points in [lo, hi]."""
    if steps < 2:
        raise ValueError(f"a sweep needs at least 2 steps, got {steps}")
    if lo < 0 or hi < lo:
        raise ValueError(f"invalid sweep range [{lo}, {hi}]")
    factors = np.linspace(lo, hi, steps)
    return [
        Scenario(
            name=f"sweep_{int(round(f * 100)):03d}",
            perturbations=(UniformLoadScale(float(f)),),
            tags={"family": "sweep", "scale": float(f), "index": i},
        )
        for i, f in enumerate(factors)
    ]


def monte_carlo_ensemble(
    n: int = 200, sigma: float = 0.05, seed: int = 0
) -> list[Scenario]:
    """``n`` independent Gaussian load draws around the base point."""
    if n < 1:
        raise ValueError(f"ensemble size must be >= 1, got {n}")
    # One child seed per draw, derived once from the family seed.
    child_seeds = np.random.default_rng(seed).integers(0, 2**31 - 1, size=n)
    width = max(3, len(str(n - 1)))
    return [
        Scenario(
            name=f"mc_{i:0{width}d}",
            perturbations=(GaussianLoadNoise(float(sigma), int(child_seeds[i])),),
            tags={"family": "monte_carlo", "draw": i, "seed": int(child_seeds[i]), "index": i},
        )
        for i in range(n)
    ]


def outage_combinations(
    net: Network,
    *,
    depth: int = 2,
    limit: int | None = None,
    branch_ids: list[int] | None = None,
) -> list[Scenario]:
    """N-k outage scenarios: every ``depth``-element combination of branches.

    The combination count explodes quickly (118-bus N-2 is ~15k pairs), so
    ``limit`` caps the expansion; combinations are enumerated in a fixed
    lexicographic order, so a capped study is a deterministic prefix.
    """
    if depth < 1:
        raise ValueError(f"outage depth must be >= 1, got {depth}")
    candidates = branch_ids if branch_ids is not None else net.in_service_branch_ids()
    scenarios = []
    for combo in itertools.combinations(candidates, depth):
        scenarios.append(
            Scenario(
                name="out_" + "_".join(str(b) for b in combo),
                perturbations=tuple(BranchOutage(b) for b in combo),
                tags={
                    "family": "outage",
                    "branches": list(combo),
                    "index": len(scenarios),
                },
            )
        )
        if limit is not None and len(scenarios) >= limit:
            break
    return scenarios


def daily_profile(
    steps: int = 24, trough: float = 0.65, peak: float = 1.0
) -> list[Scenario]:
    """A daily load curve: cosine shape with a 4 am trough and 4 pm peak.

    ``steps`` samples one day uniformly (24 -> hourly); each step scales
    all loads by a factor in [trough, peak].
    """
    if steps < 1:
        raise ValueError(f"profile needs at least 1 step, got {steps}")
    if trough < 0 or peak < trough:
        raise ValueError(f"invalid profile band [{trough}, {peak}]")
    scenarios = []
    for i in range(steps):
        hour = 24.0 * i / steps
        shape = 0.5 * (1.0 - math.cos(2.0 * math.pi * (hour - 4.0) / 24.0))
        factor = trough + (peak - trough) * shape
        scenarios.append(
            Scenario(
                name=f"hour_{hour:04.1f}".replace(".", "h"),
                perturbations=(UniformLoadScale(round(factor, 6)),),
                tags={"family": "profile", "hour": hour, "scale": factor, "index": i},
            )
        )
    return scenarios


def with_branch_outage(scenarios: list[Scenario], branch_id: int) -> list[Scenario]:
    """Cross an existing family with a fixed branch outage (study composition)."""
    return [
        Scenario(
            name=f"{s.name}_out{branch_id}",
            perturbations=(*s.perturbations, BranchOutage(branch_id)),
            tags={**s.tags, "outage_branch": branch_id},
        )
        for s in scenarios
    ]
