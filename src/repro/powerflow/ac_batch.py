"""Batched AC physics kernel: warm-started ensembles on one topology.

PR 9 batched the *linear* hot path; this module is the nonlinear half.
An injection-only AC ensemble (the default ``analysis="powerflow"``
study) used to pay, per scenario: a network realize + compile, a fresh
Ybus build, and a flat-ish Newton solve from ``vm0``.  Every one of
those costs is topology-level, not scenario-level — ten thousand Monte
Carlo draws over one grid share a single admittance matrix, a single
base-case solution to warm-start from, and a single pair of
fast-decoupled B'/B'' factorizations.

:class:`AcKernel` owns exactly that shared state for one electrical
topology (keyed by the same :func:`~repro.powerflow.batch.topology_digest`
the DC kernel cache uses) and solves a stacked injection chunk in three
tiers, each cheaper than the last:

1. **Vectorized mismatch screen** — the warm-start voltage's injection
   ``V ∘ conj(Ybus V)`` is computed once (one sparse matvec for the whole
   chunk, since every row shares the start) and compared against the
   stacked scheduled injections; rows already inside ``tol`` skip
   iteration entirely.
2. **Fast-decoupled corrector sweeps** — a few half-iterations through
   the cached B'/B'' SuperLU factorizations, run as multi-RHS triangular
   solves across all still-active rows at once, walk each iterate most
   of the way in.
3. **Warm-started Newton polish** — the full-Jacobian solver finishes
   each remaining row to the exact scalar-path tolerance; rows it cannot
   converge fall back to the caller's scalar recovery ladder.

The contract is *parity*, not bit-identity (Newton iterates are
path-dependent): identical ``converged`` flags, identical overloaded-
branch and voltage-violation sets, every mismatch under the same ``tol``,
and aggregate fields within 1e-6 of the cold path — asserted by the test
suite across cases, chunk sizes, and dispatch modes.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
from scipy.sparse import linalg as sla

from ..grid.components import BusType
from ..grid.network import Network
from .fast_decoupled import _series_susceptance_matrices
from .newton import _newton_inner, solve_newton
from .solution import PowerFlowResult, finalize_solution, make_admittances


class AcChunkSolution:
    """Stacked warm-path AC solution: row ``i`` is scenario ``i``."""

    __slots__ = ("v", "converged", "iterations", "norms", "skipped")

    def __init__(
        self,
        v: np.ndarray,
        converged: np.ndarray,
        iterations: np.ndarray,
        norms: np.ndarray,
        skipped: np.ndarray,
    ) -> None:
        self.v = v  # (n, n_bus) complex final voltages
        self.converged = converged  # (n,) bool
        self.iterations = iterations  # (n,) Newton iterations per row
        self.norms = norms  # (n,) final max mismatch, p.u.
        self.skipped = skipped  # (n,) rows converged at the warm start

    @property
    def n_scenarios(self) -> int:
        return self.v.shape[0]


class AcKernel:
    """Compiled warm-start AC model for one electrical topology.

    Construction compiles the network once and reuses the memoised
    admittances; the base-case Newton solve and the fast-decoupled
    B'/B'' factorizations are built lazily on first use.  Injections are
    supplied per chunk, so one kernel serves every load level of its
    topology — the same lifecycle as :class:`~repro.powerflow.batch.DcKernel`.

    Holds SuperLU objects, so instances are worker-local and never
    pickled (the worker cache rebuilds them per process).
    """

    def __init__(
        self, net: Network, *, tol: float = 1e-8, max_iter: int = 20
    ) -> None:
        self.net = net
        self.tol = tol
        self.max_iter = max_iter
        self.arr, self.adm = make_admittances(net)
        arr = self.arr
        self.pv = np.flatnonzero(arr.bus_type == int(BusType.PV))
        self.pq = np.flatnonzero(arr.bus_type == int(BusType.PQ))
        self.pvpq = np.concatenate([self.pv, self.pq])
        self._base: PowerFlowResult | None = None
        self._base_v: np.ndarray | None = None
        self._fd_lus = None
        #: Fast-path accounting: rows iterated warm / skipped at start.
        self.n_warm_solves = 0
        self.n_skipped = 0
        self.n_chunks = 0

    # ------------------------------------------------------------------
    # shared one-off state
    # ------------------------------------------------------------------
    def base_result(self) -> PowerFlowResult:
        """The base-case solve every chunk warm-starts from (lazy)."""
        if self._base is None:
            self._base = solve_newton(
                self.net, tol=self.tol, max_iter=self.max_iter
            )
            if self._base.converged:
                self._base_v = np.asarray(
                    self._base.extras["v_complex"], dtype=complex
                )
        return self._base

    @property
    def usable(self) -> bool:
        """Whether the warm path can run (base case converged)."""
        return self.base_result().converged

    def _fd_factors(self):
        """Cached SuperLU factorizations of the reduced B' / B''."""
        if self._fd_lus is None:
            bp, bpp = _series_susceptance_matrices(self.arr, "xb")
            lu_p = sla.splu(bp[np.ix_(self.pvpq, self.pvpq)].tocsc())
            lu_q = (
                sla.splu(bpp[np.ix_(self.pq, self.pq)].tocsc())
                if self.pq.size
                else None
            )
            self._fd_lus = (lu_p, lu_q)
        return self._fd_lus

    # ------------------------------------------------------------------
    # the chunk solve
    # ------------------------------------------------------------------
    def _row_norms(self, mis: np.ndarray) -> np.ndarray:
        """Per-row max mismatch over the P(pv+pq) / Q(pq) equations."""
        parts = np.concatenate(
            [mis[:, self.pvpq].real, mis[:, self.pq].imag], axis=1
        )
        if parts.shape[1] == 0:
            return np.zeros(mis.shape[0])
        return np.max(np.abs(parts), axis=1)

    def _fd_correct(
        self, vm: np.ndarray, va: np.ndarray, sbus: np.ndarray, sweeps: int
    ) -> None:
        """Vectorized fast-decoupled half-iterations across chunk rows.

        Each sweep runs one P half and one Q half for every still-active
        row through a single multi-RHS triangular solve against the
        cached B'/B'' factorizations; rows falling under ``tol`` drop
        out between halves.  Mutates ``vm``/``va`` in place.
        """
        lu_p, lu_q = self._fd_factors()
        pvpq, pq = self.pvpq, self.pq
        ybus = self.adm.ybus
        active = np.arange(vm.shape[0])
        for _ in range(sweeps):
            v = vm[active] * np.exp(1j * va[active])
            mis = v * np.conj((ybus @ v.T).T) - sbus[active]
            still = self._row_norms(mis) >= self.tol
            active = active[still]
            if not active.size:
                return
            v, mis = v[still], mis[still]
            p = mis[:, pvpq].real / np.abs(v[:, pvpq])
            va[np.ix_(active, pvpq)] -= lu_p.solve(
                np.ascontiguousarray(p.T)
            ).T
            if lu_q is None:
                continue
            v = vm[active] * np.exp(1j * va[active])
            mis = v * np.conj((ybus @ v.T).T) - sbus[active]
            still = self._row_norms(mis) >= self.tol
            active = active[still]
            if not active.size:
                return
            v, mis = v[still], mis[still]
            q = mis[:, pq].imag / np.abs(v[:, pq])
            vm[np.ix_(active, pq)] -= lu_q.solve(np.ascontiguousarray(q.T)).T

    def solve_chunk(
        self, sbus: np.ndarray, *, fd_sweeps: int = 2
    ) -> AcChunkSolution:
        """Solve a stacked ``(n, n_bus)`` complex-injection chunk warm.

        Every row starts from the cached base-case voltage; see the
        module docstring for the three solve tiers.  Rows whose Newton
        polish does not converge come back ``converged=False`` — the
        caller degrades those to its scalar recovery ladder.
        """
        base = self.base_result()
        if not base.converged:
            raise RuntimeError(
                "AC kernel base case did not converge; warm path unusable"
            )
        sbus = np.atleast_2d(np.asarray(sbus, dtype=complex))
        n = sbus.shape[0]
        ybus = self.adm.ybus
        v0 = self._base_v
        assert v0 is not None

        v_out = np.tile(v0, (n, 1))
        iterations = np.zeros(n, dtype=int)
        converged = np.zeros(n, dtype=bool)

        # Tier 1: one matvec screens the whole chunk — every row shares
        # the warm-start voltage, so its realised injection is computed
        # once and compared against all scheduled injections at once.
        base_s = v0 * np.conj(ybus @ v0)
        norms = self._row_norms(base_s[np.newaxis, :] - sbus)
        skipped = norms < self.tol
        converged[skipped] = True

        active = np.flatnonzero(~skipped)
        if active.size:
            vm = np.abs(v_out[active])
            va = np.angle(v_out[active])
            # Tier 2: cheap corrector sweeps through the cached LUs.
            if fd_sweeps > 0:
                self._fd_correct(vm, va, sbus[active], fd_sweeps)
            v_warm = vm * np.exp(1j * va)
            # Tier 3: per-row Newton polish to the scalar-path tolerance.
            for j, i in enumerate(active):
                v_i, conv, iters, norm = _newton_inner(
                    ybus,
                    sbus[i],
                    v_warm[j],
                    self.arr.bus_type,
                    self.tol,
                    self.max_iter,
                )
                v_out[i] = v_i
                converged[i] = conv
                iterations[i] = iters
                norms[i] = norm

        self.n_chunks += 1
        self.n_warm_solves += int(active.size)
        self.n_skipped += int(skipped.sum())
        return AcChunkSolution(v_out, converged, iterations, norms, skipped)

    # ------------------------------------------------------------------
    # per-row finalization
    # ------------------------------------------------------------------
    def finalize_row(
        self,
        v: np.ndarray,
        pd: np.ndarray,
        qd: np.ndarray,
        *,
        converged: bool,
        iterations: int,
        norm: float,
    ) -> PowerFlowResult:
        """Assemble the full :class:`PowerFlowResult` for one chunk row.

        ``pd``/``qd`` are the scenario's per-bus load vectors (p.u.):
        generation allocation reads them off the snapshot, so the cached
        topology arrays are rebound to this row's loads — no recompile.
        """
        arr = replace(self.arr, pd=pd, qd=qd)
        return finalize_solution(
            self.net,
            arr,
            self.adm,
            v,
            converged=converged,
            iterations=iterations,
            method="newton",
            max_mismatch_pu=float(norm),
            message=f"converged in {iterations} iterations (warm start)",
        )
