"""Narration templates: structured solver results -> grounded prose.

Every number in these strings is read directly from a tool-result dict —
the code path equivalent of the paper's "each reported number is pulled
from stored structured results".  Verbosity levels mirror the model
profiles (0 terse, 1 normal, 2 expansive).
"""

from __future__ import annotations


def _money(x) -> str:
    return f"${float(x):,.2f}"


def narrate_acopf(res: dict, verbosity: int) -> str:
    if not res.get("solved"):
        return (
            f"The ACOPF for {res.get('case_name', 'the case')} did not converge: "
            f"{res.get('convergence_message', 'no solver message')}. "
            "I recommend checking the recent modifications or relaxing limits."
        )
    head = (
        f"Solved ACOPF for {res['case_name']}: total generation cost "
        f"{_money(res['objective_cost'])}/h."
    )
    if verbosity == 0:
        return head
    mid = (
        f" Dispatch covers {res['total_generation_mw']:.1f} MW "
        f"({res['losses_mw']:.1f} MW losses); voltages span "
        f"[{res['min_voltage_pu']:.3f}, {res['max_voltage_pu']:.3f}] pu and the "
        f"most loaded branch sits at {res['max_loading_percent']:.1f}% of rating."
    )
    if verbosity == 1:
        return head + mid
    tail = (
        f" The solver ({res.get('solver', 'acopf-ipm')}) converged in "
        f"{res.get('iterations', '?')} iterations with max power-balance mismatch "
        f"{res.get('max_mismatch_pu', 0):.2e} pu, within the 1e-4 pu validation "
        "tolerance; all reported figures are taken from the stored solution object."
    )
    return head + mid + tail


def narrate_load_change(res: dict, verbosity: int) -> str:
    change = (
        f"Load at bus {res['bus']} is now {res['new_pd_mw']:.1f} MW "
        f"(was {res['old_pd_mw']:.1f} MW)."
    )
    if not res.get("solved"):
        return (
            change
            + " However, the re-dispatch did not converge: "
            + res.get("convergence_message", "no message")
        )
    cost_bit = f" Re-solved ACOPF cost: {_money(res['objective_cost'])}/h"
    delta = res.get("cost_delta")
    if delta is not None:
        direction = "up" if delta >= 0 else "down"
        cost_bit += f" ({direction} {_money(abs(delta))}/h from the previous solution)"
    cost_bit += "."
    if verbosity == 0:
        return change + cost_bit
    return (
        change
        + cost_bit
        + f" Voltages remain in [{res['min_voltage_pu']:.3f}, "
        f"{res['max_voltage_pu']:.3f}] pu; max branch loading "
        f"{res['max_loading_percent']:.1f}%."
    )


def narrate_status(res: dict, verbosity: int) -> str:
    if not res.get("case_name"):
        return (
            "No case is loaded yet. Ask me to solve one of the IEEE systems "
            "(14, 30, 57, 118 or 300 bus) to get started."
        )
    head = (
        f"Active case: {res['case_name']} — {res['n_bus']} buses, "
        f"{res['n_gen']} generators, {res['n_load']} loads, "
        f"{res['n_branch']} branches."
    )
    if res.get("solved"):
        head += (
            f" Latest ACOPF solution: {_money(res['objective_cost'])}/h "
            f"({'fresh' if res.get('fresh') else 'stale — the network changed since'})."
        )
    else:
        head += " No valid ACOPF solution in context yet."
    if verbosity >= 1 and res.get("modifications"):
        head += f" Applied modifications: {'; '.join(res['modifications'][-3:])}."
    return head


def narrate_contingency(res: dict, verbosity: int) -> str:
    head = (
        f"N-1 contingency analysis for {res['case_name']} screened "
        f"{res['n_contingencies']} outages: {res['n_violations']} cause violations; "
        f"worst overload {res['max_overload_percent']:.0f}%."
    )
    lines = [head, ""]
    crit = res.get("critical", [])
    if crit:
        lines.append("Most critical contingencies:")
        for c in crit:
            kind = "transformer" if c.get("is_transformer") else "line"
            entry = (
                f"  {c['rank']}. Branch {c['branch_id']} ({kind} "
                f"{c['from_bus']}-{c['to_bus']}), severity {c['severity']:.1f}"
            )
            if c.get("islanded"):
                entry += f" — islands {c['stranded_load_mw']:.0f} MW of load"
            elif not c.get("converged", True):
                entry += " — post-contingency collapse risk (power flow diverged)"
            else:
                entry += (
                    f" — {c['n_overloads']} overload(s), max loading "
                    f"{c['max_loading_percent']:.0f}%, min voltage "
                    f"{c['min_voltage_pu']:.3f} pu"
                )
            lines.append(entry)
            if verbosity >= 2 and c.get("justification"):
                lines.append(f"      {c['justification']}")
    if verbosity >= 1 and res.get("recommendations"):
        lines.append("")
        lines.append("Recommendations:")
        lines.extend(f"  - {r}" for r in res["recommendations"][:4])
    return "\n".join(lines)


#: Canonical slice-dimension tags -> operator-facing labels.
_SLICE_DIM_LABELS = {
    "hour_of_day": "hour of day",
    "scale": "load scale",
    "hot_zone": "hot zone",
    "outage_branch": "outaged branch",
    "stratum": "stratum",
    "draw": "draw",
}


def _slice_cell_line(dim: str, cell: dict) -> str:
    """One grounded slice-table row: every number from the cell dict."""
    label = "other" if cell["value"] == "__other__" else cell["value"]
    bits = [
        f"  {dim} {label}: {cell['n']} scenario{'s' if cell['n'] != 1 else ''}",
        f"{100.0 * cell.get('violation_rate', 0.0):.0f}% violations",
    ]
    cost = cell.get("cost_stats")
    if cost:
        bits.append(f"median cost {_money(cost['p50'])}/h")
    loading = cell.get("loading_stats")
    if loading:
        bits.append(f"peak loading p95 {loading['p95']:.1f}%")
    return ", ".join(bits)


def _thin_cells(cells: list[dict], keep: int = 12) -> list[dict]:
    """Evenly sample a long cell table, always keeping both endpoints."""
    if len(cells) <= keep:
        return cells
    step = (len(cells) - 1) / (keep - 1)
    picked = sorted({round(i * step) for i in range(keep)} | {len(cells) - 1})
    return [cells[i] for i in picked]


def narrate_slices(slices: dict, verbosity: int) -> list[str]:
    """Per-dimension slice tables ("cost vs sweep scale", "violations vs
    hour-of-day") rendered from a study aggregate's ``slices`` payload."""
    lines: list[str] = []
    for dim, block in (slices or {}).items():
        cells = block.get("cells") or []
        label = _SLICE_DIM_LABELS.get(dim, dim.replace("_", " "))
        if not cells:
            # An explicitly requested dimension that matched nothing must
            # say so, not silently vanish from the reply.
            lines.append(
                f"Sliced by {label}: no scenarios carried this tag "
                f"({block.get('n_unsliced', 0)} untagged)."
            )
            continue
        head = f"Sliced by {label} ({block.get('n_cells', len(cells))} buckets"
        overflow = block.get("n_overflow_values", 0)
        if overflow:
            head += f"; {overflow} overflow values folded into 'other'"
        unsliced = block.get("n_unsliced", 0)
        if unsliced:
            head += f"; {unsliced} scenarios untagged"
        lines.append(head + "):")
        shown = cells if verbosity >= 2 else _thin_cells(cells)
        lines.extend(_slice_cell_line(label, cell) for cell in shown)
        if len(shown) < len(cells):
            lines.append(f"  ... ({len(cells) - len(shown)} more buckets elided)")
    return lines


_STUDY_KIND_LABELS = {
    # Conversational tools tag with the long names, the service API with
    # the short family names; both narrate identically.
    "load_sweep": "load sweep",
    "sweep": "load sweep",
    "monte_carlo": "Monte Carlo load",
    "lhs": "Latin-hypercube load",
    "outage": "outage combination",
    "daily_profile": "daily load-profile",
    "profile": "daily load-profile",
}


def narrate_study(res: dict, verbosity: int) -> str:
    if not res or not res.get("n_scenarios"):
        return (
            "No batch study has been run yet in this session. Ask for a load "
            "sweep, Monte Carlo ensemble, N-2 outage study, or daily profile."
        )
    agg = res.get("aggregate", {})
    kind = _STUDY_KIND_LABELS.get(res.get("study_kind", ""), "scenario")
    head = (
        f"Completed a {res['n_scenarios']}-scenario {kind} study on "
        f"{res['case_name']} ({res.get('analysis', '?')} analysis, "
        f"{res.get('n_jobs', 1)} worker(s), {res.get('runtime_s', 0):.1f}s compute): "
        f"{agg.get('n_converged', '?')}/{res['n_scenarios']} scenarios converged, "
        f"{100.0 * agg.get('violation_rate', 0.0):.0f}% show limit violations."
    )
    if verbosity == 0:
        return head
    lines = [head]
    cost = agg.get("cost_stats")
    if cost:
        lines.append(
            f"Cost distribution: median {_money(cost['p50'])}/h, "
            f"p95 {_money(cost['p95'])}/h "
            f"(range {_money(cost['min'])} – {_money(cost['max'])})."
        )
    loading = agg.get("loading_stats")
    if loading:
        lines.append(
            f"Peak branch loading: median {loading['p50']:.1f}%, "
            f"p95 {loading['p95']:.1f}%, worst {loading['max']:.1f}%."
        )
    security = agg.get("security_cost_stats")
    if security:
        lines.append(
            f"Security premium (SCOPF over economic dispatch): median "
            f"{_money(security['p50'])}/h, worst {_money(security['max'])}/h."
        )
    freq = agg.get("branch_overload_freq") or {}
    if freq:
        worst = list(freq.items())[:3]
        lines.append(
            "Most frequently overloaded branches: "
            + ", ".join(f"branch {b} ({100.0 * f:.0f}% of scenarios)" for b, f in worst)
            + "."
        )
    stable = agg.get("stable_critical")
    if stable:
        lines.append(
            "Contingencies staying critical across the ensemble: branches "
            + ", ".join(str(b) for b in stable)
            + "."
        )
    if agg.get("slices"):
        lines.extend(narrate_slices(agg["slices"], verbosity))
    n_events = res.get("n_progress_events")
    if n_events:
        sketched = any(
            (agg.get(k) or {}).get("estimator") == "p2"
            for k in ("cost_stats", "loading_stats", "min_voltage_stats")
        )
        bit = (
            f"Results streamed incrementally ({n_events} progress "
            f"checkpoint{'s' if n_events != 1 else ''}"
        )
        if sketched:
            bit += "; distribution percentiles via online P2 sketches"
        lines.append(bit + ").")
    if verbosity >= 2:
        worst_scn = res.get("worst_scenarios") or []
        if worst_scn:
            lines.append("Most stressed scenarios:")
            for w in worst_scn[:3]:
                bit = (
                    f"  - {w['name']}: peak loading {w['max_loading_percent']:.1f}%"
                )
                if w.get("objective_cost") is not None:
                    bit += f", cost {_money(w['objective_cost'])}/h"
                if not w.get("converged", True):
                    bit += " (did not converge)"
                lines.append(bit)
        lines.append(
            "All ensemble statistics are aggregated from structured per-scenario "
            "solver results stored in the session context."
        )
    return "\n".join(lines)


def _study_tag(meta: dict) -> str:
    """Short human handle for one side of a comparison."""
    kind = _STUDY_KIND_LABELS.get(meta.get("study_kind", ""), "scenario")
    label = meta.get("label") or meta.get("key", "?")
    when = meta.get("created_at_iso", "")
    bits = [f"{label}", f"{meta.get('n_scenarios', '?')}-scenario {kind} study"]
    if meta.get("case_name"):
        bits.append(f"on {meta['case_name']}")
    if when:
        bits.append(f"stored {when}")
    return f"{bits[0]} ({', '.join(bits[1:])})"


def narrate_study_comparison(res: dict, verbosity: int) -> str:
    """Grounded diff of two persisted studies (compare_studies payload)."""
    a, b = res.get("a", {}), res.get("b", {})
    agg_a, agg_b = res.get("aggregate_a", {}), res.get("aggregate_b", {})
    delta = res.get("delta", {})
    va = 100.0 * agg_a.get("violation_rate", 0.0)
    vb = 100.0 * agg_b.get("violation_rate", 0.0)
    head = (
        f"Compared {_study_tag(a)} with {_study_tag(b)}: limit-violation "
        f"rate moved from {va:.0f}% to {vb:.0f}% "
        f"({100.0 * delta.get('violation_rate', 0.0):+.0f} points)."
    )
    if verbosity == 0:
        return head
    lines = [head]
    d_cost = delta.get("cost_stats")
    if d_cost:
        lines.append(
            f"Median cost shifted by {_money(d_cost['p50'])}/h "
            f"(p95 by {_money(d_cost['p95'])}/h)."
        )
    d_loading = delta.get("loading_stats")
    if d_loading:
        lines.append(
            f"Median peak loading changed by {d_loading['p50']:+.1f} points "
            f"(worst case by {d_loading['max']:+.1f})."
        )
    for dim, rows in (delta.get("slices") or {}).items():
        if not rows:
            continue
        label = _SLICE_DIM_LABELS.get(dim, dim.replace("_", " "))
        worst_row = max(rows, key=lambda r: abs(r.get("violation_rate", 0.0)))
        bit = (
            f"Across {len(rows)} shared {label} buckets the largest shift is "
            f"at {label} {worst_row['value']}: violation rate "
            f"{100.0 * worst_row.get('violation_rate', 0.0):+.0f} points"
        )
        if worst_row.get("cost_p50") is not None:
            bit += f", median cost {_money(worst_row['cost_p50'])}/h"
        lines.append(bit + ".")
    new_over = res.get("newly_overloaded_branches") or []
    cleared = res.get("cleared_branches") or []
    if new_over:
        lines.append(
            "Branches overloading in the newer study but not the older: "
            + ", ".join(str(x) for x in new_over[:6])
            + "."
        )
    if cleared:
        lines.append(
            "Branches that stopped overloading: "
            + ", ".join(str(x) for x in cleared[:6])
            + "."
        )
    if not new_over and not cleared:
        lines.append("The set of overloaded branches is unchanged.")
    if verbosity >= 2:
        if not res.get("same_base_network", True):
            lines.append(
                "Note: the two studies ran against different base operating "
                "points (their network content hashes differ)."
            )
        lines.append(
            "All comparison figures are computed from the persisted "
            "per-scenario result sets in the cross-session store."
        )
    return "\n".join(lines)


def narrate_specific_outage(res: dict, verbosity: int) -> str:
    body = res.get("summary_line", "Outage analysed.")
    if verbosity == 0:
        return body
    extra = []
    if res.get("converged") and not res.get("islanded"):
        extra.append(
            f"Post-contingency max loading {res['max_loading_percent']:.0f}%, "
            f"voltage range [{res['min_voltage_pu']:.3f}, "
            f"{res['max_voltage_pu']:.3f}] pu."
        )
    if res.get("overloads") and verbosity >= 2:
        details = ", ".join(f"branch {b} at {p:.0f}%" for b, p in res["overloads"][:4])
        extra.append(f"Overloaded elements: {details}.")
    return " ".join([body, *extra])


def narrate_quality(res: dict, verbosity: int) -> str:
    head = (
        f"Solution quality for {res['case_name']}: overall "
        f"{res['overall_score']:.1f}/10 (convergence {res['convergence_quality']:.1f}, "
        f"constraints {res['constraint_satisfaction']:.1f}, economics "
        f"{res['economic_efficiency']:.1f}, security {res['system_security']:.1f})."
    )
    if verbosity >= 1 and res.get("recommendations"):
        head += " Recommendations: " + " ".join(res["recommendations"][:2])
    return head


def narrate_economic_impact(res: dict, verbosity: int) -> str:
    if not res.get("solved"):
        return (
            f"After removing branch {res.get('branch_desc', '?')} the re-dispatch "
            f"did not converge — the outage is not economically survivable at this "
            "operating point."
        )
    delta = res["objective_cost"] - res["base_objective_cost"]
    pct = 100.0 * delta / res["base_objective_cost"] if res["base_objective_cost"] else 0.0
    head = (
        f"Removing {res['branch_desc']} raises the hourly dispatch cost from "
        f"{_money(res['base_objective_cost'])} to {_money(res['objective_cost'])} "
        f"({delta:+,.2f} $/h, {pct:+.2f}%)."
    )
    if verbosity == 0:
        return head
    return head + (
        f" Post-outage max branch loading is {res['max_loading_percent']:.1f}% and "
        f"the minimum voltage {res['min_voltage_pu']:.3f} pu."
    )


def narrate_watch_window(res: dict, verbosity: int) -> str:
    """One closed telemetry window, narrated as it ships.

    ``res`` is the watch loop's per-window update dict: the window's
    aggregate counters plus the alert events it triggered.
    """
    head = (
        f"Window {res['index']} (ticks {res['start_tick']}-{res['end_tick'] - 1}): "
    )
    n = res.get("n_results", 0)
    if n == 0:
        head += "no telemetry arrived — an empty window is itself a signal."
    else:
        head += (
            f"{n} ticks folded, violation rate "
            f"{100.0 * res.get('violation_rate', 0.0):.0f}%"
        )
        if res.get("n_anomalous"):
            head += (
                f", {res['n_anomalous']} tick(s) carried anomalous frames "
                f"({100.0 * res.get('anomaly_rate', 0.0):.0f}% of the window)"
            )
        head += "."
    if verbosity == 0:
        return head
    lines = [head]
    for alert in res.get("alerts", []):
        if alert["transition"] == "firing":
            bit = f"Alert: {alert['rule']} is now {alert['status'].upper()}"
            if alert.get("value") is not None:
                bit += f" (was {alert['previous']}, value {alert['value']:.3f})"
            lines.append(bit + ".")
        else:
            lines.append(f"Alert resolved: {alert['rule']} returned to OK.")
    if verbosity >= 2 and res.get("slices"):
        lines.extend(narrate_slices(res["slices"], verbosity))
    return "\n".join(lines)


def narrate_watch(res: dict, verbosity: int) -> str:
    """Whole-watch summary: feed shape, flagged windows, alert history."""
    lines = [
        (
            f"Watched {res['case_name']} for {res['n_ticks']} telemetry ticks: "
            f"{res['n_frames']} frames from {res['n_devices']} devices, folded "
            f"into {res['n_windows']} rolling window(s) of {res['window_ticks']} "
            f"ticks (slide {res['slide_ticks']})."
        )
    ]
    flagged = [w for w in res.get("windows", []) if w.get("n_anomalous")]
    if res.get("n_anomaly_frames"):
        windows_bit = (
            ", ".join(str(w["index"]) for w in flagged[:6]) if flagged else "none"
        )
        lines.append(
            f"{res['n_anomaly_frames']} frames carried an injected anomaly; "
            f"flagged windows: {windows_bit}."
        )
    else:
        lines.append("No anomalous frames were observed.")
    alerts = res.get("alerts", [])
    if alerts:
        fired = [a for a in alerts if a["transition"] == "firing"]
        resolved = [a for a in alerts if a["transition"] == "resolved"]
        bit = f"The health rules fired {len(fired)} alert(s)"
        if fired:
            bit += (
                ": " + "; ".join(
                    f"{a['rule']} went {a['status'].upper()} at tick-window "
                    f"boundary t={a['ts']:.0f}s" for a in fired[:4]
                )
            )
        bit += f" ({len(resolved)} later resolved)." if resolved else "."
        lines.append(bit)
    else:
        lines.append("No health rule crossed its alert threshold.")
    if res.get("n_late_dropped"):
        lines.append(
            f"{res['n_late_dropped']} result(s) arrived too late for any open "
            "window and were dropped rather than rewriting closed aggregates."
        )
    if verbosity >= 2:
        lines.append(
            f"Peak open windows: {res.get('peak_open_windows', 1)} — rolling "
            "memory stays bounded by the window, not the feed. Determinism "
            f"digest {res.get('digest', '')} (same seed and fleet spec "
            "reproduce these aggregates bit-for-bit)."
        )
    return "\n".join(lines)


def narrate_error(error: str, tool: str) -> str:
    return (
        f"The {tool} tool reported a problem: {error}. "
        "I have not fabricated any results; please adjust the request "
        "(for example, check the bus/branch identifiers or load a case first)."
    )


def narrate_clarification(missing: str) -> str:
    prompts = {
        "case": (
            "Which test case should I work on? I support the IEEE 14, 30, 57, "
            "118 and 300 bus systems."
        ),
        "bus": "Which bus should I modify? Please give a bus number.",
        "value": "By how much (MW or %) should I change the load?",
        "branch": (
            "Which branch should I analyse? You can give a branch index or the "
            "two endpoint buses."
        ),
    }
    return prompts.get(
        missing,
        "Could you clarify the request? I can solve ACOPF cases, modify loads, "
        "run N-1 contingency analysis, and rank critical elements.",
    )
