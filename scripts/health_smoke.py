#!/usr/bin/env python
"""Tier-2 observability smoke: the health layer end to end, verified.

Runs a pooled, traced Monte-Carlo study through a
:class:`~repro.service.GridMindService` with a fast health sampler, then
asserts the operational-layer guarantees this stack makes:

* the background sampler ticked (>= 2 snapshots retained and persisted
  to the store's ``health-snapshots.jsonl`` sidecar),
* ``service.health()`` evaluates every builtin rule (each one present in
  the report, none errored),
* the report is reproducible from the persisted sidecar alone
  (load -> re-evaluate -> identical per-rule statuses),
* per-session accounting attributed the study's chunks/scenarios to the
  requesting session label,
* ``gridmind health --json`` exits 0 on the healthy store and its JSON
  parses with every rule evaluated; ``gridmind top`` renders one frame.

Exits nonzero on the first violated invariant.

Usage::

    PYTHONPATH=src python scripts/health_smoke.py [n_scenarios]
"""

from __future__ import annotations

import asyncio
import contextlib
import io
import json
import sys
import tempfile

from repro.core.cli import main as cli_main
from repro.instrumentation.health import builtin_rules, evaluate_health
from repro.instrumentation.metrics import MetricsRegistry, set_metrics
from repro.instrumentation.rollup import MetricsSampler
from repro.service import GridMindService
from repro.service.api import StudyRequest
from repro.service.store import ResultStore


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {message}")


async def run_sampled_study(store_dir: str, n: int):
    async with GridMindService(
        max_workers=2, store_dir=store_dir, trace=True, sample_interval_s=0.05
    ) as service:
        reply = await service.run_study(StudyRequest(
            case_name="ieee14",
            kind="monte_carlo",
            n_scenarios=n,
            label="health-smoke",
            session_id="smoke",
        ))
        # Give the background sampler time for at least one tick beyond
        # the explicit health() snapshot.
        await asyncio.sleep(0.2)
        report = service.health()
        return reply, report, service.sampler.n_samples


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    set_metrics(MetricsRegistry())

    with tempfile.TemporaryDirectory(prefix="gridmind-health-smoke-") as store_dir:
        reply, report, n_samples = asyncio.run(run_sampled_study(store_dir, n))
        print(f"study {reply.study_key}: {reply.n_scenarios} scenarios, "
              f"health {report.status} over {report.n_samples} snapshots")

        check(reply.study_key is not None, "study persisted to the store")
        check(n_samples >= 2, f"sampler retained >= 2 snapshots ({n_samples})")

        rule_names = {r.name for r in builtin_rules()}
        reported = {r.name for r in report.rules}
        check(
            reported == rule_names,
            f"health report evaluates every builtin rule ({sorted(reported)})",
        )
        check(report.status == "ok", f"smoke study is healthy ({report.status})")

        store = ResultStore(store_dir)
        snaps = store.load_health_snapshots()
        check(len(snaps) >= 2, f"sidecar persisted >= 2 snapshots ({len(snaps)})")

        offline = MetricsSampler.from_snapshots(
            snaps, max_samples=max(2, len(snaps))
        )
        replayed = evaluate_health(offline)
        check(
            replayed.rule_statuses() == report.rule_statuses(),
            "report reproducible from the sidecar alone",
        )
        check(
            offline.counter_value(
                "gridmind_session_scenarios_total", {"session": "smoke"}
            ) == float(n),
            "scenarios attributed to the requesting session",
        )

        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = cli_main(["health", store_dir, "--json"])
        check(code == 0, "gridmind health --json exits 0 on the healthy store")
        doc = json.loads(stdout.getvalue())
        check(
            {r["name"] for r in doc["rules"]} == rule_names,
            "CLI JSON report carries every builtin rule",
        )

        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = cli_main(["top", store_dir, "--iterations", "1"])
        check(code == 0, "gridmind top renders one frame")
        check("smoke" in stdout.getvalue(), "top shows the session's usage row")

    print("\nhealth smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
