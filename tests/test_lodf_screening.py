"""PTDF/LODF sensitivities and two-stage DC screening."""

import numpy as np
import pytest

from repro.contingency import (
    compute_factors,
    compute_ptdf,
    post_outage_flows,
    run_n_minus_1,
    run_screened_n_minus_1,
    screen_dc,
)
from repro.powerflow import solve_dc


class TestPTDF:
    def test_shape_and_ref_column(self, case14):
        arr = case14.compile()
        ptdf = compute_ptdf(arr)
        assert ptdf.shape == (20, 14)
        ref = int(arr.slack_buses[0])
        assert np.allclose(ptdf[:, ref], 0.0)

    def test_ptdf_reproduces_dc_flow(self, case14):
        """PTDF @ injections == DC branch flows (shift-free case)."""
        arr = case14.compile()
        ptdf = compute_ptdf(arr)
        from repro.powerflow.newton import bus_power_injections

        p_inj = bus_power_injections(arr).real
        dc = solve_dc(case14)
        flows = ptdf @ p_inj * arr.base_mva
        assert np.allclose(flows, dc.p_from_mw, atol=1e-6)

    def test_transfer_sums_to_one(self, case14):
        """A 1 MW transfer from bus k to slack flows entirely through the
        cut around bus k."""
        arr = case14.compile()
        ptdf = compute_ptdf(arr)
        # Sum of PTDF over branches incident to bus k, oriented out of k.
        k = 5
        total = 0.0
        for row in range(arr.n_branch):
            if arr.f_bus[row] == k:
                total += ptdf[row, k]
            elif arr.t_bus[row] == k:
                total -= ptdf[row, k]
        assert total == pytest.approx(1.0, abs=1e-9)


class TestLODF:
    def test_lodf_diagonal_minus_one(self, case14):
        fac = compute_factors(case14)
        assert np.allclose(np.diag(fac.lodf), -1.0)

    def test_lodf_predicts_outage_flow(self, case30):
        """LODF estimate matches an actual DC re-solve after an outage."""
        fac = compute_factors(case30)
        dc0 = solve_dc(case30)
        outage = 7
        assert outage not in set(int(b) for b in fac.islanding_outages)
        predicted = dc0.p_from_mw + fac.lodf[:, outage] * dc0.p_from_mw[outage]

        case30.set_branch_status(outage, False)
        dc1 = solve_dc(case30)
        case30.set_branch_status(outage, True)

        # Map post-outage rows back to full branch ids.
        post = {int(b): f for b, f in zip(dc1.branch_ids, dc1.p_from_mw)}
        for row, bid in enumerate(fac.branch_ids):
            if int(bid) == outage:
                continue
            assert predicted[row] == pytest.approx(post[int(bid)], abs=1e-6)

    def test_radial_outages_flagged_islanding(self, radial_net):
        fac = compute_factors(radial_net)
        assert set(int(b) for b in fac.islanding_outages) == {0, 1, 2}

    def test_post_outage_flows_matrix(self, case14):
        fac = compute_factors(case14)
        dc = solve_dc(case14)
        post = post_outage_flows(fac, dc.p_from_mw)
        assert post.shape == (20, 20)
        assert np.allclose(np.diag(post), 0.0)


class TestScreening:
    def test_estimates_have_expected_shapes(self, case118):
        est = screen_dc(case118)
        assert est.branch_ids.shape == (186,)
        assert est.est_severity.shape == (186,)

    def test_top_excludes_islanding(self, radial_net):
        est = screen_dc(radial_net)
        assert est.top(5) == []  # every outage islands the radial feeder

    def test_screening_finds_the_true_worst(self, case118):
        """The DC screen's top slice must contain the AC-worst outage."""
        full = run_n_minus_1(case118)
        worst_ac = max(
            (o for o in full.outcomes if o.converged and not o.islanded),
            key=lambda o: o.max_loading_percent,
        )
        est = screen_dc(case118)
        assert worst_ac.branch_id in est.top(25)

    def test_screened_run_much_smaller(self, case118):
        report, est = run_screened_n_minus_1(case118, ac_budget=20)
        assert report.n_contingencies <= 20 + len(est.islanding)
        assert "screening" in report.extras

    def test_screened_ranking_agrees_on_top1(self, case118):
        from repro.contingency import rank_critical_elements

        full = run_n_minus_1(case118)
        screened, _ = run_screened_n_minus_1(case118, ac_budget=25)
        top_full = rank_critical_elements(full, top_n=3).critical_branch_ids
        top_screen = rank_critical_elements(screened, top_n=3).critical_branch_ids
        assert top_full[0] == top_screen[0]
