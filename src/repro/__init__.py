"""GridMind reproduction: LLM-powered agents for power system analysis.

Public API layers (see DESIGN.md for the full inventory):

* :mod:`repro.grid` — network model and IEEE-style case library,
* :mod:`repro.powerflow` — AC/DC power-flow solvers,
* :mod:`repro.opf` — ACOPF (interior point) and DCOPF,
* :mod:`repro.contingency` — N-1 engine, screening, ranking,
* :mod:`repro.scenarios` — declarative operating-point studies with a
  parallel batch runner,
* :mod:`repro.llm` — simulated LLM backend with paper model profiles,
* :mod:`repro.core` — agents, tools, shared context, conversational session,
* :mod:`repro.service` — async multi-session service with a shared study
  worker pool and a persistent cross-session result store.

Quickstart::

    from repro import GridMindSession
    session = GridMindSession(model="gpt-5-mini")
    print(session.ask("Solve the IEEE 14 bus case").text)
"""

__version__ = "1.0.0"

from .grid.cases import load_case


def __getattr__(name: str):
    # Lazy import: keeps `import repro` light and avoids import cycles for
    # users who only need the numerical substrate.
    if name == "GridMindSession":
        from .core.session import GridMindSession

        return GridMindSession
    if name == "GridMindService":
        from .service import GridMindService

        return GridMindService
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = ["GridMindService", "GridMindSession", "load_case", "__version__"]
