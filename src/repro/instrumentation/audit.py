"""Numerical-claim auditing: detect "factual slips" in narrated replies.

The paper's trust story is that every number in a narrative maps to a
field in a stored tool output.  This module enforces it mechanically:
extract the numeric literals from a reply and check each appears (within
rounding) somewhere in the structured payloads the reply was generated
from.  Numbers with no provenance are *factual slips* — the reliability
signal the instrumentation bench tracks.

Audits are one leg of the observability stack: audit outcomes ride each
:class:`~repro.instrumentation.runlog.RequestRecord` in the run log,
slip counts feed the ``gridmind_factual_slips_total`` counter in
:mod:`repro.instrumentation.metrics`, and the turn they audit appears as
a ``session.turn`` span in :mod:`repro.instrumentation.trace`.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

_NUMBER_RE = re.compile(r"-?\d{1,3}(?:,\d{3})+(?:\.\d+)?|-?\d+\.\d+|-?\d+")

#: Small integers appear in prose for counting ("3 overloads", rank "1.").
_PROSE_INT_LIMIT = 400


@dataclass
class AuditResult:
    claims: int
    grounded: int
    slips: list[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.slips


def _collect_numbers(obj, out: set[float]) -> None:
    if isinstance(obj, bool):
        return
    if isinstance(obj, (int, float)):
        if math.isfinite(obj):
            out.add(float(obj))
        return
    if isinstance(obj, str):
        for tok in _NUMBER_RE.findall(obj):
            try:
                out.add(float(tok.replace(",", "")))
            except ValueError:
                pass
        return
    if isinstance(obj, dict):
        for k, v in obj.items():
            _collect_numbers(k, out)
            _collect_numbers(v, out)
        return
    if isinstance(obj, (list, tuple, set)):
        for v in obj:
            _collect_numbers(v, out)


def _matches(value: float, sources: set[float]) -> bool:
    """True if ``value`` equals any source number under display rounding."""
    for s in sources:
        if value == s:
            return True
        # Rounded-for-display forms: 0..4 decimal places.
        for nd in range(5):
            if abs(round(s, nd) - value) < 10 ** (-nd) / 2 + 1e-12:
                return True
        # Percentage/sign conventions.
        if abs(abs(s) - abs(value)) < 5e-3:
            return True
    return False


def audit_narration(text: str, payloads: list[dict]) -> AuditResult:
    """Check every numeric claim in ``text`` against the tool payloads.

    Derived quantities the narration layer legitimately computes (deltas,
    percentages of payload values) are also accepted: differences and
    ratios of payload-number pairs are added to the grounding set.
    """
    sources: set[float] = set()
    for p in payloads:
        _collect_numbers(p, sources)

    # Derived forms: pairwise differences and percentage changes, capped
    # for tractability on large payloads.
    base = sorted(sources, key=abs, reverse=True)[:60]
    derived: set[float] = set()
    for i, a in enumerate(base):
        for b in base[i + 1:]:
            derived.add(a - b)
            derived.add(b - a)
            if b:
                derived.add(100.0 * (a - b) / b)
            if a:
                derived.add(100.0 * (b - a) / a)
    sources |= derived

    claims = 0
    grounded = 0
    slips: list[float] = []
    for tok in _NUMBER_RE.findall(text):
        try:
            value = float(tok.replace(",", ""))
        except ValueError:
            continue
        claims += 1
        is_prose_int = "." not in tok and abs(value) <= _PROSE_INT_LIMIT
        if is_prose_int or _matches(value, sources):
            grounded += 1
        else:
            slips.append(value)
    return AuditResult(claims=claims, grounded=grounded, slips=slips)
