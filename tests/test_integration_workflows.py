"""Integration tests: full paper workflows across every layer.

These replay the appendix dialogues end to end and verify cross-layer
invariants (context coherence, provenance, audit) that unit tests cannot.
"""

import pytest

from repro.core.session import GridMindSession
from repro.instrumentation.audit import audit_narration


class TestPaperDialogues:
    """Appendix D scenarios."""

    def test_d2_single_domain_acopf(self, session_factory):
        """Fig. 7: the ACOPF agent solves, modifies, reports."""
        s = session_factory(model="gpt-5")
        r1 = s.ask("Solve IEEE 30")
        assert s.context.acopf_fresh()
        r2 = s.ask("increase the load at bus 5 by 10%")
        assert len(s.context.modifications) == 1
        r3 = s.ask("assess the solution quality")
        assert "/10" in r3.text
        assert all("$" in r.text or "/10" in r.text for r in (r1, r2, r3))

    def test_d2_contingency_flow(self, session_factory):
        """Fig. 8: base case -> N-1 -> critical components -> recs."""
        s = session_factory(model="gpt-o3")
        reply = s.ask("run a full contingency analysis on ieee30 and rank the top 3")
        ca = s.context.ca_result
        assert ca.n_contingencies == 45
        assert len(ca.critical) == 3
        assert ca.recommendations
        assert "Recommendations" in reply.text

    def test_d3_cross_domain_shared_context(self, session_factory):
        """Fig. 9: ACOPF -> CA through one request, shared state."""
        s = session_factory(model="claude-4-sonnet")
        reply = s.ask(
            "Solve IEEE 30 case, then run contingency analysis and identify "
            "critical elements for reinforcement"
        )
        assert reply.workflow.status == "done"
        # CA consumed the ACOPF artefact (not merely re-ran a power flow).
        assert s.context.ca_result.base_objective_cost == pytest.approx(
            s.context.acopf_solution.objective_cost
        )

    def test_economic_impact_example(self, session_factory):
        """Section 3.2.1's exemplar request, adapted to a real branch."""
        s = session_factory(model="gpt-5-mini")
        reply = s.ask(
            "Evaluate the economic impact of removing the transmission line "
            "between buses 4 and 5 in the IEEE 14 bus case"
        )
        assert "raises the hourly dispatch cost" in reply.text
        # The outage is in the diff log and the new solution reflects it.
        kinds = [m.kind for m in s.context.modifications]
        assert "branch_outage" in kinds
        assert not s.context.network.branches[
            s.context.modifications[-1].params["branch_id"]
        ].in_service


class TestCrossLayerInvariants:
    def test_every_reply_is_fully_grounded(self, session_factory):
        """No narrated number may lack provenance (the paper's trust story)."""
        s = session_factory(model="gpt-5")
        requests = (
            "Solve IEEE 30",
            "increase the load at bus 2 to 40 MW",
            "run the contingency analysis",
            "what's the network status?",
        )
        for req in requests:
            reply = s.ask(req)
            payloads = [c.result for c in reply.tool_calls if c.result]
            audit = audit_narration(reply.text, payloads)
            assert audit.ok, f"slips {audit.slips} in reply to {req!r}"

    def test_provenance_recorded_per_solve(self, session_factory):
        s = session_factory()
        s.ask("Solve IEEE 14")
        s.ask("run contingency analysis")
        tools = [p.tool for p in s.context.provenance]
        assert "solve_acopf_case" in tools
        assert "run_n1_contingency_analysis" in tools

    def test_stale_solution_triggers_resolve_on_ca(self, session_factory):
        """CA after a modification must not reuse the stale base point."""
        s = session_factory()
        s.ask("Solve IEEE 14")
        s.ask("run contingency analysis")
        v1 = s.context.ca_version
        s.ask("increase load at bus 9 by 5 MW")
        s.ask("run contingency analysis")
        assert s.context.ca_version != v1
        assert s.context.ca_fresh()

    def test_multi_session_isolation(self, session_factory):
        """Two sessions never share mutable state."""
        a = session_factory(seed=1)
        b = session_factory(seed=2)
        a.ask("Solve IEEE 14")
        a.ask("increase load at bus 9 to 60 MW")
        b.ask("Solve IEEE 14")
        assert b.context.acopf_solution.objective_cost == pytest.approx(8081.52, abs=0.5)
        assert a.context.acopf_solution.objective_cost > 8100.0

    def test_all_six_models_identical_numerics(self):
        """The paper's core claim at integration level: model choice
        changes latency and prose, never the numbers."""
        from repro.llm.profiles import PAPER_MODELS

        costs = set()
        for model in PAPER_MODELS:
            s = GridMindSession(model=model, seed=0)
            s.ask("Solve IEEE 30")
            costs.add(round(s.context.acopf_solution.objective_cost, 6))
        assert len(costs) == 1
