"""Sparse network admittance matrices (Ybus, Yf, Yt) and DC B matrices.

Construction follows the standard pi-model with off-nominal taps and phase
shifters (MATPOWER Appendix B conventions): for branch series admittance
``ys = 1/(r + jx)``, charging ``bc`` and complex tap ``t = tap * e^{j
shift}`` the 2x2 branch admittance block is::

    [ (ys + j bc/2) / |t|^2     -ys / conj(t) ]
    [      -ys / t            ys + j bc/2     ]

Everything is assembled vectorised with COO triplets — no Python loop over
branches — so rebuilds inside a contingency sweep stay cheap even at the
300-bus scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from .network import NetworkArrays


@dataclass(frozen=True)
class AdmittanceMatrices:
    """Bus and branch-end admittance operators for one network snapshot.

    ``Ybus`` maps bus voltages to bus current injections; ``Yf``/``Yt``
    map bus voltages to the currents flowing into each branch at its from
    and to ends (used for flow limits and loading percentages).
    """

    ybus: sparse.csr_matrix  # (n_bus, n_bus) complex
    yf: sparse.csr_matrix  # (n_branch, n_bus) complex
    yt: sparse.csr_matrix  # (n_branch, n_bus) complex


def build_admittances(arr: NetworkArrays) -> AdmittanceMatrices:
    """Assemble Ybus / Yf / Yt from a compiled network snapshot."""
    nb, nl = arr.n_bus, arr.n_branch
    ys = 1.0 / (arr.r + 1j * arr.x)
    bc = arr.b_charge
    t = arr.tap * np.exp(1j * arr.shift)

    ytt = ys + 1j * bc / 2.0
    yff = ytt / (arr.tap**2)
    yft = -ys / np.conj(t)
    ytf = -ys / t

    rows = np.arange(nl)
    yf = sparse.csr_matrix(
        (np.concatenate([yff, yft]), (np.concatenate([rows, rows]),
                                      np.concatenate([arr.f_bus, arr.t_bus]))),
        shape=(nl, nb),
    )
    yt = sparse.csr_matrix(
        (np.concatenate([ytf, ytt]), (np.concatenate([rows, rows]),
                                      np.concatenate([arr.f_bus, arr.t_bus]))),
        shape=(nl, nb),
    )

    ysh = arr.gs + 1j * arr.bs
    cf = sparse.csr_matrix(
        (np.ones(nl), (rows, arr.f_bus)), shape=(nl, nb)
    )
    ct = sparse.csr_matrix(
        (np.ones(nl), (rows, arr.t_bus)), shape=(nl, nb)
    )
    ybus = cf.T @ yf + ct.T @ yt + sparse.diags(ysh, format="csr")
    return AdmittanceMatrices(ybus=ybus.tocsr(), yf=yf, yt=yt)


def build_b_matrices(arr: NetworkArrays) -> tuple[sparse.csr_matrix, sparse.csr_matrix, np.ndarray]:
    """DC power-flow matrices ``(Bbus, Bf, pf_shift)``.

    ``Bbus @ theta + p_shift_bus = P_inj`` and ``Bf @ theta + pf_shift =
    P_from``; the shift terms carry phase-shifter contributions.  Series
    resistance is ignored per the DC approximation.
    """
    nb, nl = arr.n_bus, arr.n_branch
    b_series = 1.0 / (arr.x * arr.tap)
    rows = np.arange(nl)
    bf = sparse.csr_matrix(
        (np.concatenate([b_series, -b_series]),
         (np.concatenate([rows, rows]), np.concatenate([arr.f_bus, arr.t_bus]))),
        shape=(nl, nb),
    )
    cf = sparse.csr_matrix((np.ones(nl), (rows, arr.f_bus)), shape=(nl, nb))
    ct = sparse.csr_matrix((np.ones(nl), (rows, arr.t_bus)), shape=(nl, nb))
    bbus = (cf - ct).T @ bf
    pf_shift = -arr.shift * b_series
    return bbus.tocsr(), bf, pf_shift
