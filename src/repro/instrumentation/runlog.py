"""Session instrumentation: solver metrics, LLM latency, token usage.

The paper positions GridMind as "an instrumentation bench, logging solver
metrics plus LLM backend latency, token usage, and occasional factual
slips so reliability trends can be monitored".  ``RunLogger`` is that
bench: the session feeds it one record per user request and per LLM/tool
call, and the benchmark harnesses aggregate its summaries into the
paper's figures.

For the cross-process view — spans from a service request down to a
worker chunk, and always-on counters/histograms — see
:mod:`~repro.instrumentation.trace` and
:mod:`~repro.instrumentation.metrics`; the retained window here is a
shared :class:`~repro.instrumentation.ringlog.RingLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .ringlog import RingLog


@dataclass
class RequestRecord:
    """One user request end to end."""

    model: str
    request: str
    agents: list[str]
    success: bool
    latency_virtual_s: float  # simulated LLM latency
    wall_s: float  # real compute time (solvers + harness)
    total_s: float  # virtual + wall: what a user would experience
    prompt_tokens: int
    completion_tokens: int
    n_tool_calls: int
    n_tool_failures: int
    factual_slips: int = 0


@dataclass
class RunLogger:
    """Accumulates per-request records and produces summary statistics.

    ``max_records`` bounds the retained window (ring buffer) so that
    long-lived service sessions do not grow without limit; ``None``
    keeps everything (the benchmark harnesses rely on full history).
    """

    records: RingLog[RequestRecord] = field(default_factory=RingLog)
    max_records: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.records, RingLog) or (
            self.records.max_entries != self.max_records
        ):
            self.records = RingLog(self.max_records, self.records)

    def log(self, record: RequestRecord) -> None:
        self.records.append(record)

    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def success_rate(self) -> float:
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.success) / len(self.records)

    def total_times(self) -> np.ndarray:
        return np.array([r.total_s for r in self.records])

    def token_totals(self) -> tuple[int, int]:
        return (
            sum(r.prompt_tokens for r in self.records),
            sum(r.completion_tokens for r in self.records),
        )

    def summary(self) -> dict:
        """Aggregate view in the shape the benchmarks print."""
        times = self.total_times()
        prompt, completion = self.token_totals()
        return {
            "n_requests": self.n_requests,
            "success_rate": round(self.success_rate, 4),
            "time_mean_s": round(float(times.mean()), 3) if times.size else 0.0,
            "time_min_s": round(float(times.min()), 3) if times.size else 0.0,
            "time_max_s": round(float(times.max()), 3) if times.size else 0.0,
            "time_median_s": round(float(np.median(times)), 3) if times.size else 0.0,
            "prompt_tokens": prompt,
            "completion_tokens": completion,
            "tool_calls": sum(r.n_tool_calls for r in self.records),
            "tool_failures": sum(r.n_tool_failures for r in self.records),
            "factual_slips": sum(r.factual_slips for r in self.records),
        }

    def by_model(self) -> dict[str, dict]:
        out: dict[str, RunLogger] = {}
        for r in self.records:
            out.setdefault(r.model, RunLogger()).log(r)
        return {m: lg.summary() for m, lg in out.items()}
