"""E6 — Ablation: context reuse and the contingency cache.

Paper Sections 3.1/3.4: "a structured context keeps the latest solved
state, applied diffs, and cached contingency fragments so only affected
layers are recomputed".  The harness runs a what-if sequence and
measures (a) the CA cache cold vs warm, (b) invalidation on modification,
and (c) the freshness check preventing redundant base solves.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit

from repro.core.session import GridMindSession


def _workflow():
    session = GridMindSession(model="gpt-o4-mini", seed=3)
    timings = {}

    session.ask("Solve IEEE 118")

    t0 = time.perf_counter()
    session.ask("run the contingency analysis")
    timings["ca_cold_s"] = time.perf_counter() - t0
    cold = session.context.ca_result

    t0 = time.perf_counter()
    session.ask("run the contingency analysis again")
    timings["ca_warm_s"] = time.perf_counter() - t0
    warm = session.context.ca_result

    session.ask("increase the load at bus 10 by 15 MW")

    t0 = time.perf_counter()
    session.ask("run the contingency analysis")
    timings["ca_after_edit_s"] = time.perf_counter() - t0
    after_edit = session.context.ca_result

    return timings, cold, warm, after_edit, session


def test_ablation_context_cache(benchmark):
    timings, cold, warm, after_edit, session = benchmark.pedantic(
        _workflow, rounds=1, iterations=1
    )

    speedup = timings["ca_cold_s"] / max(timings["ca_warm_s"], 1e-9)
    lines = [
        f"cold N-1 sweep      : {timings['ca_cold_s']:.2f}s  "
        f"({cold.cache_misses} solves, {cold.cache_hits} hits)",
        f"repeat (cache warm) : {timings['ca_warm_s']:.2f}s  "
        f"({warm.cache_misses} solves, {warm.cache_hits} hits) "
        f"-> {speedup:.1f}x faster",
        f"after load edit     : {timings['ca_after_edit_s']:.2f}s  "
        f"({after_edit.cache_misses} solves — diff hash invalidated the cache)",
        f"cache statistics    : {session.context.contingency_cache.stats()}",
    ]
    emit("ablation_context_cache", "E6 — context reuse / contingency cache", lines)

    assert cold.cache_misses == 186
    assert warm.cache_hits == 186 and warm.cache_misses == 0
    assert after_edit.cache_misses == 186  # content hash must invalidate
    assert timings["ca_warm_s"] < timings["ca_cold_s"]
