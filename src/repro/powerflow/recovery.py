"""Automatic solver recovery ladder.

The paper's ACOPF agent "triggers an automatic recovery path (adjust
solver tolerances, fall back to an alternative algorithm, or request
clarification)" when validation fails.  This module is the numerical half
of that: try Newton, then Newton with a flat start and looser tolerance,
then fast-decoupled, then Gauss-Seidel.  Each attempt is recorded so the
agent can narrate provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..grid.network import Network
from .fast_decoupled import solve_fast_decoupled
from .gauss_seidel import solve_gauss_seidel
from .newton import solve_newton
from .solution import PowerFlowResult


@dataclass
class RecoveryAttempt:
    """One rung of the ladder: what was tried and how it went."""

    method: str
    options: dict
    converged: bool
    max_mismatch_pu: float
    message: str = ""


@dataclass
class RecoveryTrace:
    attempts: list[RecoveryAttempt] = field(default_factory=list)

    def record(self, options: dict, result: PowerFlowResult) -> None:
        self.attempts.append(
            RecoveryAttempt(
                method=result.method,
                options=options,
                converged=result.converged,
                max_mismatch_pu=result.max_mismatch_pu,
                message=result.message,
            )
        )


def solve_with_recovery(
    net: Network, *, tol: float = 1e-8, v0=None
) -> tuple[PowerFlowResult, RecoveryTrace]:
    """Run the recovery ladder until a solver converges.

    Returns the first converged result (or the last failure) along with
    the full trace of attempts for auditability.  ``v0`` threads a warm
    start through every rung that accepts one — Newton, fast-decoupled,
    and Gauss-Seidel all restart from it; the flat-start rung ignores it
    by design (its whole point is escaping a poisoned initial guess).
    """
    trace = RecoveryTrace()

    ladder = (
        ("newton", lambda: solve_newton(net, tol=tol, v0=v0)),
        ("newton-flat", lambda: solve_newton(net, tol=max(tol, 1e-6), flat_start=True, max_iter=40)),
        ("fdpf-xb", lambda: solve_fast_decoupled(net, tol=max(tol, 1e-6), v0=v0)),
        ("gauss-seidel", lambda: solve_gauss_seidel(net, tol=max(tol, 1e-5), max_iter=3000, v0=v0)),
    )

    result: PowerFlowResult | None = None
    for label, attempt in ladder:
        result = attempt()
        trace.record({"ladder_step": label, "tol": tol}, result)
        if result.converged:
            break
    assert result is not None
    return result, trace
