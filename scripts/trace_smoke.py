#!/usr/bin/env python
"""Tier-2 observability smoke: a traced study end to end, verified.

Runs a pooled Monte-Carlo study through a traced
:class:`~repro.service.GridMindService`, reads the exported ``.trace``
sidecar back through the store, and asserts the structural guarantees
the tracing stack makes:

* the exported trace parses as JSON lines and shares one trace id,
* spans from at least three layers of the stack are present
  (service -> study -> dispatch -> worker chunk -> scenario -> solver),
* worker-chunk spans recorded in pool worker processes are parented
  under the dispatch span recorded in the service process,
* the metrics registry saw the study (scenarios, chunks, solver calls)
  and renders to Prometheus text exposition.

Exits nonzero on the first violated invariant; prints the rendered span
tree so CI logs double as a profiler example.

Usage::

    PYTHONPATH=src python scripts/trace_smoke.py [n_scenarios]
"""

from __future__ import annotations

import asyncio
import sys
import tempfile

from repro.core.cli import main as cli_main
from repro.instrumentation.metrics import (
    MetricsRegistry,
    get_metrics,
    render_prometheus,
    set_metrics,
)
from repro.service import GridMindService
from repro.service.api import StudyRequest
from repro.service.store import ResultStore

#: service -> study -> dispatch -> worker -> scenario -> solver: the
#: layer cover the smoke insists on (>= 3 required by the acceptance
#: bar; we assert all six).
REQUIRED_LAYERS = (
    "service.run_study",
    "study.run",
    "executor.dispatch",
    "worker.chunk",
    "scenario.run",
    "solve.newton",
)


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {message}")


async def run_traced_study(store_dir: str, n: int):
    async with GridMindService(
        max_workers=2, store_dir=store_dir, trace=True
    ) as service:
        reply = await service.run_study(StudyRequest(
            case_name="ieee14",
            kind="monte_carlo",
            n_scenarios=n,
            label="trace-smoke",
        ))
        return reply


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    set_metrics(MetricsRegistry())

    with tempfile.TemporaryDirectory(prefix="gridmind-trace-smoke-") as store_dir:
        reply = asyncio.run(run_traced_study(store_dir, n))
        print(f"study {reply.study_key}: {reply.n_scenarios} scenarios, "
              f"{reply.n_jobs} jobs, {reply.runtime_s:.2f}s")

        check(reply.study_key is not None, "study persisted to the store")
        check(bool(reply.trace_id), "reply carries a trace id")

        spans = ResultStore(store_dir).load_trace(reply.study_key)
        check(len(spans) > n, f"sidecar parsed ({len(spans)} spans)")
        check(
            {s["trace_id"] for s in spans} == {reply.trace_id},
            "all spans share the reply's trace id",
        )

        names = {s["name"] for s in spans}
        missing = [layer for layer in REQUIRED_LAYERS if layer not in names]
        check(not missing, f"all layers traced {REQUIRED_LAYERS}, missing={missing}")

        by_id = {s["span_id"]: s for s in spans}
        chunks = [s for s in spans if s["name"] == "worker.chunk"]
        parent_pid = next(
            s["pid"] for s in spans if s["name"] == "service.run_study"
        )
        check(
            all(c["pid"] != parent_pid for c in chunks),
            f"{len(chunks)} worker chunks ran in pool workers",
        )
        check(
            all(
                by_id[c["parent_id"]]["name"] == "executor.dispatch"
                for c in chunks
            ),
            "worker chunks are parented under the dispatch span",
        )
        scenarios = [s for s in spans if s["name"] == "scenario.run"]
        check(len(scenarios) == n, f"one span per scenario ({len(scenarios)})")

        metrics = get_metrics()
        check(
            metrics.counter("gridmind_scenarios_total").total() == float(n),
            "scenario counter merged from workers",
        )
        check(
            metrics.counter("gridmind_chunks_dispatched_total").total()
            == float(len(chunks)),
            "chunk dispatch counter matches worker chunk spans",
        )
        text = render_prometheus(metrics)
        check(
            "# TYPE gridmind_solver_iterations histogram" in text,
            "Prometheus exposition renders histograms",
        )

        print("\nrendered span tree (gridmind trace):")
        code = cli_main(["trace", reply.study_key, "--store", store_dir])
        check(code == 0, "gridmind trace renders the sidecar")

    print("\ntrace smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
