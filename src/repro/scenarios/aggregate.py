"""Ensemble aggregation: online reduction of per-scenario results.

The batch runner produces one lightweight :class:`ScenarioResult` per
operating point; this module reduces the ensemble to the quantities a
study actually asks for — how often limits are violated, how the cost and
loading distributions look, and how stable the critical-contingency
ranking is across the perturbed operating points.

The reduction is *streaming*: :class:`StudyReducer` consumes results one
chunk at a time (what the runner's bounded-window dispatch feeds it) and
never holds the ensemble.  Counters and rates are exact at any size.
Distribution statistics are exact while the sample fits the buffer cap
(``np.percentile`` over the buffered values — bit-identical to the
historical list-based aggregation) and switch to P²-style streaming
percentile sketches above it; the active estimator is recorded in every
stats dict (``"estimator": "exact" | "p2"``) so consumers can tell which
guarantee they got.  Because the switch depends only on the sample count
and insertion order — both identical between serial, pooled, and
streamed execution — all three paths still produce bit-identical
aggregates.

The reduction is also *dimensional*: scenarios carry ``tags`` (family,
scale, hour, draw ...) into their per-result records, and a
:class:`SliceSpec` promotes chosen tag keys to slice dimensions.
:class:`SlicedReducer` then maintains the global :class:`StudyReducer`
plus one sub-reducer per observed tag value — bounded cardinality, with
late-arriving values folded into a ``__other__`` cell — so a study can
answer "cost vs sweep scale" or "violations vs hour-of-day" without
retaining a single per-scenario record.  Because cells are keyed by tag
value and fed in scenario order, serial, pooled, and streamed execution
produce bit-identical per-slice aggregates, exactly like the global one.

``aggregate_study(list)`` remains as a thin wrapper over the reducer for
existing callers and stored result sets.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

#: Sample-count cap for exact percentile buffering; above it the stats
#: switch to P² sketches.  The cap bounds reducer memory at ~3 float
#: buffers of this size regardless of ensemble size.
EXACT_STATS_CAP = 2048

#: Default per-dimension cardinality cap for sliced aggregation: enough
#: for a 24-hour profile or a 9..32-point sweep, small enough that slice
#: memory stays O(n_slices) whatever the tag actually contains.
DEFAULT_SLICE_MAX_VALUES = 32

#: Cell key collecting every tag value past the cardinality cap.
OTHER_SLICE = "__other__"

#: How many *distinct* overflowed tag values a slice dimension tracks for
#: its ``n_overflow_values`` diagnostic.  Past this, the count saturates
#: (reported with ``overflow_values_saturated``) instead of growing with
#: the tag's cardinality — slicing a 1M-draw ensemble by ``draw`` must
#: stay O(n_slices) resident, not O(n).
OVERFLOW_VALUE_TRACK_CAP = 1024


class P2Quantile:
    """Single-quantile P² estimator (Jain & Chlamtac, CACM 1985).

    Five markers track (min, p/2, p, (1+p)/2, max); each observation
    nudges the middle markers toward their desired positions with a
    piecewise-parabolic height update.  O(1) memory and per-observation
    work, typical relative error well under 1 % on 10k+ unimodal samples
    (asserted by the test suite on a 10k-draw Monte Carlo).
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self._heights: list[float] = []  # marker values, sorted
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def add(self, x: float) -> None:
        h = self._heights
        if len(h) < 5:
            h.append(x)
            h.sort()
            return
        # Locate the cell and bump endpoint markers.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        pos = self._positions
        for i in range(k + 1, 5):
            pos[i] += 1.0
        des = self._desired
        for i in range(5):
            des[i] += self._increments[i]
        # Adjust the three middle markers toward their desired positions.
        for i in (1, 2, 3):
            d = des[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (pos[j] - pos[i])

    def value(self) -> float:
        """Current quantile estimate (exact below 5 observations)."""
        h = self._heights
        if not h:
            raise ValueError("P2Quantile.value() on an empty estimator")
        if len(h) < 5:
            # Too few observations to place markers: nearest-rank fallback.
            rank = min(len(h) - 1, max(0, round(self.p * (len(h) - 1))))
            return sorted(h)[rank]
        return h[2]


class StreamingStats:
    """Streaming mean / p05 / p50 / p95 / min / max over one value stream.

    Buffers values for exact percentiles up to ``exact_cap`` observations,
    then replays the buffer into three :class:`P2Quantile` sketches and
    streams from there (O(1) memory).  Count, mean, min, and max stay
    exact in both regimes.
    """

    PERCENTILES = (("p05", 0.05), ("p50", 0.50), ("p95", 0.95))

    def __init__(self, exact_cap: int = EXACT_STATS_CAP) -> None:
        self.exact_cap = max(5, int(exact_cap))
        self.count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._buffer: list[float] | None = []
        self._sketches: dict[str, P2Quantile] | None = None

    @property
    def sketched(self) -> bool:
        return self._sketches is not None

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        self._sum += x
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x
        if self._buffer is not None:
            self._buffer.append(x)
            if len(self._buffer) > self.exact_cap:
                self._spill()
        else:
            for sketch in self._sketches.values():  # type: ignore[union-attr]
                sketch.add(x)

    def _spill(self) -> None:
        """Switch from exact buffering to P² sketches (order-preserving)."""
        self._sketches = {name: P2Quantile(q) for name, q in self.PERCENTILES}
        for x in self._buffer:  # type: ignore[union-attr]
            for sketch in self._sketches.values():
                sketch.add(x)
        self._buffer = None

    def to_dict(self) -> dict | None:
        """Stats payload (``None`` when no values were observed).

        Exact mode reproduces the historical ``np.percentile`` numbers
        bit-for-bit; sketch mode reports P² estimates and flags itself
        via ``"estimator": "p2"``.
        """
        if self.count == 0:
            return None
        if self._buffer is not None:
            import numpy as np

            arr = np.asarray(self._buffer, dtype=float)
            return {
                "mean": float(arr.mean()),
                "p05": float(np.percentile(arr, 5)),
                "p50": float(np.percentile(arr, 50)),
                "p95": float(np.percentile(arr, 95)),
                "min": float(arr.min()),
                "max": float(arr.max()),
                "estimator": "exact",
            }
        out = {name: sketch.value() for name, sketch in self._sketches.items()}
        out.update(
            mean=self._sum / self.count,
            min=self._min,
            max=self._max,
            estimator="p2",
        )
        # Key order matches exact mode for stable JSON diffs.
        return {k: out[k] for k in ("mean", "p05", "p50", "p95", "min", "max", "estimator")}


def percentile_stats(
    values: list[float], exact_cap: int = EXACT_STATS_CAP
) -> dict | None:
    """mean / p5 / p50 / p95 / min / max over ``values`` (None when empty)."""
    stats = StreamingStats(exact_cap)
    for v in values:
        stats.add(v)
    return stats.to_dict()


def slice_key(value) -> str:
    """Canonical string key for one tag value (JSON-stable, repr-free).

    Floats go through ``%g`` so ``0.8`` and ``0.8000000000000001``-style
    linspace artefacts keep readable keys; everything else uses ``str``.
    The mapping is pure, so the same tag value lands in the same cell on
    every execution path.
    """
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class SliceSpec:
    """Which tag keys a study slices its aggregates by.

    ``by`` names the scenario-tag dimensions (``"hour_of_day"``,
    ``"scale"``, ``"hot_zone"`` ...); ``max_values`` caps the distinct
    values tracked per dimension — the first ``max_values`` observed
    values get their own cells, everything later folds into
    :data:`OTHER_SLICE`.  Arrival order is identical across serial,
    pooled, and streamed execution, so the cell split is deterministic.
    """

    by: tuple[str, ...] = ()
    max_values: int = DEFAULT_SLICE_MAX_VALUES

    def __post_init__(self) -> None:
        if self.max_values < 1:
            raise ValueError(
                f"slice cardinality cap must be >= 1, got {self.max_values}"
            )
        if isinstance(self.by, str):
            # tuple("scale") would silently mean five one-letter
            # dimensions; a bare string is always a caller mistake here
            # (front ends parse strings via resolve_slice_by).
            raise ValueError(
                f"slice dimensions must be a tuple of tag names, got the "
                f"string {self.by!r} — did you mean ({self.by!r},)?"
            )
        object.__setattr__(self, "by", tuple(self.by))
        seen = set()
        for dim in self.by:
            if not dim or not isinstance(dim, str):
                raise ValueError(f"slice dimensions must be non-empty strings, got {dim!r}")
            if dim in seen:
                raise ValueError(f"duplicate slice dimension {dim!r}")
            seen.add(dim)

    def __bool__(self) -> bool:
        return bool(self.by)


@dataclass
class StudyAggregate:
    """Cross-scenario summary of one batch study."""

    n_scenarios: int
    n_converged: int
    n_errors: int
    overload_rate: float  # fraction of converged scenarios with any overload
    voltage_violation_rate: float
    violation_rate: float  # either kind
    branch_overload_freq: dict[int, float] = field(default_factory=dict)
    cost_stats: dict | None = None
    loading_stats: dict | None = None
    min_voltage_stats: dict | None = None
    security_cost_stats: dict | None = None  # SCOPF premium over economic
    rank_stability: dict[int, float] = field(default_factory=dict)
    stable_critical: list[int] = field(default_factory=list)
    #: Per-dimension tag slices (``None`` for an unsliced study): maps
    #: each :class:`SliceSpec` dimension to its cell table.
    slices: dict | None = None

    def to_dict(self) -> dict:
        out = {
            "n_scenarios": self.n_scenarios,
            "n_converged": self.n_converged,
            "n_errors": self.n_errors,
            "overload_rate": round(self.overload_rate, 4),
            "voltage_violation_rate": round(self.voltage_violation_rate, 4),
            "violation_rate": round(self.violation_rate, 4),
            "branch_overload_freq": {
                str(b): round(f, 4) for b, f in self.branch_overload_freq.items()
            },
            "cost_stats": self.cost_stats,
            "loading_stats": self.loading_stats,
            "min_voltage_stats": self.min_voltage_stats,
        }
        if self.security_cost_stats is not None:
            out["security_cost_stats"] = self.security_cost_stats
        if self.rank_stability:
            out["rank_stability"] = {
                str(b): round(f, 4) for b, f in self.rank_stability.items()
            }
            out["stable_critical"] = list(self.stable_critical)
        if self.slices is not None:
            out["slices"] = self.slices
        return out


class StudyReducer:
    """Online ensemble reducer: feed :class:`ScenarioResult`s, read the
    same :class:`StudyAggregate` the list-based aggregation produced.

    Rates are over *converged* scenarios (a diverged power flow says
    nothing about limit violations); convergence itself is reported
    separately as ``n_converged`` / ``n_errors``.  All counters update in
    O(1) per result; distribution stats stream through
    :class:`StreamingStats`, so total reducer memory is bounded by the
    exact-percentile cap — never by the ensemble size.
    """

    def __init__(self, *, exact_cap: int = EXACT_STATS_CAP) -> None:
        self.n = 0
        self.n_converged = 0
        self.n_errors = 0
        self.n_overloaded = 0
        self.n_voltage = 0
        self.n_either = 0
        self.n_listed = 0  # scenarios reporting a critical-branch list
        self.branch_hits: Counter[int] = Counter()
        self.crit_hits: Counter[int] = Counter()
        self.cost = StreamingStats(exact_cap)
        self.loading = StreamingStats(exact_cap)
        self.min_voltage = StreamingStats(exact_cap)
        self.security_cost = StreamingStats(exact_cap)

    # ------------------------------------------------------------------
    def add(self, r) -> None:
        """Fold one :class:`~repro.scenarios.runner.ScenarioResult` in."""
        self.n += 1
        if r.error:
            self.n_errors += 1
        if not r.converged:
            return
        self.n_converged += 1
        overloaded = bool(r.overloaded_branches)
        volts = r.n_voltage_violations > 0
        if overloaded:
            self.n_overloaded += 1
            for bid in set(r.overloaded_branches):
                self.branch_hits[bid] += 1
        if volts:
            self.n_voltage += 1
        if overloaded or volts:
            self.n_either += 1
        if r.critical_branches is not None:
            self.n_listed += 1
            for bid in set(r.critical_branches):
                self.crit_hits[bid] += 1
        if r.objective_cost is not None:
            self.cost.add(r.objective_cost)
        self.loading.add(r.max_loading_percent)
        if r.min_voltage_pu is not None:
            self.min_voltage.add(r.min_voltage_pu)
        security = getattr(r, "security_cost", None)
        if security is not None:
            self.security_cost.add(security)

    def add_many(self, results: Iterable) -> None:
        for r in results:
            self.add(r)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Cheap mid-study counters for progress reporting."""
        nc = self.n_converged
        return {
            "n_done": self.n,
            "n_converged": nc,
            "n_errors": self.n_errors,
            "violation_rate": self.n_either / nc if nc else 0.0,
        }

    def result(self) -> StudyAggregate:
        """The aggregate over everything folded in so far."""
        nc = self.n_converged
        branch_freq = {
            int(b): cnt / nc
            for b, cnt in sorted(self.branch_hits.items(), key=lambda kv: -kv[1])
        }
        stability = (
            {
                int(b): cnt / self.n_listed
                for b, cnt in sorted(
                    self.crit_hits.items(), key=lambda kv: (-kv[1], kv[0])
                )
            }
            if self.n_listed
            else {}
        )
        return StudyAggregate(
            n_scenarios=self.n,
            n_converged=nc,
            n_errors=self.n_errors,
            overload_rate=self.n_overloaded / nc if nc else 0.0,
            voltage_violation_rate=self.n_voltage / nc if nc else 0.0,
            violation_rate=self.n_either / nc if nc else 0.0,
            branch_overload_freq=branch_freq,
            cost_stats=self.cost.to_dict(),
            loading_stats=self.loading.to_dict(),
            min_voltage_stats=self.min_voltage.to_dict(),
            security_cost_stats=self.security_cost.to_dict(),
            rank_stability=stability,
            stable_critical=[b for b, f in stability.items() if f >= 0.5],
        )


class SlicedReducer:
    """Dimensional ensemble reducer: one global :class:`StudyReducer`
    plus per-tag-value sub-reducers for every :class:`SliceSpec` dimension.

    Cells are created in arrival order up to ``spec.max_values`` per
    dimension; later-arriving values share one :data:`OTHER_SLICE` cell.
    Results whose tags lack a dimension are counted as *unsliced* for it
    (they still feed the global aggregate).  Every cell is a full
    :class:`StudyReducer`, so per-slice distribution stats carry the same
    exact-below-cap / P²-above-cap guarantee — and the same
    execution-order independence — as the global ones.

    With an empty spec this degenerates to the plain global reducer at
    one tuple-iteration of overhead per result, so the runner uses it
    unconditionally.
    """

    def __init__(
        self, spec: SliceSpec | None = None, *, exact_cap: int = EXACT_STATS_CAP
    ) -> None:
        self.spec = spec or SliceSpec()
        self.exact_cap = exact_cap
        self.overall = StudyReducer(exact_cap=exact_cap)
        # Per dimension: cell reducers in first-seen order (dicts preserve
        # insertion order), distinct values folded past the cap, and the
        # count of results missing the tag entirely.
        self._cells: dict[str, dict[str, StudyReducer]] = {d: {} for d in self.spec.by}
        self._overflow: dict[str, set[str]] = {d: set() for d in self.spec.by}
        self._unsliced: dict[str, int] = {d: 0 for d in self.spec.by}

    # ------------------------------------------------------------------
    def add(self, r) -> None:
        self.overall.add(r)
        if not self.spec.by:
            return
        tags = r.tags or {}
        for dim in self.spec.by:
            if dim not in tags:
                self._unsliced[dim] += 1
                continue
            key = slice_key(tags[dim])
            cells = self._cells[dim]
            cell = cells.get(key)
            if cell is None:
                n_real = len(cells) - (1 if OTHER_SLICE in cells else 0)
                if n_real < self.spec.max_values:
                    cell = cells[key] = StudyReducer(exact_cap=self.exact_cap)
                else:
                    # Track distinct overflow values only up to a cap:
                    # slicing by an unbounded tag (draw index) must not
                    # grow the reducer with the ensemble.
                    overflow = self._overflow[dim]
                    if len(overflow) < OVERFLOW_VALUE_TRACK_CAP:
                        overflow.add(key)
                    cell = cells.get(OTHER_SLICE)
                    if cell is None:
                        cell = cells[OTHER_SLICE] = StudyReducer(
                            exact_cap=self.exact_cap
                        )
            cell.add(r)

    def add_many(self, results: Iterable) -> None:
        for r in results:
            self.add(r)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Cheap mid-study counters (delegates to the global reducer)."""
        return self.overall.snapshot()

    @staticmethod
    def _cell_dict(reducer: StudyReducer) -> dict:
        """Compact per-cell summary: counts, rates, cost/loading stats.

        Deliberately thinner than the global aggregate (no branch
        frequency maps, no rank stability) so a many-cell slice table —
        and the store's aggregate-index sidecar that persists it — stays
        reply-sized.
        """
        agg = reducer.result()
        out = {
            "n": agg.n_scenarios,
            "n_converged": agg.n_converged,
            "n_errors": agg.n_errors,
            "violation_rate": round(agg.violation_rate, 4),
            "overload_rate": round(agg.overload_rate, 4),
            "cost_stats": agg.cost_stats,
            "loading_stats": agg.loading_stats,
        }
        if agg.min_voltage_stats is not None:
            out["min_voltage_stats"] = agg.min_voltage_stats
        if agg.security_cost_stats is not None:
            out["security_cost_stats"] = agg.security_cost_stats
        return out

    def slices_dict(self) -> dict | None:
        """JSON-ready slice tables (``None`` when the spec is empty).

        Cells appear in first-seen scenario order — ascending hour for a
        profile, ascending factor for a sweep — with the overflow cell,
        when present, last.
        """
        if not self.spec.by:
            return None
        out: dict = {}
        for dim in self.spec.by:
            cells = self._cells[dim]
            ordered = [k for k in cells if k != OTHER_SLICE]
            if OTHER_SLICE in cells:
                ordered.append(OTHER_SLICE)
            block = {
                "by": dim,
                "n_cells": len(ordered),
                "max_values": self.spec.max_values,
                "n_overflow_values": len(self._overflow[dim]),
                "n_unsliced": self._unsliced[dim],
                "cells": [
                    {"value": key, **self._cell_dict(cells[key])} for key in ordered
                ],
            }
            if len(self._overflow[dim]) >= OVERFLOW_VALUE_TRACK_CAP:
                block["overflow_values_saturated"] = True
            out[dim] = block
        return out

    def result(self) -> StudyAggregate:
        """Global aggregate with the slice tables attached."""
        agg = self.overall.result()
        agg.slices = self.slices_dict()
        return agg


def aggregate_study(
    results: list,
    *,
    exact_cap: int = EXACT_STATS_CAP,
    slice_spec: SliceSpec | None = None,
) -> StudyAggregate:
    """Reduce a list of :class:`~repro.scenarios.runner.ScenarioResult`.

    Thin wrapper over :class:`StudyReducer` (or :class:`SlicedReducer`
    when ``slice_spec`` names dimensions), kept for every caller that
    still holds a materialised result list (stored result sets, tests,
    comparisons); the streamed and list-based reductions are the same
    code path by construction.
    """
    if slice_spec is not None and slice_spec.by:
        sliced = SlicedReducer(slice_spec, exact_cap=exact_cap)
        sliced.add_many(results)
        return sliced.result()
    reducer = StudyReducer(exact_cap=exact_cap)
    reducer.add_many(results)
    return reducer.result()
