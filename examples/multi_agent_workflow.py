#!/usr/bin/env python
"""Cross-domain multi-agent workflow with shared context (paper Fig. 9).

One request fans out across the planner, the ACOPF agent, and the CA
agent; the contingency step reuses the economic base point deposited by
the dispatch step through the shared typed context — the paper's
produce-validate-consume loop.  The session is then saved to disk and
resumed, demonstrating the persistence layer.

Run:  python examples/multi_agent_workflow.py [model]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import GridMindSession


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "claude-4-sonnet"
    session = GridMindSession(model=model, seed=11)

    request = (
        "Solve IEEE 118 case, then run contingency analysis and identify "
        "critical elements for reinforcement"
    )
    print(f"User : {request}\n")
    reply = session.ask(request)
    print(f"Agent:\n{reply.text}\n")

    print("workflow executed:")
    for step in reply.workflow.steps:
        print(f"  [{step.status}] {step.agent}: {step.clause[:60]}")

    print("\ncross-agent data flow through the shared context:")
    ctx = session.context
    print(f"  ACOPF deposited : ${ctx.acopf_solution.objective_cost:,.2f}/h "
          f"({'fresh' if ctx.acopf_fresh() else 'stale'})")
    print(f"  CA consumed base: ${ctx.ca_result.base_objective_cost:,.2f}/h")
    print(f"  CA cached       : {ctx.contingency_cache.size} outage outcomes")

    print("\nfollow-up question reuses the cache (no re-sweep):")
    follow = session.ask("what's the contingency status?")
    print(f"Agent: {follow.text}")

    # --- persistence -------------------------------------------------
    path = Path(tempfile.gettempdir()) / "gridmind_session.json"
    session.save(path)
    resumed = GridMindSession(model=model, seed=11)
    resumed.resume(path)
    print(f"\nsession saved to {path} and resumed:")
    print(f"  resumed case    : {resumed.context.case_name}")
    print(f"  resumed solution: ${resumed.context.acopf_solution.objective_cost:,.2f}/h "
          f"({'fresh' if resumed.context.acopf_fresh() else 'stale'})")

    print("\ninstrumentation bench summary:")
    for key, value in session.metrics().items():
        print(f"  {key:20s} {value}")


if __name__ == "__main__":
    main()
