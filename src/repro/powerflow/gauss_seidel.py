"""Gauss-Seidel AC power flow.

The textbook baseline: slow linear convergence, but nearly unbreakable on
small systems and useful as the last rung of the recovery ladder as well
as a teaching reference for the examples.
"""

from __future__ import annotations

import time

import numpy as np

from ..grid.network import Network
from ..instrumentation.probes import instrument_solver
from .newton import bus_power_injections
from .solution import PowerFlowResult, finalize_solution, make_admittances


@instrument_solver("gauss_seidel")
def solve_gauss_seidel(
    net: Network,
    *,
    tol: float = 1e-6,
    max_iter: int = 2000,
    acceleration: float = 1.4,
    v0: np.ndarray | None = None,
) -> PowerFlowResult:
    """Solve the power flow by per-bus Gauss-Seidel sweeps.

    ``acceleration`` is the usual over-relaxation factor (1.0 disables);
    ``v0`` warm-starts from a prior complex voltage vector, same as the
    Newton and fast-decoupled solvers.
    """
    start = time.perf_counter()
    arr, adm = make_admittances(net)
    ybus = adm.ybus.tocsr()

    v = (
        np.asarray(v0, dtype=complex).copy()
        if v0 is not None
        else arr.vm0 * np.exp(1j * arr.va0)
    )
    sbus = bus_power_injections(arr)
    pv = set(int(b) for b in arr.pv_buses)
    slack = set(int(b) for b in arr.slack_buses)

    ydiag = ybus.diagonal()
    indptr, indices, data = ybus.indptr, ybus.indices, ybus.data

    converged = False
    it = 0
    norm = np.inf
    for it in range(1, max_iter + 1):
        for bus in range(arr.n_bus):
            if bus in slack:
                continue
            lo, hi = indptr[bus], indptr[bus + 1]
            i_other = data[lo:hi] @ v[indices[lo:hi]] - ydiag[bus] * v[bus]
            if bus in pv:
                # Hold |V|; update the angle from the required injection.
                q_new = (v[bus] * np.conj(i_other + ydiag[bus] * v[bus])).imag
                s = sbus[bus].real + 1j * q_new
                v_new = (np.conj(s / v[bus]) - i_other) / ydiag[bus]
                v[bus] = np.abs(v[bus]) * v_new / np.abs(v_new)
            else:
                v_new = (np.conj(sbus[bus] / v[bus]) - i_other) / ydiag[bus]
                v[bus] = v[bus] + acceleration * (v_new - v[bus])

        mis = v * np.conj(ybus @ v) - sbus
        free = [b for b in range(arr.n_bus) if b not in slack]
        pq_rows = [b for b in free if b not in pv]
        parts = [mis[free].real]
        if pq_rows:
            parts.append(mis[pq_rows].imag)
        norm = float(np.max(np.abs(np.concatenate(parts))))
        if norm < tol:
            converged = True
            break

    return finalize_solution(
        net,
        arr,
        adm,
        v,
        converged=converged,
        iterations=it,
        method="gauss-seidel",
        max_mismatch_pu=norm,
        runtime_s=time.perf_counter() - start,
        message=(
            f"converged in {it} sweeps"
            if converged
            else f"Gauss-Seidel did not converge in {max_iter} sweeps"
        ),
    )
