"""AC ensemble fast path: warm-kernel parity, routing, caching, wiring.

Unlike the DC kernel's bit-identity promise (``test_batch_kernels``),
the warm AC path carries a *parity contract* — Newton iterates are
path-dependent, so the warm and cold solutions are different fixed-point
approaches to the same answer.  The contract, asserted here across
cases, chunk sizes, and dispatch modes:

* identical ``converged`` flags, row for row,
* identical overloaded-branch and voltage-violation sets,
* every accepted mismatch under the same ``tol``,
* aggregate fields within 1e-6 of the cold path.

What *is* exact: warm-path records are dispatch- and chunk-size-
invariant (rows never mix), error records are byte-identical on both
paths (failures degrade to the very same scalar ladder), and the
``ac_mode`` / ``ac_fd_sweeps`` knobs never enter the store spec hash.
"""

import dataclasses

import numpy as np
import pytest

from repro.contingency.nminus1 import run_n_minus_1
from repro.grid.cases import load_case
from repro.instrumentation.metrics import MetricsRegistry, set_metrics
from repro.powerflow import (
    AcKernel,
    solve_gauss_seidel,
    solve_newton,
    solve_with_recovery,
)
from repro.powerflow.solution import make_admittances
from repro.scenarios import (
    BatchStudyRunner,
    BranchOutage,
    GaussianLoadNoise,
    RenewableInjection,
    Scenario,
    UniformLoadScale,
    monte_carlo_ensemble,
)
from repro.scenarios.runner import StudyConfig, _WorkerState
from repro.service import StudyExecutor

TOL = 1e-8
AGG_ATOL = 1e-6


@pytest.fixture
def fresh_metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _zero_times(study):
    out = []
    for r in study.results:
        d = dataclasses.asdict(r)
        d["solve_time_s"] = 0.0
        out.append(d)
    return out


def _assert_close(a, b, atol=AGG_ATOL, path=""):
    """Recursive structural equality with a float tolerance — the
    aggregate dicts carry unrounded stats that the parity contract only
    pins to 1e-6."""
    assert type(a) is type(b), f"{path}: {type(a)} != {type(b)}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), f"{path}: keys differ"
        for k in a:
            _assert_close(a[k], b[k], atol, f"{path}.{k}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length differs"
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_close(x, y, atol, f"{path}[{i}]")
    elif isinstance(a, float):
        assert a == pytest.approx(b, abs=atol), f"{path}: {a} != {b}"
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def _assert_record_parity(warm, cold):
    """The warm/cold parity contract, record by record."""
    assert len(warm.results) == len(cold.results)
    for w, c in zip(warm.results, cold.results):
        assert w.name == c.name
        assert w.converged == c.converged
        assert w.error == c.error
        assert w.overloaded_branches == c.overloaded_branches
        assert w.n_voltage_violations == c.n_voltage_violations
        if not w.converged:
            continue
        assert w.max_loading_percent == pytest.approx(
            c.max_loading_percent, abs=1e-4
        )
        assert w.min_voltage_pu == pytest.approx(c.min_voltage_pu, abs=AGG_ATOL)
        assert w.max_voltage_pu == pytest.approx(c.max_voltage_pu, abs=AGG_ATOL)
        assert w.losses_mw == pytest.approx(c.losses_mw, abs=1e-4)


# ----------------------------------------------------------------------
# kernel: stacked chunk vs per-scenario cold Newton
# ----------------------------------------------------------------------


class TestAcKernel:
    @pytest.mark.parametrize("case_name", ["ieee14", "ieee57", "ieee118"])
    def test_chunk_rows_match_cold_newton(self, case_name):
        net = load_case(case_name)
        scns = list(monte_carlo_ensemble(n=8, sigma=0.05, seed=3))
        kernel = AcKernel(net, tol=TOL)
        assert kernel.usable
        packs = [s.ac_injection(net) for s in scns]
        sol = kernel.solve_chunk(
            np.vstack([sbus for sbus, _, _ in packs]), fd_sweeps=8
        )
        assert sol.n_scenarios == len(scns)
        for j, scn in enumerate(scns):
            cold = solve_newton(scn.realize(net), tol=TOL)
            assert bool(sol.converged[j]) == cold.converged
            # Every accepted row sits under the same tolerance the cold
            # path enforces.
            assert sol.norms[j] < TOL
            _, pd, qd = packs[j]
            warm = kernel.finalize_row(
                sol.v[j], pd, qd,
                converged=True,
                iterations=int(sol.iterations[j]),
                norm=float(sol.norms[j]),
            )
            _assert_close(
                warm.overloaded_branches(100.0),
                cold.overloaded_branches(100.0),
                atol=1e-4,
            )
            _assert_close(
                warm.voltage_violations(0.94, 1.06),
                cold.voltage_violations(0.94, 1.06),
            )
            assert warm.max_loading_percent == pytest.approx(
                cold.max_loading_percent, abs=1e-4
            )
            assert warm.losses_mw == pytest.approx(cold.losses_mw, abs=1e-4)

    def test_base_row_skips_iteration(self, case14):
        kernel = AcKernel(case14, tol=TOL)
        sbus, _, _ = Scenario("base").ac_injection(case14)
        sol = kernel.solve_chunk(sbus)
        assert bool(sol.skipped[0])
        assert bool(sol.converged[0])
        assert int(sol.iterations[0]) == 0
        assert kernel.n_skipped == 1 and kernel.n_warm_solves == 0

    def test_base_result_cached(self, case14):
        kernel = AcKernel(case14)
        assert kernel.base_result() is kernel.base_result()

    def test_accounting(self, case14):
        kernel = AcKernel(case14)
        scns = list(monte_carlo_ensemble(n=4, sigma=0.05, seed=9))
        stack = np.vstack([s.ac_injection(case14)[0] for s in scns])
        kernel.solve_chunk(stack)
        assert kernel.n_chunks == 1
        assert kernel.n_warm_solves + kernel.n_skipped == 4


# ----------------------------------------------------------------------
# studies: warm vs cold, chunk sizes, dispatch modes
# ----------------------------------------------------------------------


class TestAcStudyParity:
    @pytest.mark.parametrize("chunk_size", [1, 3, 8])
    def test_warm_vs_cold_across_chunk_sizes(self, case14, chunk_size):
        scns = monte_carlo_ensemble(n=8, sigma=0.06, seed=21)
        warm = BatchStudyRunner(
            analysis="powerflow", chunk_size=chunk_size
        ).run(case14, scns)
        cold = BatchStudyRunner(
            analysis="powerflow", chunk_size=chunk_size, ac_mode="cold"
        ).run(case14, scns)
        _assert_record_parity(warm, cold)
        _assert_close(warm.aggregate().to_dict(), cold.aggregate().to_dict())

    def test_warm_records_invariant_across_dispatch(self, case14):
        """Rows never mix, so warm results are exactly identical under
        serial, pooled, and shared-executor dispatch (timing zeroed)."""
        scns = monte_carlo_ensemble(n=8, sigma=0.05, seed=11)
        serial = BatchStudyRunner(analysis="powerflow", n_jobs=1).run(
            case14, scns
        )
        pooled = BatchStudyRunner(analysis="powerflow", n_jobs=2).run(
            case14, scns
        )
        assert _zero_times(serial) == _zero_times(pooled)
        with StudyExecutor(max_workers=2) as executor:
            streamed = BatchStudyRunner(
                analysis="powerflow", executor=executor
            ).run(case14, scns, keep_results=False)
        assert (
            serial.aggregate().to_dict()
            == pooled.aggregate().to_dict()
            == streamed.aggregate().to_dict()
        )

    def test_mixed_chunk_preserves_order_and_degrades(self, case14):
        """Topology changers interleaved with injection-only rows: the
        fallback rows run the scalar loop, order is preserved, and the
        whole study still honours the parity contract."""
        scns = [
            Scenario("a", (UniformLoadScale(1.08),)),
            Scenario("b", (BranchOutage(2),)),
            Scenario("c", (GaussianLoadNoise(0.05, 3),)),
            Scenario("d", (BranchOutage(5), UniformLoadScale(1.05))),
            Scenario("e", (RenewableInjection(bus=4, p_mw=20.0),)),
        ]
        warm = BatchStudyRunner(analysis="powerflow", chunk_size=5).run(
            case14, scns
        )
        cold = BatchStudyRunner(
            analysis="powerflow", chunk_size=5, ac_mode="cold"
        ).run(case14, scns)
        assert [r.name for r in warm.results] == list("abcde")
        _assert_record_parity(warm, cold)

    def test_error_records_byte_identical(self, case14):
        """Perturbation errors and diverging solves produce the exact
        same record on both paths — failures degrade to the same code."""
        scns = [
            Scenario("ok", (UniformLoadScale(1.05),)),
            Scenario("bad", (UniformLoadScale(-2.0),)),
            # Far beyond loadability: every ladder rung fails, warm
            # polish included, so the warm path re-runs it cold.
            Scenario("diverge", (UniformLoadScale(60.0),)),
        ]
        warm = BatchStudyRunner(analysis="powerflow", chunk_size=3).run(
            case14, scns
        )
        cold = BatchStudyRunner(
            analysis="powerflow", chunk_size=3, ac_mode="cold"
        ).run(case14, scns)
        for name in ("bad", "diverge"):
            w = next(r for r in warm.results if r.name == name)
            c = next(r for r in cold.results if r.name == name)
            wd, cd = dataclasses.asdict(w), dataclasses.asdict(c)
            wd["solve_time_s"] = cd["solve_time_s"] = 0.0
            assert wd == cd
            assert not w.converged and w.error

    def test_ac_mode_validated(self, case14):
        with pytest.raises(ValueError, match="ac_mode"):
            BatchStudyRunner(analysis="powerflow", ac_mode="tepid").config()


# ----------------------------------------------------------------------
# warm starts through the solver stack
# ----------------------------------------------------------------------


class TestWarmStarts:
    def test_qlimit_partition_same_warm_or_cold(self, case57):
        """PV→PQ switching must settle on the same partition whether the
        solve starts flat-ish or from the base-case voltage."""
        base = solve_newton(case57)
        v0 = np.asarray(base.extras["v_complex"], dtype=complex)
        net = Scenario("up", (UniformLoadScale(1.25),)).realize(case57)
        cold = solve_newton(net, enforce_q=True)
        warm = solve_newton(net, enforce_q=True, v0=v0)
        assert cold.converged and warm.converged
        assert np.array_equal(
            cold.extras["final_bus_type"], warm.extras["final_bus_type"]
        )
        # The test is only meaningful if limits actually bind.
        arr = net.compile()
        assert not np.array_equal(cold.extras["final_bus_type"], arr.bus_type)

    def test_gauss_seidel_accepts_v0(self, case14):
        base = solve_newton(case14)
        v0 = np.asarray(base.extras["v_complex"], dtype=complex)
        warm = solve_gauss_seidel(case14, tol=1e-6, v0=v0)
        flat = solve_gauss_seidel(case14, tol=1e-6)
        assert warm.converged
        assert warm.iterations < flat.iterations
        assert warm.max_mismatch_pu < 1e-6

    def test_recovery_ladder_threads_v0(self, case14):
        base = solve_newton(case14)
        v0 = np.asarray(base.extras["v_complex"], dtype=complex)
        res, trace = solve_with_recovery(case14, v0=v0)
        assert res.converged
        # Already at the solution: the first (Newton) rung accepts
        # immediately.
        assert trace.attempts[0].options["ladder_step"] == "newton"
        assert res.iterations <= 1

    def test_n_minus_1_with_kernel_matches_plain(self, case14):
        plain = run_n_minus_1(case14, n_jobs=1)
        seeded = run_n_minus_1(case14, n_jobs=1, kernel=AcKernel(case14))
        assert len(plain.outcomes) == len(seeded.outcomes)
        for p, s in zip(plain.outcomes, seeded.outcomes):
            assert (p.branch_id, p.converged, p.islanded) == (
                s.branch_id, s.converged, s.islanded,
            )
            assert p.max_loading_percent == pytest.approx(
                s.max_loading_percent, abs=1e-4
            )
            assert [b for b, _ in p.overloads] == [b for b, _ in s.overloads]
            assert p.n_voltage_violations == s.n_voltage_violations


# ----------------------------------------------------------------------
# memoization and worker caches
# ----------------------------------------------------------------------


class TestCaches:
    def test_make_admittances_memoized_until_mutation(self, case14):
        _, adm1 = make_admittances(case14)
        _, adm2 = make_admittances(case14)
        assert adm2 is adm1
        case14.set_load(2, 30.0)  # touch() invalidates the memo
        _, adm3 = make_admittances(case14)
        assert adm3 is not adm1

    def test_ac_kernel_shared_across_load_levels(self, case14):
        state = _WorkerState(case14, StudyConfig(analysis="powerflow"))
        k1 = state.ac_kernel_for(case14)
        scaled = Scenario("s", (UniformLoadScale(1.2),)).realize(case14)
        assert state.ac_kernel_for(scaled) is k1
        assert len(state.ac_kernel_cache) == 1

    def test_ac_kernel_cache_capped(self, case14):
        state = _WorkerState(case14, StudyConfig(analysis="powerflow"))
        state.KERNEL_CACHE_MAX_ENTRIES = 2
        for bid in range(4):
            net = Scenario("o", (BranchOutage(bid),)).realize(case14)
            state.ac_kernel_for(net)
        assert len(state.ac_kernel_cache) <= 2


# ----------------------------------------------------------------------
# metrics and store hashing
# ----------------------------------------------------------------------


class TestMetricsAndHash:
    def test_warm_counters_and_scenario_billing(self, case14, fresh_metrics):
        scns = list(monte_carlo_ensemble(n=6, sigma=0.05, seed=4))
        state = _WorkerState(case14, StudyConfig(analysis="powerflow"))
        results = state.run_chunk(scns)
        assert len(results) == 6 and all(r.converged for r in results)
        warm = fresh_metrics.counter("gridmind_ac_warm_solves_total").total()
        skip = fresh_metrics.counter(
            "gridmind_ac_skipped_converged_total"
        ).total()
        assert warm + skip == 6.0
        # Metric parity: every scenario billed exactly once.
        assert (
            fresh_metrics.counter("gridmind_scenarios_total").total() == 6.0
        )

    def test_cold_mode_emits_no_warm_counters(self, case14, fresh_metrics):
        scns = list(monte_carlo_ensemble(n=4, sigma=0.05, seed=4))
        state = _WorkerState(
            case14, StudyConfig(analysis="powerflow", ac_mode="cold")
        )
        state.run_chunk(scns)
        assert (
            fresh_metrics.counter("gridmind_ac_warm_solves_total").total()
            == 0.0
        )
        assert (
            fresh_metrics.counter("gridmind_scenarios_total").total() == 4.0
        )

    def test_spec_hash_ignores_ac_knobs_but_not_budget(self, case14):
        from repro.service.store import spec_hash

        scns = list(monte_carlo_ensemble(n=2, sigma=0.05, seed=1))
        warm = spec_hash(StudyConfig(analysis="powerflow"), scns)
        cold = spec_hash(
            StudyConfig(analysis="powerflow", ac_mode="cold"), scns
        )
        fd2 = spec_hash(
            StudyConfig(analysis="powerflow", ac_fd_sweeps=2), scns
        )
        assert warm == cold == fd2
        # ac_budget changes which scenarios get full AC — it must hash.
        a = spec_hash(StudyConfig(analysis="screening", ac_budget=3), scns)
        b = spec_hash(StudyConfig(analysis="screening", ac_budget=4), scns)
        assert a != b
