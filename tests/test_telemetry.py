"""Telemetry layer: fleet determinism, rolling windows, watch end to end."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.cli import main as cli_main
from repro.grid.cases import load_case
from repro.llm.nlu import Intent, classify
from repro.scenarios.runner import ScenarioResult
from repro.scenarios.spec import ZonalLoadScale
from repro.service import GridMindService, WatchRequest
from repro.telemetry import (
    AnomalySpec,
    DeviceFleet,
    FleetSpec,
    RollingWindowStudy,
    TelemetryStream,
    WindowSpec,
    device_seed,
    run_watch,
    windows_digest,
)


@pytest.fixture(scope="module")
def ieee14():
    return load_case("ieee14")


# ----------------------------------------------------------------------
# fleet: per-device seeds, prefix stability, anomaly injection
# ----------------------------------------------------------------------


class TestFleet:
    def test_device_seed_independent_of_fleet_size(self):
        assert device_seed(0, 7) == device_seed(0, 7)
        assert device_seed(0, 7) != device_seed(0, 8)
        assert device_seed(0, 7) != device_seed(1, 7)

    def test_prefix_reproducible_across_fleet_sizes(self, ieee14):
        """Device i's stream is identical in a 50- and a 500-device fleet."""
        small = DeviceFleet(ieee14, FleetSpec(n_devices=50, seed=3))
        large = DeviceFleet(ieee14, FleetSpec(n_devices=500, seed=3))
        for tick in range(3):
            for device_id in range(50):
                assert small.frame(device_id, tick) == large.frame(device_id, tick)

    def test_frame_random_access_matches_streaming(self, ieee14):
        fleet = DeviceFleet(ieee14, FleetSpec(n_devices=20, seed=1))
        batch = {f.device_id: f for f in fleet.frames_for_tick(7)}
        assert fleet.frame(4, 7) == batch[4]

    def test_diurnal_peak_exceeds_trough(self, ieee14):
        fleet = DeviceFleet(ieee14, FleetSpec(n_devices=40, seed=0, sigma=0.0))
        meters = [d for d in fleet.devices if d.kind == "meter"]
        assert meters, "expected some meters at der_fraction=0.25"
        # 04:00 is the diurnal trough, 16:00 the peak (900 s ticks: 16 and 64).
        trough = sum(f.load_mw for f in fleet.frames_for_tick(16) if f.kind == "meter")
        peak = sum(f.load_mw for f in fleet.frames_for_tick(64) if f.kind == "meter")
        assert peak > trough

    def test_anomaly_flags_and_dropout(self, ieee14):
        spike = AnomalySpec(start_tick=2, duration_ticks=1, kind="load_spike",
                            magnitude=2.0)
        clean = DeviceFleet(ieee14, FleetSpec(n_devices=30, seed=5))
        spiked = DeviceFleet(
            ieee14, FleetSpec(n_devices=30, seed=5, anomalies=(spike,))
        )
        before = clean.frames_for_tick(2)
        after = spiked.frames_for_tick(2)
        assert all(f.anomaly == "load_spike" for f in after)
        for base, hit in zip(before, after):
            if base.kind == "meter":
                assert hit.load_mw == pytest.approx(2.0 * base.load_mw)
        # Outside the anomaly range the feeds agree exactly.
        assert clean.frames_for_tick(3) == spiked.frames_for_tick(3)
        dropped = DeviceFleet(
            ieee14,
            FleetSpec(
                n_devices=30, seed=5,
                anomalies=(AnomalySpec(start_tick=2, kind="dropout"),),
            ),
        )
        assert dropped.frames_for_tick(2) == []

    def test_feeder_anomaly_limits_blast_radius(self, ieee14):
        fleet = DeviceFleet(ieee14, FleetSpec(n_devices=60, seed=2))
        feeder = fleet.devices[0].feeder
        scoped = DeviceFleet(
            ieee14,
            FleetSpec(
                n_devices=60, seed=2,
                anomalies=(AnomalySpec(start_tick=0, feeder=feeder),),
            ),
        )
        for frame in scoped.frames_for_tick(0):
            assert (frame.anomaly == "load_spike") == (frame.feeder == feeder)


# ----------------------------------------------------------------------
# feed: scenario adaptation
# ----------------------------------------------------------------------


class TestFeed:
    def test_scenarios_satisfy_stream_contract(self, ieee14):
        fleet = DeviceFleet(ieee14, FleetSpec(n_devices=25, seed=4))
        stream = TelemetryStream(fleet, 3).scenarios()
        assert len(stream) == 3
        first = list(stream)
        again = list(stream)  # re-iterable, identical
        assert [s.name for s in first] == [s.name for s in again]
        for tick, scenario in enumerate(first):
            assert scenario.tags["tick"] == tick
            assert scenario.tags["family"] == "telemetry"
            assert "feeder" in scenario.tags
            assert "hour_of_day" in scenario.tags


# ----------------------------------------------------------------------
# rolling windows (pure: no solver involved)
# ----------------------------------------------------------------------


def _result(tick: int, *, violations: bool = False, anomaly: str = "none",
            feeder: str = "feeder_0") -> ScenarioResult:
    return ScenarioResult(
        name=f"t{tick:04d}",
        tags={
            "tick": tick,
            "feeder": feeder,
            "hour_of_day": tick // 4,
            "anomaly": anomaly,
        },
        converged=True,
        max_loading_percent=50.0,
        min_voltage_pu=1.0,
        max_voltage_pu=1.02,
        overloaded_branches=[1] if violations else [],
    )


class TestWindowSpec:
    def test_boundary_exactness(self):
        spec = WindowSpec(size_ticks=4, slide_ticks=2)
        # [0,4) and [2,6) cover tick 3; tick 4 belongs to [2,6) and [4,8).
        assert list(spec.covering(3)) == [0, 1]
        assert list(spec.covering(4)) == [1, 2]
        assert 0 not in spec.covering(4)
        assert spec.max_open == 2

    def test_tumbling_default(self):
        spec = WindowSpec(size_ticks=3)
        assert spec.slide_ticks == 3
        assert spec.max_open == 1
        assert list(spec.covering(2)) == [0]
        assert list(spec.covering(3)) == [1]

    def test_slide_must_divide_size(self):
        with pytest.raises(ValueError, match="multiple"):
            WindowSpec(size_ticks=4, slide_ticks=3)
        with pytest.raises(ValueError):
            WindowSpec(size_ticks=0)


class TestRollingWindows:
    def test_close_on_exact_boundary(self):
        study = RollingWindowStudy(WindowSpec(size_ticks=2))
        assert study.add(_result(0)) == []
        assert study.add(_result(1)) == []
        closed = study.add(_result(2))  # tick == end(0) closes [0,2)
        assert [w.index for w in closed] == [0]
        assert closed[0].n_results == 2
        assert closed[0].start_tick == 0 and closed[0].end_tick == 2
        # The boundary result belongs to the *next* window.
        final = study.finalize()
        assert [w.index for w in final] == [1]
        assert final[0].n_results == 1

    def test_empty_windows_emitted(self):
        study = RollingWindowStudy(WindowSpec(size_ticks=2))
        study.add(_result(0))
        closed = study.add(_result(5))  # feed skipped ticks 1-4
        assert [w.index for w in closed] == [0, 1]
        assert closed[0].n_results == 1
        assert closed[1].n_results == 0  # silence is data
        assert closed[1].aggregate is None

    def test_late_results_counted_not_folded(self):
        study = RollingWindowStudy(WindowSpec(size_ticks=2))
        study.add(_result(0))
        study.add(_result(4))  # closes [0,2) and [2,4)
        assert study.n_windows_closed == 2
        study.add(_result(1))  # every covering window already shipped
        assert study.n_late_dropped == 1
        final = study.finalize()
        assert all(w.n_results != 0 or w.index != 2 for w in final)

    def test_out_of_order_within_open_horizon_folds(self):
        study = RollingWindowStudy(WindowSpec(size_ticks=4, slide_ticks=2))
        study.add(_result(3))
        study.add(_result(2))  # older, but [0,4) and [2,6) still open
        assert study.n_late_dropped == 0
        closed = study.add(_result(6))
        by_index = {w.index: w for w in closed}
        assert by_index[0].n_results == 2
        assert by_index[1].n_results == 2

    def test_memory_bounded_by_spec(self):
        spec = WindowSpec(size_ticks=6, slide_ticks=2)
        study = RollingWindowStudy(spec)
        for tick in range(40):
            study.add(_result(tick))
        study.finalize()
        assert study.peak_open_windows <= spec.max_open
        assert study.n_open == 0

    def test_anomaly_and_violation_rates(self):
        study = RollingWindowStudy(WindowSpec(size_ticks=4))
        for tick in range(4):
            study.add(
                _result(tick, violations=tick < 2, anomaly="load_spike" if tick == 0 else "none")
            )
        (window,) = study.finalize()
        assert window.violation_rate == pytest.approx(0.5)
        assert window.anomaly_rate == pytest.approx(0.25)
        assert window.n_anomalous == 1
        assert window.slices and "feeder" in window.slices

    def test_tick_tag_required(self):
        study = RollingWindowStudy(WindowSpec(size_ticks=2))
        bad = ScenarioResult(name="x", tags={}, converged=True)
        with pytest.raises(ValueError, match="tick"):
            study.add(bad)

    def test_digest_detects_divergence(self):
        def feed(violations):
            study = RollingWindowStudy(WindowSpec(size_ticks=2))
            out = []
            for tick in range(4):
                out.extend(study.add(_result(tick, violations=violations)))
            out.extend(study.finalize())
            return windows_digest(out)

        assert feed(False) == feed(False)
        assert feed(False) != feed(True)


# ----------------------------------------------------------------------
# network zone metadata (feeder labels)
# ----------------------------------------------------------------------


class TestBusZones:
    def test_banded_default_is_contiguous(self, ieee14):
        zones = ieee14.bus_zones()
        assert zones[0] == "feeder_0"
        assert zones[ieee14.n_bus - 1] == f"feeder_{4 * (ieee14.n_bus - 1) // ieee14.n_bus}"
        labels = [zones[b] for b in range(ieee14.n_bus)]
        assert labels == sorted(labels)  # contiguous bands never interleave

    def test_explicit_labels_override_and_survive_copy(self, ieee14):
        net = ieee14.copy()
        net.set_bus_zones({0: "north", 1: "north", 2: "south"})
        assert net.bus_zone(0) == "north"
        assert net.bus_zone(2) == "south"
        assert net.bus_zone(5).startswith("feeder_")  # unlabelled keeps default
        clone = net.copy()
        assert clone.bus_zone(2) == "south"
        assert ieee14.bus_zone(0) == "feeder_0"  # original untouched

    def test_zone_index_banded_matches_formula(self, ieee14):
        for bus in range(ieee14.n_bus):
            assert ieee14.zone_index(bus, 4) == bus * 4 // ieee14.n_bus

    def test_zone_index_with_labels_first_seen_order(self, ieee14):
        net = ieee14.copy()
        net.set_bus_zones({b: "west" if b < 7 else "east" for b in range(net.n_bus)})
        assert net.zone_index(0, 2) == 0
        assert net.zone_index(13, 2) == 1

    def test_zonal_load_scale_uses_zone_metadata(self, ieee14):
        net = ieee14.copy()
        base_total = sum(ld.pd_mw for ld in net.loads)
        # All buses in one labelled zone: factor 2.0 hits every load.
        net.set_bus_zones({b: "all" for b in range(net.n_bus)})
        ZonalLoadScale(factors=(2.0, 1.0)).apply(net)
        assert sum(ld.pd_mw for ld in net.loads) == pytest.approx(2 * base_total)
        # Unlabelled nets keep the banded behaviour (bands partition buses).
        banded = ieee14.copy()
        ZonalLoadScale(factors=(1.0, 1.0, 1.0, 1.0)).apply(banded)
        assert sum(ld.pd_mw for ld in banded.loads) == pytest.approx(base_total)


# ----------------------------------------------------------------------
# the watch engine: determinism, alerts, end-to-end anomaly chain
# ----------------------------------------------------------------------


def _watch(net, **kw):
    defaults = dict(n_devices=40, n_ticks=8, window_ticks=4, seed=9)
    defaults.update(kw)
    return run_watch(net, **defaults)


class TestRunWatch:
    def test_deterministic_replay(self, ieee14):
        a = _watch(ieee14)
        b = _watch(ieee14)
        assert a["digest"] == b["digest"]
        assert a["windows"] == b["windows"]
        assert a["alerts"] == b["alerts"]

    def test_deterministic_at_two_fleet_sizes(self, ieee14):
        for n_devices in (30, 90):
            a = _watch(ieee14, n_devices=n_devices)
            b = _watch(ieee14, n_devices=n_devices)
            assert a["digest"] == b["digest"]
            assert [x["rule"] for x in a["alerts"]] == [
                x["rule"] for x in b["alerts"]
            ]

    def test_anomaly_surfaces_end_to_end(self, ieee14):
        out = _watch(
            ieee14,
            n_ticks=12,
            anomaly=AnomalySpec(start_tick=5, duration_ticks=3, magnitude=2.5),
        )
        assert out["n_anomaly_frames"] > 0
        # frame -> window reducer: the covering window counts anomalous ticks
        assert out["windows"][1]["n_anomalous"] == 3
        # -> health rule -> alert event
        fired = [
            a for a in out["alerts"]
            if a["rule"] == "telemetry_anomaly_rate" and a["transition"] == "firing"
        ]
        assert fired and fired[0]["status"] == "crit"
        # ... and the clean third window resolves it again
        resolved = [
            a for a in out["alerts"]
            if a["rule"] == "telemetry_anomaly_rate" and a["transition"] == "resolved"
        ]
        assert resolved

    def test_sliding_windows_stay_bounded(self, ieee14):
        out = _watch(ieee14, n_ticks=12, window_ticks=4, slide_ticks=2)
        assert out["peak_open_windows"] <= 2  # size/slide
        assert out["n_windows"] == len(out["windows"])

    def test_on_window_streams_in_order(self, ieee14):
        seen = []
        out = _watch(ieee14, on_window=lambda u: seen.append(u["index"]))
        assert seen == sorted(seen)
        assert len(seen) == out["n_windows"] == 2


# ----------------------------------------------------------------------
# service surface
# ----------------------------------------------------------------------


class TestServiceWatch:
    def test_watch_reply_and_streaming(self, tmp_path):
        async def go():
            async with GridMindService(store_dir=str(tmp_path)) as svc:
                streamed = []
                request = WatchRequest(
                    case_name="ieee14", n_devices=30, n_ticks=8,
                    window_ticks=4, seed=11, anomaly_tick=4,
                    anomaly_duration=2, anomaly_magnitude=2.5,
                )
                reply = await svc.watch(request, on_update=streamed.append)
                return reply, streamed

        reply, streamed = asyncio.run(go())
        assert reply.n_windows == 2
        assert reply.digest
        assert len(streamed) == 2
        assert all(u.narration for u in reply.updates)
        assert reply.narration
        assert any(a["rule"] == "telemetry_anomaly_rate" for a in reply.alerts)
        # Narration mentions the anomaly alert by rule name (agent story).
        assert "telemetry_anomaly_rate" in reply.narration

    def test_watch_deterministic_for_session(self, tmp_path):
        async def one():
            async with GridMindService(store_dir=str(tmp_path)) as svc:
                request = WatchRequest(
                    case_name="ieee14", n_devices=25, n_ticks=4, window_ticks=2
                )
                return await svc.watch(request)

        a, b = asyncio.run(one()), asyncio.run(one())
        assert a.digest == b.digest


# ----------------------------------------------------------------------
# CLI and NLU surfaces
# ----------------------------------------------------------------------


class TestWatchCLI:
    def test_watch_prints_windows_and_summary(self, capsys):
        rc = cli_main(
            ["watch", "--case", "ieee14", "--devices", "20",
             "--ticks", "4", "--window", "2", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Window 0" in out and "Window 1" in out
        assert "Watched ieee14" in out

    def test_watch_json(self, capsys):
        rc = cli_main(
            ["watch", "--case", "ieee14", "--devices", "15",
             "--ticks", "2", "--window", "2", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_windows"] == 1
        assert payload["digest"]

    def test_watch_unknown_case_is_usage_error(self, capsys):
        rc = cli_main(["watch", "--case", "nosuch", "--ticks", "2"])
        assert rc == 2
        assert "gridmind watch: error" in capsys.readouterr().err


class TestWatchNLU:
    @pytest.mark.parametrize(
        "text",
        [
            "watch live telemetry on ieee14",
            "monitor the telemetry feed for the ieee 14 bus case",
            "observe the live grid with 200 meters on ieee14",
            "run a rolling window study over the feed on ieee14",
        ],
    )
    def test_intent(self, text):
        assert classify(text).intent == Intent.WATCH_TELEMETRY

    def test_entities(self):
        parsed = classify("watch telemetry on ieee14 with 1,500 devices over 3 windows")
        assert parsed.intent == Intent.WATCH_TELEMETRY
        assert parsed.entities["case"] == "ieee14"
        assert parsed.entities["n_devices"] == 1500
        assert parsed.entities["n_windows"] == 3

    def test_study_requests_stay_studies(self):
        assert classify("run a monte carlo study on ieee14").intent == Intent.RUN_STUDY
