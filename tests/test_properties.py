"""Property-based tests (hypothesis) on core invariants.

Targets: per-unit conversions, cost polynomials, network mutation
invariants, admittance structure, severity monotonicity, NLU robustness,
token estimation, and the audit's soundness guarantee.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contingency.outcomes import BALANCED_WEIGHTS, ContingencyOutcome
from repro.grid import units
from repro.grid.components import BusType, Generator
from repro.grid.network import Network
from repro.grid.ybus import build_admittances
from repro.instrumentation.audit import audit_narration
from repro.llm.nlu import classify, extract_entities
from repro.llm.tokens import estimate_text_tokens
from repro.opf.costs import PolynomialCosts

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)


@given(mw=finite, base=st.floats(min_value=1.0, max_value=1000.0))
def test_pu_roundtrip(mw, base):
    assert units.pu_to_mw(units.mw_to_pu(mw, base), base) == np.float64(mw) or abs(
        units.pu_to_mw(units.mw_to_pu(mw, base), base) - mw
    ) < 1e-6 * max(1.0, abs(mw))


@given(deg=finite)
def test_angle_roundtrip(deg):
    assert abs(units.rad_to_deg(units.deg_to_rad(deg)) - deg) < 1e-9 * max(1.0, abs(deg))


@given(
    c2=st.floats(min_value=0.0, max_value=1.0),
    c1=st.floats(min_value=0.0, max_value=100.0),
    c0=st.floats(min_value=0.0, max_value=1000.0),
    p=st.floats(min_value=0.0, max_value=500.0),
)
def test_generator_cost_matches_polyval(c2, c1, c0, p):
    gen = Generator(bus=0, cost_coeffs=(c2, c1, c0))
    expected = c2 * p * p + c1 * p + c0
    assert abs(gen.cost_at(p) - expected) < 1e-6 * max(1.0, expected)


@given(
    c2=st.floats(min_value=1e-4, max_value=1.0),
    c1=st.floats(min_value=0.0, max_value=100.0),
    pa=st.floats(min_value=0.0, max_value=4.0),
    pb=st.floats(min_value=0.0, max_value=4.0),
)
def test_convex_cost_gradient_monotone(c2, c1, pa, pb):
    """Convex quadratic => gradient is monotone in dispatch."""
    costs = PolynomialCosts([(c2, c1, 0.0)], base_mva=100.0)
    ga = costs.gradient(np.array([pa]))[0]
    gb = costs.gradient(np.array([pb]))[0]
    if pa < pb:
        assert ga <= gb + 1e-9
    assert costs.is_convex()


@given(scale=st.floats(min_value=0.0, max_value=5.0))
def test_scale_loads_scales_total(scale):
    net = Network()
    net.add_bus(bus_type=BusType.SLACK)
    net.buses[0].bus_type = BusType.SLACK
    net.add_bus()
    net.add_branch(0, 1, x_pu=0.1)
    net.add_load(1, pd_mw=50.0, qd_mvar=10.0)
    before = net.total_load_mw()
    net.scale_loads(scale)
    assert abs(net.total_load_mw() - before * scale) < 1e-9 * max(1.0, before * scale)


@settings(max_examples=25, deadline=None)
@given(
    x=st.floats(min_value=0.01, max_value=0.5),
    r=st.floats(min_value=0.0, max_value=0.2),
    b=st.floats(min_value=0.0, max_value=0.3),
    tap=st.floats(min_value=0.9, max_value=1.1),
)
def test_ybus_row_sums_equal_shunt_terms(x, r, b, tap):
    """For a single branch, Ybus entries follow the pi-model identities."""
    net = Network()
    net.add_bus(bus_type=BusType.SLACK)
    net.buses[0].bus_type = BusType.SLACK
    net.add_bus()
    net.add_branch(0, 1, r_pu=r, x_pu=x, b_pu=b, tap=tap, is_transformer=True)
    y = build_admittances(net.compile()).ybus.toarray()
    ys = 1.0 / (r + 1j * x)
    assert np.isclose(y[1, 1], ys + 1j * b / 2)
    assert np.isclose(y[0, 0], (ys + 1j * b / 2) / tap**2)
    assert np.isclose(y[0, 1], -ys / tap)


@given(
    loading=st.lists(
        st.floats(min_value=100.1, max_value=300.0), min_size=1, max_size=6
    )
)
def test_severity_monotone_in_overloads(loading):
    """Adding one more overload never decreases severity."""
    base = ContingencyOutcome(
        branch_id=0, branch_name="b", from_bus=0, to_bus=1,
        is_transformer=False, converged=True,
        overloads=[(i, pct) for i, pct in enumerate(loading)],
    )
    more = ContingencyOutcome(
        branch_id=0, branch_name="b", from_bus=0, to_bus=1,
        is_transformer=False, converged=True,
        overloads=[(i, pct) for i, pct in enumerate(loading)] + [(99, 150.0)],
    )
    assert more.severity(BALANCED_WEIGHTS) >= base.severity(BALANCED_WEIGHTS)


@given(text=st.text(max_size=200))
def test_nlu_never_crashes(text):
    parsed = classify(text)
    assert parsed.intent is not None
    extract_entities(text)


@given(bus=st.integers(min_value=0, max_value=9999),
       mw=st.floats(min_value=0.1, max_value=9999.0))
def test_nlu_extracts_planted_entities(bus, mw):
    ents = extract_entities(f"set the load at bus {bus} to {mw:.1f} MW")
    assert ents["bus"] == bus
    assert abs(ents["mw"] - round(mw, 1)) < 1e-9


@given(text=st.text(max_size=500))
def test_token_estimate_nonnegative_and_monotone(text):
    n = estimate_text_tokens(text)
    assert n >= 0
    assert estimate_text_tokens(text + " more words here") >= n


@given(
    value=st.floats(min_value=500.0, max_value=1e6, allow_nan=False),
)
def test_audit_grounds_exact_payload_values(value):
    """Any number present in a payload is never flagged as a slip."""
    value = round(value, 2)
    result = audit_narration(f"the figure is {value:.2f}", [{"v": value}])
    assert result.ok


@given(st.data())
def test_audit_flags_unrelated_large_numbers(data):
    payload_value = data.draw(st.floats(min_value=1000.0, max_value=2000.0))
    fabricated = data.draw(st.floats(min_value=500000.0, max_value=900000.0))
    result = audit_narration(
        f"the figure is {fabricated:.2f}", [{"v": round(payload_value, 4)}]
    )
    assert not result.ok
