"""Scenario engine: declarative operating-point studies at ensemble scale.

The study workflow the paper motivates ("adjust load levels, re-solve,
inspect impacts") made batch-first:

* :mod:`repro.scenarios.spec` — perturbation records and :class:`Scenario`,
* :mod:`repro.scenarios.generators` — families (sweep, Monte Carlo, N-2
  combinations, daily profile) expanded from compact descriptions,
* :mod:`repro.scenarios.runner` — :class:`BatchStudyRunner` with
  process-pool parallelism and per-worker cache reuse,
* :mod:`repro.scenarios.aggregate` — ensemble statistics (violation
  frequencies, cost percentiles, critical-ranking stability).

Quickstart::

    from repro import load_case
    from repro.scenarios import BatchStudyRunner, monte_carlo_ensemble

    study = BatchStudyRunner(analysis="powerflow", n_jobs=4).run(
        load_case("ieee118"), monte_carlo_ensemble(n=200, sigma=0.05, seed=1)
    )
    print(study.aggregate().to_dict())
"""

from .aggregate import StudyAggregate, aggregate_study, percentile_stats
from .generators import (
    daily_profile,
    load_sweep,
    monte_carlo_ensemble,
    outage_combinations,
    with_branch_outage,
)
from .runner import (
    ANALYSES,
    BatchStudyRunner,
    ScenarioResult,
    StudyConfig,
    StudyResult,
)
from .spec import (
    BranchOutage,
    GaussianLoadNoise,
    GeneratorOutage,
    PerBusLoadScale,
    Perturbation,
    RenewableInjection,
    Scenario,
    ScenarioError,
    UniformLoadScale,
)

__all__ = [
    "ANALYSES",
    "BatchStudyRunner",
    "BranchOutage",
    "GaussianLoadNoise",
    "GeneratorOutage",
    "PerBusLoadScale",
    "Perturbation",
    "RenewableInjection",
    "Scenario",
    "ScenarioError",
    "ScenarioResult",
    "StudyAggregate",
    "StudyConfig",
    "StudyResult",
    "UniformLoadScale",
    "aggregate_study",
    "daily_profile",
    "load_sweep",
    "monte_carlo_ensemble",
    "outage_combinations",
    "percentile_stats",
    "with_branch_outage",
]
