"""The ACOPF agent: economic dispatch through validated function tools.

Tools follow the paper's Appendix B.3.1 (``solve_acopf_case``,
``modify_bus_load``, ``get_network_status``) plus documented extensions
(``assess_solution_quality``, ``apply_branch_outage``) needed for the
Section 3.2.1 economic-impact dialogue.  Every handler validates its
result before depositing it into the shared context and returns the
pydantic-dumped artefact the narration layer quotes from.
"""

from __future__ import annotations

import time

from pydantic import BaseModel, Field

from ...llm.base import LLMBackend
from ...opf import IPMOptions, solve_acopf, solve_acopf_scipy
from ...opf.result import OPFResult
from ..context import AgentContext
from ..schemas import ACOPFSolution, BranchLoadingModel, SolutionQuality
from ..tools import ToolError, ToolRegistry
from ..validation import sanity_check_modification, validate_acopf
from .base import Agent

# Paper Figure 4, abridged to its operative clauses.
ACOPF_SYSTEM_PROMPT = """\
You are an expert ACOPF (AC Optimal Power Flow) agent for power system analysis.
Your capabilities include solving ACOPF problems for standard IEEE test cases
(14, 30, 57, 118, 300 bus systems), modifying system parameters and re-solving,
validating solutions by checking power flows, voltage limits, and line loadings,
and assessing solution quality. Never fabricate solver outputs; always call
tools for numerical data. Be professional, accurate, and educational."""


class SolveArgs(BaseModel):
    case_name: str = Field(description="IEEE case identifier, e.g. 'ieee118'")


class ModifyLoadArgs(BaseModel):
    bus: int = Field(ge=0, description="bus index (0-based)")
    pd_mw: float | None = Field(default=None, description="set total load to this MW")
    delta_mw: float | None = Field(default=None, description="change load by this MW")
    percent: float | None = Field(default=None, description="change load by this percent")


class OutageArgs(BaseModel):
    branch_id: int | None = Field(default=None, ge=0)
    from_bus: int | None = Field(default=None, ge=0)
    to_bus: int | None = Field(default=None, ge=0)


def solution_to_schema(case_name: str, res: OPFResult, message: str = "") -> ACOPFSolution:
    """Convert a raw OPF result into the validated context artefact."""
    loading = [
        BranchLoadingModel(
            branch_id=int(bid),
            from_bus=-1,
            to_bus=-1,
            loading_percent=float(pct),
            mva_flow=float(flow),
            rate_mva=0.0,
        )
        for bid, pct, flow in zip(
            res.branch_ids, res.loading_percent, res.s_from_mva
        )
    ]
    return ACOPFSolution(
        case_name=case_name,
        solved=res.converged,
        objective_cost=float(res.objective_cost) if res.converged else 0.0,
        gen_dispatch_mw={
            f"gen_{int(g)}": round(float(p), 4)
            for g, p in zip(res.gen_ids, res.pg_mw)
        },
        branch_loading=loading,
        min_voltage_pu=res.min_voltage_pu,
        max_voltage_pu=res.max_voltage_pu,
        convergence_message=message or res.message,
        total_generation_mw=res.total_generation_mw,
        losses_mw=res.losses_mw,
        max_loading_percent=res.max_loading_percent,
        iterations=res.iterations,
        solver=res.method,
        runtime_s=res.runtime_s,
        max_mismatch_pu=res.max_power_balance_mismatch_pu,
    )


def _solve_with_recovery(context: AgentContext) -> tuple[OPFResult, str]:
    """PDIPM first; on failure relax tolerances, then the scipy backend.

    This is the paper's "automatic recovery path (adjust solver
    tolerances, fall back to an alternative algorithm)".
    """
    net = context.require_network()
    res = solve_acopf(net)
    report = validate_acopf(net, res)
    if report.ok:
        return res, "validated: " + report.describe()

    relaxed = solve_acopf(net, options=IPMOptions(feastol=1e-5, gradtol=1e-5,
                                                 comptol=1e-5, costtol=1e-5,
                                                 max_iter=250))
    report = validate_acopf(net, relaxed)
    if report.ok:
        return relaxed, "validated after tolerance relaxation"

    fallback = solve_acopf_scipy(net)
    report = validate_acopf(net, fallback)
    if report.ok:
        return fallback, "validated via scipy trust-constr fallback"
    best = max((res, relaxed, fallback), key=lambda r: r.converged)
    return best, "validation failed: " + report.describe()


def _summary_payload(solution: ACOPFSolution) -> dict:
    """Trim the full artefact to the fields narration quotes (the full
    object stays in context)."""
    data = solution.model_dump()
    data["branch_loading"] = data["branch_loading"][:5]
    data["gen_dispatch_mw"] = dict(list(data["gen_dispatch_mw"].items())[:8])
    data["max_mismatch_pu"] = solution.max_mismatch_pu
    return data


def build_acopf_registry(context: AgentContext) -> ToolRegistry:
    """Register the ACOPF agent's function tools over the shared context."""
    registry = ToolRegistry()

    def solve_acopf_case(case_name: str) -> dict:
        t0 = time.perf_counter()
        context.activate_case(case_name)
        res, validation_msg = _solve_with_recovery(context)
        solution = solution_to_schema(context.case_name, res, validation_msg)
        context.deposit_acopf(solution, res)
        context.record_provenance(
            "solve_acopf_case",
            solver=res.method,
            ok=solution.solved,
            duration_s=time.perf_counter() - t0,
            iterations=res.iterations,
        )
        return _summary_payload(solution)

    def modify_bus_load(
        bus: int,
        pd_mw: float | None = None,
        delta_mw: float | None = None,
        percent: float | None = None,
    ) -> dict:
        net = context.require_network()
        check = sanity_check_modification(net, bus=bus)
        if not check.ok:
            raise ToolError(check.describe())
        old_pd = sum(ld.pd_mw for ld in net.loads_at_bus(bus))
        if pd_mw is not None:
            new_pd = pd_mw
        elif delta_mw is not None:
            new_pd = old_pd + delta_mw
        elif percent is not None:
            new_pd = old_pd * (1.0 + percent / 100.0)
        else:
            raise ToolError("one of pd_mw, delta_mw or percent is required")
        if new_pd < 0:
            raise ToolError(
                f"requested load {new_pd:.1f} MW at bus {bus} is negative"
            )
        prev_cost = (
            context.acopf_solution.objective_cost
            if context.acopf_solution and context.acopf_solution.solved
            else None
        )
        net.set_load(bus, new_pd)
        context.record_modification(
            "load_change",
            f"bus {bus} load {old_pd:.1f} -> {new_pd:.1f} MW",
            bus=bus,
            old_pd_mw=old_pd,
            new_pd_mw=new_pd,
        )
        res, validation_msg = _solve_with_recovery(context)
        solution = solution_to_schema(context.case_name, res, validation_msg)
        context.deposit_acopf(solution, res)
        payload = _summary_payload(solution)
        payload.update(
            {
                "bus": bus,
                "old_pd_mw": old_pd,
                "new_pd_mw": new_pd,
                "cost_delta": (
                    solution.objective_cost - prev_cost
                    if prev_cost is not None and solution.solved
                    else None
                ),
            }
        )
        return payload

    def get_network_status() -> dict:
        if context.network is None:
            return {"case_name": "", "message": "no case loaded"}
        model = context.system_model()
        out = model.model_dump()
        out.update(context.summary())
        out["case_name"] = model.case_name
        out["modifications"] = [m.description for m in context.modifications]
        return out

    def assess_solution_quality() -> dict:
        if not (context.acopf_solution and context.acopf_solution.solved):
            raise ToolError("no solved ACOPF in context; solve a case first")
        sol = context.acopf_solution
        quality = _score_quality(context, sol)
        return {"case_name": sol.case_name, **quality.model_dump()}

    def apply_branch_outage(
        branch_id: int | None = None,
        from_bus: int | None = None,
        to_bus: int | None = None,
    ) -> dict:
        net = context.require_network()
        if branch_id is None:
            if from_bus is None or to_bus is None:
                raise ToolError("give either branch_id or both from_bus and to_bus")
            try:
                branch_id = net.find_branch(from_bus, to_bus)
            except KeyError as exc:
                raise ToolError(str(exc)) from exc
        check = sanity_check_modification(net, branch_id=branch_id)
        if not check.ok:
            raise ToolError(check.describe())
        br = net.set_branch_status(branch_id, False)
        desc = (
            f"{'transformer' if br.is_transformer else 'line'} "
            f"{br.from_bus}-{br.to_bus} (branch {branch_id})"
        )
        context.record_modification(
            "branch_outage", f"outage of {desc}", branch_id=branch_id
        )
        return {"branch_id": branch_id, "branch_desc": desc, "in_service": False}

    registry.register(
        "solve_acopf_case",
        "Load and solve an IEEE test case with the validated ACOPF solver.",
        solve_acopf_case,
        SolveArgs,
    )
    registry.register(
        "modify_bus_load",
        "Modify the load at a specific bus and re-solve the ACOPF.",
        modify_bus_load,
        ModifyLoadArgs,
    )
    registry.register(
        "get_network_status",
        "Get the current network and solution status from the shared context.",
        get_network_status,
    )
    registry.register(
        "assess_solution_quality",
        "Score the stored ACOPF solution (convergence, constraints, economics, security).",
        assess_solution_quality,
    )
    registry.register(
        "apply_branch_outage",
        "Take a branch out of service (topology edit; re-solve to see impact).",
        apply_branch_outage,
        OutageArgs,
    )
    return registry


def _score_quality(context: AgentContext, sol: ACOPFSolution) -> SolutionQuality:
    """Heuristic 0-10 scoring against the Appendix C SolutionQuality model."""
    convergence = 10.0 if sol.solved and sol.max_mismatch_pu < 1e-6 else (
        7.0 if sol.solved else 0.0
    )
    headroom = max(0.0, 100.0 - sol.max_loading_percent)
    constraint = min(10.0, 6.0 + headroom / 10.0) if sol.solved else 0.0
    losses_pct = (
        100.0 * sol.losses_mw / sol.total_generation_mw
        if sol.total_generation_mw
        else 0.0
    )
    economic = max(0.0, 10.0 - losses_pct)
    vmargin = min(sol.min_voltage_pu - 0.94, 1.06 - sol.max_voltage_pu)
    security = max(0.0, min(10.0, 5.0 + 100.0 * vmargin))
    overall = 0.3 * convergence + 0.25 * constraint + 0.2 * economic + 0.25 * security
    recs = []
    if sol.max_loading_percent > 95.0:
        recs.append("Thermal margins are thin; consider reinforcing binding corridors.")
    if vmargin < 0.005:
        recs.append("Voltage profile is near its limits; review reactive reserves.")
    if losses_pct > 4.0:
        recs.append(f"Losses are {losses_pct:.1f}% of generation; check dispatch pattern.")
    if not recs:
        recs.append("Solution is healthy across all quality dimensions.")
    return SolutionQuality(
        overall_score=round(overall, 2),
        convergence_quality=round(convergence, 2),
        constraint_satisfaction=round(constraint, 2),
        economic_efficiency=round(economic, 2),
        system_security=round(security, 2),
        detailed_metrics={
            "losses_percent": round(losses_pct, 3),
            "max_loading_percent": round(sol.max_loading_percent, 2),
            "voltage_margin_pu": round(vmargin, 4),
            "n_modifications": len(context.modifications),
        },
        recommendations=recs,
    )


def make_acopf_agent(backend: LLMBackend, context: AgentContext) -> Agent:
    """Assemble the ACOPF agent over a backend and shared context."""
    return Agent(
        name="acopf",
        system_prompt=ACOPF_SYSTEM_PROMPT,
        backend=backend,
        registry=build_acopf_registry(context),
        context=context,
    )
