"""Topology analysis: connectivity, islanding, and outage feasibility.

Contingency analysis must distinguish "outage splits the grid" (load is
stranded, power flow on the full network is meaningless) from "outage is
survivable"; these helpers answer that with NetworkX on the in-service
branch set.
"""

from __future__ import annotations

import networkx as nx

from .network import Network


def to_graph(net: Network, exclude_branches: frozenset[int] | set[int] = frozenset()) -> nx.MultiGraph:
    """Undirected multigraph of in-service topology.

    ``exclude_branches`` lets callers test hypothetical outages without
    mutating the network.
    """
    g = nx.MultiGraph()
    g.add_nodes_from(range(net.n_bus))
    for i, br in enumerate(net.branches):
        if br.in_service and i not in exclude_branches:
            g.add_edge(br.from_bus, br.to_bus, branch_id=i)
    return g


def is_connected(net: Network, exclude_branches: frozenset[int] | set[int] = frozenset()) -> bool:
    """True if every bus remains reachable from every other bus."""
    g = to_graph(net, exclude_branches)
    return nx.is_connected(g) if g.number_of_nodes() > 0 else False


def islanded_buses(net: Network, exclude_branches: frozenset[int] | set[int] = frozenset()) -> list[set[int]]:
    """Connected components *not* containing the slack bus.

    Returns the stranded islands (possibly empty).  Each island's load is
    what would be shed if the outage were sustained.
    """
    g = to_graph(net, exclude_branches)
    slack = net.slack_bus()
    return [comp for comp in nx.connected_components(g) if slack not in comp]


def stranded_load_mw(net: Network, exclude_branches: frozenset[int] | set[int]) -> float:
    """MW of in-service load in islands separated from the slack."""
    islands = islanded_buses(net, exclude_branches)
    if not islands:
        return 0.0
    stranded = set().union(*islands)
    return sum(
        ld.pd_mw for ld in net.loads if ld.in_service and ld.bus in stranded
    )


def bridge_branches(net: Network) -> set[int]:
    """Branch ids whose single outage disconnects the network.

    Computed via graph bridges, with the multigraph subtlety handled:
    parallel branches between the same bus pair are never bridges.
    """
    g = to_graph(net)
    simple = nx.Graph(g)
    bridges = set(frozenset(e) for e in nx.bridges(simple)) if g.number_of_edges() else set()
    out: set[int] = set()
    for i, br in enumerate(net.branches):
        if not br.in_service:
            continue
        pair = frozenset((br.from_bus, br.to_bus))
        if pair in bridges and g.number_of_edges(br.from_bus, br.to_bus) == 1:
            out.add(i)
    return out
