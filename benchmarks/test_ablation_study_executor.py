"""E12 — Ablation: shared-executor study throughput vs per-run pools.

The service layer routes every batch study through one long-lived
:class:`~repro.service.executor.StudyExecutor` instead of letting
``BatchStudyRunner`` spawn a fresh process pool per ``run()``.  This
benchmark submits a back-to-back sequence of studies both ways, checks
the numbers are identical, and reports how much of the per-run pool cost
(worker fork + import + base-network shipping) the shared pool
amortises.  It also asserts the lifecycle property the acceptance
criteria name: consecutive studies reuse the same pool and workers.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.grid.cases import load_case
from repro.scenarios import BatchStudyRunner, monte_carlo_ensemble
from repro.service import StudyExecutor

CASE = "ieee57"
N_STUDIES = 4
N_SCENARIOS = 24
# Fixed at 2 (not cpu-scaled): the ablation compares pool *lifecycles* —
# N spawned pools vs one persistent pool — so both paths must actually
# create pools even on a single-core runner.
JOBS = 2


def _studies(net):
    # Distinct seeds: each study is a different ensemble, like a session
    # asking four different Monte Carlo questions in a row.
    return [
        monte_carlo_ensemble(n=N_SCENARIOS, sigma=0.05, seed=100 + i)
        for i in range(N_STUDIES)
    ]


def _run_all():
    net = load_case(CASE)
    ensembles = _studies(net)

    tick = time.perf_counter()
    per_run = [
        BatchStudyRunner(analysis="powerflow", n_jobs=JOBS).run(net, scns)
        for scns in ensembles
    ]
    per_run_s = time.perf_counter() - tick

    with StudyExecutor(max_workers=JOBS) as executor:
        tick = time.perf_counter()
        shared = [
            BatchStudyRunner(analysis="powerflow", executor=executor).run(net, scns)
            for scns in ensembles
        ]
        shared_s = time.perf_counter() - tick
        stats = executor.stats()

    return per_run, per_run_s, shared, shared_s, stats


def test_ablation_study_executor(benchmark):
    per_run, per_run_s, shared, shared_s, stats = benchmark.pedantic(
        _run_all, rounds=1, iterations=1
    )

    # Identical numbers on both paths, study by study.
    for a, b in zip(per_run, shared):
        assert a.aggregate().to_dict() == b.aggregate().to_dict()

    # Lifecycle: N studies, one pool — the whole point of the executor.
    assert stats["n_studies"] == N_STUDIES
    assert stats["pools_started"] == 1
    assert stats["n_worker_pids"] <= JOBS

    speedup = per_run_s / max(shared_s, 1e-9)
    cores = os.cpu_count() or 1
    if cores > 1 and JOBS > 1 and not os.environ.get("CI"):
        # Dedicated multi-core machines must see the amortisation win;
        # noisy shared runners still record the table.
        assert speedup > 1.0, (
            f"shared executor slower than per-run pools "
            f"({shared_s:.2f}s vs {per_run_s:.2f}s)"
        )

    widths = [34, -9, -12, -14]
    lines = [
        fmt_row(["Dispatch", "studies", "time (s)", "s/study"], widths),
        "-" * 73,
        fmt_row(
            [
                f"per-run pools ({JOBS} workers)",
                N_STUDIES,
                round(per_run_s, 2),
                round(per_run_s / N_STUDIES, 2),
            ],
            widths,
        ),
        fmt_row(
            [
                f"shared StudyExecutor ({JOBS} workers)",
                N_STUDIES,
                round(shared_s, 2),
                round(shared_s / N_STUDIES, 2),
            ],
            widths,
        ),
        "",
        f"speedup {speedup:.2f}x | executor stats: pools_started="
        f"{stats['pools_started']}, n_chunks={stats['n_chunks']}, "
        f"worker_pids={stats['n_worker_pids']} | "
        f"{CASE}, {N_SCENARIOS} scenarios/study, powerflow analysis",
    ]
    emit(
        "ablation_study_executor",
        "E12 — Shared-executor study throughput vs per-run pools",
        lines,
    )
