"""ACOPF / DCOPF: reference objective, KKT conditions, backend agreement."""

import numpy as np
import pytest

from repro.grid.cases import load_case
from repro.opf import (
    IPMOptions,
    solve_acopf,
    solve_acopf_scipy,
    solve_dcopf,
)
from repro.opf.acopf import ACOPFProblem

# MATPOWER's reference ACOPF objective for case14.
IEEE14_OPF_COST = 8081.52


class TestACOPF:
    def test_reference_objective_ieee14(self, case14):
        res = solve_acopf(case14)
        assert res.converged
        assert res.objective_cost == pytest.approx(IEEE14_OPF_COST, abs=0.5)

    def test_reference_dispatch_ieee14(self, case14):
        res = solve_acopf(case14)
        # Known optimal dispatch (MATPOWER): ~[194.3, 36.7, 28.7, 0, 8.5] MW.
        assert res.pg_mw[0] == pytest.approx(194.3, abs=1.0)
        assert res.pg_mw[1] == pytest.approx(36.7, abs=1.0)
        assert res.pg_mw[3] == pytest.approx(0.0, abs=0.5)

    def test_power_balance_tight(self, case14):
        res = solve_acopf(case14)
        assert res.max_power_balance_mismatch_pu < 1e-7

    def test_voltage_within_limits(self, case14):
        res = solve_acopf(case14)
        arr = case14.compile()
        assert np.all(res.vm <= arr.vmax + 1e-6)
        assert np.all(res.vm >= arr.vmin - 1e-6)

    def test_dispatch_within_limits(self, case14):
        res = solve_acopf(case14)
        arr = case14.compile()
        pg = res.pg_mw / 100.0
        assert np.all(pg <= arr.pmax + 1e-6)
        assert np.all(pg >= arr.pmin - 1e-6)

    def test_thermal_limits_respected(self, case30):
        res = solve_acopf(case30)
        assert res.converged
        assert res.max_loading_percent <= 100.0 + 1e-3

    def test_lmp_ordering(self, case14):
        """Nodal prices at load pockets exceed the cheap slack bus price."""
        res = solve_acopf(case14)
        assert res.lmp_mw[0] < res.lmp_mw[13]
        # All LMPs positive and in a sane $/MWh band.
        assert np.all(res.lmp_mw > 10.0)
        assert np.all(res.lmp_mw < 100.0)

    def test_lmp_equals_marginal_cost_at_slack(self, case14):
        """At an unconstrained optimum the slack LMP equals the marginal
        cost of the marginal (slack) generator."""
        res = solve_acopf(case14)
        gen0 = case14.gens[0]
        mc = gen0.marginal_cost_at(res.pg_mw[0])
        assert res.lmp_mw[0] == pytest.approx(mc, rel=1e-3)

    @pytest.mark.parametrize("name", ["ieee30", "ieee57", "ieee118"])
    def test_converges_synthetic_cases(self, name):
        res = solve_acopf(load_case(name))
        assert res.converged
        assert res.objective_cost > 0

    def test_cost_increases_with_load(self, case14):
        base = solve_acopf(case14).objective_cost
        case14.scale_loads(1.1)
        up = solve_acopf(case14)
        assert up.converged
        assert up.objective_cost > base

    def test_infeasible_reports_not_raises(self, case14):
        case14.scale_loads(5.0)  # beyond total generation capability
        res = solve_acopf(case14, options=IPMOptions(max_iter=60))
        assert not res.converged

    def test_nonconvex_cost_rejected(self, case14):
        case14.gens[0].cost_coeffs = (-0.5, 10.0, 0.0)
        case14.touch()
        with pytest.raises(ValueError, match="convex"):
            solve_acopf(case14)

    def test_binding_branch_detection(self, case30):
        res = solve_acopf(case30)
        binding = res.binding_branches(slack_percent=1.0)
        for bid in binding:
            row = list(res.branch_ids).index(bid)
            assert res.loading_percent[row] >= 99.0


class TestProblemAssembly:
    def test_variable_layout(self, case14):
        prob = ACOPFProblem(case14)
        assert prob.nx == 2 * 14 + 2 * 5
        x0 = prob.initial_point()
        assert x0.shape == (prob.nx,)

    def test_equality_count(self, case14):
        prob = ACOPFProblem(case14)
        g, dg = prob.equalities(prob.initial_point())
        assert g.shape == (2 * 14 + 1,)  # P, Q balance + angle reference
        assert dg.shape == (2 * 14 + 1, prob.nx)

    def test_inequality_count(self, case14):
        prob = ACOPFProblem(case14)
        h, dh = prob.inequalities(prob.initial_point())
        assert h.shape == (2 * 20,)  # both ends of all 20 rated branches

    def test_objective_gradient_fd(self, case14):
        prob = ACOPFProblem(case14)
        x = prob.initial_point()
        f0, df = prob.objective(x)
        eps = 1e-6
        for j in range(2 * prob.nb, 2 * prob.nb + prob.ng):
            xp = x.copy()
            xp[j] += eps
            fp, _ = prob.objective(xp)
            assert (fp - f0) / eps == pytest.approx(df[j], rel=1e-4, abs=1e-4)

    def test_equality_jacobian_fd(self, case14):
        prob = ACOPFProblem(case14)
        rng = np.random.default_rng(0)
        x = prob.initial_point() + rng.uniform(-0.01, 0.01, prob.nx)
        g0, dg = prob.equalities(x)
        eps = 1e-7
        cols = rng.choice(prob.nx, size=10, replace=False)
        for j in cols:
            xp = x.copy()
            xp[j] += eps
            gp, _ = prob.equalities(xp)
            fd = (gp - g0) / eps
            assert np.allclose(dg.toarray()[:, j], fd, atol=1e-5)

    def test_inequality_jacobian_fd(self, case14):
        prob = ACOPFProblem(case14)
        rng = np.random.default_rng(1)
        x = prob.initial_point() + rng.uniform(-0.01, 0.01, prob.nx)
        h0, dh = prob.inequalities(x)
        eps = 1e-7
        for j in rng.choice(2 * prob.nb, size=8, replace=False):
            xp = x.copy()
            xp[j] += eps
            hp, _ = prob.inequalities(xp)
            fd = (hp - h0) / eps
            assert np.allclose(dh.toarray()[:, j], fd, atol=1e-4)


class TestScipyBackend:
    def test_agrees_with_ipm_on_ieee14(self, case14):
        ipm = solve_acopf(case14)
        sp = solve_acopf_scipy(case14)
        assert sp.converged
        assert sp.objective_cost == pytest.approx(ipm.objective_cost, rel=1e-3)

    def test_dispatch_agreement(self, case14):
        ipm = solve_acopf(case14)
        sp = solve_acopf_scipy(case14)
        assert np.allclose(ipm.pg_mw, sp.pg_mw, atol=2.0)


class TestDCOPF:
    def test_objective_below_ac(self, case14):
        """Lossless DC dispatch is cheaper than AC at the same load."""
        ac = solve_acopf(case14)
        dc = solve_dcopf(case14)
        assert dc.converged
        assert dc.objective_cost < ac.objective_cost
        # ... but within a few percent (losses are ~5%).
        assert dc.objective_cost > 0.9 * ac.objective_cost

    def test_balance_exact(self, case14):
        dc = solve_dcopf(case14)
        assert dc.pg_mw.sum() == pytest.approx(case14.total_load_mw(), abs=1e-4)

    def test_respects_flow_limits(self, case30):
        dc = solve_dcopf(case30)
        assert dc.converged
        assert dc.max_loading_percent <= 100.0 + 1e-6

    def test_segment_refinement_converges(self, case14):
        coarse = solve_dcopf(case14, segments=3)
        fine = solve_dcopf(case14, segments=20)
        # More segments -> closer to true quadratic optimum (lower cost).
        assert fine.objective_cost <= coarse.objective_cost + 1e-6

    def test_infeasible_reported(self, case14):
        case14.scale_loads(5.0)
        dc = solve_dcopf(case14)
        assert not dc.converged
        assert "infeasible" in dc.message.lower()

    def test_lmps_present(self, case30):
        dc = solve_dcopf(case30)
        assert dc.lmp_mw.shape == (30,)
        assert np.all(np.abs(dc.lmp_mw) < 1000.0)
