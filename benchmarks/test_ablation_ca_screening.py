"""E8 — Ablation: contingency-analysis acceleration.

Compares the exhaustive AC N-1 sweep against (a) LODF screening with an
AC budget and (b) the process-pool parallel sweep; checks that the
accelerated paths agree with the exhaustive ranking where it matters
(top of the criticality list).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.contingency import (
    rank_critical_elements,
    run_n_minus_1,
    run_screened_n_minus_1,
)
from repro.grid.cases import load_case

CASE = "ieee118"
AC_BUDGET = 25


def _run_all():
    net = load_case(CASE)

    t0 = time.perf_counter()
    full = run_n_minus_1(net)
    t_full = time.perf_counter() - t0

    t0 = time.perf_counter()
    screened, estimate = run_screened_n_minus_1(net, ac_budget=AC_BUDGET)
    t_screen = time.perf_counter() - t0

    jobs = min(4, os.cpu_count() or 1)
    t0 = time.perf_counter()
    parallel = run_n_minus_1(net, n_jobs=jobs)
    t_par = time.perf_counter() - t0

    return full, t_full, screened, estimate, t_screen, parallel, t_par, jobs


def test_ablation_ca_screening(benchmark):
    full, t_full, screened, estimate, t_screen, parallel, t_par, jobs = (
        benchmark.pedantic(_run_all, rounds=1, iterations=1)
    )

    rank_full = rank_critical_elements(full, top_n=5)
    rank_screen = rank_critical_elements(screened, top_n=5)
    overlap = len(
        set(rank_full.critical_branch_ids) & set(rank_screen.critical_branch_ids)
    )

    widths = [26, -10, -12, -10]
    lines = [
        fmt_row(["Strategy", "AC solves", "time (s)", "speedup"], widths),
        "-" * 62,
        fmt_row(["full serial sweep", full.n_contingencies, t_full, 1.0], widths),
        fmt_row(
            ["LODF screen + AC verify", screened.n_contingencies, t_screen,
             t_full / max(t_screen, 1e-9)],
            widths,
        ),
        fmt_row(
            [f"full sweep, {jobs} procs", parallel.n_contingencies, t_par,
             t_full / max(t_par, 1e-9)],
            widths,
        ),
        "",
        f"DC screening pass itself: {estimate.runtime_s * 1000:.0f} ms for "
        f"{len(estimate.branch_ids)} outages (vectorised LODF)",
        f"top-5 agreement full vs screened: {overlap}/5 "
        f"({rank_full.critical_branch_ids} vs {rank_screen.critical_branch_ids})",
    ]
    emit("ablation_ca_screening", "E8 — contingency acceleration", lines)

    assert t_screen < t_full
    assert rank_full.critical_branch_ids[0] == rank_screen.critical_branch_ids[0]
    assert overlap >= 3
    # Parallel must agree with serial outcome-for-outcome.
    for a, b in zip(full.outcomes, parallel.outcomes):
        assert a.branch_id == b.branch_id
        assert a.converged == b.converged
