"""LLM protocol types, tokens, latency, profiles, and the simulated model."""

import json

import numpy as np
import pytest

from repro.llm import (
    ChatMessage,
    CONTEXT_MARKER,
    LatencyModel,
    PAPER_MODELS,
    SimulatedLLM,
    ToolSpec,
    VirtualClock,
    get_profile,
)
from repro.llm.tokens import estimate_prompt_tokens, estimate_text_tokens, usage_for


class TestProtocolTypes:
    def test_invalid_role_rejected(self):
        with pytest.raises(ValueError, match="role"):
            ChatMessage(role="wizard", content="hi")

    def test_usage_addition(self):
        from repro.llm import TokenUsage

        a = TokenUsage(10, 5)
        b = TokenUsage(3, 2)
        c = a + b
        assert c.prompt_tokens == 13
        assert c.total_tokens == 20

    def test_tool_spec_signature(self):
        spec = ToolSpec("f", "d", {"type": "object", "properties": {"a": {}, "b": {}}})
        assert spec.signature_text() == "f(a, b)"


class TestTokens:
    def test_empty_text(self):
        assert estimate_text_tokens("") == 0

    def test_scaling(self):
        short = estimate_text_tokens("word")
        long = estimate_text_tokens("word " * 100)
        assert long > short * 50

    def test_prompt_includes_overhead(self):
        msgs = [ChatMessage(role="user", content="hi")]
        assert estimate_prompt_tokens(msgs) > estimate_text_tokens("hi")

    def test_usage_for(self):
        msgs = [ChatMessage(role="user", content="solve ieee 14")]
        reply = ChatMessage(role="assistant", content="done")
        usage = usage_for(msgs, reply)
        assert usage.prompt_tokens > 0
        assert usage.completion_tokens > 0


class TestLatency:
    def test_clock_advances(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(2.0)
        assert clock.now == pytest.approx(3.5)

    def test_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_latency_median_roughly_respected(self):
        model = LatencyModel(10.0, 0.25)
        rng = np.random.default_rng(0)
        samples = [model.sample(rng) for _ in range(500)]
        assert np.median(samples) == pytest.approx(10.0, rel=0.1)

    def test_zero_median_is_free(self):
        rng = np.random.default_rng(0)
        assert LatencyModel(0.0).sample(rng) == 0.0

    def test_quantile_monotone(self):
        m = LatencyModel(10.0, 0.3)
        assert m.quantile(0.9) > m.quantile(0.5) > m.quantile(0.1)


class TestProfiles:
    def test_all_paper_models_present(self):
        assert len(PAPER_MODELS) == 6
        for name in PAPER_MODELS:
            assert get_profile(name).name == name

    def test_aliases(self):
        assert get_profile("o3").name == "gpt-o3"
        assert get_profile("claude").name == "claude-4-sonnet"
        assert get_profile("GPT-5").name == "gpt-5"

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="available"):
            get_profile("gpt-99")

    def test_latency_ordering_matches_paper_fig3(self):
        """o4-mini is the fastest chat model; GPT-5 the slowest."""
        chat = {m: get_profile(m).chat_latency.median_s for m in PAPER_MODELS}
        assert chat["gpt-o4-mini"] == min(chat.values())
        assert chat["gpt-5"] == max(chat.values())

    def test_ca_latency_ordering_matches_paper_table1(self):
        """Table 1: GPT-5 slowest, o3/5-mini fastest on the CA task."""
        deep = {m: get_profile(m).deep_latency.median_s for m in PAPER_MODELS}
        assert deep["gpt-5"] == max(deep.values())
        assert deep["gpt-o3"] < deep["claude-4-sonnet"]

    def test_only_mini_has_stress_quirk(self):
        for name in PAPER_MODELS:
            prof = get_profile(name)
            expected = name == "gpt-5-mini"
            assert bool(prof.quirks.get("reports_extra_stress")) is expected


def _specs():
    return [
        ToolSpec("solve_acopf_case", "solve", {"type": "object", "properties": {"case_name": {}}}),
        ToolSpec("modify_bus_load", "modify", {"type": "object", "properties": {}}),
        ToolSpec("get_network_status", "status", {"type": "object", "properties": {}}),
    ]


class TestSimulatedLLM:
    def test_solve_request_emits_tool_call(self):
        llm = SimulatedLLM("gpt-o4-mini", seed=1)
        resp = llm.complete([ChatMessage(role="user", content="Solve IEEE 14")], _specs())
        assert resp.wants_tools
        assert resp.message.tool_calls[0].name == "solve_acopf_case"
        assert resp.message.tool_calls[0].arguments == {"case_name": "ieee14"}

    def test_clarification_without_case(self):
        llm = SimulatedLLM("gpt-o4-mini", seed=1)
        resp = llm.complete([ChatMessage(role="user", content="solve it")], _specs())
        assert not resp.wants_tools
        assert "Which test case" in resp.message.content

    def test_final_narration_after_tool_result(self):
        llm = SimulatedLLM("gpt-o4-mini", seed=1)
        user = ChatMessage(role="user", content="Solve IEEE 14")
        first = llm.complete([user], _specs())
        call = first.message.tool_calls[0]
        result = {
            "case_name": "ieee14", "solved": True, "objective_cost": 8081.52,
            "total_generation_mw": 268.3, "losses_mw": 9.3,
            "min_voltage_pu": 1.014, "max_voltage_pu": 1.06,
            "max_loading_percent": 1.3, "iterations": 18,
        }
        tool_msg = ChatMessage(
            role="tool", content=json.dumps(result), tool_call_id=call.call_id,
            name=call.name,
        )
        final = llm.complete([user, first.message, tool_msg], _specs())
        assert not final.wants_tools
        assert "8,081.52" in final.message.content

    def test_latency_charged_to_clock(self):
        clock = VirtualClock()
        llm = SimulatedLLM("gpt-5", seed=1, clock=clock)
        llm.complete([ChatMessage(role="user", content="Solve IEEE 14")], _specs())
        assert clock.now > 5.0  # GPT-5 chat latency is ~21 s median

    def test_deterministic_given_seed(self):
        r1 = SimulatedLLM("gpt-5", seed=7).complete(
            [ChatMessage(role="user", content="Solve IEEE 14")], _specs()
        )
        r2 = SimulatedLLM("gpt-5", seed=7).complete(
            [ChatMessage(role="user", content="Solve IEEE 14")], _specs()
        )
        assert r1.latency_s == r2.latency_s
        assert r1.message.content == r2.message.content

    def test_context_reuse_skips_resolve(self):
        """A fresh solved context means MODIFY_LOAD plans no extra solve."""
        llm = SimulatedLLM("gpt-o4-mini", seed=1)
        ctx = ChatMessage(
            role="system",
            content=CONTEXT_MARKER
            + json.dumps({"case": "ieee14", "solved": True, "fresh": True}),
        )
        user = ChatMessage(role="user", content="increase load at bus 3 to 40 MW")
        resp = llm.complete([ctx, user], _specs())
        assert resp.message.tool_calls[0].name == "modify_bus_load"

    def test_stale_context_resolves_first(self):
        llm = SimulatedLLM("gpt-o4-mini", seed=1)
        ctx = ChatMessage(
            role="system",
            content=CONTEXT_MARKER
            + json.dumps({"case": "ieee14", "solved": False, "fresh": False}),
        )
        user = ChatMessage(role="user", content="increase load at bus 3 to 40 MW")
        resp = llm.complete([ctx, user], _specs())
        assert resp.message.tool_calls[0].name == "solve_acopf_case"

    def test_error_payload_surfaces(self):
        llm = SimulatedLLM("gpt-o4-mini", seed=1)
        user = ChatMessage(role="user", content="Solve IEEE 14")
        first = llm.complete([user], _specs())
        call = first.message.tool_calls[0]
        err_msg = ChatMessage(
            role="tool",
            content=json.dumps({"error": "solver exploded", "tool": call.name}),
            tool_call_id=call.call_id,
            name=call.name,
        )
        final = llm.complete([user, first.message, err_msg], _specs())
        assert not final.wants_tools
        assert "solver exploded" in final.message.content

    def test_greeting_without_user_message(self):
        llm = SimulatedLLM("gpt-o4-mini", seed=1)
        resp = llm.complete([ChatMessage(role="system", content="sys")], _specs())
        assert not resp.wants_tools
