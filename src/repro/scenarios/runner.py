"""BatchStudyRunner: execute a scenario list against one analysis engine.

Each scenario realises a fresh network copy and runs one of four
analyses: AC power flow, DCOPF, ACOPF, or two-stage contingency
screening.  Scenarios are independent, so the runner fans chunks out over
a ``concurrent.futures`` process pool; every worker is initialised once
with the pickled base network and then amortises the expensive shared
state across all scenarios it processes:

* the PTDF/LODF sensitivity factors, keyed by an electrical-topology
  digest (load-only perturbations reuse one factorisation for the whole
  ensemble), and
* the composite-key contingency cache, so identical (content, outage)
  evaluations are never repeated within a worker.

Results are plain-data :class:`ScenarioResult` records — cheap to pickle
back — and the chunked dispatch preserves scenario order, so serial and
parallel runs aggregate identically (a property the test suite asserts).
"""

from __future__ import annotations

import hashlib
import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..contingency.cache import ContingencyCache
from ..contingency.lodf import SensitivityFactors, compute_factors
from ..contingency.nminus1 import NMinus1Report, analyze_single_outage
from ..contingency.ranking import rank_critical_elements
from ..contingency.screening import screen_dc
from ..grid import graph as gridgraph
from ..grid.network import Network
from .aggregate import StudyAggregate, aggregate_study
from .spec import Scenario, ScenarioError

ANALYSES = ("powerflow", "dcopf", "acopf", "screening")


@dataclass
class ScenarioResult:
    """Per-scenario outcome, reduced to picklable plain data."""

    name: str
    tags: dict
    converged: bool
    objective_cost: float | None = None
    max_loading_percent: float = 0.0
    min_voltage_pu: float | None = None
    max_voltage_pu: float | None = None
    losses_mw: float | None = None
    overloaded_branches: list[int] = field(default_factory=list)
    n_voltage_violations: int = 0
    critical_branches: list[int] | None = None
    n_contingency_violations: int | None = None
    solve_time_s: float = 0.0
    error: str = ""

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "converged": self.converged,
            "max_loading_percent": round(self.max_loading_percent, 2),
        }
        if self.objective_cost is not None:
            out["objective_cost"] = round(self.objective_cost, 2)
        if self.min_voltage_pu is not None:
            out["min_voltage_pu"] = round(self.min_voltage_pu, 4)
        if self.overloaded_branches:
            out["overloaded_branches"] = list(self.overloaded_branches)
        if self.critical_branches is not None:
            out["critical_branches"] = list(self.critical_branches)
        if self.n_contingency_violations is not None:
            out["n_contingency_violations"] = self.n_contingency_violations
        if self.error:
            out["error"] = self.error
        return out


@dataclass
class StudyResult:
    """Everything one batch study produced."""

    case_name: str
    analysis: str
    results: list[ScenarioResult]
    runtime_s: float
    n_jobs: int = 1
    _aggregate: StudyAggregate | None = field(default=None, repr=False)

    @property
    def n_scenarios(self) -> int:
        return len(self.results)

    def aggregate(self) -> StudyAggregate:
        if self._aggregate is None:
            self._aggregate = aggregate_study(self.results)
        return self._aggregate

    def worst(self, n: int = 5) -> list[ScenarioResult]:
        """Most stressed scenarios first (by post-analysis peak loading)."""
        return sorted(self.results, key=lambda r: -r.max_loading_percent)[:n]

    def to_dict(self, max_scenarios: int = 20) -> dict:
        """JSON-ready study summary (what the agent tools return)."""
        return {
            "case_name": self.case_name,
            "analysis": self.analysis,
            "n_scenarios": self.n_scenarios,
            "n_jobs": self.n_jobs,
            "runtime_s": round(self.runtime_s, 3),
            "aggregate": self.aggregate().to_dict(),
            "worst_scenarios": [r.to_dict() for r in self.worst(max_scenarios)],
        }


@dataclass(frozen=True)
class StudyConfig:
    """Per-study analysis knobs, shipped once to each worker."""

    analysis: str = "powerflow"
    overload_threshold: float = 100.0
    vmin: float = 0.94
    vmax: float = 1.06
    ac_budget: int = 20
    top_n: int = 5


class _WorkerState:
    """One worker's long-lived state: base network plus reusable caches."""

    #: Entry cap for the per-worker contingency cache.  Load-perturbation
    #: ensembles give every scenario a distinct content hash, so the cache
    #: would otherwise grow without bound while never hitting; past the
    #: cap it is simply dropped (reuse is an optimisation, not state).
    CA_CACHE_MAX_ENTRIES = 20_000

    def __init__(self, base: Network, config: StudyConfig) -> None:
        self.base = base
        self.config = config
        self.factors_cache: dict[bytes, SensitivityFactors] = {}
        self.ca_cache = ContingencyCache()

    # ------------------------------------------------------------------
    def factors_for(self, net: Network) -> SensitivityFactors:
        """PTDF/LODF factors, cached on the electrical-topology digest.

        The digest covers everything the DC factors depend on (incidence,
        impedances, taps, shifts, bus types) but *not* loads — so a
        load-perturbation ensemble computes one factorisation total.
        """
        arr = net.compile()
        key = hashlib.blake2b(
            b"".join(
                (
                    arr.branch_ids.tobytes(),
                    arr.f_bus.tobytes(),
                    arr.t_bus.tobytes(),
                    arr.r.tobytes(),
                    arr.x.tobytes(),
                    arr.tap.tobytes(),
                    arr.shift.tobytes(),
                    arr.bus_type.tobytes(),
                )
            ),
            digest_size=16,
        ).digest()
        factors = self.factors_cache.get(key)
        if factors is None:
            factors = compute_factors(net)
            self.factors_cache[key] = factors
        return factors

    # ------------------------------------------------------------------
    def run_scenario(self, scenario: Scenario) -> ScenarioResult:
        tick = time.perf_counter()
        try:
            net = scenario.realize(self.base)
            if not gridgraph.is_connected(net):
                # Outage combinations can island the system (N-2 over a
                # bridge); no solver can run, but the study must record
                # the scenario rather than die on a singular matrix.
                result = ScenarioResult(
                    name=scenario.name, tags=dict(scenario.tags),
                    converged=False,
                    error=(
                        "scenario islands the network "
                        f"({gridgraph.stranded_load_mw(net, frozenset()):.1f} MW stranded)"
                    ),
                )
            else:
                runner = getattr(self, f"_run_{self.config.analysis}")
                result = runner(net, scenario)
        except ScenarioError as exc:
            result = ScenarioResult(
                name=scenario.name, tags=dict(scenario.tags),
                converged=False, error=str(exc),
            )
        except Exception as exc:  # solver edge cases must not kill the batch
            result = ScenarioResult(
                name=scenario.name, tags=dict(scenario.tags),
                converged=False,
                error=f"{type(exc).__name__}: {exc}",
            )
        result.solve_time_s = time.perf_counter() - tick
        return result

    # ------------------------------------------------------------------
    def _solve_pf(self, net: Network):
        from ..powerflow.newton import solve_newton
        from ..powerflow.recovery import solve_with_recovery

        res = solve_newton(net)
        if not res.converged:
            res, _trace = solve_with_recovery(net)
        return res

    def _run_powerflow(self, net: Network, scenario: Scenario) -> ScenarioResult:
        cfg = self.config
        res = self._solve_pf(net)
        if not res.converged:
            return ScenarioResult(
                name=scenario.name, tags=dict(scenario.tags),
                converged=False, error=res.message or "power flow diverged",
            )
        overloads = res.overloaded_branches(cfg.overload_threshold)
        violations = res.voltage_violations(cfg.vmin, cfg.vmax)
        return ScenarioResult(
            name=scenario.name,
            tags=dict(scenario.tags),
            converged=True,
            max_loading_percent=res.max_loading_percent,
            min_voltage_pu=res.min_voltage_pu,
            max_voltage_pu=res.max_voltage_pu,
            losses_mw=res.losses_mw,
            overloaded_branches=[b for b, _pct in overloads],
            n_voltage_violations=len(violations),
        )

    def _run_opf(self, net: Network, scenario: Scenario, solve) -> ScenarioResult:
        cfg = self.config
        res = solve(net)
        if not res.converged:
            return ScenarioResult(
                name=scenario.name, tags=dict(scenario.tags),
                converged=False, error=res.message or "OPF did not converge",
            )
        over_rows = np.flatnonzero(res.loading_percent > cfg.overload_threshold)
        n_volt = int(
            np.count_nonzero((res.vm < cfg.vmin) | (res.vm > cfg.vmax))
        )
        return ScenarioResult(
            name=scenario.name,
            tags=dict(scenario.tags),
            converged=True,
            objective_cost=float(res.objective_cost),
            max_loading_percent=res.max_loading_percent,
            min_voltage_pu=res.min_voltage_pu,
            max_voltage_pu=res.max_voltage_pu,
            losses_mw=float(res.losses_mw),
            overloaded_branches=[int(res.branch_ids[r]) for r in over_rows],
            n_voltage_violations=n_volt,
        )

    def _run_dcopf(self, net: Network, scenario: Scenario) -> ScenarioResult:
        from ..opf.dcopf import solve_dcopf

        return self._run_opf(net, scenario, solve_dcopf)

    def _run_acopf(self, net: Network, scenario: Scenario) -> ScenarioResult:
        from ..opf.acopf import solve_acopf

        return self._run_opf(net, scenario, solve_acopf)

    def _run_screening(self, net: Network, scenario: Scenario) -> ScenarioResult:
        cfg = self.config
        base = self._solve_pf(net)
        if not base.converged:
            return ScenarioResult(
                name=scenario.name, tags=dict(scenario.tags),
                converged=False,
                error=base.message or "base power flow diverged",
            )

        factors = self.factors_for(net)
        estimate = screen_dc(net, factors=factors)
        candidates = sorted(
            set(estimate.top(cfg.ac_budget))
            | set(int(b) for b in estimate.islanding)
        )

        # One content hash for the whole sweep (lookup + put), then AC
        # verification only for the outages this worker has not seen.
        cached, missing = self.ca_cache.lookup_sweep(net, candidates)
        bridges = gridgraph.bridge_branches(net) if missing else set()
        v_base = base.extras.get("v_complex")
        fresh = [
            analyze_single_outage(
                net,
                bid,
                bridges=bridges,
                v_base=v_base,
                vmin=cfg.vmin,
                vmax=cfg.vmax,
                overload_threshold=cfg.overload_threshold,
            )
            for bid in missing
        ]
        if fresh:
            if self.ca_cache.size >= self.CA_CACHE_MAX_ENTRIES:
                self.ca_cache.clear()
            self.ca_cache.put_many(net, fresh)
        outcomes = sorted([*cached.values(), *fresh], key=lambda o: o.branch_id)

        report = NMinus1Report(
            case_name=net.name, base=base, outcomes=outcomes,
            runtime_s=0.0, vmin=cfg.vmin, vmax=cfg.vmax,
        )
        ranked = rank_critical_elements(report, top_n=cfg.top_n)

        post_overloads = sorted(
            {int(b) for o in outcomes if o.converged for b, _pct in o.overloads}
        )
        return ScenarioResult(
            name=scenario.name,
            tags=dict(scenario.tags),
            converged=True,
            max_loading_percent=report.max_overload_percent,
            min_voltage_pu=base.min_voltage_pu,
            max_voltage_pu=base.max_voltage_pu,
            losses_mw=base.losses_mw,
            overloaded_branches=post_overloads,
            n_voltage_violations=len(base.voltage_violations(cfg.vmin, cfg.vmax)),
            critical_branches=ranked.critical_branch_ids,
            n_contingency_violations=report.n_violations,
        )


# ----------------------------------------------------------------------
# process-pool plumbing: one _WorkerState per worker, chunked dispatch
# ----------------------------------------------------------------------

_WORKER: _WorkerState | None = None


def _init_worker(base: Network, config: StudyConfig) -> None:
    global _WORKER
    _WORKER = _WorkerState(base, config)


def _run_chunk(scenarios: list[Scenario]) -> list[ScenarioResult]:
    assert _WORKER is not None, "worker used before initialisation"
    return [_WORKER.run_scenario(s) for s in scenarios]


def chunk_scenarios(
    scenarios: list[Scenario], n_jobs: int, chunk_size: int | None = None
) -> list[list[Scenario]]:
    """Order-preserving dispatch chunks: ~4 per worker unless overridden."""
    chunk = chunk_size or max(1, math.ceil(len(scenarios) / (max(1, n_jobs) * 4)))
    return [scenarios[i : i + chunk] for i in range(0, len(scenarios), chunk)]


@dataclass
class BatchStudyRunner:
    """Execute scenario lists with optional process-pool parallelism.

    ``n_jobs <= 1`` runs in-process through the exact same worker-state
    code path, so parallel and serial studies produce identical results.
    ``chunk_size`` controls dispatch granularity (default: ~4 chunks per
    worker, balancing load against per-chunk pickling overhead).

    ``executor`` injects a long-lived shared pool (duck-typed to
    :class:`repro.service.executor.StudyExecutor`): when set, chunks are
    routed through it instead of spawning a per-``run()`` pool, so
    back-to-back studies amortise worker start-up.  The executor decides
    its own worker count; ``n_jobs`` is ignored on that path.
    """

    analysis: str = "powerflow"
    n_jobs: int = 1
    chunk_size: int | None = None
    overload_threshold: float = 100.0
    vmin: float = 0.94
    vmax: float = 1.06
    ac_budget: int = 20
    top_n: int = 5
    executor: object | None = None  # shared StudyExecutor (service layer)

    def config(self) -> StudyConfig:
        """The validated per-study knob bundle shipped to every worker."""
        if self.analysis not in ANALYSES:
            raise ValueError(
                f"unknown analysis {self.analysis!r}; use one of {ANALYSES}"
            )
        return StudyConfig(
            analysis=self.analysis,
            overload_threshold=self.overload_threshold,
            vmin=self.vmin,
            vmax=self.vmax,
            ac_budget=self.ac_budget,
            top_n=self.top_n,
        )

    def run(self, base: Network, scenarios: list[Scenario]) -> StudyResult:
        config = self.config()
        start = time.perf_counter()

        if self.executor is not None and len(scenarios) >= 2:
            results = self.executor.run_study(
                base, config, scenarios, chunk_size=self.chunk_size
            )
            jobs = getattr(self.executor, "max_workers", 1)
        elif self.n_jobs <= 1 or len(scenarios) < 2:
            state = _WorkerState(base.copy(), config)
            results = [state.run_scenario(s) for s in scenarios]
            jobs = 1
        else:
            jobs = min(self.n_jobs, len(scenarios))
            chunks = chunk_scenarios(scenarios, jobs, self.chunk_size)
            with ProcessPoolExecutor(
                max_workers=jobs, initializer=_init_worker, initargs=(base, config)
            ) as pool:
                futures = [pool.submit(_run_chunk, c) for c in chunks]
                results = [r for f in futures for r in f.result()]

        return StudyResult(
            case_name=base.name,
            analysis=self.analysis,
            results=results,
            runtime_s=time.perf_counter() - start,
            n_jobs=jobs,
        )
