"""Typed component records for the network model.

Components are plain mutable dataclasses: the agent layer edits them
directly (load adjustments, outages, limit changes) and the
:class:`~repro.grid.network.Network` tracks a version counter so compiled
solver views know when to rebuild.  Quantities follow the MATPOWER/PSTCA
conventions the paper's tooling (pandapower) inherits:

* power in MW / MVAr at this layer (converted to per-unit by solvers),
* voltages in per-unit magnitude / degrees at construction time,
* branch impedances already in per-unit on the system base.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class BusType(enum.IntEnum):
    """Power-flow bus classification (MATPOWER numbering)."""

    PQ = 1
    PV = 2
    SLACK = 3
    ISOLATED = 4


@dataclass
class Bus:
    """A network node.

    ``index`` is the positional id used everywhere else in the library
    (generators, loads and branches refer to buses by this integer).
    """

    index: int
    name: str = ""
    bus_type: BusType = BusType.PQ
    base_kv: float = 138.0
    vm_pu: float = 1.0
    va_deg: float = 0.0
    vmin_pu: float = 0.94
    vmax_pu: float = 1.06
    gs_mw: float = 0.0  # shunt conductance, MW consumed at V=1 pu
    bs_mvar: float = 0.0  # shunt susceptance, MVAr injected at V=1 pu
    area: int = 1
    zone: int = 1

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"bus index must be non-negative, got {self.index}")
        if self.vmin_pu > self.vmax_pu:
            raise ValueError(
                f"bus {self.index}: vmin {self.vmin_pu} > vmax {self.vmax_pu}"
            )
        if not self.name:
            self.name = f"bus_{self.index}"


@dataclass
class Generator:
    """A dispatchable generating unit with a polynomial cost curve.

    ``cost_coeffs`` are polynomial coefficients in MATPOWER order
    (highest degree first), e.g. ``(c2, c1, c0)`` gives
    ``cost($/h) = c2*Pg^2 + c1*Pg + c0`` with ``Pg`` in MW.
    """

    bus: int
    pg_mw: float = 0.0
    qg_mvar: float = 0.0
    pmin_mw: float = 0.0
    pmax_mw: float = 0.0
    qmin_mvar: float = -9999.0
    qmax_mvar: float = 9999.0
    vg_pu: float = 1.0
    in_service: bool = True
    cost_coeffs: tuple[float, ...] = (0.0, 0.0, 0.0)
    name: str = ""

    def __post_init__(self) -> None:
        if self.pmin_mw > self.pmax_mw:
            raise ValueError(
                f"generator at bus {self.bus}: pmin {self.pmin_mw} > pmax {self.pmax_mw}"
            )
        if self.qmin_mvar > self.qmax_mvar:
            raise ValueError(
                f"generator at bus {self.bus}: qmin {self.qmin_mvar} > qmax {self.qmax_mvar}"
            )
        if not self.name:
            self.name = f"gen_b{self.bus}"

    def cost_at(self, pg_mw: float) -> float:
        """Evaluate the polynomial cost curve at ``pg_mw`` (in $/h)."""
        total = 0.0
        for c in self.cost_coeffs:
            total = total * pg_mw + c
        return total

    def marginal_cost_at(self, pg_mw: float) -> float:
        """Evaluate d(cost)/dPg at ``pg_mw`` (in $/MWh)."""
        n = len(self.cost_coeffs)
        total = 0.0
        for i, c in enumerate(self.cost_coeffs[:-1]):
            degree = n - 1 - i
            total = total * pg_mw + degree * c
        return total


@dataclass
class Load:
    """A constant-power load at a bus."""

    bus: int
    pd_mw: float = 0.0
    qd_mvar: float = 0.0
    in_service: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"load_b{self.bus}"


@dataclass
class Branch:
    """A transmission line or transformer between two buses.

    Impedances are per-unit on the system MVA base.  ``tap`` is the
    off-nominal turns ratio at the *from* side (0 or 1 for lines) and
    ``shift_deg`` the phase shift; ``is_transformer`` distinguishes the two
    families the paper's Table 2 counts separately.
    """

    from_bus: int
    to_bus: int
    r_pu: float = 0.0
    x_pu: float = 1e-4
    b_pu: float = 0.0
    rate_a_mva: float = 0.0  # 0 means unlimited
    tap: float = 0.0  # 0 => nominal (treated as 1.0)
    shift_deg: float = 0.0
    in_service: bool = True
    is_transformer: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if self.from_bus == self.to_bus:
            raise ValueError(f"branch {self.name!r}: from_bus == to_bus == {self.from_bus}")
        if self.x_pu == 0.0 and self.r_pu == 0.0:
            raise ValueError(
                f"branch {self.from_bus}-{self.to_bus}: zero impedance is not representable"
            )
        if not self.name:
            kind = "trafo" if self.is_transformer else "line"
            self.name = f"{kind}_{self.from_bus}_{self.to_bus}"

    @property
    def effective_tap(self) -> float:
        """Turns ratio with the MATPOWER convention that 0 means nominal."""
        return self.tap if self.tap != 0.0 else 1.0


@dataclass
class NetworkMetadata:
    """Free-form provenance describing where a case came from."""

    case_name: str = ""
    description: str = ""
    source: str = ""
    extras: dict = field(default_factory=dict)
