"""Interactive CLI chat interface (paper Appendix D.1) plus batch studies.

Plain-stdlib REPL with light ANSI colour — the paper uses Rich, which is
not available offline; the interaction loop is identical.  Run with::

    gridmind --model gpt-5-mini
    gridmind --model claude-4-sonnet --seed 7

The ``study`` subcommand runs declarative scenario studies directly
against the batch engine (no chat loop)::

    gridmind study --case ieee118 --kind monte-carlo -n 200 --jobs 4
    gridmind study --case ieee57 --kind sweep --lo 80 --hi 120 --analysis acopf
"""

from __future__ import annotations

import argparse
import json
import sys

from ..llm.profiles import PAPER_MODELS
from .session import GridMindSession

_BANNER = r"""
  ____      _     _ __  __ _           _
 / ___|_ __(_) __| |  \/  (_)_ __   __| |
| |  _| '__| |/ _` | |\/| | | '_ \ / _` |
| |_| | |  | | (_| | |  | | | | | | (_| |
 \____|_|  |_|\__,_|_|  |_|_|_| |_|\__,_|
 Conversational power-system analysis (reproduction)
"""

_CYAN = "\033[96m"
_DIM = "\033[2m"
_RESET = "\033[0m"


def _supports_color(stream) -> bool:
    return hasattr(stream, "isatty") and stream.isatty()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gridmind",
        description="Conversational ACOPF and contingency analysis agents.",
    )
    parser.add_argument(
        "--model",
        default="gpt-5-mini",
        help=f"simulated model profile (one of: {', '.join(PAPER_MODELS)})",
    )
    parser.add_argument("--seed", type=int, default=0, help="session RNG seed")
    parser.add_argument(
        "--ask",
        action="append",
        default=None,
        metavar="TEXT",
        help="non-interactive: process this request and exit (repeatable)",
    )

    sub = parser.add_subparsers(dest="command")
    study = sub.add_parser(
        "study",
        help="run a declarative scenario study with the parallel batch runner",
        description=(
            "Expand a scenario family (load sweep, Monte Carlo ensemble, N-k "
            "outage combinations, daily profile) and analyse every operating "
            "point with the selected engine."
        ),
    )
    study.add_argument("--case", required=True, help="case name, e.g. ieee118")
    study.add_argument(
        "--kind",
        choices=("sweep", "monte-carlo", "outage", "profile"),
        default="monte-carlo",
    )
    study.add_argument(
        "-n",
        "--scenarios",
        type=int,
        default=None,
        metavar="N",
        help="scenario count: draws (monte-carlo), steps (sweep/profile), "
        "combination cap (outage)",
    )
    study.add_argument(
        "--analysis",
        choices=("powerflow", "dcopf", "acopf", "screening"),
        default="powerflow",
    )
    study.add_argument("--jobs", type=int, default=1, help="worker processes")
    study.add_argument("--lo", type=float, default=80.0, help="sweep low, %% of base")
    study.add_argument("--hi", type=float, default=120.0, help="sweep high, %% of base")
    study.add_argument(
        "--sigma", type=float, default=5.0, help="monte-carlo load std-dev, %%"
    )
    study.add_argument("--depth", type=int, default=2, help="outages per scenario")
    study.add_argument(
        "--json", action="store_true", help="emit the full study summary as JSON"
    )
    # Also accepted after the subcommand; SUPPRESS keeps a pre-subcommand
    # `gridmind --seed 7 study ...` from being clobbered by a default.
    study.add_argument(
        "--seed",
        type=int,
        default=argparse.SUPPRESS,
        help="ensemble RNG seed (monte-carlo draws)",
    )
    return parser


def _build_study_scenarios(args):
    from ..grid.cases import load_case
    from ..scenarios import (
        daily_profile,
        load_sweep,
        monte_carlo_ensemble,
        outage_combinations,
    )

    if args.scenarios is not None and args.scenarios < 1:
        raise ValueError(f"-n/--scenarios must be >= 1, got {args.scenarios}")
    net = load_case(args.case)
    if args.kind == "sweep":
        scenarios = load_sweep(
            args.lo / 100.0, args.hi / 100.0, args.scenarios or 9
        )
    elif args.kind == "profile":
        scenarios = daily_profile(steps=args.scenarios or 24)
    elif args.kind == "outage":
        scenarios = outage_combinations(
            net, depth=args.depth, limit=args.scenarios or 50
        )
    else:
        scenarios = monte_carlo_ensemble(
            n=args.scenarios or 200, sigma=args.sigma / 100.0, seed=args.seed
        )
    return net, scenarios


def run_study(args) -> int:
    """Execute the ``study`` subcommand against the batch engine."""
    from ..scenarios import BatchStudyRunner

    try:
        net, scenarios = _build_study_scenarios(args)
        runner = BatchStudyRunner(analysis=args.analysis, n_jobs=args.jobs)
        study = runner.run(net, scenarios)
    except (KeyError, ValueError) as exc:
        # Domain errors (unknown case, bad ranges) are user input problems:
        # report them like argparse does instead of dumping a traceback.
        message = exc.args[0] if exc.args else str(exc)
        print(f"gridmind study: error: {message}", file=sys.stderr)
        return 2
    payload = study.to_dict()

    if args.json:
        print(json.dumps(payload, indent=2, default=str))
        return 0

    agg = payload["aggregate"]
    print(
        f"{args.kind} study on {study.case_name}: {study.n_scenarios} scenarios, "
        f"{study.analysis} analysis, {study.n_jobs} worker(s), "
        f"{study.runtime_s:.2f}s"
    )
    print(
        f"  converged {agg['n_converged']}/{agg['n_scenarios']}"
        f" | violations in {100.0 * agg['violation_rate']:.0f}% of scenarios"
        f" | errors {agg['n_errors']}"
    )
    for label, key in (
        ("cost $/h", "cost_stats"),
        ("peak loading %", "loading_stats"),
        ("min voltage pu", "min_voltage_stats"),
    ):
        stats = agg.get(key)
        if stats:
            print(
                f"  {label:>15s}: p50 {stats['p50']:.2f}  p95 {stats['p95']:.2f}  "
                f"range [{stats['min']:.2f}, {stats['max']:.2f}]"
            )
    if agg.get("branch_overload_freq"):
        worst = list(agg["branch_overload_freq"].items())[:5]
        print(
            "  overload frequency: "
            + ", ".join(f"branch {b}: {100.0 * f:.0f}%" for b, f in worst)
        )
    if agg.get("stable_critical"):
        print(
            "  stable critical branches: "
            + ", ".join(str(b) for b in agg["stable_critical"])
        )
    print("  most stressed scenarios:")
    for w in payload["worst_scenarios"][:5]:
        line = f"    {w['name']}: peak loading {w['max_loading_percent']:.1f}%"
        if w.get("objective_cost") is not None:
            line += f", cost ${w['objective_cost']:,.2f}/h"
        if not w["converged"]:
            line += " (diverged)" if not w.get("error") else f" ({w['error']})"
        print(line)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "command", None) == "study":
        return run_study(args)
    color = _supports_color(sys.stdout)
    cyan = _CYAN if color else ""
    dim = _DIM if color else ""
    reset = _RESET if color else ""

    session = GridMindSession(model=args.model, seed=args.seed)

    def respond(text: str) -> None:
        reply = session.ask(text)
        rec = session.last_record
        print(f"{cyan}{reply.text}{reset}")
        if rec is not None:
            print(
                f"{dim}[{session.model} | agents: {', '.join(reply.agents_involved)} "
                f"| llm {rec.latency_virtual_s:.1f}s (simulated) "
                f"+ compute {rec.wall_s:.2f}s | "
                f"{rec.prompt_tokens}+{rec.completion_tokens} tokens]{reset}"
            )

    if args.ask:
        for text in args.ask:
            print(f"> {text}")
            respond(text)
        return 0

    print(_BANNER)
    print(
        f"model: {session.model} — type a request "
        "('Solve IEEE 14', 'run contingency analysis', ...); 'quit' to exit.\n"
    )
    while True:
        try:
            text = input("gridmind> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            break
        if not text:
            continue
        if text.lower() in {"quit", "exit", "q"}:
            break
        respond(text)

    summary = session.metrics()
    print(f"{dim}session summary: {summary}{reset}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
