"""Optimal power flow solvers (DESIGN.md S5).

``solve_acopf`` is the production interior-point path;
``solve_acopf_scipy`` a fully independent fallback/cross-check;
``solve_dcopf`` the linear economic baseline.
"""

from .acopf import ACOPFProblem, solve_acopf
from .costs import PolynomialCosts
from .dcopf import solve_dcopf
from .ipm import IPMOptions, IPMResult, solve_ipm
from .result import OPFResult
from .scipy_backend import solve_acopf_scipy
from .scopf import SCOPFResult, SecurityConstraint, solve_scopf
from .sensitivity import (
    LoadImpactEstimate,
    SensitivityReport,
    analyze_sensitivities,
    estimate_load_impact,
    flow_sensitivities,
)

__all__ = [
    "ACOPFProblem",
    "IPMOptions",
    "IPMResult",
    "LoadImpactEstimate",
    "OPFResult",
    "PolynomialCosts",
    "SCOPFResult",
    "SecurityConstraint",
    "SensitivityReport",
    "analyze_sensitivities",
    "estimate_load_impact",
    "flow_sensitivities",
    "solve_acopf",
    "solve_acopf_scipy",
    "solve_dcopf",
    "solve_ipm",
    "solve_scopf",
]
