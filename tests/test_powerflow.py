"""AC/DC power-flow solvers: reference values, cross-method agreement,
warm starts, Q-limits, recovery ladder."""

import numpy as np
import pytest

from repro.grid.cases import load_case
from repro.powerflow import (
    solve_dc,
    solve_fast_decoupled,
    solve_gauss_seidel,
    solve_newton,
    solve_with_recovery,
)

# Published IEEE 14 power-flow solution (UW archive / MATPOWER runpp).
IEEE14_VM = [1.060, 1.045, 1.010, 1.018, 1.020, 1.070, 1.062, 1.090,
             1.056, 1.051, 1.057, 1.055, 1.050, 1.036]
IEEE14_VA = [0.00, -4.98, -12.72, -10.31, -8.77, -14.22, -13.36, -13.36,
             -14.94, -15.10, -14.79, -15.07, -15.16, -16.03]


class TestNewton:
    def test_converges_ieee14(self, case14):
        res = solve_newton(case14)
        assert res.converged
        assert res.max_mismatch_pu < 1e-8

    def test_matches_published_solution(self, case14):
        res = solve_newton(case14)
        assert np.allclose(res.vm, IEEE14_VM, atol=2e-3)
        assert np.allclose(res.va_deg, IEEE14_VA, atol=0.05)

    def test_flat_start_same_solution(self, case14):
        a = solve_newton(case14)
        b = solve_newton(case14, flat_start=True)
        assert b.converged
        assert np.allclose(a.vm, b.vm, atol=1e-8)

    def test_warm_start_fewer_iterations(self, case118):
        base = solve_newton(case118)
        warm = solve_newton(case118, v0=base.extras["v_complex"])
        assert warm.converged
        assert warm.iterations <= 1

    def test_warm_start_wrong_length_rejected(self, case14):
        with pytest.raises(ValueError, match="warm-start"):
            solve_newton(case14, v0=np.ones(5, dtype=complex))

    def test_losses_positive(self, case14):
        res = solve_newton(case14)
        assert 0.0 < res.losses_mw < 30.0

    def test_generation_balances_load_plus_losses(self, case14):
        res = solve_newton(case14)
        total_gen = res.gen_p_mw.sum()
        assert total_gen == pytest.approx(259.0 + res.losses_mw, abs=1e-3)

    def test_nonconvergence_reported_not_raised(self, case14):
        case14.scale_loads(20.0)  # physically impossible demand
        res = solve_newton(case14, max_iter=15)
        assert not res.converged
        assert "not converge" in res.message

    @pytest.mark.parametrize("name", ["ieee30", "ieee57", "ieee118", "ieee300"])
    def test_converges_all_synthetic_cases(self, name):
        res = solve_newton(load_case(name))
        assert res.converged
        assert res.min_voltage_pu > 0.94

    def test_q_limit_enforcement_converts_pv(self, case14):
        # Shrink gen 2's Q band so enforcement must clamp it.
        case14.gens[1].qmax_mvar = 10.0
        case14.gens[1].qmin_mvar = -10.0
        case14.touch()
        res = solve_newton(case14, enforce_q=True)
        assert res.converged
        bt = res.extras["final_bus_type"]
        assert bt[1] == 1  # PV bus 2 switched to PQ

    def test_q_limit_respected_after_enforcement(self, case14):
        case14.gens[1].qmax_mvar = 10.0
        case14.gens[1].qmin_mvar = -10.0
        case14.touch()
        res = solve_newton(case14, enforce_q=True)
        row = list(res.gen_ids).index(1)
        assert res.gen_q_mvar[row] <= 10.0 + 1e-4


class TestCrossMethodAgreement:
    def test_fdpf_matches_newton(self, case14):
        nr = solve_newton(case14)
        fd = solve_fast_decoupled(case14)
        assert fd.converged
        assert np.allclose(nr.vm, fd.vm, atol=1e-6)

    def test_fdpf_bx_variant(self, case14):
        fd = solve_fast_decoupled(case14, variant="bx")
        assert fd.converged

    def test_fdpf_unknown_variant(self, case14):
        with pytest.raises(ValueError, match="variant"):
            solve_fast_decoupled(case14, variant="zz")

    def test_gauss_seidel_matches_newton(self, case14):
        nr = solve_newton(case14)
        gs = solve_gauss_seidel(case14, tol=1e-8, max_iter=5000)
        assert gs.converged
        assert np.allclose(nr.vm, gs.vm, atol=1e-5)

    def test_fdpf_matches_newton_on_118(self, case118):
        nr = solve_newton(case118)
        fd = solve_fast_decoupled(case118, max_iter=150)
        assert fd.converged
        assert np.allclose(nr.vm, fd.vm, atol=1e-5)


class TestDC:
    def test_dc_flows_approximate_ac(self, case14):
        ac = solve_newton(case14)
        dc = solve_dc(case14)
        # DC active flows within ~10% of AC on the heavy branches.
        heavy = np.abs(ac.p_from_mw) > 20.0
        rel = np.abs(dc.p_from_mw[heavy] - ac.p_from_mw[heavy]) / np.abs(
            ac.p_from_mw[heavy]
        )
        assert np.max(rel) < 0.15

    def test_dc_is_lossless(self, case14):
        dc = solve_dc(case14)
        assert dc.losses_mw == 0.0
        assert np.allclose(dc.p_from_mw + dc.p_to_mw, 0.0)

    def test_dc_slack_balances(self, case14):
        dc = solve_dc(case14)
        assert dc.gen_p_mw.sum() == pytest.approx(case14.total_load_mw(), abs=1e-6)

    def test_dc_flat_voltage(self, case14):
        dc = solve_dc(case14)
        assert np.all(dc.vm == 1.0)


class TestRecovery:
    def test_recovery_trivial_case_single_attempt(self, case14):
        res, trace = solve_with_recovery(case14)
        assert res.converged
        assert len(trace.attempts) == 1
        assert trace.attempts[0].method == "newton"

    def test_recovery_ladder_records_attempts(self, case14):
        case14.scale_loads(20.0)
        res, trace = solve_with_recovery(case14)
        assert not res.converged
        assert len(trace.attempts) == 4  # every rung tried and recorded
        methods = [a.method for a in trace.attempts]
        assert methods[0] == "newton"
        assert "gauss-seidel" in methods[-1]


class TestResultHelpers:
    def test_overloaded_branches_sorted(self, case118):
        case118.scale_loads(1.4)
        res = solve_newton(case118)
        if res.converged:
            over = res.overloaded_branches()
            pcts = [p for _, p in over]
            assert pcts == sorted(pcts, reverse=True)

    def test_voltage_violations_detects_band(self, case14):
        res = solve_newton(case14)
        # IEEE 14's published solution has bus 8 at 1.09 > 1.06.
        violations = res.voltage_violations(0.94, 1.06)
        buses = [b for b, _ in violations]
        assert 7 in buses  # internal index of IEEE bus 8
