"""N-1 engine: outcomes, islanding, warm starts, parallel sweep."""

import pytest

from repro.contingency import (
    BALANCED_WEIGHTS,
    THERMAL_WEIGHTS,
    ContingencyOutcome,
    SeverityWeights,
    analyze_single_outage,
    run_n_minus_1,
)
from repro.powerflow import solve_newton


class TestSingleOutage:
    def test_islanding_detected(self, radial_net):
        out = analyze_single_outage(radial_net, 1)
        assert out.islanded
        assert not out.converged
        assert out.stranded_load_mw == pytest.approx(20.0)

    def test_meshed_outage_converges(self, tiny_net):
        out = analyze_single_outage(tiny_net, 0)
        assert out.converged
        assert not out.islanded
        assert out.max_loading_percent > 0

    def test_network_restored_after_analysis(self, tiny_net):
        analyze_single_outage(tiny_net, 0)
        assert tiny_net.branches[0].in_service

    def test_out_of_service_branch_rejected(self, tiny_net):
        tiny_net.set_branch_status(0, False)
        with pytest.raises(ValueError, match="already out of service"):
            analyze_single_outage(tiny_net, 0)

    def test_overloads_recorded(self, case118):
        # Find an outage known to overload (use the sweep's worst).
        rep = run_n_minus_1(case118)
        worst = max(
            (o for o in rep.outcomes if o.converged and not o.islanded),
            key=lambda o: o.max_loading_percent,
        )
        redo = analyze_single_outage(case118, worst.branch_id)
        assert redo.max_loading_percent == pytest.approx(
            worst.max_loading_percent, rel=1e-6
        )
        assert redo.overloads


class TestSweep:
    def test_sweep_covers_all_branches(self, case30):
        rep = run_n_minus_1(case30)
        assert rep.n_contingencies == case30.n_branch
        ids = sorted(o.branch_id for o in rep.outcomes)
        assert ids == list(range(case30.n_branch))

    def test_sweep_leaves_network_untouched(self, case30):
        before = [br.in_service for br in case30.branches]
        v_before = case30.version
        run_n_minus_1(case30)
        assert [br.in_service for br in case30.branches] == before
        assert case30.version == v_before

    def test_sweep_subset(self, case30):
        rep = run_n_minus_1(case30, branch_ids=[0, 5, 7])
        assert rep.n_contingencies == 3
        assert sorted(o.branch_id for o in rep.outcomes) == [0, 5, 7]

    def test_base_required_to_converge(self, case30):
        case30.scale_loads(20.0)
        with pytest.raises(ValueError, match="base case"):
            run_n_minus_1(case30)

    def test_max_overload_in_calibrated_band(self, case118):
        """Synthetic cases are designed for worst overloads in 110-170 %."""
        rep = run_n_minus_1(case118)
        assert 110.0 <= rep.max_overload_percent <= 175.0

    def test_parallel_matches_serial(self, case30):
        serial = run_n_minus_1(case30, n_jobs=1)
        parallel = run_n_minus_1(case30, n_jobs=2)
        assert parallel.n_jobs >= 1
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert a.branch_id == b.branch_id
            assert a.converged == b.converged
            assert a.max_loading_percent == pytest.approx(
                b.max_loading_percent, rel=1e-9
            )

    def test_worst_returns_most_severe(self, case118):
        rep = run_n_minus_1(case118)
        worst = rep.worst(3)
        sevs = [o.severity() for o in worst]
        assert sevs == sorted(sevs, reverse=True)

    def test_base_result_reuse(self, case30):
        base = solve_newton(case30)
        rep = run_n_minus_1(case30, base_result=base)
        assert rep.base is base


class TestSeverity:
    def _outcome(self, **kw) -> ContingencyOutcome:
        defaults = dict(
            branch_id=0, branch_name="b", from_bus=0, to_bus=1,
            is_transformer=False, converged=True,
        )
        defaults.update(kw)
        return ContingencyOutcome(**defaults)

    def test_secure_outcome_zero_severity(self):
        assert self._outcome().severity() == 0.0

    def test_overload_raises_severity(self):
        o = self._outcome(overloads=[(5, 120.0)], max_loading_percent=120.0)
        assert o.severity() > 0

    def test_more_overloads_more_severe(self):
        one = self._outcome(overloads=[(5, 120.0)])
        two = self._outcome(overloads=[(5, 120.0), (6, 115.0)])
        assert two.severity() > one.severity()

    def test_islanding_with_load_dominates(self):
        isl = self._outcome(converged=False, islanded=True, stranded_load_mw=50.0)
        thermal = self._outcome(overloads=[(5, 150.0)])
        assert isl.severity() > thermal.severity()

    def test_islanding_without_load_is_minor(self):
        isl = self._outcome(converged=False, islanded=True, stranded_load_mw=0.0)
        thermal = self._outcome(overloads=[(5, 150.0)])
        assert isl.severity() < thermal.severity()

    def test_divergence_is_severe(self):
        div = self._outcome(converged=False)
        thermal = self._outcome(overloads=[(5, 150.0)])
        assert div.severity() > thermal.severity()

    def test_voltage_violations_scored(self):
        o = self._outcome(voltage_violations=[(3, 0.90)], min_voltage_pu=0.90)
        assert o.severity() > 0

    def test_weights_change_ordering(self):
        thermal_heavy = self._outcome(
            overloads=[(1, 130.0), (2, 125.0)], max_loading_percent=130.0
        )
        voltage_heavy = self._outcome(
            voltage_violations=[(1, 0.90), (2, 0.91)], min_voltage_pu=0.90
        )
        assert (
            thermal_heavy.severity(THERMAL_WEIGHTS)
            > voltage_heavy.severity(THERMAL_WEIGHTS)
        )
        assert (
            voltage_heavy.severity(BALANCED_WEIGHTS)
            > voltage_heavy.severity(THERMAL_WEIGHTS)
        )

    def test_summary_line_mentions_islanding(self):
        o = self._outcome(converged=False, islanded=True, stranded_load_mw=12.0)
        assert "islands" in o.summary_line()
        assert "12.0 MW" in o.summary_line()

    def test_summary_line_secure(self):
        assert "secure" in self._outcome().summary_line()

    def test_custom_weights_describe(self):
        w = SeverityWeights(thermal=5.0)
        assert "x5" in w.describe()
