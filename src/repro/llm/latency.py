"""Virtual-clock latency simulation for the model profiles.

Figure 3 / Table 1 timings are dominated by remote-LLM latency (8-90 s per
task).  Re-sleeping those in benchmarks would be wasteful, so completions
charge sampled latencies to a :class:`VirtualClock`; solver time is
measured on the real clock and added by the session layer.  Distributions
are lognormal — the standard shape for service latencies — seeded per
(model, session) for reproducibility.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np


@dataclass
class VirtualClock:
    """Monotone simulated-time accumulator (seconds)."""

    now: float = 0.0

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"cannot advance the clock by {dt} s")
        self.now += dt
        return self.now

    def reset(self) -> None:
        self.now = 0.0


@dataclass(frozen=True)
class LatencyModel:
    """Lognormal completion-latency model.

    ``median_s`` is the distribution median; ``sigma`` the log-space
    standard deviation (0.2 = tight, 0.5 = heavy-tailed).
    """

    median_s: float
    sigma: float = 0.25

    def sample(self, rng: np.random.Generator) -> float:
        if self.median_s <= 0:
            return 0.0
        return float(rng.lognormal(mean=math.log(self.median_s), sigma=self.sigma))

    def quantile(self, q: float) -> float:
        """Analytic quantile (used by tests to sanity-check calibration)."""
        from scipy.stats import norm

        return self.median_s * math.exp(self.sigma * float(norm.ppf(q)))


def rng_for(model_name: str, seed: int) -> np.random.Generator:
    """Deterministic per-(model, seed) RNG stream."""
    mix = zlib.crc32(model_name.encode("utf-8")) ^ (seed * 0x9E3779B1 & 0xFFFFFFFF)
    return np.random.default_rng(mix)
