"""E15 — Ablation: observability overhead on a streamed ensemble study.

The tracing/metrics stack is designed to be always-on cheap: metrics are
plain dict increments shipped per chunk as a state delta, spans are only
allocated when a recording tracer is installed, and untraced studies pay
a single ``None`` check per chunk.  This benchmark runs the same
Monte-Carlo ensemble through the shared
:class:`~repro.service.executor.StudyExecutor` in three modes —

* ``off``        — metrics registry disabled (workers mirror it), no tracer,
* ``metrics``    — the always-on registry collecting and merging deltas,
* ``metrics+trace`` — additionally a recording tracer with full
  cross-process span stitching (the ``--trace`` path),

alternating the mode order across repeats and keeping the per-mode
minimum wall time (the noise-robust estimator), then reports the
overhead of each mode over ``off``.  Acceptance: metrics overhead < 2 %
and tracing overhead < 10 % at ensemble scale; the committed table was
recorded at 10 000 scenarios.  Small tier-1 runs assert structure plus a
loose noise guard instead of the headline thresholds —
``GRIDMIND_E15_SCENARIOS`` scales the ensemble (>= 2000 engages the
strict thresholds).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.grid.cases import load_case
from repro.instrumentation.metrics import MetricsRegistry, set_metrics
from repro.instrumentation.trace import tracing
from repro.scenarios import BatchStudyRunner, monte_carlo_ensemble
from repro.service import StudyExecutor

CASE = "ieee14"
N_SCENARIOS = int(os.environ.get("GRIDMIND_E15_SCENARIOS", "400"))
REPEATS = int(os.environ.get("GRIDMIND_E15_REPEATS", "3"))
JOBS = 2
CHUNK = 100
WINDOW = 4

#: The headline acceptance thresholds only engage at ensemble scale;
#: at tier-1 sizes a single scheduler hiccup exceeds 2 % of the run.
STRICT_SCALE = 2_000
MAX_METRICS_OVERHEAD = 0.02 if N_SCENARIOS >= STRICT_SCALE else 0.10
MAX_TRACING_OVERHEAD = 0.10 if N_SCENARIOS >= STRICT_SCALE else 0.30

MODES = ("off", "metrics", "metrics+trace")


def _run_once(executor, mode: str):
    net = load_case(CASE)
    scenarios = monte_carlo_ensemble(n=N_SCENARIOS, sigma=0.05, seed=42)
    # ac_mode="cold" pins the per-scenario solve path: this ablation
    # measures the per-scenario span/metrics machinery, which the warm
    # AC kernel (one chunk-level span per batch) deliberately bypasses.
    runner = BatchStudyRunner(
        analysis="powerflow", executor=executor, chunk_size=CHUNK, window=WINDOW,
        ac_mode="cold",
    )
    registry = MetricsRegistry(enabled=(mode != "off"))
    previous = set_metrics(registry)
    n_spans = 0
    try:
        tick = time.perf_counter()
        if mode == "metrics+trace":
            with tracing() as tracer:
                study = runner.run(net, scenarios, keep_results=False)
            n_spans = len(tracer.spans())
        else:
            study = runner.run(net, scenarios, keep_results=False)
        wall = time.perf_counter() - tick
    finally:
        set_metrics(previous)
    return study, wall, n_spans, registry


def test_ablation_tracing(benchmark):
    walls: dict[str, list[float]] = {m: [] for m in MODES}
    studies: dict[str, object] = {}
    spans: dict[str, int] = {}
    registries: dict[str, MetricsRegistry] = {}

    def _run_all():
        with StudyExecutor(max_workers=JOBS, window=WINDOW) as executor:
            # Warm the pool + content-addressed worker state so no mode
            # pays start-up.
            _run_once(executor, "off")
            for repeat in range(REPEATS):
                # Rotate the order so slow drift (thermal, page cache)
                # spreads across modes instead of biasing the last one.
                for mode in MODES[repeat % len(MODES):] + MODES[: repeat % len(MODES)]:
                    study, wall, n_spans, registry = _run_once(executor, mode)
                    walls[mode].append(wall)
                    studies[mode] = study
                    registries[mode] = registry
                    spans[mode] = max(spans.get(mode, 0), n_spans)

    benchmark.pedantic(_run_all, rounds=1, iterations=1)

    best = {mode: min(walls[mode]) for mode in MODES}
    overhead = {
        mode: best[mode] / best["off"] - 1.0 for mode in MODES
    }

    # Identical study outcomes in every mode: observability never
    # changes results.
    base_agg = studies["off"].aggregate().to_dict()
    assert studies["metrics"].aggregate().to_dict() == base_agg
    assert studies["metrics+trace"].aggregate().to_dict() == base_agg

    # Metrics actually collected / spans actually recorded where enabled.
    assert registries["off"].state().get("counters", {}) == {}
    assert (
        registries["metrics"].counter("gridmind_scenarios_total").total()
        == float(N_SCENARIOS)
    )
    assert spans["metrics+trace"] > 2 * N_SCENARIOS  # scenario + solve + infra
    assert spans["off"] == 0

    assert overhead["metrics"] < MAX_METRICS_OVERHEAD, (
        f"metrics overhead {100 * overhead['metrics']:.1f}% exceeds "
        f"{100 * MAX_METRICS_OVERHEAD:.0f}%"
    )
    assert overhead["metrics+trace"] < MAX_TRACING_OVERHEAD, (
        f"tracing overhead {100 * overhead['metrics+trace']:.1f}% exceeds "
        f"{100 * MAX_TRACING_OVERHEAD:.0f}%"
    )

    widths = [16, -11, -13, -13, -12, -9]
    lines = [
        fmt_row(
            ["Mode", "scenarios", "best (s)", "median (s)", "overhead", "spans"],
            widths,
        ),
        "-" * 82,
    ]
    for mode in MODES:
        series = sorted(walls[mode])
        lines.append(fmt_row(
            [
                mode,
                N_SCENARIOS,
                f"{best[mode]:.3f}",
                f"{series[len(series) // 2]:.3f}",
                f"{100 * overhead[mode]:+.1f}%",
                spans[mode],
            ],
            widths,
        ))
    lines += [
        "",
        f"min of {REPEATS} alternating repeats per mode | {CASE}, "
        f"{JOBS}-worker shared executor, chunk {CHUNK}, window {WINDOW} | "
        f"aggregates identical in all modes | acceptance: metrics < 2%, "
        f"tracing < 10% at >= {STRICT_SCALE} scenarios",
    ]
    emit(
        "ablation_tracing",
        "E15 — Observability overhead: metrics and tracing vs instrumentation off "
        f"({N_SCENARIOS}-scenario streamed Monte Carlo)",
        lines,
    )
