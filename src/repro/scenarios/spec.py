"""Declarative scenario specifications for operating-point studies.

A :class:`Scenario` is a named, ordered bundle of :class:`Perturbation`
records.  Perturbations are small frozen dataclasses — pure *descriptions*
of an edit (scale loads, outage a branch, inject a renewable) — so a whole
study is just data: picklable across process boundaries, hashable into
audit trails, and reproducible by construction.  Stochastic perturbations
carry their own integer seed; realising the same scenario twice always
yields the same network.

``Scenario.realize(base)`` applies the perturbations to a *fresh copy* of
the base network, never to the base itself — the isolation guarantee the
batch runner relies on when it fans scenarios out across workers.

Perturbations that only move *bus injections* (load scales, noise draws,
renewable infeed) additionally carry an ``injection_only`` flag and a
vectorized form, :meth:`Perturbation.apply_to_loads`, operating on a
plain per-load array view instead of component objects.  A whole chunk
of such scenarios shares the base network's electrical topology, so
:meth:`Scenario.injection_vector` can produce the exact DC injection
vector a realized copy would compile to — bit-identical, including the
per-load draw counts and accumulation order — without ever paying
``net.copy()`` + ``compile()``.  That is what feeds the batched physics
kernels (:mod:`repro.powerflow.batch`).  Topology-changing perturbations
(:class:`BranchOutage`, :class:`GeneratorOutage`) keep
``injection_only = False`` and take the per-scenario path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from ..grid.network import Network


class ScenarioError(ValueError):
    """A perturbation could not be applied to the target network."""


class LoadVector:
    """Mutable per-load array view for vectorized perturbation replay.

    Rows mirror ``net.loads`` in list order (including out-of-service
    loads, which scale operations touch exactly like the object path);
    :class:`RenewableInjection` appends rows the way ``add_load`` appends
    components, so stochastic perturbations that draw one variate per
    load row see the same row count at the same point in the sequence.

    Both the active (``pd_mw``) and reactive (``qd_mvar``) columns are
    tracked: the DC fast path consumes only ``pd``, the AC ensemble
    kernel needs the full complex injection.
    """

    __slots__ = ("bus", "pd_mw", "qd_mvar", "in_service")

    def __init__(
        self,
        bus: np.ndarray,
        pd_mw: np.ndarray,
        qd_mvar: np.ndarray,
        in_service: np.ndarray,
    ) -> None:
        self.bus = bus
        self.pd_mw = pd_mw
        self.qd_mvar = qd_mvar
        self.in_service = in_service

    @classmethod
    def from_network(cls, net: Network) -> "LoadVector":
        return cls(
            bus=np.array([ld.bus for ld in net.loads], dtype=np.int64),
            pd_mw=np.array([ld.pd_mw for ld in net.loads], dtype=float),
            qd_mvar=np.array([ld.qd_mvar for ld in net.loads], dtype=float),
            in_service=np.array([ld.in_service for ld in net.loads], dtype=bool),
        )

    def __len__(self) -> int:
        return len(self.pd_mw)

    def append(self, bus: int, pd_mw: float, qd_mvar: float = 0.0) -> None:
        self.bus = np.append(self.bus, np.int64(bus))
        self.pd_mw = np.append(self.pd_mw, float(pd_mw))
        self.qd_mvar = np.append(self.qd_mvar, float(qd_mvar))
        self.in_service = np.append(self.in_service, True)

    def bus_pd_pu(self, n_bus: int, base_mva: float) -> np.ndarray:
        """Aggregate to per-bus load (p.u.) the way ``Network.compile``
        does: per-row division, then in-order accumulation."""
        pd = np.zeros(n_bus)
        live = self.in_service
        np.add.at(pd, self.bus[live], self.pd_mw[live] / base_mva)
        return pd

    def bus_qd_pu(self, n_bus: int, base_mva: float) -> np.ndarray:
        """Reactive counterpart of :meth:`bus_pd_pu` (same accumulation)."""
        qd = np.zeros(n_bus)
        live = self.in_service
        np.add.at(qd, self.bus[live], self.qd_mvar[live] / base_mva)
        return qd


@dataclass(frozen=True)
class Perturbation:
    """Base record: subclasses implement :meth:`apply` (mutating ``net``)."""

    #: True when the perturbation moves only bus power injections and
    #: therefore admits the vectorized :meth:`apply_to_loads` replay; the
    #: batched DC fast path requires every perturbation in a scenario to
    #: set this.
    injection_only: ClassVar[bool] = False

    def apply(self, net: Network) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def apply_to_loads(self, net: Network, loads: LoadVector) -> None:
        """Vectorized replay of :meth:`apply` against a load-array view.

        Must perform the same validation (raising the same
        :class:`ScenarioError`) and the same per-load floating-point
        operations as :meth:`apply`, so the aggregated injection vector
        is bit-identical to realizing the scenario.  Only meaningful when
        ``injection_only`` is True.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no vectorized injection form"
        )

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class UniformLoadScale(Perturbation):
    """Multiply every load in the system by ``factor``."""

    factor: float
    injection_only: ClassVar[bool] = True

    def apply(self, net: Network) -> None:
        if self.factor < 0:
            raise ScenarioError(f"load scale factor must be >= 0, got {self.factor}")
        net.scale_loads(self.factor)

    def apply_to_loads(self, net: Network, loads: LoadVector) -> None:
        if self.factor < 0:
            raise ScenarioError(f"load scale factor must be >= 0, got {self.factor}")
        loads.pd_mw *= self.factor
        loads.qd_mvar *= self.factor

    def describe(self) -> str:
        return f"scale all loads x{self.factor:g}"


@dataclass(frozen=True)
class PerBusLoadScale(Perturbation):
    """Scale the loads at specific buses: ``factors`` is ((bus, factor), ...)."""

    factors: tuple[tuple[int, float], ...]
    injection_only: ClassVar[bool] = True

    def apply(self, net: Network) -> None:
        for bus, factor in self.factors:
            if not 0 <= bus < net.n_bus:
                raise ScenarioError(f"bus {bus} does not exist in {net.name!r}")
            if factor < 0:
                raise ScenarioError(f"bus {bus}: scale factor must be >= 0")
            for ld in net.loads_at_bus(bus):
                ld.pd_mw *= factor
                ld.qd_mvar *= factor
        net.touch()

    def apply_to_loads(self, net: Network, loads: LoadVector) -> None:
        for bus, factor in self.factors:
            if not 0 <= bus < net.n_bus:
                raise ScenarioError(f"bus {bus} does not exist in {net.name!r}")
            if factor < 0:
                raise ScenarioError(f"bus {bus}: scale factor must be >= 0")
            rows = loads.bus == bus
            loads.pd_mw[rows] *= factor
            loads.qd_mvar[rows] *= factor

    def describe(self) -> str:
        inner = ", ".join(f"bus {b} x{f:g}" for b, f in self.factors)
        return f"scale loads ({inner})"


@dataclass(frozen=True)
class GaussianLoadNoise(Perturbation):
    """Monte Carlo draw: each load scaled by ``max(0, 1 + N(0, sigma))``.

    The draw is seeded per perturbation, so a scenario realises the same
    load vector in every process and on every run.  One normal variate is
    drawn per load row (in one vectorised call), keeping the draw count —
    and therefore the ensemble — independent of load service status.
    """

    sigma: float
    seed: int
    injection_only: ClassVar[bool] = True

    def apply(self, net: Network) -> None:
        if self.sigma < 0:
            raise ScenarioError(f"sigma must be >= 0, got {self.sigma}")
        rng = np.random.default_rng(self.seed)
        factors = np.maximum(0.0, 1.0 + rng.normal(0.0, self.sigma, len(net.loads)))
        for ld, f in zip(net.loads, factors):
            ld.pd_mw *= f
            ld.qd_mvar *= f
        net.touch()

    def apply_to_loads(self, net: Network, loads: LoadVector) -> None:
        if self.sigma < 0:
            raise ScenarioError(f"sigma must be >= 0, got {self.sigma}")
        rng = np.random.default_rng(self.seed)
        # len(loads), not len(net.loads): an earlier RenewableInjection in
        # the same scenario appends a row, and the draw count must track
        # the row count exactly as the object path does.
        factors = np.maximum(0.0, 1.0 + rng.normal(0.0, self.sigma, len(loads)))
        loads.pd_mw *= factors
        loads.qd_mvar *= factors

    def describe(self) -> str:
        return f"gaussian load noise sigma={self.sigma:g} seed={self.seed}"


@dataclass(frozen=True)
class ZonalLoadScale(Perturbation):
    """Scale loads per *zone*: one multiplier per network zone.

    Zone membership comes from :meth:`~repro.grid.network.Network.zone_index`:
    explicit feeder labels when the network carries them
    (``set_bus_zones``), otherwise the historical partition of bus
    indices into ``len(factors)`` contiguous, near-equal bands (bus ``b``
    belongs to zone ``b * Z // n_bus``) — the deterministic stand-in for
    real zone metadata the IEEE cases don't carry.  Correlated Monte
    Carlo draws bake their realised zone factors into this record, so the
    scenario stays plain data: picklable, spec-hashable, and identical
    wherever it is realised.
    """

    factors: tuple[float, ...]
    injection_only: ClassVar[bool] = True

    def apply(self, net: Network) -> None:
        z = len(self.factors)
        if z < 1:
            raise ScenarioError("zonal scale needs at least one zone factor")
        for f in self.factors:
            if f < 0:
                raise ScenarioError(f"zone factors must be >= 0, got {f}")
        for ld in net.loads:
            f = self.factors[net.zone_index(ld.bus, z)]
            ld.pd_mw *= f
            ld.qd_mvar *= f
        net.touch()

    def apply_to_loads(self, net: Network, loads: LoadVector) -> None:
        z = len(self.factors)
        if z < 1:
            raise ScenarioError("zonal scale needs at least one zone factor")
        for f in self.factors:
            if f < 0:
                raise ScenarioError(f"zone factors must be >= 0, got {f}")
        per_row = np.array(
            [self.factors[net.zone_index(int(b), z)] for b in loads.bus], dtype=float
        )
        loads.pd_mw *= per_row
        loads.qd_mvar *= per_row

    def describe(self) -> str:
        inner = ", ".join(f"{f:g}" for f in self.factors)
        return f"zonal load scale ({inner})"


@dataclass(frozen=True)
class BranchOutage(Perturbation):
    """Take one branch out of service."""

    branch_id: int

    def apply(self, net: Network) -> None:
        if not 0 <= self.branch_id < net.n_branch:
            raise ScenarioError(
                f"branch {self.branch_id} does not exist in {net.name!r}"
            )
        net.set_branch_status(self.branch_id, False)

    def describe(self) -> str:
        return f"outage branch {self.branch_id}"


@dataclass(frozen=True)
class GeneratorOutage(Perturbation):
    """Take one generating unit out of service."""

    gen_id: int

    def apply(self, net: Network) -> None:
        if not 0 <= self.gen_id < net.n_gen:
            raise ScenarioError(f"generator {self.gen_id} does not exist in {net.name!r}")
        net.gens[self.gen_id].in_service = False
        net.touch()

    def describe(self) -> str:
        return f"outage generator {self.gen_id}"


@dataclass(frozen=True)
class RenewableInjection(Perturbation):
    """Model renewable infeed as a negative load at ``bus``."""

    bus: int
    p_mw: float
    q_mvar: float = 0.0
    injection_only: ClassVar[bool] = True

    def apply(self, net: Network) -> None:
        if not 0 <= self.bus < net.n_bus:
            raise ScenarioError(f"bus {self.bus} does not exist in {net.name!r}")
        if self.p_mw < 0:
            raise ScenarioError(f"injection must be >= 0 MW, got {self.p_mw}")
        net.add_load(
            self.bus,
            pd_mw=-self.p_mw,
            qd_mvar=-self.q_mvar,
            name=f"renewable_b{self.bus}",
        )

    def apply_to_loads(self, net: Network, loads: LoadVector) -> None:
        if not 0 <= self.bus < net.n_bus:
            raise ScenarioError(f"bus {self.bus} does not exist in {net.name!r}")
        if self.p_mw < 0:
            raise ScenarioError(f"injection must be >= 0 MW, got {self.p_mw}")
        loads.append(self.bus, -self.p_mw, -self.q_mvar)

    def describe(self) -> str:
        return f"inject {self.p_mw:g} MW renewable at bus {self.bus}"


@dataclass
class Scenario:
    """One named operating point: a perturbation list plus labelling tags.

    ``tags`` carry the generator's coordinates (sweep factor, Monte Carlo
    draw index, profile hour, outage pair ...) so aggregation can slice
    the ensemble without re-parsing scenario names.
    """

    name: str
    perturbations: tuple[Perturbation, ...] = ()
    tags: dict = field(default_factory=dict)

    def realize(self, base: Network) -> Network:
        """Apply the perturbations to a fresh copy of ``base``."""
        net = base.copy()
        for pert in self.perturbations:
            try:
                pert.apply(net)
            except ScenarioError:
                raise
            except (IndexError, ValueError) as exc:
                raise ScenarioError(
                    f"scenario {self.name!r}: {pert.describe()} failed: {exc}"
                ) from exc
        return net

    @property
    def injection_only(self) -> bool:
        """True when every perturbation admits the vectorized replay —
        i.e. the scenario keeps the base electrical topology."""
        return all(p.injection_only for p in self.perturbations)

    def _replay_loads(self, base: Network) -> LoadVector:
        """Run every perturbation's vectorized form against a load view."""
        loads = LoadVector.from_network(base)
        for pert in self.perturbations:
            try:
                pert.apply_to_loads(base, loads)
            except ScenarioError:
                raise
            except (IndexError, ValueError) as exc:
                raise ScenarioError(
                    f"scenario {self.name!r}: {pert.describe()} failed: {exc}"
                ) from exc
        return loads

    def injection_vector(self, base: Network) -> np.ndarray:
        """DC injection vector (p.u.) of the realized scenario, without
        realizing it.

        Bit-identical to ``dc_injections(self.realize(base).compile())``
        for injection-only scenarios: the perturbations replay against a
        per-load array in list order, aggregation divides then
        accumulates exactly as ``Network.compile`` does, and generator
        dispatch is untouched by construction.
        """
        arr = base.compile()
        loads = self._replay_loads(base)
        p = -loads.bus_pd_pu(arr.n_bus, base.base_mva)
        np.add.at(p, arr.gen_bus, arr.pg0)
        return p

    def ac_injection(self, base: Network) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Complex AC injection of the realized scenario, without realizing it.

        Returns ``(sbus, pd, qd)`` in p.u.: the scheduled complex bus
        injections plus the per-bus load vectors the compiled snapshot
        would carry.  Bit-identical to ``bus_power_injections`` (and
        ``arr.pd`` / ``arr.qd``) of the realized network for
        injection-only scenarios — the AC ensemble kernel solves against
        ``sbus`` and finalizes against ``pd``/``qd`` with no
        ``net.copy()`` + ``compile()`` anywhere.
        """
        arr = base.compile()
        loads = self._replay_loads(base)
        pd = loads.bus_pd_pu(arr.n_bus, base.base_mva)
        qd = loads.bus_qd_pu(arr.n_bus, base.base_mva)
        sbus = -(pd + 1j * qd)
        np.add.at(sbus, arr.gen_bus, arr.pg0 + 1j * arr.qg0)
        return sbus, pd, qd

    def describe(self) -> str:
        if not self.perturbations:
            return f"{self.name}: base case"
        return f"{self.name}: " + "; ".join(p.describe() for p in self.perturbations)
