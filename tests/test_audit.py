"""Numerical-claim auditing (factual-slip detection)."""

from repro.instrumentation.audit import audit_narration


def test_grounded_numbers_pass():
    payloads = [{"objective_cost": 8081.5247, "min_voltage_pu": 1.0136}]
    result = audit_narration(
        "The cost is $8,081.52/h with min voltage 1.014 pu.", payloads
    )
    assert result.ok
    assert result.claims >= 2


def test_fabricated_number_detected():
    payloads = [{"objective_cost": 8081.52}]
    result = audit_narration("The cost is $9,999.99/h.", payloads)
    assert not result.ok
    assert 9999.99 in result.slips


def test_derived_difference_accepted():
    payloads = [{"old": 8081.52, "new": 9789.32}]
    result = audit_narration("The cost went up by $1,707.80/h.", payloads)
    assert result.ok


def test_derived_percentage_accepted():
    payloads = [{"base": 200.0, "now": 250.0}]
    result = audit_narration("That is a 25.00% increase.", payloads)
    assert result.ok


def test_small_prose_integers_ignored():
    result = audit_narration("I found 3 overloads across 2 contingencies.", [{}])
    assert result.ok


def test_rounded_display_forms_accepted():
    payloads = [{"value": 163.4729}]
    for text in ("163%", "163.5%", "163.47%"):
        assert audit_narration(f"loading is {text}", payloads).ok


def test_numbers_in_string_payloads_ground():
    payloads = [{"message": "converged in 18 iterations at 8081.52"}]
    assert audit_narration("The solve took 8,081.52 units.", payloads).ok


def test_empty_text():
    result = audit_narration("", [{"a": 1.0}])
    assert result.ok
    assert result.claims == 0


def test_nested_payload_numbers():
    payloads = [{"outer": {"inner": [{"deep": 1234.56}]}}]
    assert audit_narration("value 1234.56 observed", payloads).ok
