#!/usr/bin/env python
"""What-if load study: the iterative analysis loop the paper motivates.

"GridMind lowers access barriers while supporting the natural iterative
what-if analysis (adjust load levels, re-solve, inspect impacts)."  This
example stresses bus loads step by step through the conversational API
and tracks cost, marginal prices and thermal margin — then shows the
same study done programmatically against the core library, which is what
the agent's tools do under the hood.

Run:  python examples/whatif_load_study.py
"""

from __future__ import annotations

from repro import GridMindSession, load_case
from repro.opf import solve_acopf


def conversational_study() -> None:
    print("=" * 70)
    print("Conversational what-if study (IEEE 30, bus 3)")
    print("=" * 70)
    session = GridMindSession(model="gpt-o4-mini", seed=7)
    session.ask("Solve the IEEE 30 bus case")
    base = session.context.acopf_solution.objective_cost
    print(f"base cost: ${base:,.2f}/h")

    print(f"\n{'target MW':>10s} {'cost $/h':>12s} {'delta $/h':>10s} "
          f"{'minV pu':>8s} {'max load %':>10s}")
    for target in (20, 35, 50, 65):
        session.ask(f"Set the load at bus 3 to {target} MW")
        sol = session.context.acopf_solution
        if not sol.solved:
            print(f"{target:>10d}  -- re-dispatch infeasible --")
            continue
        print(
            f"{target:>10d} {sol.objective_cost:>12,.2f} "
            f"{sol.objective_cost - base:>10,.2f} {sol.min_voltage_pu:>8.3f} "
            f"{sol.max_loading_percent:>10.1f}"
        )

    print("\ndiff log kept by the shared context:")
    for mod in session.context.modifications:
        print(f"  - {mod.description}")


def programmatic_study() -> None:
    print()
    print("=" * 70)
    print("Same study against the core library (what the tools run)")
    print("=" * 70)
    net = load_case("ieee30")
    print(f"{'scale':>6s} {'cost $/h':>12s} {'mean LMP':>9s} {'max LMP':>8s}")
    for scale in (0.9, 1.0, 1.1, 1.2):
        trial = net.copy()
        trial.scale_loads(scale)
        res = solve_acopf(trial)
        if not res.converged:
            print(f"{scale:>6.2f}  infeasible")
            continue
        print(
            f"{scale:>6.2f} {res.objective_cost:>12,.2f} "
            f"{res.lmp_mw.mean():>9.2f} {res.lmp_mw.max():>8.2f}"
        )


if __name__ == "__main__":
    conversational_study()
    programmatic_study()
