"""Finite-difference verification of all analytic derivatives.

The ACOPF stack is only as correct as these formulas; each block is
checked against central differences on the genuine IEEE 14 state and on a
perturbed (non-flat) voltage vector.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.grid.ybus import build_admittances
from repro.powerflow.jacobian import (
    d2Abr_dV2,
    d2Sbus_dV2,
    d2Sbr_dV2,
    dSbr_dV,
    dSbus_dV,
)

RNG = np.random.default_rng(42)
EPS = 1e-6


@pytest.fixture
def state(case14):
    arr = case14.compile()
    adm = build_admittances(arr)
    vm = arr.vm0 + RNG.uniform(-0.03, 0.03, arr.n_bus)
    va = arr.va0 + RNG.uniform(-0.1, 0.1, arr.n_bus)
    return arr, adm, vm, va


def _v(vm, va):
    return vm * np.exp(1j * va)


def test_dsbus_dva_matches_fd(state):
    arr, adm, vm, va = state
    ds_dva, _ = dSbus_dV(adm.ybus, _v(vm, va))
    n = arr.n_bus
    fd = np.zeros((n, n), dtype=complex)
    for j in range(n):
        va_p, va_m = va.copy(), va.copy()
        va_p[j] += EPS
        va_m[j] -= EPS

        def s(vaa):
            v = _v(vm, vaa)
            return v * np.conj(adm.ybus @ v)

        fd[:, j] = (s(va_p) - s(va_m)) / (2 * EPS)
    assert np.allclose(ds_dva.toarray(), fd, atol=1e-6)


def test_dsbus_dvm_matches_fd(state):
    arr, adm, vm, va = state
    _, ds_dvm = dSbus_dV(adm.ybus, _v(vm, va))
    n = arr.n_bus
    fd = np.zeros((n, n), dtype=complex)
    for j in range(n):
        vm_p, vm_m = vm.copy(), vm.copy()
        vm_p[j] += EPS
        vm_m[j] -= EPS

        def s(vmm):
            v = _v(vmm, va)
            return v * np.conj(adm.ybus @ v)

        fd[:, j] = (s(vm_p) - s(vm_m)) / (2 * EPS)
    assert np.allclose(ds_dvm.toarray(), fd, atol=1e-6)


def test_dsbr_dv_matches_fd(state):
    arr, adm, vm, va = state
    v0 = _v(vm, va)
    dva, dvm, sf = dSbr_dV(adm.yf, arr.f_bus, v0, arr.n_bus)
    # value check
    assert np.allclose(sf, v0[arr.f_bus] * np.conj(adm.yf @ v0))

    nl, nb = arr.n_branch, arr.n_bus
    fd_a = np.zeros((nl, nb), dtype=complex)
    fd_m = np.zeros((nl, nb), dtype=complex)
    for j in range(nb):
        for target, fd in ((va, fd_a), (vm, fd_m)):
            p, m = target.copy(), target.copy()
            p[j] += EPS
            m[j] -= EPS
            if target is va:
                sp = _v(vm, p)[arr.f_bus] * np.conj(adm.yf @ _v(vm, p))
                sm = _v(vm, m)[arr.f_bus] * np.conj(adm.yf @ _v(vm, m))
            else:
                sp = _v(p, va)[arr.f_bus] * np.conj(adm.yf @ _v(p, va))
                sm = _v(m, va)[arr.f_bus] * np.conj(adm.yf @ _v(m, va))
            fd[:, j] = (sp - sm) / (2 * EPS)
    assert np.allclose(dva.toarray(), fd_a, atol=1e-6)
    assert np.allclose(dvm.toarray(), fd_m, atol=1e-6)


def _fd_hessian_blocks(fun_grad, vm, va, lam, nb):
    """Central differences of lam' * gradient blocks."""
    gaa = np.zeros((nb, nb))
    gav = np.zeros((nb, nb))
    gva = np.zeros((nb, nb))
    gvv = np.zeros((nb, nb))
    for j in range(nb):
        va_p, va_m = va.copy(), va.copy()
        va_p[j] += EPS
        va_m[j] -= EPS
        ga_p, gm_p = fun_grad(vm, va_p)
        ga_m, gm_m = fun_grad(vm, va_m)
        gaa[:, j] = (ga_p - ga_m) / (2 * EPS)
        gva[:, j] = (gm_p - gm_m) / (2 * EPS)

        vm_p, vm_m = vm.copy(), vm.copy()
        vm_p[j] += EPS
        vm_m[j] -= EPS
        ga_p, gm_p = fun_grad(vm_p, va)
        ga_m, gm_m = fun_grad(vm_m, va)
        gav[:, j] = (ga_p - ga_m) / (2 * EPS)
        gvv[:, j] = (gm_p - gm_m) / (2 * EPS)
    return gaa, gav, gva, gvv


def test_d2sbus_dv2_matches_fd(state):
    arr, adm, vm, va = state
    nb = arr.n_bus
    lam = RNG.uniform(-1, 1, nb) + 1j * RNG.uniform(-1, 1, nb)

    def lam_grad(vmm, vaa):
        dva, dvm = dSbus_dV(adm.ybus, _v(vmm, vaa))
        # gradient of Re(lam' S): real-valued
        ga = np.real(dva.T @ lam)
        gm = np.real(dvm.T @ lam)
        return ga, gm

    gaa, gav, gva, gvv = d2Sbus_dV2(adm.ybus, _v(vm, va), lam)
    faa, fav, fva, fvv = _fd_hessian_blocks(lam_grad, vm, va, lam, nb)
    assert np.allclose(np.real(gaa.toarray()), faa, atol=1e-5)
    assert np.allclose(np.real(gav.toarray()), fav, atol=1e-5)
    assert np.allclose(np.real(gva.toarray()), fva, atol=1e-5)
    assert np.allclose(np.real(gvv.toarray()), fvv, atol=1e-5)


def test_d2abr_dv2_matches_fd(state):
    """Hessian of mu' |Sf|^2 against finite differences of its gradient."""
    arr, adm, vm, va = state
    nb, nl = arr.n_bus, arr.n_branch
    mu = RNG.uniform(0.1, 1.0, nl)
    rows = np.arange(nl)
    cf = sparse.csr_matrix((np.ones(nl), (rows, arr.f_bus)), shape=(nl, nb))

    def mu_grad(vmm, vaa):
        v = _v(vmm, vaa)
        dva, dvm, sf = dSbr_dV(adm.yf, arr.f_bus, v, nb)
        dr = sparse.diags(sf.real)
        di = sparse.diags(sf.imag)
        da = 2.0 * (dr @ dva.real + di @ dva.imag)
        dm = 2.0 * (dr @ dvm.real + di @ dvm.imag)
        return np.asarray(da.T @ mu).ravel(), np.asarray(dm.T @ mu).ravel()

    v0 = _v(vm, va)
    dva0, dvm0, sf0 = dSbr_dV(adm.yf, arr.f_bus, v0, nb)
    haa, hav, hva, hvv = d2Abr_dV2(dva0, dvm0, sf0, cf, adm.yf, v0, mu)
    faa, fav, fva, fvv = _fd_hessian_blocks(mu_grad, vm, va, mu, nb)
    assert np.allclose(haa.toarray(), faa, atol=1e-5)
    assert np.allclose(hav.toarray(), fav, atol=1e-5)
    assert np.allclose(hva.toarray(), fva, atol=1e-5)
    assert np.allclose(hvv.toarray(), fvv, atol=1e-5)


def test_d2sbr_dv2_value_structure(state):
    """d2Sbr blocks have the expected shapes and finite entries."""
    arr, adm, vm, va = state
    nb, nl = arr.n_bus, arr.n_branch
    rows = np.arange(nl)
    cf = sparse.csr_matrix((np.ones(nl), (rows, arr.f_bus)), shape=(nl, nb))
    mu = RNG.uniform(0.1, 1.0, nl) + 0j
    haa, hav, hva, hvv = d2Sbr_dV2(cf, adm.yf, _v(vm, va), mu)
    for h in (haa, hav, hva, hvv):
        assert h.shape == (nb, nb)
        assert np.all(np.isfinite(h.toarray().real))
