"""Interactive CLI chat interface (paper Appendix D.1).

Plain-stdlib REPL with light ANSI colour — the paper uses Rich, which is
not available offline; the interaction loop is identical.  Run with::

    gridmind --model gpt-5-mini
    gridmind --model claude-4-sonnet --seed 7
"""

from __future__ import annotations

import argparse
import sys

from ..llm.profiles import PAPER_MODELS
from .session import GridMindSession

_BANNER = r"""
  ____      _     _ __  __ _           _
 / ___|_ __(_) __| |  \/  (_)_ __   __| |
| |  _| '__| |/ _` | |\/| | | '_ \ / _` |
| |_| | |  | | (_| | |  | | | | | | (_| |
 \____|_|  |_|\__,_|_|  |_|_|_| |_|\__,_|
 Conversational power-system analysis (reproduction)
"""

_CYAN = "\033[96m"
_DIM = "\033[2m"
_RESET = "\033[0m"


def _supports_color(stream) -> bool:
    return hasattr(stream, "isatty") and stream.isatty()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gridmind",
        description="Conversational ACOPF and contingency analysis agents.",
    )
    parser.add_argument(
        "--model",
        default="gpt-5-mini",
        help=f"simulated model profile (one of: {', '.join(PAPER_MODELS)})",
    )
    parser.add_argument("--seed", type=int, default=0, help="session RNG seed")
    parser.add_argument(
        "--ask",
        action="append",
        default=None,
        metavar="TEXT",
        help="non-interactive: process this request and exit (repeatable)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    color = _supports_color(sys.stdout)
    cyan = _CYAN if color else ""
    dim = _DIM if color else ""
    reset = _RESET if color else ""

    session = GridMindSession(model=args.model, seed=args.seed)

    def respond(text: str) -> None:
        reply = session.ask(text)
        rec = session.last_record
        print(f"{cyan}{reply.text}{reset}")
        if rec is not None:
            print(
                f"{dim}[{session.model} | agents: {', '.join(reply.agents_involved)} "
                f"| llm {rec.latency_virtual_s:.1f}s (simulated) "
                f"+ compute {rec.wall_s:.2f}s | "
                f"{rec.prompt_tokens}+{rec.completion_tokens} tokens]{reset}"
            )

    if args.ask:
        for text in args.ask:
            print(f"> {text}")
            respond(text)
        return 0

    print(_BANNER)
    print(
        f"model: {session.model} — type a request "
        "('Solve IEEE 14', 'run contingency analysis', ...); 'quit' to exit.\n"
    )
    while True:
        try:
            text = input("gridmind> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            break
        if not text:
            continue
        if text.lower() in {"quit", "exit", "q"}:
            break
        respond(text)

    summary = session.metrics()
    print(f"{dim}session summary: {summary}{reset}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
