"""ACOPF via scipy's trust-constr: the cross-check / fallback backend.

Same problem assembly as the interior-point path (:class:`ACOPFProblem`),
handed to ``scipy.optimize.minimize`` with exact constraint Jacobians.
Slower than the PDIPM but implemented completely independently on the
solver side, which makes it a meaningful agreement check in the test
suite and the recovery path when the PDIPM fails on a pathological edit.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize

from ..grid.network import Network
from .acopf import ACOPFProblem, _unpack
from .ipm import IPMResult


def solve_acopf_scipy(
    net: Network,
    *,
    max_iter: int = 300,
    tol: float = 1e-8,
) -> "OPFResult":
    """Solve the ACOPF with ``scipy.optimize.minimize(method='trust-constr')``."""
    from .result import OPFResult  # local to avoid an import cycle in type pos

    start = time.perf_counter()
    prob = ACOPFProblem(net)
    xmin, xmax = prob.bounds()
    x0 = prob.initial_point()

    eq = optimize.NonlinearConstraint(
        lambda x: prob.equalities(x)[0],
        0.0,
        0.0,
        jac=lambda x: prob.equalities(x)[1].toarray(),
    )
    cons = [eq]
    h0, _ = prob.inequalities(x0)
    if h0.size:
        cons.append(
            optimize.NonlinearConstraint(
                lambda x: prob.inequalities(x)[0],
                -np.inf,
                0.0,
                jac=lambda x: prob.inequalities(x)[1].toarray(),
            )
        )

    lb = np.where(np.isfinite(xmin), xmin, -1e4)
    ub = np.where(np.isfinite(xmax), xmax, 1e4)

    res = optimize.minimize(
        lambda x: prob.objective(x)[0],
        x0,
        jac=lambda x: prob.objective(x)[1],
        bounds=optimize.Bounds(lb, ub),
        constraints=cons,
        method="trust-constr",
        options={"maxiter": max_iter, "gtol": tol, "xtol": 1e-10, "verbose": 0},
    )

    g_final, _ = prob.equalities(res.x)
    feasible = float(np.max(np.abs(g_final))) < 1e-5
    converged = bool(res.success or (res.status in (1, 2) and feasible))

    lam = np.asarray(res.v[0]) if getattr(res, "v", None) else np.zeros(2 * prob.nb + 1)
    mu = (
        np.asarray(res.v[1])
        if getattr(res, "v", None) and len(res.v) > 1
        else np.zeros(2 * len(prob.rated))
    )

    ipm_like = IPMResult(
        x=res.x,
        f=float(res.fun),
        converged=converged,
        iterations=int(res.nit),
        lam_eq=-lam,  # scipy's sign convention is opposite ours
        mu_ineq=np.abs(mu),
        mu_lower=np.zeros(prob.nx),
        mu_upper=np.zeros(prob.nx),
        message=str(res.message),
    )
    out = _unpack(prob, ipm_like, time.perf_counter() - start)
    out.method = "acopf-scipy-trust-constr"
    return out
