"""E4 — Table 1: CA-agent performance on case118.

Paper (Table 1): five of six models identify the identical top-5
critical-line set with the same max overload (137 %); GPT-5-Mini finds a
slightly different set with a *higher* overload (165 %) via a different
analytical approach.  GPT-5 is slowest (92.7 s); the small reasoning
models take ~25 s.

Absolute line indices differ here (synthetic 118-bus equivalent — see
DESIGN.md), but the consensus/divergence structure, the overload level
band, and the timing ordering are the reproduction targets.
"""

from __future__ import annotations

import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.core.session import GridMindSession

PAPER_ROWS = {
    "gpt-5": (92.7, "6, 7, 0, 171, 49", 137),
    "gpt-5-mini": (24.8, "7, 0, 171, 49, 9", 165),
    "gpt-5-nano": (26.2, "6, 7, 0, 171, 49", 137),
    "gpt-o4-mini": (34.2, "6, 7, 0, 171, 49", 137),
    "gpt-o3": (24.6, "6, 7, 0, 171, 49", 137),
    "claude-4-sonnet": (63.3, "6, 7, 0, 171, 49", 137),
}

REQUEST = "identify the top-5 most critical contingencies in the IEEE 118 case"


def _run(paper_models):
    rows = {}
    for model in paper_models:
        session = GridMindSession(model=model, seed=0)
        session.ask(REQUEST)
        rec = session.last_record
        ca = session.context.ca_result
        rows[model] = {
            "time_s": rec.total_s,
            "lines": [c.branch_id for c in ca.critical],
            "max_overload": ca.max_overload_percent,
            "success": rec.success,
        }
    return rows


def test_table1_ca_agent(benchmark, paper_models):
    rows = benchmark.pedantic(_run, args=(paper_models,), rounds=1, iterations=1)

    widths = [18, -9, -9, 26, 26, -7, -7]
    lines = [
        fmt_row(
            ["Model", "t paper", "t meas", "lines (paper)", "lines (measured)",
             "OL% p", "OL% m"],
            widths,
        ),
        "-" * 112,
    ]
    for model in paper_models:
        p_time, p_lines, p_ol = PAPER_ROWS[model]
        r = rows[model]
        lines.append(
            fmt_row(
                [model, p_time, r["time_s"], p_lines,
                 ", ".join(str(b) for b in r["lines"]), p_ol,
                 r["max_overload"]],
                widths,
            )
        )
    emit("table1_ca_agent", "Table 1 — CA agent performance (case118)", lines)

    # --- reproduction assertions (shape, per DESIGN.md E4) -------------
    assert all(r["success"] for r in rows.values())

    line_sets = {m: frozenset(r["lines"]) for m, r in rows.items()}
    consensus, n_agree = Counter(line_sets.values()).most_common(1)[0]
    assert n_agree == 5, "five of six models should agree exactly"
    divergent = [m for m, s in line_sets.items() if s != consensus]
    assert divergent == ["gpt-5-mini"], "gpt-5-mini is the divergent model"

    # The divergent model reports an overload at least as high.
    consensus_ol = max(
        r["max_overload"] for m, r in rows.items() if m != "gpt-5-mini"
    )
    assert rows["gpt-5-mini"]["max_overload"] >= consensus_ol

    # Overload levels land in the paper's 130-170 % band.
    for r in rows.values():
        assert 110.0 <= r["max_overload"] <= 175.0

    # Timing ordering: GPT-5 slowest, the small reasoning models fastest.
    assert rows["gpt-5"]["time_s"] == max(r["time_s"] for r in rows.values())
    assert rows["gpt-o3"]["time_s"] < rows["claude-4-sonnet"]["time_s"]
