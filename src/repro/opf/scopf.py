"""Security-constrained ACOPF via constraint generation (preventive).

The paper motivates GridMind with security-constrained operation
(Wu & Conejo [29]) and its Appendix B.4 lists "comparative studies
(economic vs. security-constrained operation)" as a supported workflow.
This module implements the classic preventive SCOPF decomposition:

1. solve the economic ACOPF,
2. screen all N-1 outages with LODF sensitivities at the current dispatch,
3. for every violated (outage k, branch l) pair, add a linear *preventive*
   constraint on the pre-contingency flows::

       |P_l + LODF[l,k] * P_k| <= rate_l * relief

   expressed through PTDF rows as a restriction of the base-case dispatch,
4. re-solve and repeat until no post-contingency violations remain (or the
   iteration budget runs out).

The post-contingency constraints are linear in bus injections (DC
sensitivities), which keeps the master problem a standard ACOPF with
extra linear inequality rows — the textbook industry formulation for
preventive security pricing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from ..contingency.lodf import compute_factors
from ..grid.network import Network
from ..instrumentation.probes import instrument_solver
from .acopf import ACOPFProblem, _unpack
from .ipm import IPMOptions, solve_ipm
from .result import OPFResult


@dataclass
class SecurityConstraint:
    """One active post-contingency flow restriction."""

    outage_branch: int  # branch id whose outage is covered
    limited_branch: int  # branch id whose post-outage flow is limited
    row: np.ndarray  # dense coefficient row over bus injections (p.u.)
    bound: float  # p.u. MW bound on |row @ p_inj|
    severity: float = 0.0  # violation fraction at screening time

    def describe(self) -> str:
        return (
            f"outage of branch {self.outage_branch} limits branch "
            f"{self.limited_branch} to {self.bound * 100:.0f} MW-equivalent"
        )


@dataclass
class SCOPFResult:
    """Security-constrained dispatch plus audit trail.

    ``unattainable`` lists contingency/branch pairs no preventive
    redispatch can secure at the requested relief level (load-driven
    post-outage flows) — those need remedial actions or load shedding,
    and the dispatcher should know about them rather than get a bare
    "infeasible".
    """

    opf: OPFResult
    iterations: int
    constraints: list[SecurityConstraint] = field(default_factory=list)
    unattainable: list[SecurityConstraint] = field(default_factory=list)
    violations_history: list[int] = field(default_factory=list)
    security_cost: float = 0.0  # $/h premium over the economic dispatch
    economic_cost: float = 0.0
    runtime_s: float = 0.0

    @property
    def converged(self) -> bool:
        return self.opf.converged

    @property
    def fully_secure(self) -> bool:
        return self.converged and not self.unattainable and (
            not self.violations_history or self.violations_history[-1] == 0
        )


class _SecuredProblem(ACOPFProblem):
    """ACOPF problem with additional linear security rows.

    Each security row bounds ``c' (Cg pg - pd)`` (DC post-contingency flow
    estimate) on both sides; rows are linear in pg only, so the Hessian is
    untouched and the gradients append two sparse rows per constraint.
    """

    def __init__(self, net: Network, constraints: list[SecurityConstraint]) -> None:
        super().__init__(net)
        self._rows = []
        self._bounds = []
        cg = self.cg  # (nb, ng)
        for sc in constraints:
            coeff_pg = np.asarray(sc.row @ cg).ravel()  # (ng,)
            offset = float(sc.row @ self.arr.pd)  # load part, constant
            self._rows.append((coeff_pg, offset))
            self._bounds.append(sc.bound)
        self.n_sec = len(self._rows)

    def inequalities(self, x: np.ndarray):
        h, dh = super().inequalities(x)
        if not self.n_sec:
            return h, dh
        pg = x[self.sl_pg]
        rows = []
        vals = []
        for (coeff, offset), bound in zip(self._rows, self._bounds):
            flow = float(coeff @ pg) - offset
            vals.extend([flow - bound, -flow - bound])
            row = sparse.lil_matrix((1, self.nx))
            row[0, self.sl_pg] = coeff
            rows.append(row.tocsr())
            rows.append((-row).tocsr())
        h_sec = np.array(vals)
        dh_sec = sparse.vstack(rows, format="csr")
        return np.concatenate([h, h_sec]), sparse.vstack([dh, dh_sec], format="csr")

    def lagrangian_hessian(self, x, lam, mu):
        # Security rows are linear: drop their multipliers before the
        # nonlinear Hessian assembly.
        nr = 2 * len(self.rated)
        return super().lagrangian_hessian(x, lam, mu[:nr])


def _screen_violations(
    net: Network, dispatch_pu: np.ndarray, *, relief: float
) -> list[SecurityConstraint]:
    """LODF screen at a dispatch; return constraints for violated pairs."""
    arr = net.compile()
    factors = compute_factors(net)
    ptdf = factors.ptdf

    p_inj = np.zeros(arr.n_bus)
    np.add.at(p_inj, arr.gen_bus, dispatch_pu)
    p_inj -= arr.pd

    f0 = ptdf @ p_inj
    rate = arr.rate_a
    island = set(int(b) for b in factors.islanding_outages)

    # Keep only the *worst* outage per limited branch: near-parallel cuts
    # for the same corridor degenerate the master problem's active set
    # (classic constraint-generation hygiene).
    worst_by_limited: dict[int, tuple[float, SecurityConstraint]] = {}
    for k in range(arr.n_branch):
        if int(arr.branch_ids[k]) in island:
            continue
        post = f0 + factors.lodf[:, k] * f0[k]
        post[k] = 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(rate > 0, np.abs(post) / rate, 0.0)
        for l in np.flatnonzero(frac > relief):
            row = ptdf[l] + factors.lodf[l, k] * ptdf[k]
            sc = SecurityConstraint(
                outage_branch=int(arr.branch_ids[k]),
                limited_branch=int(arr.branch_ids[l]),
                row=row,
                bound=float(rate[l]) * relief,
                severity=float(frac[l]),
            )
            prev = worst_by_limited.get(sc.limited_branch)
            if prev is None or sc.severity > prev.severity:
                worst_by_limited[sc.limited_branch] = sc
    return sorted(worst_by_limited.values(), key=lambda sc: -sc.severity)


@instrument_solver("scopf")
def solve_scopf(
    net: Network,
    *,
    max_rounds: int = 8,
    relief: float = 1.0,
    max_cuts_per_round: int = 12,
    options: IPMOptions | None = None,
) -> SCOPFResult:
    """Solve the preventive security-constrained ACOPF.

    ``relief`` scales the post-contingency limit (1.0 = hard N-1 secure;
    1.1 = allow 10 % short-term emergency overload, the common operating
    practice).  Returns the secured dispatch, the security premium over
    the economic dispatch, and the set of binding security constraints.
    """
    start = time.perf_counter()
    opts = options or IPMOptions()

    base_prob = ACOPFProblem(net)
    xmin, xmax = base_prob.bounds()
    base_res = solve_ipm(
        base_prob.initial_point(), base_prob.objective, base_prob.equalities,
        base_prob.inequalities, base_prob.lagrangian_hessian, xmin, xmax, opts,
    )
    economic = _unpack(base_prob, base_res, 0.0)

    constraints: list[SecurityConstraint] = []
    unattainable: list[SecurityConstraint] = []
    seen: set[tuple[int, int]] = set()
    history: list[int] = []
    current = economic
    rounds = 0

    def _solve_master() -> OPFResult | None:
        prob = _SecuredProblem(net, constraints)
        res = solve_ipm(
            prob.initial_point(), prob.objective, prob.equalities,
            prob.inequalities, prob.lagrangian_hessian, xmin, xmax, opts,
        )
        if not res.converged:
            return None
        out = _unpack(prob, res, 0.0)
        out.method = "scopf-ipm"
        return out

    for rounds in range(1, max_rounds + 1):
        dispatch_pu = current.pg_mw / net.base_mva
        violated = _screen_violations(net, dispatch_pu, relief=relief)
        still_open = [
            sc for sc in violated
            if (sc.outage_branch, sc.limited_branch) not in seen
        ]
        history.append(len(violated))
        if not violated or not still_open:
            break
        fresh = still_open[:max_cuts_per_round]
        for sc in fresh:
            seen.add((sc.outage_branch, sc.limited_branch))
        constraints.extend(fresh)

        solved = _solve_master()
        # Some cuts may be structurally unattainable (load-driven
        # post-outage flow): drop the most severe remaining cut until the
        # master solves, and report those pairs honestly.
        while solved is None and constraints:
            worst_idx = max(
                range(len(constraints)), key=lambda i: constraints[i].severity
            )
            unattainable.append(constraints.pop(worst_idx))
            solved = _solve_master()
        if solved is None:
            break
        current = solved

    return SCOPFResult(
        opf=current,
        iterations=rounds,
        constraints=constraints,
        unattainable=unattainable,
        violations_history=history,
        security_cost=(
            current.objective_cost - economic.objective_cost
            if current.converged and economic.converged
            else float("nan")
        ),
        economic_cost=economic.objective_cost,
        runtime_s=time.perf_counter() - start,
    )
