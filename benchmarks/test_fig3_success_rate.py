"""E1 + E9 — Figure 3 (left): ACOPF-agent success rate by model.

Paper: all six models achieve 100 % success on "Solve IEEE 118" because
function calling delegates the numerics to the deterministic solver.
The harness issues the same request 5 times per model through fresh
sessions and reports the success rate plus the latency/accuracy
trade-off (E9: smaller models equal accuracy at lower latency).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.core.session import GridMindSession

RUNS = 5
CASE_REQUEST = "Solve IEEE 118"


def _run_all(paper_models) -> dict[str, dict]:
    results: dict[str, dict] = {}
    for model in paper_models:
        times = []
        successes = 0
        slips = 0
        for run in range(RUNS):
            session = GridMindSession(model=model, seed=run)
            session.ask(CASE_REQUEST)
            rec = session.last_record
            successes += int(rec.success and rec.factual_slips == 0)
            slips += rec.factual_slips
            times.append(rec.total_s)
        results[model] = {
            "success_rate": 100.0 * successes / RUNS,
            "times": times,
            "slips": slips,
        }
    return results


def test_fig3_left_success_rate(benchmark, paper_models):
    results = benchmark.pedantic(
        _run_all, args=(paper_models,), rounds=1, iterations=1
    )

    widths = [18, -12, -12, -10]
    lines = [
        fmt_row(["Model", "Paper %", "Measured %", "Slips"], widths),
        "-" * 60,
    ]
    for model in paper_models:
        lines.append(
            fmt_row(
                [model, 100.0, results[model]["success_rate"], results[model]["slips"]],
                widths,
            )
        )
    lines.append("")
    lines.append(
        "E9 latency/accuracy trade-off: mean total seconds per request "
        "(accuracy identical across models)"
    )
    for model in paper_models:
        times = results[model]["times"]
        lines.append(f"  {model:18s} {sum(times)/len(times):6.1f} s")
    emit("fig3_left_success_rate", "Fig. 3 (left) — success rate by model", lines)

    # Reproduction assertion: the paper's 100 % row must hold.
    for model in paper_models:
        assert results[model]["success_rate"] == 100.0
