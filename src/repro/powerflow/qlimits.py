"""Generator reactive-limit enforcement for the Newton power flow.

After each converged inner solve we compute the reactive output each
PV/slack bus must supply to hold its setpoint.  Buses whose aggregate
generator Q capability is exceeded are switched to PQ with Q pinned at
the violated limit — the classic outer-loop treatment.  Slack buses are
never switched (someone has to close the balance).
"""

from __future__ import annotations

import numpy as np

from ..grid.components import BusType
from ..grid.network import NetworkArrays
from ..grid.ybus import AdmittanceMatrices


def enforce_q_limits(
    arr: NetworkArrays,
    adm: AdmittanceMatrices,
    v: np.ndarray,
    sbus: np.ndarray,
    bus_type: np.ndarray,
    qg: np.ndarray,
) -> tuple[bool, np.ndarray, np.ndarray, np.ndarray]:
    """Switch violated PV buses to PQ.

    Returns ``(switched_any, sbus, bus_type, qg)`` with updated copies.
    """
    bus_type = bus_type.copy()
    sbus = sbus.copy()
    qg = qg.copy()

    s_inj = v * np.conj(adm.ybus @ v)
    switched = False

    for bus in np.flatnonzero(bus_type == int(BusType.PV)):
        rows = np.flatnonzero(arr.gen_bus == bus)
        if rows.size == 0:
            continue
        q_needed = s_inj[bus].imag + arr.qd[bus]
        q_min = arr.qmin[rows].sum()
        q_max = arr.qmax[rows].sum()
        if q_needed > q_max + 1e-9:
            pinned = q_max
        elif q_needed < q_min - 1e-9:
            pinned = q_min
        else:
            continue
        switched = True
        bus_type[bus] = int(BusType.PQ)
        # Scheduled injection at the now-PQ bus: P as before, Q at limit.
        p_sched = arr.pg0[rows].sum() - arr.pd[bus]
        sbus[bus] = p_sched + 1j * (pinned - arr.qd[bus])
        share = np.maximum(arr.qmax[rows] - arr.qmin[rows], 1e-9)
        qg[rows] = pinned * share / share.sum()

    return switched, sbus, bus_type, qg
