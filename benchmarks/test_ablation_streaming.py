"""E13 — Ablation: materialized vs streaming study pipeline at ensemble scale.

The streaming rework keeps a 10k-scenario study's parent-side footprint
at O(in-flight window x chunk + worst-K) scenario results instead of the
full ensemble.  This benchmark runs the same Monte Carlo ensemble through
the shared :class:`~repro.service.executor.StudyExecutor` twice — once
materialized (``keep_results=True``, the pre-streaming world) and once
streamed through the online reducer — and records wall-clock, the
parent-heap allocation peak (tracemalloc; process peak-RSS is monotonic
and can't be compared across phases in one process), peak resident
result records, and the progress-event count.  It asserts the acceptance
properties: identical aggregates on both paths, >= 3 progress events,
and bounded residency on the streamed run.

``GRIDMIND_E13_SCENARIOS`` scales the ensemble (the committed table was
recorded at 10 000; the default keeps tier-1 wall time modest).
"""

from __future__ import annotations

import os
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.grid.cases import load_case
from repro.scenarios import BatchStudyRunner, monte_carlo_ensemble
from repro.service import StudyExecutor

CASE = "ieee14"
N_SCENARIOS = int(os.environ.get("GRIDMIND_E13_SCENARIOS", "400"))
JOBS = 2
CHUNK = 100  # 100+ chunks at 10k -> a real progress stream
WINDOW = 4
WORST_K = 20


def _run(executor, keep: bool):
    net = load_case(CASE)
    scenarios = monte_carlo_ensemble(n=N_SCENARIOS, sigma=0.05, seed=42)
    events = []
    runner = BatchStudyRunner(
        analysis="powerflow",
        executor=executor,
        chunk_size=CHUNK,
        window=WINDOW,
        worst_k=WORST_K,
    )
    tracemalloc.start()
    tick = time.perf_counter()
    study = runner.run(
        net, scenarios, progress=events.append, keep_results=keep
    )
    wall = time.perf_counter() - tick
    _, heap_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return study, wall, heap_peak, len(events)


def test_ablation_streaming(benchmark):
    def _run_all():
        with StudyExecutor(max_workers=JOBS, window=WINDOW) as executor:
            # Warm the pool (and its content-addressed worker state) so
            # neither phase pays start-up; run materialized first.
            mat = _run(executor, keep=True)
            stream = _run(executor, keep=False)
        return mat, stream

    (mat, stream) = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    mat_study, mat_s, mat_heap, mat_events = mat
    stream_study, stream_s, stream_heap, stream_events = stream

    # Acceptance: identical aggregates (rates/counters bit-identical;
    # percentile stats share the same estimator and insertion order, so
    # they are identical too), a real progress stream, bounded residency.
    assert mat_study.aggregate().to_dict() == stream_study.aggregate().to_dict()
    assert stream_events >= 3
    assert mat_study.n_scenarios == stream_study.n_scenarios == N_SCENARIOS
    assert len(stream_study.results) == 0
    assert len(mat_study.results) == N_SCENARIOS
    assert stream_study.peak_resident_results <= WINDOW * CHUNK + WORST_K

    widths = [26, -11, -10, -14, -16, -10]
    lines = [
        fmt_row(
            ["Pipeline", "scenarios", "time (s)", "heap peak MB", "peak resident", "events"],
            widths,
        ),
        "-" * 95,
        fmt_row(
            [
                "materialized (keep all)",
                N_SCENARIOS,
                round(mat_s, 2),
                round(mat_heap / 1e6, 2),
                mat_study.peak_resident_results,
                mat_events,
            ],
            widths,
        ),
        fmt_row(
            [
                "streaming (online reduce)",
                N_SCENARIOS,
                round(stream_s, 2),
                round(stream_heap / 1e6, 2),
                stream_study.peak_resident_results,
                stream_events,
            ],
            widths,
        ),
        "",
        f"residency ratio {mat_study.peak_resident_results / max(1, stream_study.peak_resident_results):.1f}x"
        f" | heap ratio {mat_heap / max(1, stream_heap):.1f}x"
        f" | aggregates bit-identical on both paths"
        f" | {CASE}, {JOBS}-worker shared executor, chunk {CHUNK}, window {WINDOW}, worst-K {WORST_K}",
    ]
    emit(
        "ablation_streaming",
        "E13 — Streaming vs materialized study pipeline "
        f"({N_SCENARIOS}-scenario Monte Carlo)",
        lines,
    )
