"""Instrumentation bench (DESIGN.md S10): run logging and claim auditing."""

from .audit import AuditResult, audit_narration
from .runlog import RequestRecord, RunLogger

__all__ = ["AuditResult", "RequestRecord", "RunLogger", "audit_narration"]
