"""Instrumentation bench (DESIGN.md S10): logging, auditing, tracing, metrics, health."""

from .accounting import (
    current_session,
    known_sessions,
    record_chunk,
    record_study,
    record_turn,
    session_scope,
    session_usage,
)
from .audit import AuditResult, audit_narration
from .health import (
    AlertEvent,
    HealthMonitor,
    HealthReport,
    HealthRule,
    RuleResult,
    SloSpec,
    builtin_rules,
    evaluate_health,
)
from .metrics import (
    MetricsRegistry,
    get_metrics,
    render_prometheus,
    set_metrics,
    state_delta,
)
from .ringlog import RingLog
from .rollup import MetricsSampler, snapshot_registry
from .runlog import RequestRecord, RunLogger
from .trace import (
    Span,
    Tracer,
    current_trace_context,
    format_trace_report,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "AlertEvent",
    "AuditResult",
    "HealthMonitor",
    "HealthReport",
    "HealthRule",
    "MetricsRegistry",
    "MetricsSampler",
    "RequestRecord",
    "RingLog",
    "RuleResult",
    "RunLogger",
    "SloSpec",
    "Span",
    "Tracer",
    "audit_narration",
    "builtin_rules",
    "current_session",
    "current_trace_context",
    "evaluate_health",
    "format_trace_report",
    "get_metrics",
    "get_tracer",
    "known_sessions",
    "record_chunk",
    "record_study",
    "record_turn",
    "render_prometheus",
    "session_scope",
    "session_usage",
    "set_metrics",
    "set_tracer",
    "snapshot_registry",
    "state_delta",
    "tracing",
]
