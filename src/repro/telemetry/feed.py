"""Telemetry feed: time-ordered frames adapted into the scenario contract.

:class:`TelemetryStream` is the bridge between the device fleet and the
study machinery.  It yields frames in time order (optionally paced
against the wall clock), and it adapts each tick's frame batch into one
:class:`~repro.scenarios.spec.Scenario` — a
:class:`~repro.scenarios.spec.PerBusLoadScale` carrying the fleet's
per-bus net draw, tagged with the tick's coordinates (tick, hour,
hottest feeder, anomaly flag) — so the batch runner, the sliced reducer,
and the rolling-window layer all consume telemetry through the exact
interfaces they already speak.

``scenarios()`` returns a real
:class:`~repro.scenarios.stream.ScenarioStream`: lazily generated,
re-iterable (every iteration regenerates the same scenarios, because a
tick's scenario is a pure function of the tick), with a known length —
the contract every existing consumer of scenario ensembles relies on.
"""

from __future__ import annotations

import time

from ..scenarios.spec import PerBusLoadScale, Scenario
from ..scenarios.stream import ScenarioStream
from .fleet import DeviceFleet, TelemetryFrame

PACE_SIMULATED = "simulated"
PACE_WALL = "wall"

#: Default wall-pacing compression: one 15-minute tick plays in 3 s.
DEFAULT_SPEEDUP = 300.0


class TelemetryStream:
    """A bounded view of the fleet's feed: ``n_ticks`` ticks of frames.

    ``pace="simulated"`` (default) yields as fast as the consumer can
    fold; ``pace="wall"`` sleeps ``interval_s / speedup`` between ticks,
    approximating a live feed for demos and the watch CLI.  Pacing only
    shapes delivery timing — the frames and scenarios themselves are
    identical under either mode.
    """

    def __init__(
        self,
        fleet: DeviceFleet,
        n_ticks: int,
        *,
        start_tick: int = 0,
        pace: str = PACE_SIMULATED,
        speedup: float = DEFAULT_SPEEDUP,
        family: str = "telemetry",
    ) -> None:
        if n_ticks < 1:
            raise ValueError(f"n_ticks must be >= 1, got {n_ticks}")
        if start_tick < 0:
            raise ValueError(f"start_tick must be >= 0, got {start_tick}")
        if pace not in (PACE_SIMULATED, PACE_WALL):
            raise ValueError(
                f"pace must be {PACE_SIMULATED!r} or {PACE_WALL!r}, got {pace!r}"
            )
        if speedup <= 0:
            raise ValueError(f"speedup must be > 0, got {speedup}")
        self.fleet = fleet
        self.n_ticks = n_ticks
        self.start_tick = start_tick
        self.pace = pace
        self.speedup = speedup
        self.family = family

    # ------------------------------------------------------------------
    def _pace_tick(self) -> None:
        if self.pace == PACE_WALL:
            time.sleep(self.fleet.spec.interval_s / self.speedup)

    def tick_batches(self):
        """Yield ``(tick, frames)`` in time order, pacing applied."""
        for tick in range(self.start_tick, self.start_tick + self.n_ticks):
            self._pace_tick()
            yield tick, self.fleet.frames_for_tick(tick)

    def frames(self):
        """Yield individual frames in time order (device order per tick)."""
        for _tick, batch in self.tick_batches():
            yield from batch

    def __iter__(self):
        return self.frames()

    # ------------------------------------------------------------------
    def scenario_for_tick(
        self, tick: int, frames: list[TelemetryFrame] | None = None
    ) -> Scenario:
        """One tick's operating point as a plain :class:`Scenario`.

        Pure in ``tick``: re-deriving the scenario (on stream
        re-iteration, or from a late frame batch) always reproduces the
        same perturbation and tags.
        """
        fleet = self.fleet
        if frames is None:
            frames = fleet.frames_for_tick(tick)
        factors = fleet.tick_bus_factors(tick, frames)
        # The feeder whose load deviates most from nominal this tick —
        # the telemetry analogue of the zonal generators' hot_zone tag.
        deviation: dict[str, list[float]] = {}
        zones = fleet._zones
        for bus, factor in factors.items():
            deviation.setdefault(zones[bus], []).append(abs(factor - 1.0))
        hot_feeder = ""
        if deviation:
            hot_feeder = max(
                sorted(deviation),
                key=lambda z: sum(deviation[z]) / len(deviation[z]),
            )
        anomalies = sorted({f.anomaly for f in frames if f.anomaly})
        n_expected = fleet.n_devices
        tags = {
            "family": self.family,
            "tick": tick,
            "hour_of_day": int(fleet.hour_at(tick)),
            "feeder": hot_feeder,
            "anomaly": ",".join(anomalies) if anomalies else "none",
            "n_frames": len(frames),
            "n_dropped": n_expected - len(frames),
        }
        return Scenario(
            name=f"{self.family}_{tick:06d}",
            perturbations=(PerBusLoadScale(tuple(factors.items())),),
            tags=tags,
        )

    def scenarios(self) -> ScenarioStream:
        """The feed as a lazy, re-iterable scenario ensemble."""

        def factory():
            for tick, frames in self.tick_batches():
                yield self.scenario_for_tick(tick, frames)

        return ScenarioStream(factory, length=self.n_ticks, family=self.family)
