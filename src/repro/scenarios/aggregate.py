"""Ensemble aggregation: turn per-scenario results into study-level facts.

The batch runner produces one lightweight :class:`ScenarioResult` per
operating point; this module reduces the ensemble to the quantities a
study actually asks for — how often limits are violated, how the cost and
loading distributions look, and how stable the critical-contingency
ranking is across the perturbed operating points.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


def percentile_stats(values: list[float]) -> dict | None:
    """mean / p5 / p50 / p95 / min / max over ``values`` (None when empty)."""
    import numpy as np

    if not values:
        return None
    arr = np.asarray(values, dtype=float)
    return {
        "mean": float(arr.mean()),
        "p05": float(np.percentile(arr, 5)),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }


@dataclass
class StudyAggregate:
    """Cross-scenario summary of one batch study."""

    n_scenarios: int
    n_converged: int
    n_errors: int
    overload_rate: float  # fraction of converged scenarios with any overload
    voltage_violation_rate: float
    violation_rate: float  # either kind
    branch_overload_freq: dict[int, float] = field(default_factory=dict)
    cost_stats: dict | None = None
    loading_stats: dict | None = None
    min_voltage_stats: dict | None = None
    rank_stability: dict[int, float] = field(default_factory=dict)
    stable_critical: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        out = {
            "n_scenarios": self.n_scenarios,
            "n_converged": self.n_converged,
            "n_errors": self.n_errors,
            "overload_rate": round(self.overload_rate, 4),
            "voltage_violation_rate": round(self.voltage_violation_rate, 4),
            "violation_rate": round(self.violation_rate, 4),
            "branch_overload_freq": {
                str(b): round(f, 4) for b, f in self.branch_overload_freq.items()
            },
            "cost_stats": self.cost_stats,
            "loading_stats": self.loading_stats,
            "min_voltage_stats": self.min_voltage_stats,
        }
        if self.rank_stability:
            out["rank_stability"] = {
                str(b): round(f, 4) for b, f in self.rank_stability.items()
            }
            out["stable_critical"] = list(self.stable_critical)
        return out


def aggregate_study(results: list) -> StudyAggregate:
    """Reduce a list of :class:`~repro.scenarios.runner.ScenarioResult`.

    Rates are over *converged* scenarios (a diverged power flow says
    nothing about limit violations); convergence itself is reported
    separately as ``n_converged`` / ``n_errors``.
    """
    n = len(results)
    converged = [r for r in results if r.converged]
    nc = len(converged)

    overloaded = [r for r in converged if r.overloaded_branches]
    volts = [r for r in converged if r.n_voltage_violations > 0]
    either = [
        r for r in converged if r.overloaded_branches or r.n_voltage_violations > 0
    ]

    branch_hits: Counter[int] = Counter()
    for r in converged:
        for bid in set(r.overloaded_branches):
            branch_hits[bid] += 1
    branch_freq = {
        int(b): cnt / nc for b, cnt in sorted(branch_hits.items(), key=lambda kv: -kv[1])
    }

    costs = [r.objective_cost for r in converged if r.objective_cost is not None]
    loadings = [r.max_loading_percent for r in converged]
    min_vs = [r.min_voltage_pu for r in converged if r.min_voltage_pu is not None]

    # Critical-contingency rank stability: how often each branch shows up
    # in a scenario's critical list across the ensemble.
    listed = [r for r in converged if r.critical_branches is not None]
    crit_hits: Counter[int] = Counter()
    for r in listed:
        for bid in set(r.critical_branches):
            crit_hits[bid] += 1
    stability = (
        {
            int(b): cnt / len(listed)
            for b, cnt in sorted(crit_hits.items(), key=lambda kv: (-kv[1], kv[0]))
        }
        if listed
        else {}
    )
    stable = [b for b, f in stability.items() if f >= 0.5]

    return StudyAggregate(
        n_scenarios=n,
        n_converged=nc,
        n_errors=sum(1 for r in results if r.error),
        overload_rate=len(overloaded) / nc if nc else 0.0,
        voltage_violation_rate=len(volts) / nc if nc else 0.0,
        violation_rate=len(either) / nc if nc else 0.0,
        branch_overload_freq=branch_freq,
        cost_stats=percentile_stats(costs),
        loading_stats=percentile_stats(loadings),
        min_voltage_stats=percentile_stats(min_vs),
        rank_stability=stability,
        stable_critical=stable,
    )
