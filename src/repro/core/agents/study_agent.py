"""The study agent: batch scenario analysis through function tools.

Where the ACOPF and CA agents answer questions about *one* operating
point, the study agent answers questions about *families* of them:
"sweep load 80–120 %", "run a 200-draw Monte Carlo load study", "which
contingencies stay critical across the day".  Each tool expands a
compact description into scenarios via :mod:`repro.scenarios.generators`,
executes them with the :class:`~repro.scenarios.runner.BatchStudyRunner`
(process-parallel when asked), and deposits the aggregated summary into
the shared context for follow-up questions and narration.

Service-layer wiring (both optional, both duck-typed so this module
never imports :mod:`repro.service`):

* ``executor`` — a shared :class:`~repro.service.executor.StudyExecutor`;
  when present every study runs on the long-lived shared pool instead of
  a per-run one,
* ``store`` — a :class:`~repro.service.store.ResultStore`; when present
  every study's full result set is persisted under its content-hash key
  and two extra tools appear: ``compare_studies`` (diff two stored
  studies, defaulting to the most recent pair) and
  ``list_stored_studies`` — so any session, including a fresh one, can
  answer "compare today's sweep with yesterday's".
"""

from __future__ import annotations

import time

from pydantic import BaseModel, Field

from ...llm.base import LLMBackend
from ...scenarios import (
    ANALYSES,
    BatchStudyRunner,
    daily_profile,
    load_sweep,
    monte_carlo_ensemble,
    outage_combinations,
    resolve_slice_by,
    uniform_correlation,
)
from ..context import AgentContext
from ..tools import ToolError, ToolRegistry
from .base import Agent

STUDY_SYSTEM_PROMPT = """\
You are an expert power-system study agent for batch operating-point
analysis.  Your capabilities include load sweeps, Monte Carlo load
ensembles, N-2 outage combination studies, and daily load-profile
studies over the standard IEEE test cases, each evaluated with power
flow, batched linear DC screening, DCOPF, ACOPF, two-stage contingency
screening, or preventive SCOPF (secured cost distributions).  Large
ensembles stream through an
online reducer with incremental progress, so scale is not a reason to
refuse.  Studies can be *sliced* by scenario tags (hour of day, sweep
scale, hot zone) so answers break down per factor, and Monte Carlo
ensembles support zonal load correlation.  Report ensemble statistics
(violation frequencies, cost percentiles, per-slice tables,
critical-ranking stability), never single-scenario anecdotes, and never
fabricate numbers; every figure must come from structured study
results.  You can also watch a simulated live telemetry feed, folding
device frames into rolling-window studies with anomaly alerts."""

_SLICE_BY_DESCRIPTION = (
    "comma-separated tag dimensions to slice aggregates by ('hour', "
    "'scale', 'zone' ...); empty infers the family's natural dimension, "
    "'none' disables slicing"
)


class LoadSweepArgs(BaseModel):
    case_name: str = Field(description="IEEE case identifier, e.g. 'ieee118'")
    lo_percent: float = Field(default=80.0, gt=0.0, description="low end, % of base load")
    hi_percent: float = Field(default=120.0, gt=0.0, description="high end, % of base load")
    steps: int = Field(default=9, ge=2, le=201)
    analysis: str = Field(default="acopf")
    n_jobs: int = Field(default=1, ge=1, le=64)
    slice_by: str = Field(default="", description=_SLICE_BY_DESCRIPTION)


class MonteCarloArgs(BaseModel):
    case_name: str = Field(description="IEEE case identifier, e.g. 'ieee118'")
    n_scenarios: int = Field(default=200, ge=1, le=20_000)
    sigma_percent: float = Field(default=5.0, ge=0.0, le=100.0)
    seed: int = Field(default=0, ge=0)
    analysis: str = Field(default="powerflow")
    n_jobs: int = Field(default=1, ge=1, le=64)
    slice_by: str = Field(default="", description=_SLICE_BY_DESCRIPTION)
    n_zones: int = Field(
        default=0,
        ge=0,
        le=32,
        description="zonal correlated draws: partition buses into this many "
        "zones (0 = independent per-load noise)",
    )
    rho_percent: float = Field(
        default=0.0,
        ge=-100.0,
        le=100.0,
        description="inter-zone load correlation, % (used when n_zones >= 2)",
    )


class OutageStudyArgs(BaseModel):
    case_name: str = Field(description="IEEE case identifier, e.g. 'ieee118'")
    depth: int = Field(default=2, ge=1, le=3, description="outages per scenario (N-k)")
    limit: int = Field(default=50, ge=1, le=5000, description="max combinations")
    analysis: str = Field(default="powerflow")
    n_jobs: int = Field(default=1, ge=1, le=64)
    slice_by: str = Field(default="", description=_SLICE_BY_DESCRIPTION)


class CompareStudiesArgs(BaseModel):
    study_a: str = Field(
        default="",
        description="key/label of the earlier study (default: second-newest stored)",
    )
    study_b: str = Field(
        default="",
        description="key/label of the later study (default: newest stored)",
    )


class WatchTelemetryArgs(BaseModel):
    case_name: str = Field(description="IEEE case identifier, e.g. 'ieee14'")
    n_devices: int = Field(
        default=200, ge=1, le=2_000_000,
        description="simulated meters/DERs attached to the case's buses",
    )
    n_windows: int = Field(
        default=6, ge=1, le=1000, description="tumbling windows to stream"
    )
    window_ticks: int = Field(default=4, ge=1, le=288)
    anomaly_tick: int = Field(
        default=-1, ge=-1,
        description="inject a load-spike anomaly at this tick (-1 = clean feed)",
    )
    analysis: str = Field(default="powerflow")
    seed: int = Field(default=0, ge=0)


class ProfileStudyArgs(BaseModel):
    case_name: str = Field(description="IEEE case identifier, e.g. 'ieee118'")
    steps: int = Field(default=24, ge=1, le=288)
    trough_percent: float = Field(default=65.0, gt=0.0)
    peak_percent: float = Field(default=100.0, gt=0.0)
    analysis: str = Field(default="powerflow")
    n_jobs: int = Field(default=1, ge=1, le=64)
    slice_by: str = Field(default="", description=_SLICE_BY_DESCRIPTION)


def _check_analysis(analysis: str) -> None:
    if analysis not in ANALYSES:
        raise ToolError(
            f"unknown analysis {analysis!r}; use one of {sorted(ANALYSES)}"
        )


def build_study_registry(
    context: AgentContext, *, executor=None, store=None
) -> ToolRegistry:
    """Register the study agent's function tools over the shared context.

    ``executor``/``store`` are the optional service-layer collaborators
    (shared study pool, persistent result store) described in the module
    docstring; with ``store`` unset the comparison tools report that no
    store is configured instead of disappearing, so tool discovery stays
    stable across deployments.
    """
    registry = ToolRegistry()
    if store is None:
        store = context.result_store

    def _execute(
        case_name: str,
        scenarios,
        analysis: str,
        n_jobs: int,
        kind: str,
        slice_by: str = "",
        n_zones: int = 0,
    ) -> dict:
        _check_analysis(analysis)
        # "" infers the family's natural slice dimension ('hour' for
        # profiles, 'scale' for sweeps, 'hot_zone' for zonal draws),
        # "none" disables slicing, and anything else names dimensions.
        slices = resolve_slice_by(slice_by or None, kind, n_zones=n_zones)
        t0 = time.perf_counter()
        net = context.activate_case(case_name)
        runner = BatchStudyRunner(
            analysis=analysis, n_jobs=n_jobs, executor=executor, slice_by=slices
        )
        # Results stream through the online reducer chunk by chunk; the
        # full record list is retained only when a store will persist it.
        # The no-op callback turns on per-chunk progress accounting, so
        # the payload (and narration) report the streaming checkpoints.
        study = runner.run(
            net, scenarios, progress=lambda _p: None, keep_results=store is not None
        )
        payload = study.to_dict(max_scenarios=5)
        payload["study_kind"] = kind
        if slices:
            payload["slice_by"] = list(slices)
        if store is not None:
            payload["study_key"] = store.put(
                net, runner.config(), scenarios, study, study_kind=kind
            )
        context.study_summary = payload
        context.record_provenance(
            f"run_{kind}_study",
            solver=analysis,
            ok=True,
            duration_s=time.perf_counter() - t0,
            n_scenarios=study.n_scenarios,
            n_jobs=study.n_jobs,
        )
        return payload

    def _require_store():
        if store is None:
            raise ToolError(
                "no result store is configured for this session; start it "
                "through GridMindService (or pass result_store=) to persist "
                "and compare studies"
            )
        return store

    def run_load_sweep_study(
        case_name: str,
        lo_percent: float = 80.0,
        hi_percent: float = 120.0,
        steps: int = 9,
        analysis: str = "acopf",
        n_jobs: int = 1,
        slice_by: str = "",
    ) -> dict:
        if hi_percent < lo_percent:
            raise ToolError(
                f"sweep range is inverted: {lo_percent}% .. {hi_percent}%"
            )
        scenarios = load_sweep(lo_percent / 100.0, hi_percent / 100.0, steps)
        return _execute(case_name, scenarios, analysis, n_jobs, "load_sweep", slice_by)

    def run_monte_carlo_study(
        case_name: str,
        n_scenarios: int = 200,
        sigma_percent: float = 5.0,
        seed: int = 0,
        analysis: str = "powerflow",
        n_jobs: int = 1,
        slice_by: str = "",
        n_zones: int = 0,
        rho_percent: float = 0.0,
    ) -> dict:
        correlation = None
        if n_zones >= 2:
            net = context.activate_case(case_name)
            if n_zones > net.n_bus:
                raise ToolError(
                    f"n_zones={n_zones} exceeds {case_name}'s {net.n_bus} "
                    "buses; every zone must contain at least one bus"
                )
            rho = rho_percent / 100.0
            if rho < -1.0 / (n_zones - 1):
                raise ToolError(
                    f"rho {rho:g} is infeasible for {n_zones} zones (the "
                    f"equicorrelation matrix needs rho >= {-1.0 / (n_zones - 1):.3f})"
                )
            correlation = uniform_correlation(n_zones, rho)
        elif "zone" in slice_by:
            raise ToolError(
                "slicing by hot_zone requires zonal correlated draws: set "
                "n_zones >= 2 (e.g. n_zones=4, rho_percent=60) so each "
                "scenario is tagged with the zone driving its stress"
            )
        scenarios = monte_carlo_ensemble(
            n=n_scenarios,
            sigma=sigma_percent / 100.0,
            seed=seed,
            correlation=correlation,
        )
        return _execute(
            case_name, scenarios, analysis, n_jobs, "monte_carlo", slice_by, n_zones
        )

    def run_outage_study(
        case_name: str,
        depth: int = 2,
        limit: int = 50,
        analysis: str = "powerflow",
        n_jobs: int = 1,
        slice_by: str = "",
    ) -> dict:
        # activate_case is idempotent, so _execute's repeat call is free.
        net = context.activate_case(case_name)
        scenarios = outage_combinations(net, depth=depth, limit=limit)
        payload = _execute(case_name, scenarios, analysis, n_jobs, "outage", slice_by)
        payload["outage_depth"] = depth
        return payload

    def run_daily_profile_study(
        case_name: str,
        steps: int = 24,
        trough_percent: float = 65.0,
        peak_percent: float = 100.0,
        analysis: str = "powerflow",
        n_jobs: int = 1,
        slice_by: str = "",
    ) -> dict:
        if peak_percent < trough_percent:
            raise ToolError(
                f"profile band is inverted: {trough_percent}% .. {peak_percent}%"
            )
        scenarios = daily_profile(
            steps=steps, trough=trough_percent / 100.0, peak=peak_percent / 100.0
        )
        return _execute(
            case_name, scenarios, analysis, n_jobs, "daily_profile", slice_by
        )

    def watch_telemetry(
        case_name: str,
        n_devices: int = 200,
        n_windows: int = 6,
        window_ticks: int = 4,
        anomaly_tick: int = -1,
        analysis: str = "powerflow",
        seed: int = 0,
    ) -> dict:
        # Imported lazily: the telemetry layer is optional for agents that
        # never watch a feed, mirroring the service's lazy wiring.
        from ...telemetry import AnomalySpec, run_watch

        _check_analysis(analysis)
        t0 = time.perf_counter()
        net = context.activate_case(case_name)
        anomaly = None
        if anomaly_tick >= 0:
            anomaly = AnomalySpec(start_tick=anomaly_tick, duration_ticks=2)
        payload = run_watch(
            net,
            n_devices=n_devices,
            n_ticks=n_windows * window_ticks,
            window_ticks=window_ticks,
            seed=seed,
            anomaly=anomaly,
            analysis=analysis,
        )
        context.study_summary = payload
        context.record_provenance(
            "watch_telemetry",
            solver=analysis,
            ok=True,
            duration_s=time.perf_counter() - t0,
            n_scenarios=payload["n_ticks"],
            n_jobs=1,
        )
        return payload

    def get_study_status() -> dict:
        summary = context.latest_study_summary()
        if summary is None:
            return {
                "case_name": context.case_name or None,
                "study": None,
                "message": "no study has been run in this session",
            }
        return {
            "case_name": context.case_name or summary.get("case_name"),
            "study": summary,
        }

    def compare_studies(study_a: str = "", study_b: str = "") -> dict:
        t0 = time.perf_counter()
        resolved = _require_store()
        try:
            payload = resolved.compare(study_a or None, study_b or None)
        except KeyError as exc:
            raise ToolError(exc.args[0] if exc.args else str(exc)) from exc
        context.record_provenance(
            "compare_studies",
            ok=True,
            duration_s=time.perf_counter() - t0,
            study_a=payload["a"].get("key"),
            study_b=payload["b"].get("key"),
        )
        return payload

    def list_stored_studies() -> dict:
        resolved = _require_store()
        entries = resolved.list_studies()
        return {
            "n_studies": len(entries),
            # Newest first: the likelier comparison targets lead.
            "studies": [m.to_dict() for m in reversed(entries[-10:])],
        }

    registry.register(
        "run_load_sweep_study",
        "Sweep uniform load scaling across a range and analyse every point.",
        run_load_sweep_study,
        LoadSweepArgs,
    )
    registry.register(
        "run_monte_carlo_study",
        "Run a Monte Carlo load ensemble (Gaussian per-load draws) study.",
        run_monte_carlo_study,
        MonteCarloArgs,
    )
    registry.register(
        "run_outage_study",
        "Evaluate N-k branch outage combinations as a batch study.",
        run_outage_study,
        OutageStudyArgs,
    )
    registry.register(
        "run_daily_profile_study",
        "Step through a daily load profile and analyse every time point.",
        run_daily_profile_study,
        ProfileStudyArgs,
    )
    registry.register(
        "watch_telemetry",
        "Stream a simulated telemetry fleet through rolling-window studies "
        "and report per-window aggregates, anomalies, and alerts.",
        watch_telemetry,
        WatchTelemetryArgs,
    )
    registry.register(
        "get_study_status",
        "Summarise the most recent batch study (this session or the store).",
        get_study_status,
    )
    registry.register(
        "compare_studies",
        "Diff two persisted studies' ensemble aggregates (default: the "
        "two most recent in the result store).",
        compare_studies,
        CompareStudiesArgs,
    )
    registry.register(
        "list_stored_studies",
        "List studies persisted in the cross-session result store.",
        list_stored_studies,
    )
    return registry


def make_study_agent(
    backend: LLMBackend, context: AgentContext, *, executor=None, store=None
) -> Agent:
    """Assemble the study agent over a backend and shared context."""
    return Agent(
        name="study",
        system_prompt=STUDY_SYSTEM_PROMPT,
        backend=backend,
        registry=build_study_registry(context, executor=executor, store=store),
        context=context,
    )
