"""Power-system substrate: network model, case library, admittance matrices.

This package replaces the paper's pandapower dependency with a
from-scratch implementation (see DESIGN.md S1-S3).
"""

from .components import Branch, Bus, BusType, Generator, Load, NetworkMetadata
from .network import Network, NetworkArrays
from .ybus import AdmittanceMatrices, build_admittances, build_b_matrices
from . import cases, graph, io, units

__all__ = [
    "Branch",
    "Bus",
    "BusType",
    "Generator",
    "Load",
    "NetworkMetadata",
    "Network",
    "NetworkArrays",
    "AdmittanceMatrices",
    "build_admittances",
    "build_b_matrices",
    "cases",
    "graph",
    "io",
    "units",
]
