"""Typed request/response envelopes for the :class:`GridMindService` API.

Every call that crosses the service boundary is a pydantic model, so a
transport layer (HTTP, websocket, queue) can serialise it verbatim and
the service validates inputs exactly the way the tool registry validates
tool arguments.  The envelopes deliberately carry only plain data — no
network objects, no solver state — mirroring the paper's principle that
agent boundaries exchange validated structured artefacts.
"""

from __future__ import annotations

import hashlib

from pydantic import BaseModel, Field

from ..scenarios.aggregate import DEFAULT_SLICE_MAX_VALUES
from ..scenarios.generators import STUDY_FAMILY_KINDS

#: Scenario families the service can expand server-side (the shared
#: :func:`repro.scenarios.expand_study_kind` factory's vocabulary).
STUDY_KINDS = STUDY_FAMILY_KINDS


def derive_session_seed(service_seed: int, session_id: str) -> int:
    """Stable per-session seed from ``(service_seed, session_id)``.

    Hash-derived rather than counter-derived so a session's RNG stream
    depends only on its *name*, never on how many sessions were created
    before it — concurrent sessions stay individually reproducible
    regardless of creation order.
    """
    digest = hashlib.blake2b(
        f"{service_seed}\x1f{session_id}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest[:4], "big")


class AskRequest(BaseModel):
    """One conversational turn addressed to a named session."""

    session_id: str = Field(min_length=1, description="target session name")
    text: str = Field(min_length=1, description="natural-language request")
    create: bool = Field(
        default=True,
        description="create the session on first use instead of failing",
    )


class AskReply(BaseModel):
    """The service-level outcome of one turn (text + instrumentation)."""

    session_id: str
    turn: int = 0
    text: str
    agents: list[str] = Field(default_factory=list)
    ok: bool = True
    model: str = ""
    latency_virtual_s: float = 0.0
    wall_s: float = 0.0
    total_s: float = 0.0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    n_tool_calls: int = 0


class SessionUsage(BaseModel):
    """Cumulative resources a session has consumed (accounting counters).

    Mirrors :func:`repro.instrumentation.accounting.session_usage`:
    counts come from session-labelled registry counters, so the same
    numbers flow through Prometheus exposition and health snapshots.
    """

    turns: float = 0.0
    studies: float = 0.0
    chunks: float = 0.0
    scenarios: float = 0.0
    executor_seconds: float = 0.0


class SessionInfo(BaseModel):
    """Directory entry for one managed session."""

    session_id: str
    model: str
    seed: int
    n_turns: int = 0
    case_name: str | None = None
    usage: SessionUsage | None = None


class StudyRequest(BaseModel):
    """A declarative batch study submitted directly to the service.

    The same families the study agent exposes conversationally, minus the
    conversation: the service expands the family, routes it through the
    shared executor, and persists the result set when a store is attached.
    """

    case_name: str = Field(description="IEEE case identifier, e.g. 'ieee118'")
    kind: str = Field(default="monte_carlo", description=f"one of {STUDY_KINDS}")
    session_id: str | None = Field(
        default=None,
        description="session to bill this study's resource usage to "
        "(None = the unattributed '_direct' bucket)",
    )
    analysis: str = Field(default="powerflow")
    n_scenarios: int | None = Field(
        default=None,
        ge=1,
        le=20_000,
        description="draws (monte_carlo/lhs), steps (sweep/profile), cap (outage)",
    )
    lo_percent: float = Field(default=80.0, gt=0.0)
    hi_percent: float = Field(default=120.0, gt=0.0)
    sigma_percent: float = Field(default=5.0, ge=0.0, le=100.0)
    depth: int = Field(default=2, ge=1, le=3)
    seed: int = Field(default=0, ge=0)
    label: str = Field(default="", description="free-text tag kept in the store")
    n_zones: int = Field(
        default=0,
        ge=0,
        le=32,
        description="monte_carlo only: zonal correlated draws over this many "
        "contiguous bus zones (0 = independent per-load noise)",
    )
    rho_percent: float = Field(
        default=0.0,
        ge=-100.0,
        le=100.0,
        description="inter-zone load correlation, % (with n_zones >= 2)",
    )
    slice_by: list[str] | None = Field(
        default=None,
        description=(
            "tag dimensions for sliced aggregation ('hour_of_day', 'scale', "
            "'hot_zone' ...; aliases like 'hour'/'zone' accepted); None "
            "infers the family's natural dimension, [] disables slicing"
        ),
    )
    slice_max_values: int = Field(
        default=DEFAULT_SLICE_MAX_VALUES,
        ge=1,
        le=512,
        description="per-dimension cardinality cap (overflow folds into __other__)",
    )
    ac_mode: str = Field(
        default="warm",
        description="AC solve strategy: 'warm' batches injection-only "
        "powerflow chunks through the topology-cached AC kernel, 'cold' "
        "runs the legacy per-scenario solver (results agree under the "
        "parity contract; excluded from the store spec hash)",
    )


class StudyReply(BaseModel):
    """Summary of a completed study plus its persistent store key.

    ``progress`` carries the incremental per-chunk checkpoints the
    streaming pipeline emitted while the study ran (thinned to a bounded
    sample, first and last always included), so transports can replay a
    study's delivery timeline without a live callback channel.
    """

    study_key: str | None = None
    case_name: str
    analysis: str
    study_kind: str
    n_scenarios: int
    n_jobs: int = 1
    runtime_s: float = 0.0
    #: Trace id of this study's span tree when the service ran with
    #: tracing enabled (``None`` otherwise); the full trace is exported
    #: as a ``<study_key>.trace`` sidecar when a store is attached.
    trace_id: str | None = None
    #: The resolved slice dimensions the study aggregated over (post
    #: alias normalisation and family inference); the cell tables live in
    #: ``summary["aggregate"]["slices"]``.
    slice_by: list[str] = Field(default_factory=list)
    summary: dict = Field(default_factory=dict)
    n_progress_events: int = 0
    progress: list[dict] = Field(default_factory=list)
    peak_resident_results: int | None = None


class WatchRequest(BaseModel):
    """A standing windowed telemetry study submitted to the service.

    The service attaches a simulated device fleet to the case, streams
    ``n_ticks`` telemetry ticks through the rolling-window layer, and
    reports every closed window (plus the alerts it fired) as a
    :class:`WatchUpdate`.  With ``pace="simulated"`` the run is fully
    deterministic in (seed, fleet spec); ``pace="wall"`` plays the feed
    against the wall clock for live demos.
    """

    case_name: str = Field(description="IEEE case identifier, e.g. 'ieee14'")
    session_id: str = Field(
        default="watch", min_length=1,
        description="session to bill and label this watch under",
    )
    analysis: str = Field(default="powerflow")
    n_devices: int = Field(
        default=500, ge=1, le=2_000_000,
        description="simulated meters/DERs attached to the case's buses",
    )
    n_ticks: int = Field(
        default=24, ge=1, le=100_000, description="telemetry ticks to stream"
    )
    window_ticks: int = Field(default=4, ge=1, description="rolling window size")
    slide_ticks: int | None = Field(
        default=None, ge=1,
        description="window slide (None = tumbling; must divide window_ticks)",
    )
    interval_s: float = Field(
        default=900.0, gt=0.0, description="simulated seconds per tick"
    )
    sigma_percent: float = Field(default=2.0, ge=0.0, le=100.0)
    der_fraction: float = Field(default=0.25, ge=0.0, le=1.0)
    seed: int | None = Field(
        default=None, ge=0,
        description="fleet seed (None = derived from the session id)",
    )
    anomaly_tick: int | None = Field(
        default=None, ge=0,
        description="inject an anomaly starting at this tick (None = clean feed)",
    )
    anomaly_duration: int = Field(default=2, ge=1)
    anomaly_kind: str = Field(default="load_spike")
    anomaly_feeder: str | None = Field(
        default=None, description="limit the anomaly to one feeder label"
    )
    anomaly_magnitude: float = Field(default=1.8, gt=0.0)
    slice_by: list[str] = Field(
        default=["feeder", "hour_of_day"],
        description="tag dimensions each window slices its aggregate by",
    )
    pace: str = Field(
        default="simulated", pattern="^(simulated|wall)$",
        description="'simulated' streams as fast as it folds; 'wall' paces "
        "ticks against the wall clock",
    )
    speedup: float = Field(
        default=300.0, gt=0.0,
        description="wall pacing compression (interval_s / speedup per tick)",
    )
    verbosity: int = Field(default=1, ge=0, le=2)


class WatchUpdate(BaseModel):
    """One closed window, streamed live and echoed in the reply."""

    index: int
    start_tick: int
    end_tick: int  # exclusive
    n_results: int = 0
    n_anomalous: int = 0
    violation_rate: float = 0.0
    anomaly_rate: float = 0.0
    status: str = "ok"
    alerts: list[dict] = Field(default_factory=list)
    narration: str = ""


class WatchReply(BaseModel):
    """Outcome of a bounded watch run: windows, alerts, determinism digest."""

    session_id: str
    case_name: str
    analysis: str
    n_devices: int
    n_ticks: int
    n_frames: int = 0
    n_anomaly_frames: int = 0
    window_ticks: int = 1
    slide_ticks: int = 1
    n_windows: int = 0
    n_alerts: int = 0
    n_late_dropped: int = 0
    peak_open_windows: int = 0
    #: sha256 digest over the pure per-window aggregates — two runs with
    #: the same seed and fleet spec agree on this bit-for-bit.
    digest: str = ""
    status: str = "ok"
    runtime_s: float = 0.0
    updates: list[WatchUpdate] = Field(default_factory=list)
    alerts: list[dict] = Field(default_factory=list)
    narration: str = ""


def thin_progress(events: list[dict], keep: int = 12) -> list[dict]:
    """Bounded, order-preserving sample of a progress-event trail.

    Keeps the first and last events and an even spread between, so a
    10k-scenario study's hundreds of checkpoints compress to a reply-
    sized timeline without losing the endpoints.
    """
    if keep < 2:
        raise ValueError(f"need to keep at least 2 events, got {keep}")
    if len(events) <= keep:
        return list(events)
    step = (len(events) - 1) / (keep - 1)
    picked = {round(i * step) for i in range(keep)}
    picked.add(len(events) - 1)
    return [events[i] for i in sorted(picked)]
