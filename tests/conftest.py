"""Shared fixtures: cases, solved states, and session factories."""

from __future__ import annotations

import pytest

from repro.grid.cases import load_case
from repro.grid.network import Network


@pytest.fixture
def case14() -> Network:
    return load_case("ieee14")


@pytest.fixture
def case30() -> Network:
    return load_case("ieee30")


@pytest.fixture
def case57() -> Network:
    return load_case("ieee57")


@pytest.fixture
def case118() -> Network:
    return load_case("ieee118")


@pytest.fixture
def tiny_net() -> Network:
    """Hand-built 3-bus network with a known simple structure.

    bus0 (slack, gen) --- bus1 (load) --- bus2 (load, gen)
           \\____________________________/

    Triangle topology, one rated branch, quadratic costs.
    """
    net = Network()
    net.metadata.case_name = "tiny3"
    net.add_bus(bus_type=3, vm_pu=1.02)  # slack
    net.add_bus()
    net.add_bus(bus_type=2)
    net.buses[0].bus_type = 3
    from repro.grid.components import BusType

    net.buses[0].bus_type = BusType.SLACK
    net.buses[2].bus_type = BusType.PV
    net.add_gen(0, pg_mw=50.0, pmax_mw=200.0, qmin_mvar=-100, qmax_mvar=100,
                vg_pu=1.02, cost_coeffs=(0.02, 20.0, 0.0))
    net.add_gen(2, pg_mw=30.0, pmax_mw=100.0, qmin_mvar=-50, qmax_mvar=50,
                vg_pu=1.01, cost_coeffs=(0.05, 30.0, 0.0))
    net.add_load(1, pd_mw=60.0, qd_mvar=20.0)
    net.add_load(2, pd_mw=20.0, qd_mvar=5.0)
    net.add_branch(0, 1, r_pu=0.02, x_pu=0.08, b_pu=0.02, rate_a_mva=100.0)
    net.add_branch(1, 2, r_pu=0.03, x_pu=0.12, b_pu=0.01, rate_a_mva=80.0)
    net.add_branch(0, 2, r_pu=0.025, x_pu=0.1, b_pu=0.015, rate_a_mva=90.0)
    return net


@pytest.fixture
def radial_net() -> Network:
    """4-bus radial feeder: every branch is a bridge."""
    from repro.grid.components import BusType

    net = Network()
    net.metadata.case_name = "radial4"
    for i in range(4):
        net.add_bus()
    net.buses[0].bus_type = BusType.SLACK
    net.add_gen(0, pg_mw=30.0, pmax_mw=100.0, qmin_mvar=-50, qmax_mvar=50,
                cost_coeffs=(0.01, 10.0, 0.0))
    for i in range(3):
        net.add_branch(i, i + 1, r_pu=0.01, x_pu=0.05, rate_a_mva=50.0)
        net.add_load(i + 1, pd_mw=10.0, qd_mvar=3.0)
    return net


@pytest.fixture
def session_factory():
    """Factory for GridMind sessions with deterministic seeds."""
    from repro.core.session import GridMindSession

    def make(model: str = "gpt-o4-mini", seed: int = 0) -> GridMindSession:
        return GridMindSession(model=model, seed=seed)

    return make
