#!/usr/bin/env python
"""Tier-2 telemetry smoke: the watch pipeline end to end, verified.

Streams a simulated device fleet with one injected anomaly through the
rolling-window watch engine, then asserts the guarantees the telemetry
stack makes:

* window accounting adds up (every tick lands in exactly the expected
  number of windows; empty windows are emitted, none invented),
* the injected anomaly surfaces end to end: flagged frames -> window
  anomaly rate -> ``telemetry_anomaly_rate`` health rule -> CRIT alert
  -> resolution once the feed is clean again,
* memory stays bounded by the window spec, never the feed length,
* deterministic replay: a second identical run reproduces the digest
  and the alert sequence bit for bit, at two fleet sizes sharing a
  device prefix,
* ``gridmind watch --json`` exits 0 and its payload round-trips.

Exits nonzero on the first violated invariant.

Usage::

    PYTHONPATH=src python scripts/watch_smoke.py [n_devices]
"""

from __future__ import annotations

import contextlib
import io
import json
import sys

from repro.core.cli import main as cli_main
from repro.grid.cases import load_case
from repro.instrumentation.metrics import MetricsRegistry, set_metrics
from repro.telemetry import AnomalySpec, DeviceFleet, FleetSpec, run_watch

N_TICKS = 16
WINDOW = 4


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {message}")


def watch_once(net, n_devices: int) -> dict:
    set_metrics(MetricsRegistry())
    return run_watch(
        net,
        n_devices=n_devices,
        n_ticks=N_TICKS,
        window_ticks=WINDOW,
        seed=13,
        anomaly=AnomalySpec(start_tick=5, duration_ticks=3, magnitude=2.5),
    )


def main() -> int:
    n_devices = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    net = load_case("ieee14")

    out = watch_once(net, n_devices)
    print(
        f"watched ieee14: {out['n_frames']} frames, {out['n_windows']} windows, "
        f"{out['n_alerts']} alerts, digest {out['digest']}"
    )

    check(out["n_windows"] == N_TICKS // WINDOW, "every tumbling window closed")
    check(
        sum(w["n_results"] for w in out["windows"]) == N_TICKS,
        "every tick folded into exactly one tumbling window",
    )
    check(out["n_late_dropped"] == 0, "an in-order feed drops nothing")

    flagged = [w["index"] for w in out["windows"] if w["n_anomalous"]]
    check(flagged == [1], f"anomaly ticks 5-7 flag window 1 only ({flagged})")
    fired = [
        a for a in out["alerts"]
        if a["rule"] == "telemetry_anomaly_rate" and a["transition"] == "firing"
    ]
    check(
        bool(fired) and fired[0]["status"] == "crit",
        "injected anomaly fires the anomaly-rate rule CRIT",
    )
    check(
        any(
            a["rule"] == "telemetry_anomaly_rate" and a["transition"] == "resolved"
            for a in out["alerts"]
        ),
        "the alert resolves once the feed is clean again",
    )
    check(
        out["peak_open_windows"] <= 1,
        f"tumbling memory bounded by one open window ({out['peak_open_windows']})",
    )

    replay = watch_once(net, n_devices)
    check(replay["digest"] == out["digest"], "replay reproduces the digest")
    check(replay["alerts"] == out["alerts"], "replay reproduces the alert sequence")

    bigger = watch_once(net, 4 * n_devices)
    check(
        bigger["digest"] == watch_once(net, 4 * n_devices)["digest"],
        "determinism holds at the larger fleet size too",
    )
    small_fleet = DeviceFleet(net, FleetSpec(n_devices=n_devices, seed=13))
    big_fleet = DeviceFleet(net, FleetSpec(n_devices=4 * n_devices, seed=13))
    check(
        all(
            small_fleet.frame(d, t) == big_fleet.frame(d, t)
            for t in range(3)
            for d in range(n_devices)
        ),
        "shared device prefix emits identical frames at both fleet sizes",
    )

    set_metrics(MetricsRegistry())
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = cli_main(
            ["watch", "--case", "ieee14", "--devices", str(n_devices),
             "--ticks", "4", "--window", "2", "--seed", "13", "--json"]
        )
    check(code == 0, "gridmind watch --json exits 0")
    doc = json.loads(stdout.getvalue())
    check(doc["n_windows"] == 2 and doc["digest"], "CLI JSON payload round-trips")

    print("\nwatch smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
