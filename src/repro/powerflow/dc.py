"""Linearised DC power flow.

Used three ways in this repo: as the fast screening model for the
contingency engine (PTDF/LODF), as the network model inside DCOPF, and as
the "alternative algorithm" recovery path the paper's validation layer
falls back to when an AC solve fails.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.sparse import linalg as sla

from ..grid.network import Network
from ..grid.units import rad_to_deg
from ..grid.ybus import build_b_matrices
from .newton import bus_power_injections
from .solution import PowerFlowResult


def solve_dc(net: Network) -> PowerFlowResult:
    """Solve ``Bbus theta = P`` with the slack angle pinned.

    Reactive quantities are zero by construction; loading percentages use
    |P| against the MVA rating (the usual DC convention).
    """
    start = time.perf_counter()
    arr = net.compile()
    bbus, bf, pf_shift = build_b_matrices(arr)

    p_inj = bus_power_injections(arr).real
    # Phase-shift injections: Cft' * pf_shift moves shifter flow to buses.
    nl = arr.n_branch
    p_bus_shift = np.zeros(arr.n_bus)
    np.add.at(p_bus_shift, arr.f_bus, pf_shift)
    np.add.at(p_bus_shift, arr.t_bus, -pf_shift)

    slack = int(arr.slack_buses[0])
    keep = np.flatnonzero(np.arange(arr.n_bus) != slack)

    theta = np.zeros(arr.n_bus)
    theta[slack] = arr.va0[slack]
    rhs = (p_inj - p_bus_shift)[keep] - bbus[np.ix_(keep, [slack])].toarray().ravel() * theta[slack]
    theta[keep] = sla.spsolve(bbus[np.ix_(keep, keep)].tocsc(), rhs)

    p_flow = bf @ theta + pf_shift  # p.u., from->to
    base = arr.base_mva
    with np.errstate(divide="ignore", invalid="ignore"):
        loading = np.where(
            arr.rate_a > 0, 100.0 * np.abs(p_flow) / arr.rate_a, 0.0
        )

    # Lossless model: the slack units absorb any scheduled imbalance.
    gen_p = arr.pg0.copy()
    slack_rows = np.flatnonzero(arr.gen_bus == slack)
    if slack_rows.size:
        gen_p[slack_rows] += -p_inj.sum() / slack_rows.size

    zeros = np.zeros(nl)
    return PowerFlowResult(
        converged=True,
        iterations=1,
        method="dc",
        max_mismatch_pu=0.0,
        vm=np.ones(arr.n_bus),
        va_deg=rad_to_deg(theta),
        p_from_mw=p_flow * base,
        q_from_mvar=zeros.copy(),
        p_to_mw=-p_flow * base,
        q_to_mvar=zeros.copy(),
        s_from_mva=np.abs(p_flow) * base,
        s_to_mva=np.abs(p_flow) * base,
        loading_percent=loading,
        branch_ids=arr.branch_ids.copy(),
        gen_p_mw=gen_p * base,
        gen_q_mvar=np.zeros(arr.n_gen),
        gen_ids=arr.gen_ids.copy(),
        losses_mw=0.0,
        losses_mvar=0.0,
        runtime_s=time.perf_counter() - start,
        message="DC power flow (lossless linear model)",
    )
