#!/usr/bin/env python
"""Regenerate the calibrated synthetic case snapshots.

The synthetic IEEE 30/57/118/300 equivalents are deterministic but
expensive to calibrate (the generator runs repeated N-1 sweeps); this
script bakes them into ``src/repro/grid/cases/data/*.json`` so ordinary
users pay ~50 ms instead of ~2 minutes.  Run after any change to
``repro.grid.cases.synthetic``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.grid.cases.registry import TABLE2_COUNTS, generate_synthetic_case
from repro.grid.io import save_json

DATA_DIR = Path(__file__).resolve().parents[1] / "src/repro/grid/cases/data"


def main() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    for name in TABLE2_COUNTS:
        if name == "ieee14":  # genuine data, never snapshotted
            continue
        t0 = time.perf_counter()
        net = generate_synthetic_case(name)
        path = DATA_DIR / f"{name}.json"
        save_json(net, path)
        print(
            f"{name}: generated in {time.perf_counter() - t0:.1f}s -> {path} "
            f"({net.summary()})"
        )


if __name__ == "__main__":
    main()
