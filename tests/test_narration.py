"""Narration templates: grounded prose from structured payloads."""

from repro.llm import narration


ACOPF_OK = {
    "case_name": "ieee14",
    "solved": True,
    "objective_cost": 8081.52,
    "total_generation_mw": 268.3,
    "losses_mw": 9.3,
    "min_voltage_pu": 1.014,
    "max_voltage_pu": 1.06,
    "max_loading_percent": 1.3,
    "iterations": 18,
    "solver": "acopf-ipm",
    "max_mismatch_pu": 5.8e-15,
    "convergence_message": "converged in 18 iterations",
}


class TestAcopfNarration:
    def test_terse_has_cost_only(self):
        text = narration.narrate_acopf(ACOPF_OK, verbosity=0)
        assert "$8,081.52" in text
        assert "losses" not in text

    def test_normal_has_voltages(self):
        text = narration.narrate_acopf(ACOPF_OK, verbosity=1)
        assert "1.014" in text and "1.060" in text

    def test_expansive_mentions_validation(self):
        text = narration.narrate_acopf(ACOPF_OK, verbosity=2)
        assert "1e-4 pu validation" in text
        assert "18 iterations" in text

    def test_failure_is_honest(self):
        failed = dict(ACOPF_OK, solved=False, convergence_message="diverged")
        text = narration.narrate_acopf(failed, verbosity=1)
        assert "did not converge" in text
        assert "diverged" in text


class TestLoadChangeNarration:
    def test_reports_old_and_new(self):
        payload = dict(
            ACOPF_OK, bus=9, old_pd_mw=9.0, new_pd_mw=50.0, cost_delta=1707.79
        )
        text = narration.narrate_load_change(payload, verbosity=1)
        assert "was 9.0 MW" in text
        assert "50.0 MW" in text
        assert "up $1,707.79" in text

    def test_decrease_direction(self):
        payload = dict(
            ACOPF_OK, bus=9, old_pd_mw=50.0, new_pd_mw=20.0, cost_delta=-900.0
        )
        assert "down $900.00" in narration.narrate_load_change(payload, 0)


class TestContingencyNarration:
    def test_lists_ranked_entries(self):
        payload = {
            "case_name": "ieee118",
            "n_contingencies": 186,
            "n_violations": 56,
            "max_overload_percent": 160.3,
            "critical": [
                {
                    "rank": 1, "branch_id": 8, "from_bus": 2, "to_bus": 3,
                    "is_transformer": False, "severity": 40.2, "converged": True,
                    "islanded": False, "n_overloads": 3,
                    "max_loading_percent": 160.3, "min_voltage_pu": 0.95,
                    "justification": "evidence...",
                },
            ],
            "recommendations": ["Reinforce the corridor around branch 8."],
        }
        text = narration.narrate_contingency(payload, verbosity=1)
        assert "186 outages" in text
        assert "160%" in text
        assert "1. Branch 8" in text
        assert "Reinforce" in text

    def test_islanding_entry(self):
        payload = {
            "case_name": "x", "n_contingencies": 10, "n_violations": 1,
            "max_overload_percent": 0.0,
            "critical": [{
                "rank": 1, "branch_id": 2, "from_bus": 0, "to_bus": 1,
                "is_transformer": True, "severity": 1000.0, "converged": False,
                "islanded": True, "stranded_load_mw": 44.0, "n_overloads": 0,
                "max_loading_percent": 0.0, "min_voltage_pu": 1.0,
            }],
            "recommendations": [],
        }
        text = narration.narrate_contingency(payload, verbosity=0)
        assert "islands 44 MW" in text
        assert "transformer 0-1" in text


class TestOtherNarrations:
    def test_status_no_case(self):
        text = narration.narrate_status({"case_name": ""}, 1)
        assert "No case is loaded" in text

    def test_status_with_stale_solution(self):
        payload = {
            "case_name": "ieee14", "n_bus": 14, "n_gen": 5, "n_load": 11,
            "n_branch": 20, "solved": True, "objective_cost": 8081.52,
            "fresh": False, "modifications": ["bus 3 load 10 -> 20 MW"],
        }
        text = narration.narrate_status(payload, 1)
        assert "stale" in text
        assert "bus 3 load" in text

    def test_quality(self):
        payload = {
            "case_name": "ieee14", "overall_score": 8.7,
            "convergence_quality": 10.0, "constraint_satisfaction": 9.0,
            "economic_efficiency": 7.1, "system_security": 8.2,
            "recommendations": ["Solution is healthy."],
        }
        text = narration.narrate_quality(payload, 1)
        assert "8.7/10" in text

    def test_economic_impact_percent(self):
        payload = dict(
            ACOPF_OK,
            base_objective_cost=8081.52,
            objective_cost=8119.89,
            branch_desc="transformer 4-5 (branch 9)",
        )
        text = narration.narrate_economic_impact(payload, 0)
        assert "+38.37 $/h" in text or "+38.36 $/h" in text
        assert "+0.47%" in text

    def test_error_mentions_tool(self):
        text = narration.narrate_error("bus 99 does not exist", "modify_bus_load")
        assert "modify_bus_load" in text
        assert "bus 99" in text

    def test_clarifications(self):
        assert "IEEE 14" in narration.narrate_clarification("case")
        assert "bus number" in narration.narrate_clarification("bus")
        assert "branch index" in narration.narrate_clarification("branch")
