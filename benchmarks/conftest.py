"""Benchmark-suite configuration and report printing."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
import _report


@pytest.fixture(scope="session")
def paper_models() -> tuple[str, ...]:
    from repro.llm.profiles import PAPER_MODELS

    return PAPER_MODELS


def pytest_terminal_summary(terminalreporter):
    """Print the paper-vs-measured tables after capture has ended."""
    for block in _report.PENDING_BLOCKS:
        terminalreporter.write_line(block)
    _report.PENDING_BLOCKS.clear()
