"""Power-flow result container and post-solve quantities.

Converts a converged voltage vector into everything the agents and the
contingency engine consume: branch flows and loading percentages, losses,
per-generator allocations, and the mismatch diagnostics that GridMind's
validation layer checks against its 1e-4 p.u. tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..grid.network import Network, NetworkArrays
from ..grid.ybus import AdmittanceMatrices, build_admittances
from ..grid.units import rad_to_deg


@dataclass
class PowerFlowResult:
    """Outcome of one AC (or DC) power-flow solve.

    All array fields are per the compiled snapshot's ordering; powers are
    in physical units (MW / MVAr / MVA) for direct consumption by agents.
    """

    converged: bool
    iterations: int
    method: str
    max_mismatch_pu: float
    vm: np.ndarray  # (n_bus,) p.u.
    va_deg: np.ndarray  # (n_bus,)
    p_from_mw: np.ndarray  # (n_branch,)
    q_from_mvar: np.ndarray
    p_to_mw: np.ndarray
    q_to_mvar: np.ndarray
    s_from_mva: np.ndarray
    s_to_mva: np.ndarray
    loading_percent: np.ndarray  # (n_branch,) vs rate_a (0 where unrated)
    branch_ids: np.ndarray  # maps rows back to Network.branches positions
    gen_p_mw: np.ndarray  # (n_gen,) allocated outputs
    gen_q_mvar: np.ndarray
    gen_ids: np.ndarray
    losses_mw: float
    losses_mvar: float
    runtime_s: float = 0.0
    message: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def min_voltage_pu(self) -> float:
        return float(self.vm.min())

    @property
    def max_voltage_pu(self) -> float:
        return float(self.vm.max())

    @property
    def max_loading_percent(self) -> float:
        return float(self.loading_percent.max()) if self.loading_percent.size else 0.0

    def overloaded_branches(self, threshold: float = 100.0) -> list[tuple[int, float]]:
        """(branch_id, loading %) pairs above ``threshold``, worst first."""
        rows = np.flatnonzero(self.loading_percent > threshold)
        pairs = [
            (int(self.branch_ids[r]), float(self.loading_percent[r])) for r in rows
        ]
        return sorted(pairs, key=lambda p: -p[1])

    def voltage_violations(
        self, vmin: float = 0.94, vmax: float = 1.06
    ) -> list[tuple[int, float]]:
        """(bus, vm) pairs outside the band, most extreme first."""
        out = [
            (i, float(v)) for i, v in enumerate(self.vm) if v < vmin or v > vmax
        ]
        return sorted(out, key=lambda p: min(abs(p[1] - vmin), abs(p[1] - vmax)), reverse=True)


def finalize_solution(
    net: Network,
    arr: NetworkArrays,
    adm: AdmittanceMatrices,
    v: np.ndarray,
    *,
    converged: bool,
    iterations: int,
    method: str,
    max_mismatch_pu: float,
    runtime_s: float = 0.0,
    message: str = "",
) -> PowerFlowResult:
    """Assemble a :class:`PowerFlowResult` from a final voltage vector."""
    base = arr.base_mva
    sf = v[arr.f_bus] * np.conj(adm.yf @ v)
    st = v[arr.t_bus] * np.conj(adm.yt @ v)
    s_from = np.abs(sf) * base
    s_to = np.abs(st) * base
    s_worst = np.maximum(s_from, s_to)
    with np.errstate(divide="ignore", invalid="ignore"):
        loading = np.where(
            arr.rate_a > 0, 100.0 * s_worst / (arr.rate_a * base), 0.0
        )

    losses = (sf + st) * base

    gen_p, gen_q = _allocate_generation(arr, adm, v)

    return PowerFlowResult(
        converged=converged,
        iterations=iterations,
        method=method,
        max_mismatch_pu=max_mismatch_pu,
        vm=np.abs(v),
        va_deg=rad_to_deg(np.angle(v)),
        p_from_mw=sf.real * base,
        q_from_mvar=sf.imag * base,
        p_to_mw=st.real * base,
        q_to_mvar=st.imag * base,
        s_from_mva=s_from,
        s_to_mva=s_to,
        loading_percent=loading,
        branch_ids=arr.branch_ids.copy(),
        gen_p_mw=gen_p * base,
        gen_q_mvar=gen_q * base,
        gen_ids=arr.gen_ids.copy(),
        losses_mw=float(losses.real.sum()),
        losses_mvar=float(losses.imag.sum()),
        runtime_s=runtime_s,
        message=message,
    )


def _allocate_generation(
    arr: NetworkArrays, adm: AdmittanceMatrices, v: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Back out per-generator P/Q from the solved bus injections.

    At PV/slack buses the network-level injection is known; it is split
    among co-located units — P deviation goes to slack-bus units evenly,
    Q proportionally to each unit's Q range (the usual AVR-share model).
    """
    s_inj = v * np.conj(adm.ybus @ v)  # net bus injection, p.u.
    gen_p = arr.pg0.copy()
    gen_q = np.zeros(arr.n_gen)

    for bus in np.unique(arr.gen_bus):
        rows = np.flatnonzero(arr.gen_bus == bus)
        need_s = s_inj[bus] + arr.pd[bus] + 1j * arr.qd[bus]
        if arr.bus_type[bus] == 3:  # slack: absorb P mismatch too
            scheduled = gen_p[rows].sum()
            gen_p[rows] += (need_s.real - scheduled) / len(rows)
        # Split the bus's required Q among co-located units in proportion
        # to their reactive capability (AVR-share model).
        qrange = np.maximum(arr.qmax[rows] - arr.qmin[rows], 1e-9)
        gen_q[rows] = need_s.imag * qrange / qrange.sum()
    return gen_p, gen_q


def make_admittances(net: Network) -> tuple[NetworkArrays, AdmittanceMatrices]:
    """Compile the network and build its admittance operators in one step.

    The admittance build is memoised behind the network's version counter
    (the same invalidation rule as ``compile`` and the content-hash memo):
    an unmodified network pays one Ybus construction however many solver
    calls touch it — every rung of the recovery ladder, every warm-started
    ensemble scenario, every N-1 base solve reuses the cached operators.
    """
    arr = net.compile()
    memo = getattr(net, "_adm_memo", None)
    if memo is not None and memo[0] == net._version:
        return arr, memo[1]
    adm = build_admittances(arr)
    net._adm_memo = (net._version, adm)
    return arr, adm
