"""The planner agent: request decomposition and agent assignment.

Analyses a user request, segments it into ordered clauses (via the same
rule-grammar language model the simulated backend uses — the planner *is*
an LLM role in the paper), and assigns each clause to a domain agent.
Produces a :class:`WorkflowState` the coordinator executes and tracks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...instrumentation.trace import get_tracer
from ...llm.base import LLMBackend
from ...llm.latency import VirtualClock
from ...llm.nlu import Intent, parse_request
from ..schemas import WorkflowState, WorkflowStep

#: Which domain agent owns each intent.
INTENT_ROUTES: dict[Intent, str] = {
    Intent.SOLVE_CASE: "acopf",
    Intent.MODIFY_LOAD: "acopf",
    Intent.NETWORK_STATUS: "acopf",
    Intent.SOLUTION_QUALITY: "acopf",
    Intent.ECONOMIC_IMPACT: "acopf",
    Intent.RUN_CONTINGENCY: "contingency",
    Intent.ANALYZE_OUTAGE: "contingency",
    Intent.RUN_STUDY: "study",
    Intent.WATCH_TELEMETRY: "study",
    Intent.HELP: "acopf",
    Intent.UNKNOWN: "acopf",
}


@dataclass
class PlannerAgent:
    """Thin agent that turns free text into an executable workflow."""

    backend: LLMBackend
    clock: VirtualClock | None = None

    def plan(self, text: str) -> WorkflowState:
        """Decompose ``text`` into routed workflow steps.

        The intent analysis itself is one "reasoning" completion worth of
        latency — charged to the session's virtual clock through the
        backend's profile so instrumentation reflects planning cost.
        """
        with get_tracer().span("planner.plan") as span:
            self._charge_planning_latency(text)
            steps = []
            for parsed in parse_request(text):
                agent = INTENT_ROUTES.get(parsed.intent, "acopf")
                clause = parsed.text
                # Steps that inherited a case from an earlier clause carry it
                # explicitly so the downstream agent's NLU re-resolves it.
                if "inherited_case" in parsed.entities and "case" not in parsed.entities:
                    clause = f"{clause} (case {parsed.entities['inherited_case']})"
                steps.append(
                    WorkflowStep(agent=agent, clause=clause, intent=parsed.intent.value)
                )
            span.tags["n_steps"] = len(steps)
        return WorkflowState(request=text, steps=steps)

    def _charge_planning_latency(self, text: str) -> None:
        """Sample one short completion's latency from the backend profile."""
        profile = getattr(self.backend, "profile", None)
        rng = getattr(self.backend, "_rng", None)
        clock = self.clock or getattr(self.backend, "clock", None)
        if profile is None or rng is None or clock is None:
            return
        # Planning is a short structured completion: a third of a chat call.
        clock.advance(profile.chat_latency.sample(rng) / 3.0)
