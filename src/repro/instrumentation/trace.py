"""Hierarchical tracing: spans from a service request down to a worker chunk.

The opt-in half of the observability layer (the always-on half is
:mod:`~repro.instrumentation.metrics`).  A :class:`Tracer` records
:class:`Span` trees — ``trace_id``/``span_id``/``parent_id``, name,
tags, wall-clock start, duration, status — across every layer of the
stack::

    service.run_study            GridMindService (asyncio front door)
      study.run                  BatchStudyRunner
        executor.dispatch        StudyExecutor / pool / serial loop
          worker.chunk           pool worker process (re-parented)
            scenario.run         _WorkerState.run_scenario
              solve.newton       powerflow/OPF entry points
          study.reduce           parent-side chunk fold

Propagation is contextvar-based: opening a span makes it the implicit
parent for anything beneath it on the same thread/task (``asyncio`` and
``asyncio.to_thread`` both copy the context, so spans flow through the
service's thread hops untouched).  Crossing the *process-pool* boundary
is explicit: the dispatcher serialises :func:`current_trace_context`
into each chunk payload, the worker activates it
(:meth:`Tracer.activate`) so its spans are minted under the remote
parent, and the finished span dicts ride the chunk result back where
:meth:`Tracer.adopt` stitches them into the parent buffer — one
coherent trace across processes.

Tracing is off by default: the process-wide tracer starts disabled, and
a disabled tracer's :meth:`~Tracer.span` returns a shared no-op context
manager (no allocation, no clock reads) so always-on call sites cost
~an attribute check.  ``gridmind --trace`` / ``GridMindService(trace=
True)`` install a recording tracer via :func:`set_tracer`.

See also :mod:`~repro.instrumentation.runlog` (per-request summary
records) and :mod:`~repro.instrumentation.audit` (numerical-claim
checking) — the single-turn instrumentation this module generalises to
full cross-process traces.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from .ringlog import RingLog

#: Bound on retained finished spans (per tracer).  A 10k-scenario traced
#: study emits tens of thousands of scenario/solver spans; the cap keeps
#: the buffer a window rather than a leak, and the renderer tolerates
#: evicted parents.
DEFAULT_MAX_SPANS = 50_000

#: Finished-span cap for one worker-side chunk tracer: a chunk is at
#: most a few dozen scenarios, each a handful of spans.
WORKER_CHUNK_MAX_SPANS = 4_096

#: (trace_id, span_id) of the active span in this execution context —
#: shared by every tracer so activation survives tracer swaps.
_ACTIVE: contextvars.ContextVar[tuple[str, str] | None] = contextvars.ContextVar(
    "gridmind_active_span", default=None
)


@dataclass
class Span:
    """One timed, tagged node of a trace tree."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start_s: float = 0.0  # wall clock (time.time) — comparable across processes
    duration_s: float = 0.0
    status: str = "ok"  # "ok" | "error"
    error: str = ""
    pid: int = 0
    tags: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
            "status": self.status,
            "pid": self.pid,
        }
        if self.error:
            out["error"] = self.error
        if self.tags:
            out["tags"] = self.tags
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data.get("name", ""),
            trace_id=data.get("trace_id", ""),
            span_id=data.get("span_id", ""),
            parent_id=data.get("parent_id"),
            start_s=float(data.get("start_s", 0.0)),
            duration_s=float(data.get("duration_s", 0.0)),
            status=data.get("status", "ok"),
            error=data.get("error", ""),
            pid=int(data.get("pid", 0)),
            tags=dict(data.get("tags") or {}),
        )


def current_trace_context() -> tuple[str, str] | None:
    """The (trace_id, span_id) pair new child spans would parent under.

    ``None`` when no span is active — exactly what a dispatcher should
    serialise into a chunk payload: workers receiving ``None`` skip
    tracing entirely.
    """
    return _ACTIVE.get()


class _NullSpanHandle:
    """Shared do-nothing context manager for disabled tracers."""

    __slots__ = ()
    tags: dict = {}

    def __enter__(self) -> "Span":
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = Span(name="", trace_id="", span_id="")
_NULL_HANDLE = _NullSpanHandle()


class Tracer:
    """Creates, times, and buffers spans; thread-safe.

    One tracer is the process-wide default (see :func:`get_tracer`);
    workers build short-lived private tracers per chunk.
    """

    def __init__(
        self, *, enabled: bool = True, max_spans: int | None = DEFAULT_MAX_SPANS
    ) -> None:
        self.enabled = enabled
        self.buffer: RingLog[Span] = RingLog(max_spans)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # span creation
    # ------------------------------------------------------------------
    @contextmanager
    def _span_cm(self, name: str, tags: dict):
        parent = _ACTIVE.get()
        if parent is None:
            trace_id = os.urandom(8).hex()
            parent_id = None
        else:
            trace_id, parent_id = parent
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=os.urandom(8).hex(),
            parent_id=parent_id,
            start_s=time.time(),
            pid=os.getpid(),
            tags=tags,
        )
        token = _ACTIVE.set((trace_id, span.span_id))
        tick = time.perf_counter()
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.duration_s = time.perf_counter() - tick
            _ACTIVE.reset(token)
            with self._lock:
                self.buffer.append(span)

    def span(self, name: str, **tags):
        """Context manager: open a child of the active span.

        Yields the live :class:`Span` so callers can attach result tags
        (``sp.tags["converged"] = True``).  Exceptions mark the span
        ``status="error"`` and re-raise.  On a disabled tracer this is a
        shared no-op handle.
        """
        if not self.enabled:
            return _NULL_HANDLE
        return self._span_cm(name, tags)

    @contextmanager
    def activate(self, context: tuple[str, str] | None):
        """Make a *remote* (trace_id, span_id) the implicit parent.

        The worker-side half of cross-process propagation: spans opened
        inside the block parent under the dispatcher's span even though
        that span object lives in another process.
        """
        if context is None:
            yield
            return
        token = _ACTIVE.set((context[0], context[1]))
        try:
            yield
        finally:
            _ACTIVE.reset(token)

    # ------------------------------------------------------------------
    # buffer access and stitching
    # ------------------------------------------------------------------
    def record(self, span: Span) -> None:
        with self._lock:
            self.buffer.append(span)

    def adopt(self, span_dicts: list[dict] | None) -> int:
        """Stitch finished remote spans (as dicts) into this buffer."""
        if not span_dicts:
            return 0
        with self._lock:
            for data in span_dicts:
                self.buffer.append(Span.from_dict(data))
        return len(span_dicts)

    def spans(self, trace_id: str | None = None) -> list[Span]:
        """Retained finished spans, oldest first; optionally one trace."""
        with self._lock:
            all_spans = list(self.buffer)
        if trace_id is None:
            return all_spans
        return [s for s in all_spans if s.trace_id == trace_id]

    def drain_dicts(self) -> list[dict]:
        """Export-and-clear, as plain dicts (the worker→parent payload)."""
        with self._lock:
            out = [s.to_dict() for s in self.buffer]
            self.buffer.clear()
        return out

    def export_jsonl(self, path: str | Path, trace_id: str | None = None) -> int:
        """Write spans as JSON lines; returns the number written."""
        spans = self.spans(trace_id)
        with open(path, "w") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_dict(), default=str) + "\n")
        return len(spans)


@contextmanager
def worker_trace(context: tuple[str, str] | None):
    """Worker-side chunk tracing: a private tracer under a remote parent.

    Yields the chunk's tracer (disabled when ``context`` is ``None`` —
    untraced studies pay only this None check).  The caller collects
    ``tracer.drain_dicts()`` to ship spans back with the chunk results.
    Installed as the process-wide tracer for the duration so solver
    entry points deep in the call stack record into it.
    """
    tracer = Tracer(
        enabled=context is not None, max_spans=WORKER_CHUNK_MAX_SPANS
    )
    previous = set_tracer(tracer)
    try:
        with tracer.activate(context):
            yield tracer
    finally:
        set_tracer(previous)


# ----------------------------------------------------------------------
# rendering: span tree + critical-path summary
# ----------------------------------------------------------------------


def _as_spans(spans: list[Span] | list[dict]) -> list[Span]:
    return [s if isinstance(s, Span) else Span.from_dict(s) for s in spans]


def render_trace(
    spans: list[Span] | list[dict],
    *,
    max_children: int = 8,
    max_depth: int = 12,
) -> str:
    """Render a time-annotated span tree.

    Spans whose parent was evicted from the ring buffer (or belongs to
    another trace) are attached at the root.  Sibling lists longer than
    ``max_children`` are collapsed to the longest-running few plus a
    one-line rollup, so a 1k-scenario trace stays readable.
    """
    spans = _as_spans(spans)
    if not spans:
        return "(no spans)"
    by_id = {s.span_id: s for s in spans}
    children: dict[str | None, list[Span]] = {}
    for s in spans:
        parent = s.parent_id if s.parent_id in by_id else None
        children.setdefault(parent, []).append(s)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.start_s)

    origin = min(s.start_s for s in spans)
    lines: list[str] = []

    def _describe(s: Span) -> str:
        flags = ""
        if s.status != "ok":
            flags = f" !{s.status}" + (f" ({s.error})" if s.error else "")
        tag_str = ""
        if s.tags:
            shown = ", ".join(f"{k}={v}" for k, v in list(s.tags.items())[:6])
            tag_str = f" [{shown}]"
        return (
            f"{s.name}  {1e3 * s.duration_s:.1f}ms"
            f"  @+{1e3 * (s.start_s - origin):.1f}ms"
            f"  pid={s.pid}{tag_str}{flags}"
        )

    def _walk(span: Span, prefix: str, depth: int) -> None:
        lines.append(prefix + _describe(span))
        if depth >= max_depth:
            return
        kids = children.get(span.span_id, [])
        shown = kids
        if len(kids) > max_children:
            # Keep the slowest spans (the interesting ones), in time order.
            slowest = set(
                id(k) for k in sorted(kids, key=lambda s: -s.duration_s)[:max_children]
            )
            shown = [k for k in kids if id(k) in slowest]
        for kid in shown:
            _walk(kid, prefix + "  ", depth + 1)
        hidden = len(kids) - len(shown)
        if hidden:
            total = sum(k.duration_s for k in kids if id(k) not in
                        {id(s) for s in shown})
            lines.append(
                prefix + f"  ... {hidden} more span(s), {1e3 * total:.1f}ms total"
            )

    for root in children.get(None, []):
        _walk(root, "", 0)
    return "\n".join(lines)


def critical_path(spans: list[Span] | list[dict]) -> list[dict]:
    """Aggregate *self time* (duration minus child durations) by span name.

    The "where did the wall time go" table: each row reports how much of
    the trace's total was spent inside spans of one name, exclusive of
    their children — so nested wrappers don't double-count — plus call
    count and worker fan-out.
    """
    spans = _as_spans(spans)
    if not spans:
        return []
    by_id = {s.span_id: s for s in spans}
    child_time: dict[str, float] = {}
    for s in spans:
        if s.parent_id in by_id:
            child_time[s.parent_id] = child_time.get(s.parent_id, 0.0) + s.duration_s
    rows: dict[str, dict] = {}
    for s in spans:
        self_s = max(0.0, s.duration_s - child_time.get(s.span_id, 0.0))
        row = rows.setdefault(
            s.name, {"name": s.name, "self_s": 0.0, "count": 0, "pids": set()}
        )
        row["self_s"] += self_s
        row["count"] += 1
        row["pids"].add(s.pid)
    total_self = sum(r["self_s"] for r in rows.values()) or 1.0
    out = []
    for row in sorted(rows.values(), key=lambda r: -r["self_s"]):
        out.append(
            {
                "name": row["name"],
                "self_s": round(row["self_s"], 6),
                "fraction": round(row["self_s"] / total_self, 4),
                "count": row["count"],
                "n_workers": len(row["pids"]),
            }
        )
    return out


def format_trace_report(
    spans: list[Span] | list[dict],
    *,
    max_children: int = 8,
    top: int = 8,
) -> str:
    """Span tree plus the critical-path summary, ready to print."""
    spans = _as_spans(spans)
    tree = render_trace(spans, max_children=max_children)
    rows = critical_path(spans)[:top]
    if not rows:
        return tree
    lines = [tree, "", "critical path (self time by span name):"]
    for row in rows:
        workers = (
            f" across {row['n_workers']} workers" if row["n_workers"] > 1 else ""
        )
        lines.append(
            f"  {100.0 * row['fraction']:5.1f}%  {row['name']}"
            f"  ({row['count']} span(s), {row['self_s']:.3f}s{workers})"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# process-wide tracer
# ----------------------------------------------------------------------

_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled no-op unless installed)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Scoped installation of a recording tracer (tests, CLI one-shots)."""
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
