"""Deterministic synthetic IEEE-like test cases.

The paper evaluates on the PSTCA IEEE 30/57/118/300-bus cases, which are
not redistributable here; this module builds *synthetic equivalents* whose
component counts match the paper's Table 2 exactly and whose electrical
behaviour is calibrated to be useful for the same experiments:

* the base case solves (Newton-Raphson converges, voltages within limits),
* ACOPF is feasible (ratings are sized with margin over two plausible
  dispatch patterns: proportional and merit-order),
* single-branch outages produce overloads in the 110-170 % band the
  paper's contingency study reports.

Everything is seeded from the case name, so ``build_synthetic("ieee118")``
is bit-reproducible across runs and machines.  See DESIGN.md §1 for the
substitution rationale.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..components import BusType, NetworkMetadata
from ..network import Network

# Calibration targets: base-case voltages need headroom above the 0.94
# violation threshold so that N-1 voltage violations are a feature of
# severe outages, not of the base operating point.
_MIN_CALIBRATED_VM = 0.97
_MAX_CALIBRATION_ROUNDS = 18


def _seed_for(name: str) -> int:
    """Stable cross-platform seed derived from the case name."""
    return zlib.crc32(name.encode("utf-8"))


def _build_topology(
    rng: np.random.Generator, n_bus: int, n_edge: int
) -> list[tuple[int, int]]:
    """Connected multigraph-free edge list with grid-like degree profile.

    A random-order preferential-attachment spanning tree gives the hubby
    backbone real grids have; the remaining edges close meshes between
    random non-adjacent pairs, biased toward the backbone.
    """
    if n_edge < n_bus - 1:
        raise ValueError(
            f"need at least {n_bus - 1} edges to connect {n_bus} buses, got {n_edge}"
        )
    order = rng.permutation(n_bus)
    degree = np.zeros(n_bus)
    edges: list[tuple[int, int]] = []
    seen: set[frozenset[int]] = set()
    for i in range(1, n_bus):
        # Preferential attachment (sub-linear, keeps degrees grid-like).
        candidates = order[:i]
        weights = (degree[candidates] + 1.0) ** 0.6
        parent = int(rng.choice(candidates, p=weights / weights.sum()))
        child = int(order[i])
        edges.append((parent, child))
        seen.add(frozenset((parent, child)))
        degree[parent] += 1
        degree[child] += 1

    attempts = 0
    while len(edges) < n_edge:
        attempts += 1
        if attempts > 100 * n_edge:
            raise RuntimeError("could not place requested number of mesh edges")
        # Close loops at the weakest points first: real grids rarely leave
        # buses radial, and a heavily-bridged synthetic case would make
        # N-1 analysis degenerate (every outage islands something).
        leaves = np.flatnonzero(degree <= 1)
        if leaves.size:
            a = int(rng.choice(leaves))
            weights = (degree + 1.0) ** 0.4
            weights[a] = 0.0
            b = int(rng.choice(n_bus, p=weights / weights.sum()))
        else:
            weights = (degree + 1.0) ** 0.4
            a, b = (int(v) for v in rng.choice(
                n_bus, size=2, replace=False, p=weights / weights.sum()
            ))
        key = frozenset((a, b))
        if key in seen or a == b:
            continue
        edges.append((a, b))
        seen.add(key)
        degree[a] += 1
        degree[b] += 1
    return edges


def build_synthetic(
    name: str,
    n_bus: int,
    n_gen: int,
    n_load: int,
    n_line: int,
    n_trafo: int,
    mean_load_mw: float = 40.0,
    seed: int | None = None,
) -> Network:
    """Generate a calibrated synthetic case with exact component counts.

    Parameters mirror the paper's Table 2 columns.  ``mean_load_mw``
    controls system scale (the calibration loop may shave it to keep the
    base case electrically feasible).
    """
    rng = np.random.default_rng(_seed_for(name) if seed is None else seed)
    n_edge = n_line + n_trafo

    edges = _build_topology(rng, n_bus, n_edge)
    degree = np.zeros(n_bus)
    for f, t in edges:
        degree[f] += 1
        degree[t] += 1

    net = Network(
        metadata=NetworkMetadata(
            case_name=name,
            description=(
                f"Synthetic IEEE-like case: {n_bus} buses, {n_gen} gens, "
                f"{n_load} loads, {n_line} lines, {n_trafo} transformers. "
                "Generated per DESIGN.md substitution rules."
            ),
            source="repro.grid.cases.synthetic",
        )
    )
    for i in range(n_bus):
        net.add_bus(base_kv=138.0, vmin_pu=0.94, vmax_pu=1.06)

    # --- generators spread across the system with a mild hub bias: real
    # IEEE cases distribute units widely, which is what keeps post-outage
    # voltages supportable everywhere.  The largest unit's bus is slack.
    gen_weights = (degree + 0.5) ** 0.8
    gen_buses = rng.choice(
        n_bus, size=n_gen, replace=False, p=gen_weights / gen_weights.sum()
    )
    shares = rng.lognormal(mean=0.0, sigma=0.9, size=n_gen)
    shares /= shares.sum()

    # --- loads at distinct buses, sized lognormally, capped on leaves so
    # weak radial spurs don't collapse the voltage profile.
    load_buses = rng.choice(n_bus, size=n_load, replace=False)
    raw = rng.lognormal(mean=0.0, sigma=0.75, size=n_load)
    pd = raw / raw.mean() * mean_load_mw
    leaf_cap = 2.0 * mean_load_mw
    pd = np.where(degree[load_buses] <= 1, np.minimum(pd, leaf_cap), pd)
    pf = rng.uniform(0.90, 0.98, size=n_load)
    qd = pd * np.tan(np.arccos(pf))

    total_load = float(pd.sum())
    total_cap = 1.8 * total_load
    pmax = shares * total_cap
    pmax = np.maximum(pmax, 0.02 * total_cap / n_gen)  # no vanishing units

    slack_gen = int(np.argmax(pmax))
    for g in range(n_gen):
        bus = int(gen_buses[g])
        net.buses[bus].bus_type = BusType.SLACK if g == slack_gen else BusType.PV
        c2 = float(rng.uniform(0.004, 0.06) * 100.0 / max(pmax[g], 1.0))
        c1 = float(rng.uniform(15.0, 45.0))
        net.add_gen(
            bus=bus,
            pg_mw=0.0,
            pmin_mw=0.0,
            pmax_mw=float(pmax[g]),
            qmin_mvar=-(0.35 * float(pmax[g]) + 15.0),
            qmax_mvar=0.6 * float(pmax[g]) + 20.0,
            vg_pu=float(rng.uniform(1.01, 1.05)),
            cost_coeffs=(c2, c1, 0.0),
        )

    for i in range(n_load):
        net.add_load(int(load_buses[i]), pd_mw=float(pd[i]), qd_mvar=float(qd[i]))

    # Shunt support at the most reactive-heavy buses (mirrors the fixed
    # capacitor banks real cases carry).
    heavy = np.argsort(-qd)[: max(1, n_load // 4)]
    for i in heavy:
        net.buses[int(load_buses[i])].bs_mvar += 0.6 * float(qd[i])

    # --- branch electrical parameters; backbone edges (high degree ends)
    # get lower impedance, like the HV core of a real grid.
    trafo_slots = set(
        int(i) for i in rng.choice(n_edge, size=n_trafo, replace=False)
    )
    for e, (f, t) in enumerate(edges):
        strength = np.sqrt(max(min(degree[f], degree[t]), 1.0))
        if e in trafo_slots:
            x = float(rng.uniform(0.06, 0.22) / strength) + 0.02
            net.add_branch(
                f,
                t,
                r_pu=x / 20.0,
                x_pu=x,
                b_pu=0.0,
                tap=float(rng.uniform(0.96, 1.04)),
                is_transformer=True,
            )
        else:
            x = float(rng.uniform(0.03, 0.20) / strength) + 0.01
            xr = rng.uniform(2.5, 5.0)
            net.add_branch(
                f,
                t,
                r_pu=x / xr,
                x_pu=x,
                b_pu=float(rng.uniform(0.005, 0.05)),
                is_transformer=False,
            )

    _calibrate(net, rng)
    return net


# ----------------------------------------------------------------------
# calibration: make the base case solvable and the ratings interesting
# ----------------------------------------------------------------------


def _proportional_dispatch(net: Network, margin: float = 1.03) -> None:
    """Set Pg proportional to Pmax to cover load plus a loss margin."""
    total = net.total_load_mw() * margin
    cap = net.total_gen_capacity_mw()
    for g in net.gens:
        g.pg_mw = g.pmax_mw * min(total / cap, 1.0)
    net.touch()


def _merit_order_dispatch(net: Network, margin: float = 1.03) -> None:
    """Load cheapest units first (proxy for the OPF dispatch pattern)."""
    remaining = net.total_load_mw() * margin
    order = sorted(
        range(len(net.gens)), key=lambda i: net.gens[i].marginal_cost_at(0.0)
    )
    for i in order:
        g = net.gens[i]
        take = min(g.pmax_mw, max(remaining, 0.0))
        g.pg_mw = take
        remaining -= take
    net.touch()


def _solve_pf(net: Network):
    from ...powerflow import newton  # local import: avoids a package cycle

    return newton.solve_newton(net, tol=1e-8, max_iter=30)


def _add_voltage_support(net: Network, vm: np.ndarray, target: float) -> int:
    """Place capacitor banks at the saggiest buses (planner behaviour).

    Returns how many buses were compensated this round.
    """
    weak = np.flatnonzero(vm < target)
    if weak.size == 0:
        return 0
    for bus in weak:
        # Size the bank to the local deficit: ~50 MVAr per 0.01 pu short.
        net.buses[int(bus)].bs_mvar += max(5.0, (target - vm[bus]) * 5000.0 * 0.01)
    net.touch()
    return int(weak.size)


def _ac_n_minus_1_flows(
    net: Network, v_base: np.ndarray
) -> tuple[np.ndarray, list[int]]:
    """Worst AC post-outage apparent flow per branch (MVA), plus the list
    of outages that failed to converge.  Islanding outages are skipped —
    they are topological events, not flow events."""
    from ...grid import graph as gridgraph
    from ...powerflow import newton

    n_total = len(net.branches)
    worst = np.zeros(n_total)
    diverged: list[int] = []
    bridges = gridgraph.bridge_branches(net)
    for bid in net.in_service_branch_ids():
        if bid in bridges:
            continue
        net.set_branch_status(bid, False)
        try:
            res = newton.solve_newton(net, v0=v_base, max_iter=25, tol=1e-6)
            if not res.converged:
                from ...powerflow.recovery import solve_with_recovery

                res, _ = solve_with_recovery(net, tol=1e-6)
        finally:
            net.set_branch_status(bid, True)
        if not res.converged:
            diverged.append(bid)
            continue
        s_worst = np.maximum(res.s_from_mva, res.s_to_mva)
        for row, branch_id in enumerate(res.branch_ids):
            if s_worst[row] > worst[branch_id]:
                worst[branch_id] = s_worst[row]
    return worst, diverged


def _calibrate(net: Network, rng: np.random.Generator) -> None:
    """Make the case electrically sound, then design the thermal ratings.

    Stage 1 iterates dispatch + voltage support + load shaving until the
    base case solves with healthy voltages *and* every non-islanding N-1
    outage converges (no synthetic voltage-collapse artefacts).

    Stage 2 sizes ratings from observed AC flows: base/merit dispatch
    flows with >=25 % margin, then a per-branch coverage cap against the
    worst AC post-outage flow so the most severe contingencies land in
    the 110-170 % overload band the paper reports (ratings do not affect
    the flows themselves, so one refinement pass is exact).
    """
    result = None
    for round_ in range(_MAX_CALIBRATION_ROUNDS):
        _proportional_dispatch(net)
        result = _solve_pf(net)
        if not result.converged:
            net.scale_loads(0.92)
            for g in net.gens:
                g.vg_pu = min(g.vg_pu + 0.005, 1.055)
            net.touch()
            continue
        if result.vm.min() < _MIN_CALIBRATED_VM:
            if _add_voltage_support(net, result.vm, _MIN_CALIBRATED_VM) and round_ < 6:
                continue
            net.scale_loads(0.95)
            continue
        v_base = result.extras.get("v_complex")
        worst_post, diverged = _ac_n_minus_1_flows(net, v_base)
        if not diverged:
            break
        if round_ >= 7 and len(diverged) <= 2:
            # A large meshed system may keep one or two genuinely
            # collapse-prone outages no matter how much support we add —
            # the real IEEE 300 is not N-1 clean either.  Accept them;
            # the contingency engine reports them as severe outcomes.
            break
        # Post-outage collapse under specific outages: reinforce right at
        # the stressed corridor — reactive support sized to the flow that
        # must re-route — and shave a little load, then re-check.
        flow_mva = np.maximum(result.s_from_mva, result.s_to_mva)
        row_of = {int(b): i for i, b in enumerate(result.branch_ids)}
        for bid in diverged:
            br = net.branches[bid]
            support = max(20.0, 0.3 * flow_mva[row_of.get(bid, 0)])
            for bus in (br.from_bus, br.to_bus):
                net.buses[bus].bs_mvar += support
        _add_voltage_support(net, result.vm, _MIN_CALIBRATED_VM + 0.01)
        net.scale_loads(0.96 if len(diverged) >= 3 else 0.98)
        net.touch()
    else:
        raise RuntimeError(
            f"synthetic case {net.metadata.case_name!r} failed to calibrate "
            "within the round budget"
        )
    if result is None or not result.converged:
        raise RuntimeError(
            f"synthetic case {net.metadata.case_name!r} failed to calibrate: "
            "base power flow does not converge"
        )

    flows = np.maximum(np.abs(result.s_from_mva), np.abs(result.s_to_mva))

    _merit_order_dispatch(net)
    merit = _solve_pf(net)
    if merit.converged:
        merit_flows = np.maximum(np.abs(merit.s_from_mva), np.abs(merit.s_to_mva))
        flows = np.maximum(flows, merit_flows)

    arr = net.compile()
    k = rng.uniform(1.25, 1.60, size=arr.n_branch)
    # Coverage caps: the worst post-outage loading of an undersized branch
    # becomes 100*cap %, spread across ~[128, 168] %.
    cap = rng.uniform(1.28, 1.68, size=len(net.branches))
    floor_mva = 0.4 * float(np.median(flows[flows > 1e-6])) if np.any(flows > 1e-6) else 10.0
    for row, branch_id in enumerate(arr.branch_ids):
        bid = int(branch_id)
        rate = max(k[row] * flows[row], floor_mva)
        post = worst_post[bid]
        if post > rate * cap[bid]:
            rate = post / cap[bid]
        net.branches[bid].rate_a_mva = float(np.ceil(rate))

    # Leave the network in the proportional dispatch state: that is the
    # documented "initial operating point" of the synthetic cases.
    _proportional_dispatch(net)
    final = _solve_pf(net)
    if not final.converged:  # pragma: no cover - calibration guarantees this
        raise RuntimeError(
            f"synthetic case {net.metadata.case_name!r}: final state does not solve"
        )

    _ensure_opf_feasible(net)


def _ensure_opf_feasible(net: Network) -> None:
    """Remediate until the ACOPF converges on the finished case.

    A case whose power flow solves can still be AC-OPF-infeasible: the
    optimiser must hold every bus above 0.94 pu within generator Q
    capability, which the (limit-blind) power flow never checked.  A
    planner would fix that with reactive compensation where the failed
    solve sags and more AVR headroom — so that is what we do.
    """
    from ...opf.acopf import solve_acopf
    from ...opf.ipm import IPMOptions

    for _ in range(8):
        opf = solve_acopf(net, options=IPMOptions(max_iter=120))
        if opf.converged:
            return
        # Reactive relief where the failed solve sagged...
        _add_voltage_support(net, opf.vm, target=0.955)
        for g in net.gens:
            g.qmax_mvar *= 1.12
            g.qmin_mvar *= 1.12
        # ...and thermal relief on the corridors it could not decongest:
        # the optimiser's stuck iterate shows exactly which ratings pinch.
        for row, bid in enumerate(opf.branch_ids):
            if opf.loading_percent[row] > 98.0:
                flow = max(opf.s_from_mva[row], opf.s_to_mva[row])
                br = net.branches[int(bid)]
                br.rate_a_mva = max(br.rate_a_mva, float(np.ceil(flow / 0.95)))
        net.touch()
    raise RuntimeError(
        f"synthetic case {net.metadata.case_name!r}: could not reach an "
        "OPF-feasible design within the remediation budget"
    )
