"""RingLog: one capped, seq-numbered ring buffer for every audit trail.

:class:`~repro.core.tools.ToolRegistry` (tool-call audit log),
:class:`~repro.instrumentation.runlog.RunLogger` (per-request records)
and :class:`~repro.instrumentation.trace.Tracer` (finished spans) all
need the same container: a bounded window of recent entries that evicts
oldest-first while a *monotonic* sequence number keeps positions stable
across eviction.  Each used to grow its own deque + counter scheme;
``RingLog`` is the shared implementation.

Semantics:

* :meth:`append` assigns the next sequence number and returns it;
  :attr:`count` is the total ever appended (it never decreases).
* At most ``max_entries`` items are retained (``None`` = unbounded).
* :meth:`since` answers "everything at or after seq N" over the retained
  window — the consumer-cursor pattern agents use instead of list
  indices, which shift once eviction starts.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Iterable, Iterator, TypeVar

T = TypeVar("T")


class RingLog(Generic[T]):
    """Capped append-only log with monotonic sequence numbers."""

    __slots__ = ("max_entries", "_entries", "_count")

    def __init__(
        self,
        max_entries: int | None = None,
        entries: "Iterable[T] | RingLog[T]" = (),
    ) -> None:
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0 or None, got {max_entries}")
        self.max_entries = max_entries
        self._entries: deque[tuple[int, T]] = deque(maxlen=max_entries)
        if isinstance(entries, RingLog):
            # Re-capping an existing log (e.g. a registry whose cap was
            # changed at runtime) keeps both the numbering and the newest
            # entries: seqs survive, only the window shrinks.
            self._entries.extend(entries.pairs())
            self._count = entries.count
        else:
            self._count = 0
            for item in entries:
                self.append(item)

    # ------------------------------------------------------------------
    def append(self, item: T) -> int:
        """Record ``item``; returns its assigned sequence number."""
        seq = self._count
        self._count += 1
        self._entries.append((seq, item))
        return seq

    @property
    def count(self) -> int:
        """Total entries ever appended (monotonic; survives eviction)."""
        return self._count

    @property
    def first_seq(self) -> int:
        """Sequence number of the oldest retained entry (``count`` if empty)."""
        return self._entries[0][0] if self._entries else self._count

    def since(self, seq: int) -> list[T]:
        """Retained entries with sequence number >= ``seq``, oldest first."""
        return [item for s, item in self._entries if s >= seq]

    def pairs(self) -> Iterator[tuple[int, T]]:
        """(seq, entry) pairs over the retained window, oldest first."""
        return iter(self._entries)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[T]:
        return (item for _seq, item in self._entries)

    def __getitem__(self, index: int) -> T:
        return self._entries[index][1]

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RingLog(n={len(self._entries)}, count={self._count}, "
            f"max_entries={self.max_entries})"
        )

    def clear(self) -> None:
        """Drop the retained window (the monotonic count is unaffected)."""
        self._entries.clear()
