"""E18 — Ablation: batched physics kernels vs the scalar loop.

Runs the same injection-only Monte Carlo ensemble through the scalar
per-scenario path (``batch_kernels=False``: realize a network copy,
compile it, solve one RHS — per scenario) and through the chunk-level
batched kernels (vectorized injection replay against the cached base
compile, one stacked multi-RHS solve per chunk), across chunk sizes
1/8/64/256 for the ``dc`` study and a smaller sweep for two-stage
``screening``.  Both paths must produce bit-identical records (asserted
on every row); the table reports per-scenario wall.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.grid.cases import load_case
from repro.scenarios import BatchStudyRunner, monte_carlo_ensemble

CASE = "ieee118"
SIGMA = 0.05
DC_CHUNKS = (1, 8, 64, 256)
DC_N = 256
SCREEN_CASE = "ieee14"
SCREEN_N = 32
SCREEN_CHUNK = 32
SCREEN_AC_BUDGET = 3


def _records(study):
    out = []
    for r in study.results:
        d = dataclasses.asdict(r)
        d["solve_time_s"] = 0.0  # wall clock, the one non-deterministic field
        out.append(d)
    return out


def _timed(analysis, net, scns, chunk, batch, **kw):
    tick = time.perf_counter()
    study = BatchStudyRunner(
        analysis=analysis, chunk_size=chunk, batch_kernels=batch, **kw
    ).run(net, scns)
    return study, time.perf_counter() - tick


def _run_all():
    rows = []

    net = load_case(CASE)
    scns = monte_carlo_ensemble(n=DC_N, sigma=SIGMA, seed=18)
    for chunk in DC_CHUNKS:
        scalar, t_scalar = _timed("dc", net, scns, chunk, batch=False)
        batched, t_batch = _timed("dc", net, scns, chunk, batch=True)
        assert _records(scalar) == _records(batched), (
            f"dc chunk={chunk}: batched records differ from scalar"
        )
        rows.append(("dc", CASE, DC_N, chunk, t_scalar, t_batch))

    net = load_case(SCREEN_CASE)
    scns = monte_carlo_ensemble(n=SCREEN_N, sigma=SIGMA, seed=19)
    scalar, t_scalar = _timed(
        "screening", net, scns, SCREEN_CHUNK, batch=False,
        ac_budget=SCREEN_AC_BUDGET,
    )
    batched, t_batch = _timed(
        "screening", net, scns, SCREEN_CHUNK, batch=True,
        ac_budget=SCREEN_AC_BUDGET,
    )
    assert _records(scalar) == _records(batched), (
        "screening: batched records differ from scalar"
    )
    rows.append(("screening", SCREEN_CASE, SCREEN_N, SCREEN_CHUNK, t_scalar, t_batch))
    return rows


def test_ablation_batch_kernels(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    widths = [-10, -9, -5, -6, -14, -14, -8]
    lines = [
        fmt_row(
            ["analysis", "case", "n", "chunk", "scalar ms/scn", "batch ms/scn",
             "speedup"],
            widths,
        ),
        "-" * 78,
    ]
    dc_256_speedup = None
    for analysis, case, n, chunk, t_scalar, t_batch in rows:
        per_scalar = 1000.0 * t_scalar / n
        per_batch = 1000.0 * t_batch / n
        speedup = t_scalar / max(t_batch, 1e-9)
        if analysis == "dc" and chunk == 256:
            dc_256_speedup = speedup
        lines.append(
            fmt_row(
                [analysis, case, n, chunk,
                 f"{per_scalar:.3f}", f"{per_batch:.3f}", f"{speedup:.2f}x"],
                widths,
            )
        )
    lines += [
        "",
        f"{DC_N}-draw Monte Carlo (sigma {SIGMA:.0%}), serial dispatch; the "
        "scalar path pays realize + compile +",
        "one RHS solve per scenario, the batched path one vectorized "
        "injection replay + one stacked",
        "multi-RHS solve per chunk (both share the per-topology "
        "factorization cache).",
        "records are asserted bit-identical between the two paths on every row",
    ]
    emit(
        "ablation_batch_kernels",
        "E18 — batched physics kernels: scalar loop vs multi-RHS batches",
        lines,
    )

    if not os.environ.get("CI"):
        # Acceptance bar on a dedicated machine: at the 256-scenario
        # injection-only chunk the batched dc path is >= 3x faster per
        # scenario than the scalar loop.
        assert dc_256_speedup is not None
        assert dc_256_speedup >= 3.0, (
            f"batched dc at chunk 256 only {dc_256_speedup:.2f}x faster"
        )
