"""Critical-element identification: ranked contingencies with auditable
justifications.

This is the numerical half of the paper's Section 3.2.3 — the LLM layer
narrates, but every ranking decision is computed here from structured
solver outputs: severity scores, overload clusters, voltage excursions,
and recurring-bottleneck statistics, each traceable to a
:class:`ContingencyOutcome`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .nminus1 import NMinus1Report
from .outcomes import BALANCED_WEIGHTS, ContingencyOutcome, SeverityWeights


@dataclass
class RankedContingency:
    rank: int
    outcome: ContingencyOutcome
    severity: float
    justification: str


@dataclass
class CriticalElementReport:
    """Ranked criticality plus corridor-level diagnostics."""

    case_name: str
    ranked: list[RankedContingency]
    weights: SeverityWeights
    recurring_bottlenecks: list[tuple[int, int]] = field(default_factory=list)
    recommendations: list[str] = field(default_factory=list)

    @property
    def critical_branch_ids(self) -> list[int]:
        return [r.outcome.branch_id for r in self.ranked]

    @property
    def max_overload_percent(self) -> float:
        vals = [
            r.outcome.max_loading_percent
            for r in self.ranked
            if r.outcome.converged and not r.outcome.islanded
        ]
        return max(vals) if vals else 0.0


def rank_critical_elements(
    report: NMinus1Report,
    *,
    top_n: int = 5,
    weights: SeverityWeights = BALANCED_WEIGHTS,
    include_islanding: bool = True,
    metric: str = "severity",
) -> CriticalElementReport:
    """Rank outages and build evidence-based justifications.

    ``metric`` selects the analytical approach:

    * ``"severity"`` (default) — composite evidence score: overload
      clusters, voltage excursions, curtailment, islanding.
    * ``"peak_overload"`` — single worst post-contingency loading first
      (a thermally-fixated analyst); islanding and divergence rank below
      genuine thermal stress.  This is the alternative approach behind
      the paper's Table 1 divergent row.
    """
    pool = [
        o
        for o in report.outcomes
        if include_islanding or not o.islanded
    ]
    if metric == "severity":
        scored = sorted(pool, key=lambda o: -o.severity(weights))
    elif metric == "peak_overload":
        def peak_key(o) -> float:
            if o.converged and not o.islanded:
                return o.max_loading_percent
            # Non-thermal events trail genuine overloads in this mode.
            return min(99.0, o.severity(weights) / 50.0)

        scored = sorted(pool, key=lambda o: -peak_key(o))
    else:
        raise ValueError(
            f"unknown ranking metric {metric!r}; use 'severity' or 'peak_overload'"
        )

    bottleneck_counter: Counter[int] = Counter()
    for o in report.outcomes:
        for bid, _pct in o.overloads:
            bottleneck_counter[bid] += 1
    recurring = bottleneck_counter.most_common(5)

    ranked = []
    for i, o in enumerate(scored[:top_n], start=1):
        ranked.append(
            RankedContingency(
                rank=i,
                outcome=o,
                severity=o.severity(weights),
                justification=_justify(o, scored, i, weights),
            )
        )

    return CriticalElementReport(
        case_name=report.case_name,
        ranked=ranked,
        weights=weights,
        recurring_bottlenecks=recurring,
        recommendations=_recommend(ranked, recurring),
    )


def _justify(
    o: ContingencyOutcome,
    scored: list[ContingencyOutcome],
    rank: int,
    weights: SeverityWeights,
) -> str:
    """Comparative justification in the paper's narration style."""
    base = o.summary_line()
    if rank < len(scored):
        nxt = scored[rank]  # the outcome ranked immediately below
        if nxt.severity(weights) > 0:
            return (
                f"{base} Ranks #{rank}: severity {o.severity(weights):.1f} vs "
                f"{nxt.severity(weights):.1f} for the next contingency "
                f"(branch {nxt.branch_id}, {nxt.n_overloads} overload(s), "
                f"min voltage {nxt.min_voltage_pu:.3f} pu)."
            )
    return f"{base} Ranks #{rank} with severity {o.severity(weights):.1f}."


def _recommend(
    ranked: list[RankedContingency], recurring: list[tuple[int, int]]
) -> list[str]:
    """Actionable mitigation suggestions (Section 3.2.3's output)."""
    recs: list[str] = []
    for r in ranked[:3]:
        o = r.outcome
        if o.islanded:
            recs.append(
                f"Branch {o.branch_id} ({o.from_bus}-{o.to_bus}) is radial: add a "
                f"parallel tie or local generation to cover {o.stranded_load_mw:.0f} MW "
                "of stranded load."
            )
        elif o.overloads:
            worst_bid, worst_pct = o.overloads[0]
            recs.append(
                f"Reinforce the corridor around branch {worst_bid} (reaches "
                f"{worst_pct:.0f}% after losing branch {o.branch_id}): uprate the "
                "conductor or add a parallel circuit."
            )
        elif o.voltage_violations:
            bus, vm = o.voltage_violations[0]
            recs.append(
                f"Add reactive support near bus {bus} (drops to {vm:.3f} pu after "
                f"losing branch {o.branch_id}): capacitor bank or SVC."
            )
    if recurring:
        top_bid, count = recurring[0]
        if count >= 2:
            recs.append(
                f"Branch {top_bid} overloads under {count} different outages — a "
                "recurring bottleneck; prioritise it for capacity expansion."
            )
    if not recs:
        recs.append("No post-contingency violations found: the system is N-1 secure "
                    "at this operating point.")
    return recs
