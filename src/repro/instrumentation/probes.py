"""Solver probes: one decorator giving every solver a span + metrics.

Solver entry points (:func:`~repro.powerflow.newton.solve_newton`,
:func:`~repro.opf.dcopf.solve_dcopf`, :func:`~repro.opf.acopf.solve_acopf`,
:func:`~repro.opf.scopf.solve_scopf`) are the leaves of every trace and
the densest metric source — a 10k-scenario study calls them 10k+ times.
:func:`instrument_solver` wraps one with a ``solve.<name>`` span (no-op
when tracing is off) and always-on counters/histograms: invocations and
convergence failures by solver, iterations to convergence, and wall
seconds.  Solvers report non-convergence in their result object rather
than raising, so the probe reads ``converged``/``iterations`` off the
return value.
"""

from __future__ import annotations

import functools
import time

from .metrics import ITERATION_BUCKETS, get_metrics
from .trace import get_tracer


def instrument_solver(solver: str):
    """Decorate a solver entry point with tracing + always-on metrics."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tick = time.perf_counter()
            with get_tracer().span(f"solve.{solver}") as span:
                res = fn(*args, **kwargs)
                converged = bool(getattr(res, "converged", True))
                iterations = getattr(res, "iterations", None)
                span.tags["converged"] = converged
                if iterations is not None:
                    span.tags["iterations"] = iterations
                if not converged:
                    span.status = "error"
                    span.error = "did not converge"
            elapsed = time.perf_counter() - tick
            metrics = get_metrics()
            metrics.counter(
                "gridmind_solver_invocations_total",
                "Solver calls by kind and outcome",
            ).inc(solver=solver, converged=converged)
            if not converged:
                metrics.counter(
                    "gridmind_solver_failures_total", "Non-converged solver calls"
                ).inc(solver=solver)
            if iterations is not None:
                metrics.histogram(
                    "gridmind_solver_iterations",
                    "Iterations to convergence",
                    buckets=ITERATION_BUCKETS,
                ).observe(float(iterations), solver=solver)
            metrics.histogram(
                "gridmind_solver_seconds", "Solver wall time"
            ).observe(elapsed, solver=solver)
            return res

        return wrapper

    return decorate
