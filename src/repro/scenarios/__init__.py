"""Scenario engine: declarative operating-point studies at ensemble scale.

The study workflow the paper motivates ("adjust load levels, re-solve,
inspect impacts") made batch-first:

* :mod:`repro.scenarios.spec` — perturbation records and :class:`Scenario`,
* :mod:`repro.scenarios.stream` — :class:`ScenarioStream`, the lazy
  re-iterable ensemble representation with per-index child seeds,
* :mod:`repro.scenarios.generators` — families (sweep, Monte Carlo, LHS,
  N-2 combinations, daily profile, factorial crosses) expanded lazily
  from compact descriptions,
* :mod:`repro.scenarios.runner` — :class:`BatchStudyRunner` with
  process-pool parallelism, bounded-window streaming dispatch, and
  per-worker cache reuse,
* :mod:`repro.scenarios.aggregate` — online :class:`StudyReducer`
  ensemble statistics (violation frequencies, exact-or-P²-sketched cost
  percentiles, critical-ranking stability).

Quickstart::

    from repro import load_case
    from repro.scenarios import BatchStudyRunner, monte_carlo_ensemble

    study = BatchStudyRunner(analysis="powerflow", n_jobs=4).run(
        load_case("ieee118"), monte_carlo_ensemble(n=200, sigma=0.05, seed=1)
    )
    print(study.aggregate().to_dict())
"""

from .aggregate import (
    EXACT_STATS_CAP,
    P2Quantile,
    StreamingStats,
    StudyAggregate,
    StudyReducer,
    aggregate_study,
    percentile_stats,
)
from .generators import (
    STUDY_FAMILY_KINDS,
    daily_profile,
    expand_study_kind,
    factorial,
    latin_hypercube,
    load_sweep,
    monte_carlo_ensemble,
    outage_combinations,
    with_branch_outage,
)
from .runner import (
    ANALYSES,
    BatchStudyRunner,
    ScenarioResult,
    StudyConfig,
    StudyProgress,
    StudyResult,
)
from .spec import (
    BranchOutage,
    GaussianLoadNoise,
    GeneratorOutage,
    PerBusLoadScale,
    Perturbation,
    RenewableInjection,
    Scenario,
    ScenarioError,
    UniformLoadScale,
)
from .stream import ScenarioStream, as_stream, child_seed, stream_length

__all__ = [
    "ANALYSES",
    "EXACT_STATS_CAP",
    "BatchStudyRunner",
    "BranchOutage",
    "GaussianLoadNoise",
    "GeneratorOutage",
    "P2Quantile",
    "PerBusLoadScale",
    "Perturbation",
    "RenewableInjection",
    "Scenario",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioStream",
    "STUDY_FAMILY_KINDS",
    "StreamingStats",
    "StudyAggregate",
    "StudyConfig",
    "StudyProgress",
    "StudyReducer",
    "StudyResult",
    "UniformLoadScale",
    "aggregate_study",
    "as_stream",
    "child_seed",
    "daily_profile",
    "expand_study_kind",
    "factorial",
    "latin_hypercube",
    "load_sweep",
    "monte_carlo_ensemble",
    "outage_combinations",
    "percentile_stats",
    "stream_length",
    "with_branch_outage",
]
