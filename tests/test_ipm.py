"""Generic interior-point solver on analytic problems with known optima."""

import numpy as np
import pytest
from scipy import sparse

from repro.opf.ipm import IPMOptions, solve_ipm


def _qp_problem():
    """min (x-2)^2 + (y-1)^2  s.t. x + y = 2, x - y <= 2, 0<=x,y<=3.

    Unconstrained optimum (2,1) satisfies x+y=3 != 2, so the equality is
    active: optimum on x+y=2 closest to (2,1) is (1.5, 0.5), where the
    inequality x-y=1 <= 2 is strictly inactive (non-degenerate).
    """

    def f(x):
        g = np.array([2 * (x[0] - 2), 2 * (x[1] - 1)])
        return (x[0] - 2) ** 2 + (x[1] - 1) ** 2, g

    def geq(x):
        return np.array([x[0] + x[1] - 2.0]), sparse.csr_matrix([[1.0, 1.0]])

    def h(x):
        return np.array([x[0] - x[1] - 2.0]), sparse.csr_matrix([[1.0, -1.0]])

    def hess(x, lam, mu):
        return sparse.csr_matrix(2.0 * np.eye(2))

    return f, geq, h, hess


def test_qp_known_solution():
    f, g, h, hess = _qp_problem()
    res = solve_ipm(
        np.array([0.5, 0.5]), f, g, h, hess,
        xmin=np.zeros(2), xmax=np.full(2, 3.0),
    )
    assert res.converged
    assert res.x == pytest.approx([1.5, 0.5], abs=1e-5)


def test_qp_equality_multiplier():
    """lambda for x+y=2 is -d f/d rhs = -(2(x-2)+... ) -> analytic value 1."""
    f, g, h, hess = _qp_problem()
    res = solve_ipm(
        np.array([0.5, 0.5]), f, g, h, hess,
        xmin=np.zeros(2), xmax=np.full(2, 3.0),
    )
    # KKT: grad f + lam * [1,1] = 0 at optimum -> lam = -2(x-2) = 1.
    assert res.lam_eq[0] == pytest.approx(1.0, abs=1e-4)


def test_active_inequality():
    """min x^2+y^2 s.t. (none), x+y<=? -> make the ineq active:
    min (x-3)^2 + (y-3)^2 s.t. x + y <= 2: optimum (1,1), mu = 4."""

    def f(x):
        return ((x[0] - 3) ** 2 + (x[1] - 3) ** 2,
                np.array([2 * (x[0] - 3), 2 * (x[1] - 3)]))

    def g(x):
        return np.empty(0), sparse.csr_matrix((0, 2))

    def h(x):
        return np.array([x[0] + x[1] - 2.0]), sparse.csr_matrix([[1.0, 1.0]])

    def hess(x, lam, mu):
        return sparse.csr_matrix(2.0 * np.eye(2))

    res = solve_ipm(
        np.zeros(2), f, g, h, hess,
        xmin=np.full(2, -np.inf), xmax=np.full(2, np.inf),
    )
    assert res.converged
    assert res.x == pytest.approx([1.0, 1.0], abs=1e-5)
    assert res.mu_ineq[0] == pytest.approx(4.0, abs=1e-3)


def test_bounds_only_problem():
    """min (x+1)^2 with 0 <= x <= 5 -> optimum at the bound x=0."""

    def f(x):
        return (x[0] + 1) ** 2, np.array([2 * (x[0] + 1)])

    def g(x):
        return np.empty(0), sparse.csr_matrix((0, 1))

    def h(x):
        return np.empty(0), sparse.csr_matrix((0, 1))

    def hess(x, lam, mu):
        return sparse.csr_matrix([[2.0]])

    res = solve_ipm(np.array([2.0]), f, g, h, hess,
                    xmin=np.zeros(1), xmax=np.full(1, 5.0))
    assert res.converged
    assert res.x[0] == pytest.approx(0.0, abs=1e-5)
    # Lower-bound multiplier equals the gradient magnitude at the bound.
    assert res.mu_lower[0] == pytest.approx(2.0, abs=1e-3)


def test_infinite_bounds_excluded():
    """Rows with infinite bounds must not enter the inequality set."""

    def f(x):
        return float(x @ x), 2 * x

    def g(x):
        return np.empty(0), sparse.csr_matrix((0, 3))

    def h(x):
        return np.empty(0), sparse.csr_matrix((0, 3))

    def hess(x, lam, mu):
        return sparse.csr_matrix(2.0 * np.eye(3))

    xmin = np.array([-np.inf, 0.5, -np.inf])
    xmax = np.array([np.inf, np.inf, 2.0])
    res = solve_ipm(np.array([1.0, 1.0, 1.0]), f, g, h, hess, xmin, xmax)
    assert res.converged
    assert res.x == pytest.approx([0.0, 0.5, 0.0], abs=1e-5)


def test_max_iter_respected():
    f, g, h, hess = _qp_problem()
    res = solve_ipm(
        np.array([0.5, 0.5]), f, g, h, hess,
        xmin=np.zeros(2), xmax=np.full(2, 3.0),
        options=IPMOptions(max_iter=1),
    )
    assert not res.converged
    assert res.iterations == 1
    assert "did not converge" in res.message


def test_history_recorded():
    f, g, h, hess = _qp_problem()
    res = solve_ipm(
        np.array([0.5, 0.5]), f, g, h, hess,
        xmin=np.zeros(2), xmax=np.full(2, 3.0),
    )
    assert len(res.history) == res.iterations
    assert all("feascond" in h for h in res.history)
    # Feasibility should be monotonically driven down overall.
    assert res.history[-1]["feascond"] < res.history[0]["feascond"] + 1e-12
