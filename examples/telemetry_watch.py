#!/usr/bin/env python
"""Live telemetry watch: fleet -> rolling windows -> alert -> narration.

A bounded tour of the telemetry layer on the simulated clock:

* attach a 120-device simulated fleet (meters + DERs) to ieee14,
* inject one load-spike anomaly mid-feed (ticks 9-11, x2.5),
* stream 24 ticks through the rolling-window study (6 tumbling
  4-tick windows), printing each window's narration as it closes,
* show the anomaly surfacing as a CRIT alert on ``telemetry_anomaly_rate``
  and resolving once the feed is clean again,
* re-run the identical watch and verify the determinism digest matches
  bit for bit.

Run:  PYTHONPATH=src python examples/telemetry_watch.py
"""

from __future__ import annotations

from repro import load_case
from repro.llm.narration import narrate_watch, narrate_watch_window
from repro.telemetry import AnomalySpec, run_watch

N_WINDOWS = 6
WINDOW_TICKS = 4


def watch_once(net, *, live: bool = False) -> dict:
    def on_window(update: dict) -> None:
        if live:
            print(narrate_watch_window(update, verbosity=1))

    return run_watch(
        net,
        n_devices=120,
        n_ticks=N_WINDOWS * WINDOW_TICKS,
        window_ticks=WINDOW_TICKS,
        seed=7,
        anomaly=AnomalySpec(start_tick=9, duration_ticks=3, magnitude=2.5),
        on_window=on_window,
    )


def main() -> None:
    print("=" * 70)
    print(f"Watching ieee14: {N_WINDOWS} windows of {WINDOW_TICKS} ticks, "
          "one injected load spike")
    print("=" * 70)
    net = load_case("ieee14")
    out = watch_once(net, live=True)

    print()
    print(narrate_watch(out, verbosity=2))

    fired = [a for a in out["alerts"]
             if a["rule"] == "telemetry_anomaly_rate" and a["transition"] == "firing"]
    assert fired, "the injected anomaly must surface as an anomaly-rate alert"
    print(f"\nanomaly chain verified: {out['n_anomaly_frames']} flagged frames "
          f"-> window {next(w['index'] for w in out['windows'] if w['n_anomalous'])} "
          f"-> {fired[0]['rule']} went {fired[0]['status'].upper()}")

    replay = watch_once(net)
    assert replay["digest"] == out["digest"], "simulated-clock watches replay bit-for-bit"
    print(f"determinism: replay digest {replay['digest']} == first run "
          f"(peak open windows {out['peak_open_windows']})")


if __name__ == "__main__":
    main()
