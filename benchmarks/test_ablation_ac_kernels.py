"""E19 — Ablation: the warm AC kernel vs the cold per-scenario solver.

Runs the same injection-only Monte Carlo ensemble through the
``powerflow`` study three ways, across chunk sizes 1/8/64/256:

* ``cold``     — the legacy path: realize a network copy, build Ybus,
  flat-ish Newton from ``vm0``, per scenario (``ac_mode="cold"``),
* ``warm``     — the topology-cached kernel with the vectorized
  mismatch screen and warm-started Newton polish, but no fast-decoupled
  sweeps (``ac_fd_sweeps=0``): isolates the warm-start win,
* ``warm+fd``  — the full fast path (``ac_fd_sweeps=8``): multi-RHS
  fast-decoupled corrector sweeps through the cached B'/B'' SuperLU
  factorizations walk each iterate in before Newton polishes, which
  collapses the polish to (usually) a single mismatch check.

Every warm run is asserted against the cold run under the parity
contract (identical convergence and violation sets, numerics within
1e-6 — Newton iterates are path-dependent, so bit-identity is not the
bar; see ``tests/test_ac_fastpath.py``).  The table reports per-scenario
wall and the mean Newton iterations billed per scenario, read off the
``gridmind_ac_newton_iterations`` histogram.
"""

from __future__ import annotations

import math
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _report import emit, fmt_row

from repro.grid.cases import load_case
from repro.instrumentation.metrics import (
    ITERATION_BUCKETS,
    MetricsRegistry,
    set_metrics,
)
from repro.scenarios import BatchStudyRunner, monte_carlo_ensemble

CASE = "ieee118"
SIGMA = 0.05
N = 256
CHUNKS = (1, 8, 64, 256)
MODES = (("cold", "cold", 0), ("warm", "warm", 0), ("warm+fd", "warm", 8))


def _timed(net, scns, chunk, *, ac_mode, fd_sweeps):
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        tick = time.perf_counter()
        study = BatchStudyRunner(
            analysis="powerflow", chunk_size=chunk,
            ac_mode=ac_mode, ac_fd_sweeps=fd_sweeps,
        ).run(net, scns)
        wall = time.perf_counter() - tick
    finally:
        set_metrics(previous)
    hist = registry.histogram(
        "gridmind_ac_newton_iterations", buckets=ITERATION_BUCKETS
    )
    label = "cold" if ac_mode == "cold" else "warm"
    iters = (
        hist.sum(mode=label) / hist.count(mode=label)
        if hist.count(mode=label)
        else 0.0
    )
    return study, wall, iters


def _assert_parity(warm, cold, what):
    assert len(warm.results) == len(cold.results) == N, what
    for w, c in zip(warm.results, cold.results):
        assert w.name == c.name and w.converged == c.converged, what
        assert w.overloaded_branches == c.overloaded_branches, what
        assert w.n_voltage_violations == c.n_voltage_violations, what
        assert math.isclose(
            w.max_loading_percent, c.max_loading_percent, abs_tol=1e-4
        ), what
        assert math.isclose(w.min_voltage_pu, c.min_voltage_pu, abs_tol=1e-6), what
        assert math.isclose(w.losses_mw, c.losses_mw, abs_tol=1e-4), what


def _run_all():
    net = load_case(CASE)
    scns = monte_carlo_ensemble(n=N, sigma=SIGMA, seed=19)
    rows = []
    for chunk in CHUNKS:
        runs = {}
        for label, ac_mode, fd in MODES:
            study, wall, iters = _timed(
                net, scns, chunk, ac_mode=ac_mode, fd_sweeps=fd
            )
            runs[label] = study
            rows.append((label, chunk, wall, iters))
        for label in ("warm", "warm+fd"):
            _assert_parity(
                runs[label], runs["cold"], f"{label} chunk={chunk}"
            )
    return rows


def test_ablation_ac_kernels(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    cold_wall = {chunk: wall for label, chunk, wall, _ in rows if label == "cold"}
    widths = [-9, -6, -13, -12, -11, -8]
    lines = [
        fmt_row(
            ["mode", "chunk", "wall ms/scn", "mean iters", "vs cold", "speedup"],
            widths,
        ),
        "-" * 68,
    ]
    fd64_speedup = None
    for label, chunk, wall, iters in rows:
        speedup = cold_wall[chunk] / max(wall, 1e-9)
        if label == "warm+fd" and chunk == 64:
            fd64_speedup = speedup
        lines.append(
            fmt_row(
                [label, chunk, f"{1000.0 * wall / N:.3f}", f"{iters:.2f}",
                 f"{1000.0 * (wall - cold_wall[chunk]) / N:+.3f}",
                 f"{speedup:.2f}x"],
                widths,
            )
        )
    lines += [
        "",
        f"{N}-draw Monte Carlo (sigma {SIGMA:.0%}) on {CASE}, serial "
        "dispatch; cold pays realize + Ybus build +",
        "flat-ish Newton per scenario, warm shares one topology compile, "
        "base solve, and B'/B'' factorization",
        "pair per chunk (mean iters = Newton iterations billed per "
        "scenario; fd sweeps run outside Newton).",
        "warm records asserted against cold under the parity contract "
        "on every row",
    ]
    emit(
        "ablation_ac_kernels",
        "E19 — AC ensemble fast path: cold solver vs warm kernel vs "
        "warm + fast-decoupled sweeps",
        lines,
    )

    if not os.environ.get("CI"):
        # Acceptance bar on a dedicated machine: the full fast path is
        # >= 3x faster per scenario than the cold solver at chunk 64.
        assert fd64_speedup is not None
        assert fd64_speedup >= 3.0, (
            f"warm+fd at chunk 64 only {fd64_speedup:.2f}x faster"
        )
