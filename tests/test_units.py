"""Unit-conversion helpers."""

import math

import pytest

from repro.grid import units


def test_mw_pu_roundtrip():
    assert units.pu_to_mw(units.mw_to_pu(123.4)) == pytest.approx(123.4)


def test_mw_to_pu_respects_base():
    assert units.mw_to_pu(50.0, base_mva=200.0) == pytest.approx(0.25)


def test_deg_rad_roundtrip():
    assert units.rad_to_deg(units.deg_to_rad(-37.5)) == pytest.approx(-37.5)


def test_deg_to_rad_known_value():
    assert units.deg_to_rad(180.0) == pytest.approx(math.pi)


def test_loading_percent_basic():
    assert units.loading_percent(50.0, 100.0) == pytest.approx(50.0)


def test_loading_percent_overload():
    assert units.loading_percent(130.0, 100.0) == pytest.approx(130.0)


def test_loading_percent_unrated_is_zero():
    assert units.loading_percent(42.0, 0.0) == 0.0
    assert units.loading_percent(42.0, -5.0) == 0.0


def test_power_balance_tolerance_matches_paper():
    # The paper validates max power-balance mismatch < 1e-4 p.u.
    assert units.POWER_BALANCE_TOL_PU == pytest.approx(1e-4)


def test_voltage_thresholds_match_paper():
    assert units.DEFAULT_VMIN_PU == pytest.approx(0.94)
    assert units.DEFAULT_VMAX_PU == pytest.approx(1.06)
