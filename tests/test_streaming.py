"""Streaming study pipeline: lazy streams, online reducer, bounded dispatch.

Covers the streaming rework end to end: scenario streams expand lazily
with deterministic per-index seeds, the online :class:`StudyReducer`
matches the materialised aggregation bit-for-bit (and its P² sketches
stay within tolerance at 10k draws), the execution paths (serial, per-run
pool, shared executor) produce identical aggregates with bounded resident
results and backpressure, and the store's retention/integrity lifecycle
ops behave.
"""

import dataclasses
import itertools
import json

import numpy as np
import pytest

from repro.scenarios import (
    BatchStudyRunner,
    BranchOutage,
    P2Quantile,
    Scenario,
    ScenarioStream,
    StreamingStats,
    StudyReducer,
    UniformLoadScale,
    aggregate_study,
    factorial,
    latin_hypercube,
    load_sweep,
    monte_carlo_ensemble,
    outage_combinations,
    with_branch_outage,
)
from repro.scenarios.runner import ScenarioResult
from repro.service import StudyExecutor


# ----------------------------------------------------------------------
# scenario streams
# ----------------------------------------------------------------------


class TestScenarioStream:
    def test_lazy_expansion(self):
        produced = []

        def gen():
            for i in range(1000):
                produced.append(i)
                yield Scenario(f"s{i}", (UniformLoadScale(1.0),))

        stream = ScenarioStream(gen, length=1000)
        first3 = list(itertools.islice(iter(stream), 3))
        assert [s.name for s in first3] == ["s0", "s1", "s2"]
        assert len(produced) <= 4  # nothing beyond the slice realised

    def test_reiterable(self):
        stream = load_sweep(0.9, 1.1, 5)
        assert [s.name for s in stream] == [s.name for s in stream]

    def test_len_and_getitem(self):
        stream = load_sweep(0.8, 1.2, 9)
        assert len(stream) == 9
        assert stream[0].name == "sweep_080"
        assert stream[-1].name == "sweep_120"
        assert [s.name for s in stream[2:4]] == [s.name for s in stream][2:4]

    def test_unknown_length_raises_on_len(self):
        stream = ScenarioStream(lambda: iter(()), length=None)
        with pytest.raises(TypeError, match="unknown length"):
            len(stream)
        assert bool(stream)  # truth-testing must not realise the stream

    def test_materialize(self):
        stream = load_sweep(0.9, 1.1, 3)
        assert [s.name for s in stream.materialize()] == [s.name for s in stream]


class TestLazyGenerators:
    def test_monte_carlo_child_seeds_are_prefix_stable(self):
        """Draw i gets the same seed regardless of ensemble size."""
        small = [s.tags["seed"] for s in monte_carlo_ensemble(n=8, seed=5)]
        large = [s.tags["seed"] for s in monte_carlo_ensemble(n=100, seed=5)]
        assert small == large[:8]

    def test_monte_carlo_mid_stream_slice_matches(self):
        stream = monte_carlo_ensemble(n=50, sigma=0.05, seed=3)
        whole = stream.materialize()
        assert stream[17].tags == whole[17].tags

    def test_outage_combinations_length_without_expansion(self, case14):
        stream = outage_combinations(case14, depth=2)
        nb = len(case14.in_service_branch_ids())
        assert len(stream) == nb * (nb - 1) // 2

    def test_with_branch_outage_keeps_length(self):
        composed = with_branch_outage(load_sweep(0.9, 1.1, 3), branch_id=2)
        assert len(composed) == 3
        assert all(s.tags["outage_branch"] == 2 for s in composed)


class TestFactorial:
    def test_cross_product_length_and_content(self, case14):
        sweep = load_sweep(0.9, 1.1, 3)
        outages = outage_combinations(case14, depth=1, limit=4)
        crossed = factorial(sweep, outages)
        assert len(crossed) == 12
        combos = list(crossed)
        assert combos[0].name == "sweep_090xout_0"
        # Perturbations concatenate in family order.
        assert isinstance(combos[0].perturbations[0], UniformLoadScale)
        assert isinstance(combos[0].perturbations[1], BranchOutage)
        assert all(s.tags["family"] == "factorial" for s in combos)
        assert [s.tags["index"] for s in combos] == list(range(12))

    def test_lazy_and_reiterable(self, case14):
        crossed = factorial(
            load_sweep(0.9, 1.1, 3), outage_combinations(case14, depth=1, limit=3)
        )
        assert [s.name for s in crossed] == [s.name for s in crossed]

    def test_empty_call_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            factorial()


class TestLatinHypercube:
    def test_stratification(self):
        n, lo, hi = 16, 0.8, 1.2
        stream = latin_hypercube(n, lo, hi, seed=2)
        factors = sorted(s.tags["scale"] for s in stream)
        width = (hi - lo) / n
        # Exactly one sample in every stratum of the scale range.
        for i, f in enumerate(factors):
            assert lo + i * width <= f <= lo + (i + 1) * width + 1e-12

    def test_deterministic_in_seed(self):
        a = [s.tags["scale"] for s in latin_hypercube(8, seed=4)]
        b = [s.tags["scale"] for s in latin_hypercube(8, seed=4)]
        c = [s.tags["scale"] for s in latin_hypercube(8, seed=5)]
        assert a == b
        assert a != c


# ----------------------------------------------------------------------
# online reducer and percentile sketches
# ----------------------------------------------------------------------


def _synthetic_results(n: int, seed: int = 0) -> list[ScenarioResult]:
    rng = np.random.default_rng(seed)
    costs = rng.normal(5000.0, 400.0, n)
    loadings = rng.uniform(40.0, 130.0, n)
    volts = rng.uniform(0.92, 1.01, n)
    out = []
    for i in range(n):
        over = [int(b) for b in rng.choice(20, size=rng.integers(0, 3), replace=False)]
        out.append(
            ScenarioResult(
                name=f"s{i}",
                tags={"index": i},
                converged=bool(rng.random() > 0.05),
                objective_cost=float(costs[i]),
                max_loading_percent=float(loadings[i]),
                min_voltage_pu=float(volts[i]),
                overloaded_branches=over,
                n_voltage_violations=int(volts[i] < 0.94),
                error="" if rng.random() > 0.03 else "diverged",
            )
        )
    return out


class TestStudyReducer:
    def test_matches_list_aggregation_exactly(self):
        results = _synthetic_results(300, seed=1)
        reducer = StudyReducer()
        # Feed in uneven chunks, as the streaming runner would.
        it = iter(results)
        while chunk := list(itertools.islice(it, 7)):
            reducer.add_many(chunk)
        assert reducer.result().to_dict() == aggregate_study(results).to_dict()

    def test_exact_mode_is_bit_identical_to_numpy(self):
        results = _synthetic_results(200, seed=2)
        agg = aggregate_study(results)
        costs = [r.objective_cost for r in results if r.converged]
        assert agg.cost_stats["estimator"] == "exact"
        assert agg.cost_stats["p50"] == float(np.percentile(costs, 50))
        assert agg.cost_stats["p95"] == float(np.percentile(costs, 95))

    def test_sketch_error_bound_on_10k_draws(self):
        """P² percentiles within 2% relative error on a 10k-draw MC."""
        rng = np.random.default_rng(7)
        xs = rng.normal(100.0, 15.0, 10_000)
        stats = StreamingStats(exact_cap=512)
        for x in xs:
            stats.add(float(x))
        d = stats.to_dict()
        assert d["estimator"] == "p2"
        for key, q in (("p05", 5), ("p50", 50), ("p95", 95)):
            exact = float(np.percentile(xs, q))
            assert abs(d[key] - exact) / abs(exact) < 0.02, (key, d[key], exact)
        # Count-exact quantities stay exact in sketch mode.
        assert d["min"] == float(xs.min())
        assert d["max"] == float(xs.max())
        assert d["mean"] == pytest.approx(float(xs.mean()), rel=1e-12)

    def test_sketch_switch_recorded(self):
        small = StreamingStats(exact_cap=64)
        for x in range(50):
            small.add(float(x))
        assert small.to_dict()["estimator"] == "exact"
        for x in range(50):
            small.add(float(x))
        assert small.to_dict()["estimator"] == "p2"

    def test_streamed_and_whole_sketches_identical(self):
        """Sketching depends only on insertion order, not chunking."""
        results = _synthetic_results(3000, seed=3)
        whole = StudyReducer(exact_cap=256)
        whole.add_many(results)
        chunked = StudyReducer(exact_cap=256)
        it = iter(results)
        while chunk := list(itertools.islice(it, 97)):
            chunked.add_many(chunk)
        assert whole.result().to_dict() == chunked.result().to_dict()

    def test_snapshot_counters(self):
        reducer = StudyReducer()
        reducer.add_many(_synthetic_results(50, seed=4))
        snap = reducer.snapshot()
        assert snap["n_done"] == 50
        assert 0.0 <= snap["violation_rate"] <= 1.0

    def test_p2_exact_below_five_observations(self):
        q = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            q.add(x)
        assert q.value() == 2.0


# ----------------------------------------------------------------------
# streaming execution: identity, backpressure, bounded residency
# ----------------------------------------------------------------------


class TestStreamingExecution:
    def test_serial_pool_and_executor_aggregates_identical(self, case14):
        scns = monte_carlo_ensemble(n=8, sigma=0.05, seed=11)
        serial = BatchStudyRunner(analysis="powerflow", n_jobs=1).run(case14, scns)
        pooled = BatchStudyRunner(analysis="powerflow", n_jobs=2).run(case14, scns)
        with StudyExecutor(max_workers=2) as executor:
            streamed = BatchStudyRunner(
                analysis="powerflow", executor=executor
            ).run(case14, scns, keep_results=False)
        assert serial.aggregate().to_dict() == pooled.aggregate().to_dict()
        assert serial.aggregate().to_dict() == streamed.aggregate().to_dict()

    def test_dc_records_identical_across_paths(self, case14):
        """The batched dc fast path holds the identity guarantee too:
        serial and pooled runs produce bit-identical record lists."""
        scns = monte_carlo_ensemble(n=8, sigma=0.05, seed=11)
        serial = BatchStudyRunner(analysis="dc", n_jobs=1).run(case14, scns)
        pooled = BatchStudyRunner(analysis="dc", n_jobs=2).run(case14, scns)

        def records(study):
            out = []
            for r in study.results:
                d = dataclasses.asdict(r)
                d["solve_time_s"] = 0.0  # wall clock, the one timing field
                out.append(d)
            return out

        assert records(serial) == records(pooled)
        assert serial.aggregate().to_dict() == pooled.aggregate().to_dict()

    def test_streamed_worst_k_matches_materialized(self, case14):
        scns = monte_carlo_ensemble(n=10, sigma=0.08, seed=12)
        full = BatchStudyRunner(analysis="powerflow").run(case14, scns)
        lean = BatchStudyRunner(analysis="powerflow").run(
            case14, scns, keep_results=False
        )
        assert lean.results == []
        assert lean.n_scenarios == 10
        assert [r.name for r in lean.worst(5)] == [r.name for r in full.worst(5)]

    def test_progress_events_monotone_and_complete(self, case14):
        events = []
        scns = monte_carlo_ensemble(n=9, sigma=0.05, seed=13)
        study = BatchStudyRunner(analysis="powerflow", chunk_size=2).run(
            case14, scns, progress=events.append, keep_results=False
        )
        assert study.n_progress_events == len(events) == 5
        dones = [e.n_done for e in events]
        assert dones == sorted(dones)
        assert dones[-1] == 9
        assert events[-1].n_total == 9
        assert events[-1].fraction == 1.0
        assert all(e.n_converged <= e.n_done for e in events)

    def test_backpressure_window_never_exceeded(self, case14):
        scns = monte_carlo_ensemble(n=12, sigma=0.05, seed=14)
        with StudyExecutor(max_workers=2, window=2) as executor:
            study = BatchStudyRunner(
                analysis="powerflow", executor=executor, chunk_size=1
            ).run(case14, scns, keep_results=False)
            stats = executor.stats()
        assert stats["n_chunks"] == 12
        assert 1 <= stats["max_in_flight"] <= 2
        # Resident records bounded by O(window * chunk + worst-K).
        assert study.peak_resident_results <= 2 * 1 + 20

    def test_peak_residency_stays_flat_as_ensemble_grows(self, case14):
        def peak(n):
            study = BatchStudyRunner(
                analysis="powerflow", chunk_size=4, worst_k=5
            ).run(
                case14,
                monte_carlo_ensemble(n=n, sigma=0.05, seed=15),
                keep_results=False,
            )
            return study.peak_resident_results

        assert peak(32) == peak(16)  # O(chunk + K), not O(n)

    def test_results_preserved_with_keep_results(self, case14):
        scns = monte_carlo_ensemble(n=6, sigma=0.05, seed=16)
        study = BatchStudyRunner(analysis="powerflow").run(
            case14, scns, keep_results=True
        )
        assert [r.name for r in study.results] == [s.name for s in scns]

    def test_unsized_stream_runs_to_completion(self, case14):
        names = [s.name for s in load_sweep(0.9, 1.1, 4)]
        unsized = ScenarioStream(
            lambda: iter(load_sweep(0.9, 1.1, 4)), length=None
        )
        study = BatchStudyRunner(analysis="powerflow").run(
            case14, unsized, keep_results=True
        )
        assert study.n_scenarios == 4
        assert [r.name for r in study.results] == names


class TestScopfStudy:
    def test_scopf_analysis_reports_secured_costs(self, case14):
        study = BatchStudyRunner(analysis="scopf").run(
            case14, load_sweep(0.95, 1.05, 2)
        )
        assert all(r.converged for r in study.results)
        assert all(r.objective_cost is not None for r in study.results)
        assert all(r.security_cost is not None for r in study.results)
        assert all(r.n_contingency_violations is not None for r in study.results)
        agg = study.aggregate()
        assert agg.cost_stats is not None
        assert agg.security_cost_stats is not None
        assert "security_cost_stats" in agg.to_dict()

    def test_scopf_listed_in_analyses(self):
        from repro.scenarios import ANALYSES

        assert "scopf" in ANALYSES

    def test_nlu_maps_security_constrained_to_scopf(self):
        from repro.llm.nlu import classify

        p = classify("run a security-constrained load sweep study on ieee14")
        assert p.entities["study_analysis"] == "scopf"


# ----------------------------------------------------------------------
# store lifecycle: retention and integrity
# ----------------------------------------------------------------------


def _put_study(store, net, seed: int, label: str = "") -> str:
    scns = monte_carlo_ensemble(n=2, sigma=0.05, seed=seed)
    runner = BatchStudyRunner(analysis="powerflow")
    study = runner.run(net, scns)
    return store.put(
        net, runner.config(), scns, study, study_kind="monte_carlo", label=label
    )


class TestStoreLifecycle:
    def test_prune_by_age(self, tmp_path, case14):
        import time as _time

        from repro.service import ResultStore

        store = ResultStore(tmp_path)
        keys = [_put_study(store, case14, seed) for seed in (1, 2)]
        report = store.prune(max_age_s=3600.0, now=_time.time() + 7200.0)
        assert report["n_removed"] == 2
        assert sorted(report["removed"]) == sorted(keys)
        assert len(store.list_studies()) == 0

    def test_prune_by_bytes_keeps_newest(self, tmp_path, case14):
        from repro.service import ResultStore

        store = ResultStore(tmp_path)
        keys = [_put_study(store, case14, seed) for seed in (1, 2, 3)]
        one = store._entry_bytes(keys[-1])
        report = store.prune(max_bytes=2 * one + one // 2)
        assert report["n_removed"] >= 1
        kept = [m.key for m in store.list_studies()]
        assert keys[-1] in kept  # newest survives
        assert keys[0] not in kept  # oldest evicted first

    def test_prune_noop_without_limits(self, tmp_path, case14):
        from repro.service import ResultStore

        store = ResultStore(tmp_path)
        _put_study(store, case14, 1)
        report = store.prune()
        assert report["n_removed"] == 0
        assert report["n_kept"] == 1

    def test_verify_clean_store(self, tmp_path, case14):
        from repro.service import ResultStore

        store = ResultStore(tmp_path)
        key = _put_study(store, case14, 1)
        report = store.verify()
        assert report["ok"] == [key]
        assert report["corrupt"] == []
        assert report["orphan_sidecars"] == []

    def test_verify_flags_tampered_payload(self, tmp_path, case14):
        from repro.service import ResultStore

        store = ResultStore(tmp_path)
        key = _put_study(store, case14, 1)
        path = store._path(key)
        payload = json.loads(path.read_text())
        payload["results"][0]["max_loading_percent"] = 999.0
        path.write_text(json.dumps(payload, default=str))
        report = store.verify()
        assert report["n_ok"] == 0
        assert report["corrupt"][0]["key"] == key
        assert "checksum" in report["corrupt"][0]["error"]

    def test_verify_flags_orphan_sidecar(self, tmp_path, case14):
        from repro.service import ResultStore

        store = ResultStore(tmp_path)
        key = _put_study(store, case14, 1)
        store._path(key).unlink()
        report = store.verify()
        assert report["orphan_sidecars"] == [key]

    def test_put_refuses_streamed_study_without_records(self, tmp_path, case14):
        from repro.service import ResultStore

        store = ResultStore(tmp_path)
        scns = monte_carlo_ensemble(n=3, sigma=0.05, seed=9)
        runner = BatchStudyRunner(analysis="powerflow")
        study = runner.run(case14, scns, keep_results=False)
        with pytest.raises(ValueError, match="keep_results"):
            store.put(case14, runner.config(), scns, study)


# ----------------------------------------------------------------------
# service layer: incremental delivery on StudyReply
# ----------------------------------------------------------------------


class TestServiceProgress:
    def test_study_reply_carries_progress_trail(self, tmp_path):
        import asyncio

        from repro.service import GridMindService, StudyRequest

        async def run():
            async with GridMindService(max_workers=2, store_dir=str(tmp_path)) as svc:
                live = []
                reply = await svc.run_study(
                    StudyRequest(
                        case_name="ieee14",
                        kind="monte_carlo",
                        n_scenarios=8,
                        analysis="powerflow",
                    ),
                    progress=live.append,
                )
                return reply, live

        reply, live = asyncio.run(run())
        assert reply.n_scenarios == 8
        assert reply.n_progress_events >= 3
        assert len(live) == reply.n_progress_events
        assert reply.progress[-1]["n_done"] == 8
        assert reply.study_key is not None  # stored => records were kept

    def test_lhs_study_kind_via_service(self, tmp_path):
        import asyncio

        from repro.service import GridMindService, StudyRequest

        async def run():
            async with GridMindService(max_workers=1, store_dir=str(tmp_path)) as svc:
                return await svc.run_study(
                    StudyRequest(
                        case_name="ieee14",
                        kind="lhs",
                        n_scenarios=6,
                        analysis="powerflow",
                    )
                )

        reply = asyncio.run(run())
        assert reply.study_kind == "lhs"
        assert reply.n_scenarios == 6

    def test_thin_progress_keeps_endpoints(self):
        from repro.service import thin_progress

        events = [{"n_done": i} for i in range(100)]
        thinned = thin_progress(events, keep=10)
        assert len(thinned) <= 11
        assert thinned[0] == events[0]
        assert thinned[-1] == events[-1]
