"""Full Newton-Raphson AC power flow in polar coordinates.

The production solver behind pandapower-style ``runpp`` semantics in this
repo: sparse Jacobian assembled from :mod:`repro.powerflow.jacobian`,
one sparse LU solve per iteration, optional generator Q-limit enforcement
by PV→PQ switching, and warm starts from a previous solution (which is
what makes the N-1 sweep cheap).
"""

from __future__ import annotations

import time

import numpy as np
from scipy.sparse import linalg as sla
from scipy import sparse

from ..grid.network import Network, NetworkArrays
from ..grid.components import BusType
from ..instrumentation.probes import instrument_solver
from .jacobian import dSbus_dV
from .solution import PowerFlowResult, finalize_solution, make_admittances
from .qlimits import enforce_q_limits


def bus_power_injections(arr: NetworkArrays) -> np.ndarray:
    """Scheduled complex bus injections Sbus = generation - load (p.u.)."""
    sbus = -(arr.pd + 1j * arr.qd)
    np.add.at(sbus, arr.gen_bus, arr.pg0 + 1j * arr.qg0)
    return sbus


def _initial_voltage(arr: NetworkArrays, v0: np.ndarray | None) -> np.ndarray:
    if v0 is not None:
        if len(v0) != arr.n_bus:
            raise ValueError(
                f"warm-start voltage has {len(v0)} entries, expected {arr.n_bus}"
            )
        return np.asarray(v0, dtype=complex).copy()
    return arr.vm0 * np.exp(1j * arr.va0)


@instrument_solver("newton")
def solve_newton(
    net: Network,
    *,
    tol: float = 1e-8,
    max_iter: int = 20,
    v0: np.ndarray | None = None,
    enforce_q: bool = False,
    flat_start: bool = False,
) -> PowerFlowResult:
    """Solve the AC power flow with Newton-Raphson.

    ``v0`` warm-starts from a prior complex voltage vector; ``enforce_q``
    runs outer PV→PQ switching loops until all generator reactive limits
    hold.  Non-convergence is reported in the result, never raised — the
    contingency engine treats it as a (severe) outcome, as the paper does.
    """
    start = time.perf_counter()
    arr, adm = make_admittances(net)
    if flat_start:
        v = np.ones(arr.n_bus, dtype=complex)
        pv_slack = np.concatenate([arr.pv_buses, arr.slack_buses])
        v[pv_slack] = arr.vm0[pv_slack]
    else:
        v = _initial_voltage(arr, v0)

    bus_type = arr.bus_type.copy()
    sbus = bus_power_injections(arr)
    qg = arr.qg0.copy()

    max_outer = 10 if enforce_q else 1
    total_iters = 0
    converged = False
    mismatch = np.inf
    message = ""

    for outer in range(max_outer):
        v, converged, iters, mismatch = _newton_inner(
            adm.ybus, sbus, v, bus_type, tol, max_iter
        )
        total_iters += iters
        if not converged:
            message = f"Newton did not converge within {max_iter} iterations"
            break
        if not enforce_q:
            break
        switched, sbus, bus_type, qg = enforce_q_limits(
            arr, adm, v, sbus, bus_type, qg
        )
        if not switched:
            break
    else:  # pragma: no cover - pathological switching cycles
        message = "Q-limit enforcement did not settle"
        converged = False

    if converged and not message:
        message = f"converged in {total_iters} iterations"

    result = finalize_solution(
        net,
        arr,
        adm,
        v,
        converged=converged,
        iterations=total_iters,
        method="newton",
        max_mismatch_pu=float(mismatch),
        runtime_s=time.perf_counter() - start,
        message=message,
    )
    if enforce_q:
        result.extras["final_bus_type"] = bus_type
    result.extras["v_complex"] = v
    return result


def _newton_inner(
    ybus: sparse.spmatrix,
    sbus: np.ndarray,
    v: np.ndarray,
    bus_type: np.ndarray,
    tol: float,
    max_iter: int,
) -> tuple[np.ndarray, bool, int, float]:
    """One Newton run with a fixed PV/PQ partition."""
    pv = np.flatnonzero(bus_type == int(BusType.PV))
    pq = np.flatnonzero(bus_type == int(BusType.PQ))
    pvpq = np.concatenate([pv, pq])
    npv, npq = len(pv), len(pq)

    v = v.copy()
    vm = np.abs(v)
    va = np.angle(v)

    def mismatch_vec(vc: np.ndarray) -> np.ndarray:
        mis = vc * np.conj(ybus @ vc) - sbus
        return np.concatenate([mis[pvpq].real, mis[pq].imag])

    f = mismatch_vec(v)
    norm = float(np.max(np.abs(f))) if f.size else 0.0
    if norm < tol:
        return v, True, 0, norm

    for it in range(1, max_iter + 1):
        ds_dva, ds_dvm = dSbus_dV(ybus, v)
        j11 = ds_dva[np.ix_(pvpq, pvpq)].real
        j12 = ds_dvm[np.ix_(pvpq, pq)].real
        j21 = ds_dva[np.ix_(pq, pvpq)].imag
        j22 = ds_dvm[np.ix_(pq, pq)].imag
        jac = sparse.bmat([[j11, j12], [j21, j22]], format="csc")

        try:
            dx = sla.spsolve(jac, -f)
        except RuntimeError:  # singular Jacobian: voltage collapse territory
            return v, False, it, norm
        if not np.all(np.isfinite(dx)):
            return v, False, it, norm

        # Damped update: full Newton steps overshoot badly when the start
        # is far from the solution (heavy post-outage transfers).  Accept
        # the first step fraction that reduces the residual; fall back to
        # the smallest fraction if none do (this still escapes plateaus).
        # Only the updated entries are snapshotted once per iteration —
        # trial states are written in place over them, so the common case
        # (full step accepted) no longer pays two full-array copies, and
        # rejected fractions never duplicate the voltage vectors either.
        dx_va = dx[: npv + npq]
        dx_vm = dx[npv + npq :]
        va_base = va[pvpq].copy()
        vm_base = vm[pq].copy()
        accepted = False
        for alpha in (1.0, 0.5, 0.25, 0.125):
            va[pvpq] = va_base + alpha * dx_va
            vm[pq] = vm_base + alpha * dx_vm
            v = vm * np.exp(1j * va)
            f = mismatch_vec(v)
            norm_try = float(np.max(np.abs(f))) if f.size else 0.0
            if norm_try < norm or alpha == 0.125:
                accepted = norm_try < norm
                norm = norm_try
                break
        if norm < tol:
            return v, True, it, norm
        if not accepted and norm > 1e6:
            # Residual exploding with no descent direction: call it.
            return v, False, it, norm

    return v, False, max_iter, norm
