"""Agent base class: the reason-act-reflect loop.

One ``handle(text)`` call is a complete cognitive cycle (paper Section
3.2.1): the model plans in language, requests tool calls, the harness
executes them through the validated registry, results are appended as
structured tool messages, and the loop repeats until the model produces a
final narrated reply.  The agent injects a fresh structured context
summary before every turn so the model grounds its plan in the latest
validated state (the "memory" pillar).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...instrumentation.trace import get_tracer
from ...llm.base import ChatMessage, LLMBackend, TokenUsage
from ...llm.simulated import CONTEXT_MARKER
from ..context import AgentContext
from ..schemas import ToolCallLogEntry
from ..tools import ToolRegistry

import json

#: Hard cap on reason-act cycles per request (runaway-loop guard).
MAX_STEPS = 12


@dataclass
class AgentReply:
    """Everything one agent turn produced."""

    agent: str
    text: str
    steps: int
    usage: TokenUsage
    latency_s: float  # virtual seconds across all completions this turn
    tool_calls: list[ToolCallLogEntry] = field(default_factory=list)


class Agent:
    """A domain agent: LLM backend + tool registry + shared context."""

    def __init__(
        self,
        name: str,
        system_prompt: str,
        backend: LLMBackend,
        registry: ToolRegistry,
        context: AgentContext,
        keep_history: int = 20,
    ) -> None:
        self.name = name
        self.system_prompt = system_prompt
        self.backend = backend
        self.registry = registry
        self.context = context
        self.keep_history = keep_history
        self.transcript: list[ChatMessage] = []

    # ------------------------------------------------------------------
    def handle(self, text: str) -> AgentReply:
        """Run one full reason-act-reflect cycle for a user request."""
        with get_tracer().span(f"agent.{self.name}") as span:
            reply = self._handle(text)
            span.tags["steps"] = reply.steps
            span.tags["tool_calls"] = len(reply.tool_calls)
        return reply

    def _handle(self, text: str) -> AgentReply:
        user_msg = ChatMessage(role="user", content=text)
        turn: list[ChatMessage] = [user_msg]
        usage = TokenUsage()
        latency = 0.0
        tool_log_start = self.registry.call_count
        steps = 0
        final_text = ""

        # Snapshot the context summary once per turn: the model plans
        # against the state as it was when the user asked, so the plan
        # stays coherent across the reason-act iterations even though the
        # tools mutate the context along the way.
        context_msg = ChatMessage(
            role="system",
            content=CONTEXT_MARKER + json.dumps(self.context.summary(), default=str),
        )

        for steps in range(1, MAX_STEPS + 1):
            messages = self._compose(context_msg, turn)
            response = self.backend.complete(messages, self.registry.specs())
            usage = usage + response.usage
            latency += response.latency_s
            turn.append(response.message)

            if not response.wants_tools:
                final_text = response.message.content
                break

            for call in response.message.tool_calls:
                payload = self.registry.call(call.name, call.arguments)
                turn.append(
                    ChatMessage(
                        role="tool",
                        content=payload,
                        tool_call_id=call.call_id,
                        name=call.name,
                    )
                )
        else:  # pragma: no cover - MAX_STEPS exhaustion is a logic bug guard
            final_text = (
                "I could not complete the request within the step budget; "
                "partial results are recorded in the session log."
            )

        self._remember(turn)
        return AgentReply(
            agent=self.name,
            text=final_text,
            steps=steps,
            usage=usage,
            latency_s=latency,
            tool_calls=self.registry.entries_since(tool_log_start),
        )

    # ------------------------------------------------------------------
    def _compose(
        self, context_msg: ChatMessage, turn: list[ChatMessage]
    ) -> list[ChatMessage]:
        """System prompt + context summary + trimmed history + this turn."""
        history = self.transcript[-self.keep_history:]
        return [
            ChatMessage(role="system", content=self.system_prompt),
            context_msg,
            *history,
            *turn,
        ]

    def _remember(self, turn: list[ChatMessage]) -> None:
        """Persist the turn in conversational memory (bounded)."""
        self.transcript.extend(turn)
        if len(self.transcript) > 4 * self.keep_history:
            self.transcript = self.transcript[-2 * self.keep_history:]
