"""StudyExecutor: one long-lived process pool shared by every study.

:class:`~repro.scenarios.runner.BatchStudyRunner` historically spun up a
``ProcessPoolExecutor`` per ``run()`` call, paying worker start-up
(interpreter fork + numpy/scipy import on spawn) for every study.  The
service layer instead owns a single :class:`StudyExecutor`: a work queue
over one persistent pool that all sessions share, so back-to-back studies
reuse warm workers.

Worker-side state is content-addressed.  Each worker process keeps a
small LRU of :class:`~repro.scenarios.runner._WorkerState` instances
keyed by ``(network content hash, study config)``; a chunk task carries
the pickled base network, but a worker unpickles it only the first time
it sees that study key — subsequent chunks of the same study (and
re-runs of an identical study) reuse the resident state, including its
PTDF/LODF factor cache and contingency cache.  The parent likewise
pickles the base network once per study, not once per chunk.

Determinism: chunks are submitted and collected in scenario order and
evaluated by the exact same ``_WorkerState`` code path the serial runner
uses, so executor-backed, per-run-pool, and serial studies produce
identical result lists.

Dispatch is *streaming*: :meth:`StudyExecutor.run_study_iter` draws
chunks lazily from the scenario stream with a bounded in-flight window
(backpressure against the shared pool) and yields completed chunks in
order, so a 10k-scenario ensemble flows through the parent process
without ever materialising — the consumer folds each chunk into an
online reducer and drops it.  :meth:`run_study` keeps the materialised
list shape for callers that want it.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, Iterator

from ..contingency.cache import network_content_hash
from ..grid.network import Network
from ..instrumentation.metrics import get_metrics
from ..instrumentation.trace import current_trace_context
from ..scenarios.runner import (
    ChunkOutcome,
    ScenarioResult,
    StudyConfig,
    _execute_chunk,
    _WorkerState,
    default_chunk_size,
    iter_chunks,
)
from ..scenarios.spec import Scenario
from ..scenarios.stream import stream_length

# ----------------------------------------------------------------------
# worker-side plumbing (runs inside pool processes)
# ----------------------------------------------------------------------

#: Resident per-study states, LRU-evicted.  Small cap: a state holds a
#: full network copy plus factor/contingency caches.
_STATE_CAP = 4

_STATES: OrderedDict[str, _WorkerState] = OrderedDict()


def _run_shared_chunk(
    study_key: str,
    base_blob: bytes,
    config: StudyConfig,
    scenarios: list[Scenario],
    trace_ctx: tuple[str, str] | None = None,
    collect_metrics: bool = True,
) -> ChunkOutcome:
    """Evaluate one chunk, reusing this worker's resident study state.

    Returns a :class:`~repro.scenarios.runner.ChunkOutcome` carrying the
    worker pid (the acceptance signal that consecutive studies reuse one
    pool instead of spawning fresh processes) plus the chunk's spans —
    minted under the dispatcher's serialised ``trace_ctx`` so they stitch
    into the parent trace — and its worker-local metrics delta.
    """
    state = _STATES.get(study_key)
    if state is None:
        base = pickle.loads(base_blob)
        state = _WorkerState(base, config)
        _STATES[study_key] = state
        while len(_STATES) > _STATE_CAP:
            _STATES.popitem(last=False)
    else:
        _STATES.move_to_end(study_key)
    return _execute_chunk(state, scenarios, trace_ctx, collect_metrics)


# ----------------------------------------------------------------------
# parent-side executor
# ----------------------------------------------------------------------


def study_state_key(base: Network, config: StudyConfig) -> str:
    """Content-hash key for a (base network, study config) pair."""
    import hashlib

    return hashlib.blake2b(
        f"{network_content_hash(base)}|{config!r}".encode("utf-8"),
        digest_size=8,
    ).hexdigest()


class StudyExecutor:
    """Work queue over one persistent process pool, shared across studies.

    Thread-safe: the service layer calls :meth:`run_study` from multiple
    worker threads (one per active session turn); pool creation and stat
    updates are serialised behind a lock while the chunk futures
    themselves run unlocked.
    """

    #: Default in-flight chunk window per study, as a multiple of the
    #: worker count: enough to keep every worker busy plus one queued
    #: chunk each, small enough that a 10k-scenario stream never piles
    #: undispatched work (or undrained results) into parent memory.
    WINDOW_PER_WORKER = 2

    def __init__(
        self,
        max_workers: int = 2,
        chunk_size: int | None = None,
        window: int | None = None,
        retries: int = 0,
    ) -> None:
        self.max_workers = max(1, int(max_workers))
        self.chunk_size = chunk_size
        self.window = window
        #: Broken-pool retry budget per chunk.  ``0`` (the default)
        #: preserves the historical contract: a worker death poisons the
        #: study, the pool is replaced, and the *next* study starts
        #: clean.  ``retries=N`` instead resubmits the lost chunk (and
        #: every chunk that was in flight behind it, in order) to the
        #: replacement pool up to N times before giving up.
        self.retries = max(0, int(retries))
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        # Lifecycle instrumentation: `pools_started` staying at 1 across
        # many studies is the whole point of this class.
        self.pools_started = 0
        self.n_studies = 0
        self.n_chunks = 0
        self.n_retried = 0  # chunk resubmissions after a pool break
        self.max_in_flight = 0  # peak submitted-not-yet-drained chunks
        self.worker_pids: set[int] = set()

    # ------------------------------------------------------------------
    def start(self) -> "StudyExecutor":
        """Create the worker pool now, on the calling thread.

        Call this from a single-threaded context (the service does, at
        construction on the main thread): forking pool workers while
        other threads are running risks children inheriting locks held
        mid-operation — CPython's documented fork hazard.  Lazy creation
        inside :meth:`run_study` remains as a fallback for direct,
        single-threaded users.
        """
        with self._lock:
            self._start_locked()
        return self

    def _start_locked(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self.pools_started += 1
        return self._pool

    def dispatch_plan(
        self,
        total: int | None,
        *,
        chunk_size: int | None = None,
        window: int | None = None,
    ) -> tuple[int, int]:
        """Resolve the (chunk size, in-flight window) a study will use.

        The single source of truth for the executor's dispatch geometry:
        :meth:`run_study_iter` submits with it, and
        :class:`~repro.scenarios.runner.BatchStudyRunner` consults it for
        its resident-results bound — keeping the two layers' views of
        chunking identical matters because order-preserving, identically-
        chunked dispatch is what makes tag-sliced aggregation bit-equal
        across serial, pooled, and streamed execution.
        """
        chunk = chunk_size or self.chunk_size or default_chunk_size(total, self.max_workers)
        window = max(
            1, window or self.window or self.WINDOW_PER_WORKER * self.max_workers
        )
        return chunk, window

    def run_study_chunks(
        self,
        base: Network,
        config: StudyConfig,
        scenarios: Iterable[Scenario],
        *,
        chunk_size: int | None = None,
        window: int | None = None,
    ) -> Iterator[ChunkOutcome]:
        """Stream ``scenarios`` through the shared pool, chunk by chunk.

        Chunks are drawn lazily from the scenario stream with at most
        ``window`` in flight (submitted but not yet drained) — the
        backpressure that keeps a 10k-scenario ensemble from piling
        either pending futures or completed-but-unread results into
        parent memory.  Completed chunks are yielded in scenario order as
        :class:`~repro.scenarios.runner.ChunkOutcome` records, so
        consumers fold the results into an online reducer, stitch the
        worker spans into the parent trace, and drop them.

        Each submission captures :func:`current_trace_context` — since a
        generator body runs in its consumer's context, that is the span
        the fold loop holds open while draining — and ships it to the
        worker, which is what parents worker-chunk spans under the
        dispatch span across the process boundary.
        """
        total = stream_length(scenarios)
        if total == 0:
            return
        key = study_state_key(base, config)
        blob = pickle.dumps(base, protocol=pickle.HIGHEST_PROTOCOL)
        chunk, window = self.dispatch_plan(
            total, chunk_size=chunk_size, window=window
        )
        chunks = iter_chunks(scenarios, chunk)
        metrics = get_metrics()
        dispatched = metrics.counter(
            "gridmind_chunks_dispatched_total", "Chunks submitted to the shared pool"
        )
        retried_total = metrics.counter(
            "gridmind_chunks_retried_total",
            "Chunks resubmitted after a broken-pool reset",
        )
        in_flight_gauge = metrics.gauge(
            "gridmind_executor_in_flight", "Chunks submitted but not yet drained"
        )
        collect = metrics.enabled

        def submit(c: list[Scenario], attempt: int = 0):
            nonlocal n_retried
            ctx = current_trace_context()
            # Submit under the lock: pool creation, submission, and the
            # broken-pool reset below are mutually exclusive, so no
            # thread can submit into a pool another thread is tearing
            # down.  The pool is re-resolved per chunk: if another
            # study's failure replaced it mid-stream, later chunks land
            # on the fresh pool (content-addressed worker state rebuilds
            # transparently).
            while True:
                with self._lock:
                    pool = self._start_locked()
                    try:
                        future = pool.submit(
                            _run_shared_chunk, key, blob, config, c, ctx, collect
                        )
                    except BrokenProcessPool:
                        # A worker death can surface at submit time (the
                        # pool was already flagged broken) instead of at
                        # result time; both paths honour the same budget.
                        self._reset_broken_pool(pool)
                        if attempt >= self.retries:
                            raise
                        attempt += 1
                        n_retried += 1
                        retried_total.inc()
                        continue
                dispatched.inc()
                return pool, future, c, attempt

        pending: deque = deque()
        pids: set[int] = set()
        n_chunks = 0
        n_retried = 0
        peak_in_flight = 0
        try:
            exhausted = False
            while not exhausted or pending:
                while not exhausted and len(pending) < window:
                    nxt = next(chunks, None)
                    if nxt is None:
                        exhausted = True
                        break
                    pending.append(submit(nxt))
                    peak_in_flight = max(peak_in_flight, len(pending))
                    in_flight_gauge.set(len(pending))
                if not pending:
                    break
                pool, future, chunk_scns, attempt = pending.popleft()
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    # Only a *broken* pool (a worker died) poisons later
                    # submissions and must be dropped so the next study
                    # restarts cleanly.  Any other failure leaves the
                    # shared pool — and every concurrent study running
                    # on it — untouched.
                    with self._lock:
                        self._reset_broken_pool(pool)
                    if attempt >= self.retries:
                        raise
                    # Opt-in recovery: requeue the lost chunk and every
                    # chunk that was in flight behind it, in order, on
                    # the replacement pool — order-preserving, so the
                    # study's result stream is indistinguishable from an
                    # unbroken run.
                    stale = [(chunk_scns, attempt + 1)]
                    stale.extend((c, a + 1) for (_p, _f, c, a) in pending)
                    for _p, f, _c, _a in pending:
                        f.cancel()
                    pending.clear()
                    for c, a in stale:
                        pending.append(submit(c, a))
                    n_retried += 1
                    retried_total.inc()
                    continue
                in_flight_gauge.set(len(pending))
                pids.add(outcome.worker_pid)
                n_chunks += 1
                yield outcome
        finally:
            # Early consumer exit (or an error) must not leak queued work.
            for _pool, future, _c, _a in pending:
                future.cancel()
            in_flight_gauge.set(0)
            with self._lock:
                self.n_chunks += n_chunks
                self.n_retried += n_retried
                self.max_in_flight = max(self.max_in_flight, peak_in_flight)
                self.worker_pids.update(pids)

        with self._lock:
            self.n_studies += 1

    def run_study_iter(
        self,
        base: Network,
        config: StudyConfig,
        scenarios: Iterable[Scenario],
        *,
        chunk_size: int | None = None,
        window: int | None = None,
    ) -> Iterator[list[ScenarioResult]]:
        """Plain-results view of :meth:`run_study_chunks` (compat shape)."""
        for outcome in self.run_study_chunks(
            base, config, scenarios, chunk_size=chunk_size, window=window
        ):
            yield outcome.results

    def run_study(
        self,
        base: Network,
        config: StudyConfig,
        scenarios: Iterable[Scenario],
        *,
        chunk_size: int | None = None,
    ) -> list[ScenarioResult]:
        """Execute ``scenarios`` on the shared pool, preserving order.

        Materialised convenience over :meth:`run_study_iter` — same
        windowed dispatch underneath, results concatenated for callers
        that want the full list.
        """
        results: list[ScenarioResult] = []
        for chunk_results in self.run_study_iter(
            base, config, scenarios, chunk_size=chunk_size
        ):
            results.extend(chunk_results)
        return results

    def _reset_broken_pool(self, pool: ProcessPoolExecutor) -> None:
        """Drop ``pool`` if it is still current (caller holds the lock).

        The identity check matters under concurrency: a study whose
        futures came from an *old* broken pool may raise after another
        thread has already replaced it — tearing down the healthy
        replacement (and cancelling its in-flight studies) would turn one
        failure into many.
        """
        pool.shutdown(wait=False, cancel_futures=True)
        if self._pool is pool:
            self._pool = None

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Lifecycle counters (JSON-ready)."""
        with self._lock:
            return {
                "max_workers": self.max_workers,
                "pools_started": self.pools_started,
                "n_studies": self.n_studies,
                "n_chunks": self.n_chunks,
                "n_retried": self.n_retried,
                "max_in_flight": self.max_in_flight,
                "n_worker_pids": len(self.worker_pids),
                "alive": self._pool is not None,
            }

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=wait)
                self._pool = None

    def __enter__(self) -> "StudyExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
