"""Interactive CLI chat interface (paper Appendix D.1) plus batch studies.

Plain-stdlib REPL with light ANSI colour — the paper uses Rich, which is
not available offline; the interaction loop is identical.  Run with::

    gridmind --model gpt-5-mini
    gridmind --model claude-4-sonnet --seed 7

The ``study`` subcommand runs declarative scenario studies directly
against the batch engine (no chat loop).  Studies stream: scenarios
expand lazily, chunks fold into the online reducer as they complete, and
``--progress`` (implied on a TTY) renders live delivery::

    gridmind study --case ieee118 --kind monte-carlo -n 10000 --jobs 4
    gridmind study --case ieee57 --kind sweep --lo 80 --hi 120 --analysis acopf
    gridmind study --case ieee14 --kind lhs -n 500 --analysis scopf
    gridmind study --case ieee14 --kind profile -n 96 --slice-by hour
    gridmind study --case ieee14 --kind monte-carlo -n 500 --zones 4 --rho 0.6

The ``serve`` subcommand starts the async multi-session service: one
:class:`~repro.service.GridMindService` multiplexing named conversations
over a shared study pool and (optionally) a persistent result store::

    gridmind serve                      # interactive: "alice: solve ieee 14"
    gridmind serve --demo               # scripted three-session interleave
    gridmind serve --store runs/ \
        --turn "a: sweep load 90-110% on ieee14" \
        --turn "a: sweep load 80-125% on ieee14" \
        --turn "a: compare the last two studies"

``--turn`` turns run concurrently across sessions and in order within a
session — address dependent turns (run a study, then compare it) to the
same session, or run separate ``serve`` invocations against one
``--store`` directory.

The ``watch`` subcommand streams a simulated telemetry fleet through the
rolling-window study layer, printing each window's aggregate and alerts
as it closes::

    gridmind watch --case ieee14 --devices 200 --ticks 24 --window 4
    gridmind watch --case ieee14 --anomaly-tick 8 --anomaly-kind load_spike
    gridmind watch --case ieee14 --pace wall --speedup 900   # live demo
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from ..llm.profiles import PAPER_MODELS
from .session import GridMindSession

_BANNER = r"""
  ____      _     _ __  __ _           _
 / ___|_ __(_) __| |  \/  (_)_ __   __| |
| |  _| '__| |/ _` | |\/| | | '_ \ / _` |
| |_| | |  | | (_| | |  | | | | | | (_| |
 \____|_|  |_|\__,_|_|  |_|_|_| |_|\__,_|
 Conversational power-system analysis (reproduction)
"""

_CYAN = "\033[96m"
_DIM = "\033[2m"
_RESET = "\033[0m"


def _supports_color(stream) -> bool:
    return hasattr(stream, "isatty") and stream.isatty()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gridmind",
        description="Conversational ACOPF and contingency analysis agents.",
    )
    parser.add_argument(
        "--model",
        default="gpt-5-mini",
        help=f"simulated model profile (one of: {', '.join(PAPER_MODELS)})",
    )
    parser.add_argument("--seed", type=int, default=0, help="session RNG seed")
    parser.add_argument(
        "--ask",
        action="append",
        default=None,
        metavar="TEXT",
        help="non-interactive: process this request and exit (repeatable)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record hierarchical spans and print the span tree + critical "
        "path to stderr when done",
    )

    sub = parser.add_subparsers(dest="command")
    study = sub.add_parser(
        "study",
        help="run a declarative scenario study with the parallel batch runner",
        description=(
            "Expand a scenario family (load sweep, Monte Carlo ensemble, N-k "
            "outage combinations, daily profile) and analyse every operating "
            "point with the selected engine."
        ),
    )
    study.add_argument("--case", required=True, help="case name, e.g. ieee118")
    study.add_argument(
        "--kind",
        choices=("sweep", "monte-carlo", "lhs", "outage", "profile"),
        default="monte-carlo",
    )
    study.add_argument(
        "-n",
        "--scenarios",
        type=int,
        default=None,
        metavar="N",
        help="scenario count: draws (monte-carlo), steps (sweep/profile), "
        "combination cap (outage)",
    )
    study.add_argument(
        "--analysis",
        choices=("powerflow", "dc", "dcopf", "acopf", "screening", "scopf"),
        default="powerflow",
    )
    study.add_argument("--jobs", type=int, default=1, help="worker processes")
    study.add_argument(
        "--ac-mode",
        choices=("warm", "cold"),
        default="warm",
        help="powerflow studies: 'warm' routes injection-only chunks "
        "through the topology-cached AC kernel (warm-started Newton + "
        "fast-decoupled correctors); 'cold' forces the legacy "
        "per-scenario solve",
    )
    study.add_argument(
        "--progress",
        action="store_true",
        help="print live per-chunk progress to stderr (implied on a TTY)",
    )
    study.add_argument(
        "--keep-results",
        action="store_true",
        help="materialise every per-scenario record instead of streaming "
        "(higher memory; the summary is identical either way)",
    )
    study.add_argument("--lo", type=float, default=80.0, help="sweep low, %% of base")
    study.add_argument("--hi", type=float, default=120.0, help="sweep high, %% of base")
    study.add_argument(
        "--sigma", type=float, default=5.0, help="monte-carlo load std-dev, %%"
    )
    study.add_argument("--depth", type=int, default=2, help="outages per scenario")
    study.add_argument(
        "--slice-by",
        default=None,
        metavar="DIMS",
        help="comma-separated tag dimensions for sliced aggregation "
        "('hour', 'scale', 'zone', ...); default infers the family's "
        "natural dimension, 'none' disables slicing",
    )
    study.add_argument(
        "--zones",
        type=int,
        default=0,
        metavar="Z",
        help="monte-carlo only: draw zonal correlated load factors over "
        "this many contiguous bus zones (0 = independent per-load noise)",
    )
    study.add_argument(
        "--rho",
        type=float,
        default=0.0,
        help="monte-carlo inter-zone load correlation (with --zones), "
        "e.g. 0.6",
    )
    study.add_argument(
        "--json", action="store_true", help="emit the full study summary as JSON"
    )
    # Also accepted after the subcommand; SUPPRESS keeps a pre-subcommand
    # `gridmind --seed 7 study ...` from being clobbered by a default.
    study.add_argument(
        "--seed",
        type=int,
        default=argparse.SUPPRESS,
        help="ensemble RNG seed (monte-carlo draws)",
    )
    study.add_argument(
        "--trace",
        action="store_true",
        default=argparse.SUPPRESS,
        help="trace the study (span tree + critical path on stderr)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the async multi-session service (REPL or scripted turns)",
        description=(
            "Multiplex named conversations through one GridMindService: "
            "turns addressed to the same session are serialised, different "
            "sessions run concurrently, batch studies share one worker "
            "pool, and results persist to the store directory."
        ),
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="shared study-pool processes"
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result-store directory (default: a temporary one)",
    )
    serve.add_argument(
        "--turn",
        action="append",
        default=None,
        metavar="SESSION:TEXT",
        help="non-interactive: route 'name: text' through the service "
        "(repeatable; concurrent across sessions, ordered within one — "
        "give dependent turns the same session name)",
    )
    serve.add_argument(
        "--demo",
        action="store_true",
        help="run the built-in three-session interleaved demo and exit",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        default=argparse.SUPPRESS,
        help="trace every request end to end; stored studies gain a "
        "<key>.trace sidecar readable with `gridmind trace`",
    )
    serve.add_argument(
        "--metrics-file",
        default=None,
        metavar="PATH",
        help="write the Prometheus text exposition of the process metrics "
        "registry here on shutdown (after --turn/--demo runs too), so "
        "scrapes don't require embedding the service",
    )
    for flag, kwargs in (
        ("--model", {}),
        ("--seed", {"type": int}),
    ):
        serve.add_argument(
            flag, default=argparse.SUPPRESS, help=argparse.SUPPRESS, **kwargs
        )

    trace = sub.add_parser(
        "trace",
        help="render the span tree of a traced study from a result store",
        description=(
            "Load the JSON-lines trace sidecar a traced study exported "
            "next to its store payload and render the time-annotated span "
            "tree plus a critical-path summary (self time by span name). "
            "Accepts the same key / unique-prefix / label references as "
            "the rest of the store tooling."
        ),
    )
    trace.add_argument(
        "ref",
        nargs="?",
        default=None,
        help="study key, unique key prefix, or label (default: most recent)",
    )
    trace.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result-store directory the traced study was persisted to",
    )
    trace.add_argument(
        "--file",
        default=None,
        metavar="PATH",
        help="read a raw JSON-lines trace file instead of a store entry",
    )
    trace.add_argument(
        "--json", action="store_true", help="emit the raw span records as JSON"
    )

    health = sub.add_parser(
        "health",
        help="one-shot health report from a store's persisted metric snapshots",
        description=(
            "Load the health-snapshot sidecar a service wrote into the "
            "store directory, evaluate the health rule set against the "
            "windowed series, and print the per-rule OK/WARN/CRIT report. "
            "Exits 1 when any rule is CRIT (for scripting and CI gates), "
            "2 on usage errors."
        ),
    )
    health.add_argument("store", help="result-store directory holding the sidecar")
    health.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    health.add_argument(
        "--window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evaluate rules over this trailing window (default: each "
        "rule's own window)",
    )

    top = sub.add_parser(
        "top",
        help="live console over a store's health snapshots (executor, "
        "sessions, SLOs, alerts)",
        description=(
            "Refreshing operational console: reloads the store's health "
            "sidecar every interval and renders executor occupancy, "
            "per-session rates, the worst SLO burn rates, and recent "
            "alert transitions."
        ),
    )
    top.add_argument("store", help="result-store directory holding the sidecar")
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="render N frames then exit (default: run until interrupted)",
    )

    watch = sub.add_parser(
        "watch",
        help="stream a simulated telemetry fleet through rolling-window "
        "studies with live per-window summaries and alerts",
        description=(
            "Attach a deterministic simulated device fleet (meters and "
            "DERs) to a case, stream its telemetry feed tick by tick, fold "
            "every tick's operating point into rolling windows, and print "
            "each closed window's aggregate, health status, and alerts as "
            "it closes.  With --pace simulated (the default) the run is "
            "fully deterministic in (--seed, fleet spec); --pace wall "
            "plays the feed against the wall clock for live demos."
        ),
    )
    watch.add_argument("--case", required=True, help="case name, e.g. ieee14")
    watch.add_argument(
        "--devices", type=int, default=200, help="simulated meters/DERs"
    )
    watch.add_argument(
        "--ticks", type=int, default=24, help="telemetry ticks to stream"
    )
    watch.add_argument(
        "--window", type=int, default=4, metavar="TICKS", help="window size"
    )
    watch.add_argument(
        "--slide",
        type=int,
        default=None,
        metavar="TICKS",
        help="window slide (default: tumbling; must divide --window)",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=900.0,
        metavar="SECONDS",
        help="simulated seconds per tick",
    )
    watch.add_argument(
        "--sigma", type=float, default=2.0, help="per-device noise std-dev, %%"
    )
    watch.add_argument(
        "--analysis",
        choices=("powerflow", "dc", "dcopf", "acopf", "screening", "scopf"),
        default="powerflow",
    )
    watch.add_argument(
        "--anomaly-tick",
        type=int,
        default=None,
        metavar="T",
        help="inject an anomaly starting at this tick (default: clean feed)",
    )
    watch.add_argument(
        "--anomaly-duration", type=int, default=2, metavar="TICKS"
    )
    watch.add_argument(
        "--anomaly-kind",
        choices=("load_spike", "voltage_sag", "dropout"),
        default="load_spike",
    )
    watch.add_argument(
        "--anomaly-feeder",
        default=None,
        metavar="LABEL",
        help="limit the anomaly to one feeder (e.g. feeder_2)",
    )
    watch.add_argument(
        "--anomaly-magnitude", type=float, default=1.8, metavar="X"
    )
    watch.add_argument(
        "--pace",
        choices=("simulated", "wall"),
        default="simulated",
        help="'simulated' streams as fast as it folds; 'wall' paces ticks "
        "against the wall clock (interval / speedup per tick)",
    )
    watch.add_argument(
        "--speedup",
        type=float,
        default=300.0,
        help="wall pacing compression factor (with --pace wall)",
    )
    watch.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=1,
        help="narration verbosity (repeat for per-window slice tables)",
    )
    watch.add_argument(
        "--json", action="store_true", help="emit the full watch summary as JSON"
    )
    watch.add_argument(
        "--seed",
        type=int,
        default=argparse.SUPPRESS,
        help="fleet RNG seed (also accepted before the subcommand)",
    )
    return parser


def _build_study_scenarios(args):
    from ..grid.cases import load_case
    from ..scenarios import expand_study_kind

    if args.scenarios is not None and args.scenarios < 1:
        raise ValueError(f"-n/--scenarios must be >= 1, got {args.scenarios}")
    net = load_case(args.case)
    scenarios = expand_study_kind(
        args.kind,
        net,
        n_scenarios=args.scenarios,
        lo_percent=args.lo,
        hi_percent=args.hi,
        sigma_percent=args.sigma,
        seed=args.seed,
        depth=args.depth,
        n_zones=args.zones,
        rho_percent=100.0 * args.rho,
    )
    return net, scenarios


def _print_trace(tracer, stream=None) -> None:
    """Render a tracer's recorded spans to stderr (span tree + hot path)."""
    from ..instrumentation.trace import format_trace_report

    stream = stream or sys.stderr
    spans = tracer.spans()
    if not spans:
        print("[gridmind] trace: no spans recorded", file=stream)
        return
    print(f"[gridmind] trace ({len(spans)} spans):", file=stream)
    print(format_trace_report(spans), file=stream)


def _progress_printer(stream):
    """Live per-chunk progress line (carriage-return updates on a TTY)."""
    tty = _supports_color(stream)

    def show(p) -> None:
        if p.n_total:
            head = f"{p.n_done}/{p.n_total} ({100.0 * p.fraction:.0f}%)"
        else:
            head = f"{p.n_done} scenarios"
        line = (
            f"[gridmind] {head} | converged {p.n_converged} | "
            f"violations {100.0 * p.violation_rate:.0f}% | {p.elapsed_s:.1f}s"
        )
        if tty:
            print(f"\r{line}", end="", flush=True, file=stream)
            if p.n_total and p.n_done >= p.n_total:
                print(file=stream)
        else:
            print(line, file=stream)

    return show


def run_study(args) -> int:
    """Execute the ``study`` subcommand against the batch engine.

    The study streams: scenarios expand lazily, completed chunks fold
    into the online reducer, and ``--progress`` (implied on a TTY)
    narrates delivery live instead of waiting for the final table.
    """
    from contextlib import ExitStack

    from ..scenarios import BatchStudyRunner, resolve_slice_by

    progress = None
    if args.progress or _supports_color(sys.stderr):
        progress = _progress_printer(sys.stderr)
    tracer = None
    try:
        with ExitStack() as stack:
            if getattr(args, "trace", False):
                from ..instrumentation.trace import Tracer, tracing

                tracer = stack.enter_context(tracing(Tracer()))
            slice_by = resolve_slice_by(args.slice_by, args.kind, n_zones=args.zones)
            net, scenarios = _build_study_scenarios(args)
            runner = BatchStudyRunner(
                analysis=args.analysis,
                n_jobs=args.jobs,
                slice_by=slice_by,
                ac_mode=getattr(args, "ac_mode", "warm"),
            )
            study = runner.run(
                net, scenarios, progress=progress, keep_results=args.keep_results
            )
    except (KeyError, ValueError) as exc:
        # Domain errors (unknown case, bad ranges) are user input problems:
        # report them like argparse does instead of dumping a traceback.
        message = exc.args[0] if exc.args else str(exc)
        print(f"gridmind study: error: {message}", file=sys.stderr)
        return 2
    if tracer is not None:
        _print_trace(tracer)
    payload = study.to_dict()

    if args.json:
        print(json.dumps(payload, indent=2, default=str))
        return 0

    agg = payload["aggregate"]
    print(
        f"{args.kind} study on {study.case_name}: {study.n_scenarios} scenarios, "
        f"{study.analysis} analysis, {study.n_jobs} worker(s), "
        f"{study.runtime_s:.2f}s"
    )
    print(
        f"  converged {agg['n_converged']}/{agg['n_scenarios']}"
        f" | violations in {100.0 * agg['violation_rate']:.0f}% of scenarios"
        f" | errors {agg['n_errors']}"
    )
    for label, key in (
        ("cost $/h", "cost_stats"),
        ("security $/h", "security_cost_stats"),
        ("peak loading %", "loading_stats"),
        ("min voltage pu", "min_voltage_stats"),
    ):
        stats = agg.get(key)
        if stats:
            print(
                f"  {label:>15s}: p50 {stats['p50']:.2f}  p95 {stats['p95']:.2f}  "
                f"range [{stats['min']:.2f}, {stats['max']:.2f}]"
            )
    if agg.get("branch_overload_freq"):
        worst = list(agg["branch_overload_freq"].items())[:5]
        print(
            "  overload frequency: "
            + ", ".join(f"branch {b}: {100.0 * f:.0f}%" for b, f in worst)
        )
    if agg.get("stable_critical"):
        print(
            "  stable critical branches: "
            + ", ".join(str(b) for b in agg["stable_critical"])
        )
    for dim, block in (agg.get("slices") or {}).items():
        cells = block.get("cells") or []
        if not cells:
            print(
                f"  sliced by {dim}: no scenarios carried this tag "
                f"({block.get('n_unsliced', 0)} untagged)"
            )
            continue
        head = f"  sliced by {dim} ({block['n_cells']} buckets"
        if block.get("n_overflow_values"):
            head += f", {block['n_overflow_values']} folded into __other__"
        print(head + "):")
        print(f"    {'value':>10s}  {'n':>6s}  {'viol%':>6s}  {'cost p50':>10s}  {'load p95':>9s}")
        for cell in cells:
            cost = cell.get("cost_stats")
            loading = cell.get("loading_stats")
            print(
                f"    {cell['value']:>10s}  {cell['n']:>6d}  "
                f"{100.0 * cell['violation_rate']:>6.1f}  "
                + (f"{cost['p50']:>10.2f}" if cost else f"{'-':>10s}")
                + "  "
                + (f"{loading['p95']:>9.1f}" if loading else f"{'-':>9s}")
            )
    print("  most stressed scenarios:")
    for w in payload["worst_scenarios"][:5]:
        line = f"    {w['name']}: peak loading {w['max_loading_percent']:.1f}%"
        if w.get("objective_cost") is not None:
            line += f", cost ${w['objective_cost']:,.2f}/h"
        if not w["converged"]:
            line += " (diverged)" if not w.get("error") else f" ({w['error']})"
        print(line)
    return 0


#: Scripted interleave used by ``gridmind serve --demo``: two sessions
#: converse and run sweeps concurrently (phase 1); once their studies are
#: persisted, a third, brand-new session compares them from the store
#: (phase 2 — sequenced after phase 1 because it *reads* its results).
_DEMO_PHASES: list[list[tuple[str, str]]] = [
    [
        ("alice", "Solve the IEEE 14 bus case"),
        ("bob", "Solve the IEEE 30 bus case"),
        ("alice", "Run a load sweep study from 95% to 105% in 3 steps on ieee14"),
        ("bob", "what's the network status?"),
        ("alice", "Run a load sweep study from 80% to 120% in 5 steps on ieee14"),
    ],
    [
        ("carol", "compare the last two studies"),
    ],
]


def _parse_turn(raw: str) -> tuple[str, str]:
    """Split a ``session: text`` directive (session defaults to 'main')."""
    head, sep, tail = raw.partition(":")
    if sep and head.strip() and " " not in head.strip():
        return head.strip(), tail.strip()
    return "main", raw.strip()


async def _run_turns(service, turns, *, echo: bool) -> None:
    """Schedule every turn up front (so sessions interleave), then print
    the replies in submission order."""
    tasks = [
        (sid, text, asyncio.create_task(service.ask(sid, text)))
        for sid, text in turns
    ]
    for sid, text, task in tasks:
        reply = await task
        if echo:
            print(f"> [{sid}] {text}")
        print(f"[{sid}] {reply.text}")
        print(
            f"  (turn {reply.turn} | agents: {', '.join(reply.agents)} | "
            f"llm {reply.latency_virtual_s:.1f}s + compute {reply.wall_s:.2f}s)"
        )


async def _serve_async(args) -> int:
    import tempfile

    from ..service import GridMindService

    store_ctx = None
    store_dir = args.store
    if store_dir is None:
        store_ctx = tempfile.TemporaryDirectory(prefix="gridmind-store-")
        store_dir = store_ctx.name
    service = GridMindService(
        model=getattr(args, "model", "gpt-5-mini"),
        seed=getattr(args, "seed", 0),
        max_workers=args.workers,
        store_dir=store_dir,
        trace=getattr(args, "trace", False),
    )
    try:
        if args.demo:
            print(
                f"three-session interleaved demo (store: {store_dir}, "
                f"{args.workers} shared workers)"
            )
            for phase in _DEMO_PHASES:
                await _run_turns(service, phase, echo=True)
            print(f"executor: {service.executor.stats()}")
            return 0
        if args.turn:
            await _run_turns(service, [_parse_turn(t) for t in args.turn], echo=True)
            return 0
        print(_BANNER)
        print(
            "service REPL — address sessions as 'name: request' (bare text "
            "goes to 'main'); ':sessions' lists sessions, ':quit' exits.\n"
        )
        while True:
            try:
                line = (await asyncio.to_thread(input, "gridmind*> ")).strip()
            except (EOFError, KeyboardInterrupt):
                print()
                break
            if not line:
                continue
            if line.lower() in {":quit", ":q", "quit", "exit"}:
                break
            if line.lower() == ":sessions":
                for info in service.sessions():
                    print(
                        f"  {info.session_id}: {info.n_turns} turns, "
                        f"case {info.case_name or '-'}, seed {info.seed}"
                    )
                continue
            sid, text = _parse_turn(line)
            reply = await service.ask(sid, text)
            print(f"[{sid}] {reply.text}")
        print(f"service metrics: {service.metrics()}")
        return 0
    finally:
        if getattr(args, "trace", False) and service.tracer.enabled:
            _print_trace(service.tracer)
        await service.aclose()
        metrics_file = getattr(args, "metrics_file", None)
        if metrics_file:
            # After aclose() so the exposition includes the final health
            # snapshot and every merged worker delta.
            from pathlib import Path

            Path(metrics_file).write_text(service.metrics_text())
            print(f"[gridmind] metrics written to {metrics_file}", file=sys.stderr)
        if store_ctx is not None:
            store_ctx.cleanup()


def run_serve(args) -> int:
    """Execute the ``serve`` subcommand (async service front end)."""
    return asyncio.run(_serve_async(args))


def run_trace(args) -> int:
    """Execute the ``trace`` subcommand: render a stored study's spans."""
    from ..instrumentation.trace import format_trace_report
    from ..service.store import ResultStore, StudyNotFound

    try:
        if args.file is not None:
            from pathlib import Path

            text = Path(args.file).read_text()
            spans = [json.loads(line) for line in text.splitlines() if line.strip()]
        else:
            if args.store is None:
                print(
                    "gridmind trace: error: provide --store DIR (or --file PATH)",
                    file=sys.stderr,
                )
                return 2
            store = ResultStore(args.store)
            ref = args.ref
            if ref is None:
                entries = store.list_studies()
                if not entries:
                    raise StudyNotFound(f"no stored studies in {store.root}")
                ref = entries[-1].key  # newest
            spans = store.load_trace(ref)
    except (OSError, StudyNotFound, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"gridmind trace: error: {message}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(spans, indent=2))
        return 0
    print(f"{len(spans)} spans")
    print(format_trace_report(spans))
    return 0


_STATUS_TAG = {"ok": " OK ", "warn": "WARN", "crit": "CRIT"}


def _load_store_sampler(store_dir: str):
    """Rebuild a sampler from a store's health-snapshot sidecar.

    Returns ``(sampler, error_message)``; error is set when the store
    has no usable snapshots (the caller prints it and exits 2).
    """
    from ..instrumentation.rollup import MetricsSampler
    from ..service.store import ResultStore

    store = ResultStore(store_dir)
    snaps = store.load_health_snapshots()
    if not snaps:
        return None, (
            f"no health snapshots in {store.root} (run the service with "
            "health sampling enabled against this store first)"
        )
    sampler = MetricsSampler.from_snapshots(snaps, max_samples=max(2, len(snaps)))
    if sampler.n_samples < 2:
        return None, (
            f"only {sampler.n_samples} usable snapshot(s) in {store.root}; "
            "windowed health needs at least 2"
        )
    return sampler, None


def _format_report(report) -> str:
    lines = [
        f"health: {report.status.upper()}  "
        f"({report.n_samples} snapshots spanning {report.window_span_s:.0f}s)"
    ]
    for r in report.rules:
        value = "-" if r.value is None else f"{r.value:.4g}"
        thresholds = (
            f"warn {'-' if r.warn is None else f'{r.warn:g}'}"
            f" crit {'-' if r.crit is None else f'{r.crit:g}'}"
        )
        line = (
            f"  [{_STATUS_TAG[r.status]}] {r.name:<22s} {value:>10s}"
            f"  ({thresholds}) — {r.detail}"
        )
        if r.burn_rate is not None:
            line += f" [burn {r.burn_rate:.1f}x]"
        lines.append(line)
    return "\n".join(lines)


def run_health(args) -> int:
    """Execute the ``health`` subcommand: one-shot report from a store."""
    import dataclasses

    from ..instrumentation.health import builtin_rules, evaluate_health

    sampler, error = _load_store_sampler(args.store)
    if error:
        print(f"gridmind health: error: {error}", file=sys.stderr)
        return 2
    rules = builtin_rules()
    if args.window is not None:
        rules = [dataclasses.replace(r, window_s=args.window) for r in rules]
    report = evaluate_health(sampler, rules)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(_format_report(report))
    return 1 if report.status == "crit" else 0


def _render_top_frame(sampler, monitor, report) -> str:
    """One ``gridmind top`` frame as a string (testable without a TTY)."""
    import time as _time

    lines: list[str] = []
    ts = sampler.latest_ts or 0.0
    lines.append(
        f"gridmind top — {_time.strftime('%H:%M:%S', _time.localtime(ts))} "
        f"| {sampler.n_samples} snapshots over {sampler.window_span_s:.0f}s "
        f"| status {report.status.upper()}"
    )

    in_flight = sampler.gauge_value("gridmind_executor_in_flight")
    dispatch_rate = sampler.rate("gridmind_chunks_dispatched_total")
    scenario_rate = sampler.rate("gridmind_scenarios_total")
    executor_line = (
        f"executor: in-flight {'-' if in_flight is None else f'{in_flight:.0f}'}"
        f" | chunks/s {'-' if dispatch_rate is None else f'{dispatch_rate:.2f}'}"
        f" | scenarios/s {'-' if scenario_rate is None else f'{scenario_rate:.1f}'}"
    )
    lines.append(executor_line)

    batch_solves = sampler.counter_value("gridmind_batch_solves_total")
    if batch_solves:
        batch_rows = sampler.counter_value("gridmind_batch_rows_total")
        row_rate = sampler.rate("gridmind_batch_rows_total")
        lines.append(
            f"batch kernels: solves {batch_solves:.0f}"
            f" | rows {batch_rows:.0f}"
            f" | rows/s {'-' if row_rate is None else f'{row_rate:.1f}'}"
        )

    ac_warm = sampler.counter_value("gridmind_ac_warm_solves_total")
    ac_skipped = sampler.counter_value("gridmind_ac_skipped_converged_total")
    if ac_warm or ac_skipped:
        warm_rate = sampler.rate("gridmind_ac_warm_solves_total")
        lines.append(
            f"ac kernels: warm solves {ac_warm or 0:.0f}"
            f" | skipped-converged {ac_skipped or 0:.0f}"
            f" | warm/s {'-' if warm_rate is None else f'{warm_rate:.1f}'}"
        )

    sessions = sampler.label_values("gridmind_session_chunks_total", "session")
    if sessions:
        lines.append("sessions:")
        lines.append(
            f"  {'session':<12s} {'chunks':>8s} {'scen':>8s} "
            f"{'exec-s':>8s} {'scen/s':>8s}"
        )
        for sid in sessions:
            match = {"session": sid}
            chunks = sampler.counter_value("gridmind_session_chunks_total", match)
            scen = sampler.counter_value("gridmind_session_scenarios_total", match)
            wall = sampler.counter_value(
                "gridmind_session_executor_seconds_total", match
            )
            rate = sampler.rate("gridmind_session_scenarios_total", match)
            lines.append(
                f"  {sid:<12s} {chunks:>8.0f} {scen:>8.0f} {wall:>8.1f} "
                + (f"{rate:>8.1f}" if rate is not None else f"{'-':>8s}")
            )

    burning = report.worst_by_burn(3)
    if burning:
        lines.append("worst SLOs:")
        for r in burning:
            lines.append(
                f"  {r.name:<22s} burn {r.burn_rate:>6.1f}x "
                f"[{_STATUS_TAG[r.status]}] {r.detail}"
            )

    alerts = monitor.alerts()
    if alerts:
        lines.append("recent alerts:")
        for a in alerts[-5:]:
            when = _time.strftime("%H:%M:%S", _time.localtime(a.ts))
            lines.append(
                f"  #{a.seq} {when} {a.rule}: {a.previous} -> {a.status} "
                f"({a.transition})"
            )
    else:
        lines.append("recent alerts: none")
    return "\n".join(lines)


def run_top(args) -> int:
    """Execute the ``top`` subcommand: refreshing console over a store."""
    import time as _time

    from ..instrumentation.health import HealthMonitor, evaluate_health

    tty = _supports_color(sys.stdout)
    n = 0
    try:
        while True:
            sampler, error = _load_store_sampler(args.store)
            if error:
                print(f"gridmind top: error: {error}", file=sys.stderr)
                return 2
            # Replay the snapshot history through a fresh monitor so the
            # alert trail matches what a live service would have fired.
            stride = max(1, sampler.n_samples // 32)
            monitor = HealthMonitor.replay(sampler, stride=stride)
            report = evaluate_health(sampler)
            frame = _render_top_frame(sampler, monitor, report)
            if tty:
                print("\x1b[2J\x1b[H" + frame, flush=True)
            else:
                print(frame, flush=True)
            n += 1
            if args.iterations is not None and n >= args.iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def run_watch_cmd(args) -> int:
    """Execute the ``watch`` subcommand: live windowed telemetry studies."""
    from ..grid.cases import load_case
    from ..llm.narration import narrate_watch, narrate_watch_window
    from ..telemetry import AnomalySpec, run_watch

    verbosity = min(args.verbose, 2)

    def on_window(update: dict) -> None:
        if args.json:
            return
        print(narrate_watch_window(update, verbosity), flush=True)

    try:
        net = load_case(args.case)
        anomaly = None
        if args.anomaly_tick is not None:
            anomaly = AnomalySpec(
                start_tick=args.anomaly_tick,
                duration_ticks=args.anomaly_duration,
                kind=args.anomaly_kind,
                feeder=args.anomaly_feeder,
                magnitude=args.anomaly_magnitude,
            )
        out = run_watch(
            net,
            n_devices=args.devices,
            n_ticks=args.ticks,
            window_ticks=args.window,
            slide_ticks=args.slide,
            seed=getattr(args, "seed", 0),
            interval_s=args.interval,
            sigma=args.sigma / 100.0,
            anomaly=anomaly,
            analysis=args.analysis,
            pace=args.pace,
            speedup=args.speedup,
            on_window=on_window,
        )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"gridmind watch: error: {message}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print()
        return 0
    if args.json:
        print(json.dumps(out, indent=2, default=str))
        return 0
    print()
    print(narrate_watch(out, verbosity))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "command", None) == "study":
        return run_study(args)
    if getattr(args, "command", None) == "serve":
        return run_serve(args)
    if getattr(args, "command", None) == "trace":
        return run_trace(args)
    if getattr(args, "command", None) == "health":
        return run_health(args)
    if getattr(args, "command", None) == "top":
        return run_top(args)
    if getattr(args, "command", None) == "watch":
        return run_watch_cmd(args)
    color = _supports_color(sys.stdout)
    cyan = _CYAN if color else ""
    dim = _DIM if color else ""
    reset = _RESET if color else ""

    tracer = None
    if args.trace:
        from ..instrumentation.trace import Tracer, set_tracer

        tracer = Tracer()
        set_tracer(tracer)

    session = GridMindSession(model=args.model, seed=args.seed)

    def respond(text: str) -> None:
        reply = session.ask(text)
        rec = session.last_record
        print(f"{cyan}{reply.text}{reset}")
        if rec is not None:
            print(
                f"{dim}[{session.model} | agents: {', '.join(reply.agents_involved)} "
                f"| llm {rec.latency_virtual_s:.1f}s (simulated) "
                f"+ compute {rec.wall_s:.2f}s | "
                f"{rec.prompt_tokens}+{rec.completion_tokens} tokens]{reset}"
            )

    if args.ask:
        for text in args.ask:
            print(f"> {text}")
            respond(text)
        if tracer is not None:
            _print_trace(tracer)
        return 0

    print(_BANNER)
    print(
        f"model: {session.model} — type a request "
        "('Solve IEEE 14', 'run contingency analysis', ...); 'quit' to exit.\n"
    )
    while True:
        try:
            text = input("gridmind> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            break
        if not text:
            continue
        if text.lower() in {"quit", "exit", "q"}:
            break
        respond(text)

    if tracer is not None:
        _print_trace(tracer)
    summary = session.metrics()
    print(f"{dim}session summary: {summary}{reset}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
