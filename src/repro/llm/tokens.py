"""Token estimation for the instrumentation bench.

Real tokenisers are provider-specific; the paper's instrumentation only
needs consistent relative accounting, so we use the standard ~4 chars per
token heuristic plus a per-message protocol overhead.
"""

from __future__ import annotations

from .base import ChatMessage, TokenUsage

_CHARS_PER_TOKEN = 4.0
_PER_MESSAGE_OVERHEAD = 4  # role/markup tokens per message


def estimate_text_tokens(text: str) -> int:
    """Approximate token count of a plain string (>= 1 for non-empty)."""
    if not text:
        return 0
    return max(1, round(len(text) / _CHARS_PER_TOKEN))


def estimate_message_tokens(msg: ChatMessage) -> int:
    """Tokens for one message including tool-call payloads."""
    n = _PER_MESSAGE_OVERHEAD + estimate_text_tokens(msg.content)
    for tc in msg.tool_calls:
        n += estimate_text_tokens(tc.name) + estimate_text_tokens(str(tc.arguments))
    return n


def estimate_prompt_tokens(messages: list[ChatMessage]) -> int:
    return sum(estimate_message_tokens(m) for m in messages)


def usage_for(messages: list[ChatMessage], completion: ChatMessage) -> TokenUsage:
    """Usage record for a completion given its prompt context."""
    return TokenUsage(
        prompt_tokens=estimate_prompt_tokens(messages),
        completion_tokens=estimate_message_tokens(completion),
    )
