"""Declarative health rules, SLO evaluation, and an alert ring.

The rollup layer (:mod:`repro.instrumentation.rollup`) answers windowed
questions about raw metrics; this module turns those answers into an
operational verdict.  A :class:`HealthRule` names one windowed query —
a failure *ratio*, a latency *quantile*, a gauge *saturation*, a
throughput *rate*, or a plain gauge *value* — with WARN and CRIT
thresholds; :func:`evaluate_health` runs a rule set against a sampler
and folds the per-rule results into a :class:`HealthReport` whose
overall status is the worst rule's.

Evaluation is a pure function of the sampler's retained snapshots (plus
the evaluation timestamp, which defaults to the latest snapshot's), so a
report computed from a store's persisted snapshot sidecar is identical
to the one the live service produced — the reproducibility contract the
``gridmind health`` CLI relies on.

Alerting is edge-triggered: a :class:`HealthMonitor` watches successive
reports and appends a seq-numbered :class:`AlertEvent` to a
:class:`~repro.instrumentation.ringlog.RingLog` only on *transitions*
(ok→warn, warn→crit, crit→ok, ...), so the ring records the incident
history, not one line per evaluation tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .ringlog import RingLog
from .rollup import MetricsSampler

OK = "ok"
WARN = "warn"
CRIT = "crit"

_SEVERITY = {OK: 0, WARN: 1, CRIT: 2}


def worst_status(statuses: Iterable[str]) -> str:
    return max(statuses, key=lambda s: _SEVERITY[s], default=OK)


@dataclass(frozen=True)
class SloSpec:
    """A service-level objective attached to a ratio-kind rule.

    ``objective`` is the *good* fraction promised (e.g. ``0.99`` = at
    most 1% of events may be bad).  Burn rate is the standard multiplier
    of the error budget being consumed: ``bad_fraction / (1 -
    objective)`` — 1.0 means burning exactly at budget, 10 means the
    budget is gone in a tenth of the window.
    """

    objective: float
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"SLO objective must be in (0, 1), got {self.objective}"
            )

    def burn_rate(self, bad_fraction: float) -> float:
        return bad_fraction / (1.0 - self.objective)


@dataclass(frozen=True)
class HealthRule:
    """One declarative check against the rollup windows.

    ``kind`` selects the query:

    * ``ratio`` — ``metric`` increase / ``denominator`` increase over the
      window (failure rates).  ``match`` filters the numerator series,
      ``den_match`` the denominator's.
    * ``quantile`` — interpolated ``quantile`` of histogram ``metric``'s
      window observations (latency objectives).
    * ``saturation`` — trailing seconds gauge ``metric`` has sat at or
      above ``level`` (``level=None`` = its window peak).
    * ``rate`` — per-second increase of counter ``metric``.
    * ``value`` — latest reading of gauge ``metric``.

    ``direction`` is ``"above"`` (value >= threshold is bad, the default)
    or ``"below"`` (value <= threshold is bad, for throughput floors).
    Thresholds may be ``None`` to disable that level.
    """

    name: str
    kind: str
    metric: str
    warn: float | None = None
    crit: float | None = None
    denominator: str | None = None
    match: tuple[tuple[str, str], ...] = ()
    den_match: tuple[tuple[str, str], ...] = ()
    quantile: float = 0.95
    level: float | None = None
    direction: str = "above"
    window_s: float | None = 300.0
    slo: SloSpec | None = None
    help: str = ""

    _KINDS = ("ratio", "quantile", "saturation", "rate", "value")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown rule kind {self.kind!r}; expected one of {self._KINDS}"
            )
        if self.direction not in ("above", "below"):
            raise ValueError(
                f"direction must be 'above' or 'below', got {self.direction!r}"
            )
        if self.kind == "ratio" and not self.denominator:
            raise ValueError(f"ratio rule {self.name!r} needs a denominator")

    def _breaches(self, value: float, threshold: float | None) -> bool:
        if threshold is None:
            return False
        if self.direction == "above":
            return value >= threshold
        return value <= threshold

    def classify(self, value: float) -> str:
        if self._breaches(value, self.crit):
            return CRIT
        if self._breaches(value, self.warn):
            return WARN
        return OK


@dataclass(frozen=True)
class RuleResult:
    """Outcome of evaluating one rule: a status plus the evidence."""

    name: str
    kind: str
    status: str
    value: float | None
    warn: float | None
    crit: float | None
    detail: str
    burn_rate: float | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "value": self.value,
            "warn": self.warn,
            "crit": self.crit,
            "detail": self.detail,
            "burn_rate": self.burn_rate,
        }


@dataclass(frozen=True)
class HealthReport:
    """One evaluation pass: per-rule results plus window provenance."""

    ts: float
    status: str
    rules: tuple[RuleResult, ...]
    n_samples: int
    window_span_s: float

    def rule_statuses(self) -> dict[str, str]:
        return {r.name: r.status for r in self.rules}

    def worst_by_burn(self, k: int = 3) -> list[RuleResult]:
        burning = [r for r in self.rules if r.burn_rate is not None]
        burning.sort(key=lambda r: r.burn_rate, reverse=True)
        return burning[:k]

    def to_dict(self) -> dict:
        return {
            "ts": self.ts,
            "status": self.status,
            "n_samples": self.n_samples,
            "window_span_s": self.window_span_s,
            "rules": [r.to_dict() for r in self.rules],
        }


@dataclass(frozen=True)
class AlertEvent:
    """One edge in a rule's status history (firing or resolved)."""

    ts: float
    rule: str
    transition: str  # "firing" | "resolved"
    status: str  # the status the rule moved TO
    previous: str
    value: float | None = None
    seq: int = -1  # assigned by the monitor's ring

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "rule": self.rule,
            "transition": self.transition,
            "status": self.status,
            "previous": self.previous,
            "value": self.value,
        }


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def _evaluate_rule(
    sampler: MetricsSampler, rule: HealthRule, now: float
) -> RuleResult:
    value: float | None = None
    detail = ""
    burn = None
    match = dict(rule.match) or None
    if rule.kind == "ratio":
        num = sampler.counter_delta(rule.metric, match, rule.window_s)
        den = sampler.counter_delta(
            rule.denominator, dict(rule.den_match) or None, rule.window_s
        )
        if num is None or den is None:
            detail = "insufficient samples"
        elif den[0] <= 0:
            detail = "no events in window"
        else:
            value = num[0] / den[0]
            detail = f"{num[0]:.0f}/{den[0]:.0f} over {den[1]:.0f}s"
            if rule.slo is not None:
                burn = rule.slo.burn_rate(value)
    elif rule.kind == "quantile":
        value = sampler.window_quantile(
            rule.metric, rule.quantile, match, rule.window_s
        )
        if value is None:
            detail = "no observations in window"
        else:
            detail = f"p{rule.quantile * 100:g} of window observations"
    elif rule.kind == "saturation":
        value = sampler.saturated_seconds(
            rule.metric, rule.level, match, rule.window_s
        )
        peak = sampler.gauge_peak(rule.metric, match, rule.window_s)
        level = rule.level if rule.level is not None else peak
        detail = f"at/above {level} (peak {peak})" if peak is not None else "no data"
    elif rule.kind == "rate":
        value = sampler.rate(rule.metric, match, rule.window_s)
        detail = "per-second increase" if value is not None else "insufficient samples"
    elif rule.kind == "value":
        value = sampler.gauge_value(rule.metric, match)
        detail = "latest reading" if value is not None else "gauge absent"

    status = OK if value is None else rule.classify(value)
    if value is None and not detail:
        detail = "no data"
    return RuleResult(
        name=rule.name,
        kind=rule.kind,
        status=status,
        value=value,
        warn=rule.warn,
        crit=rule.crit,
        detail=detail,
        burn_rate=burn,
    )


def evaluate_health(
    sampler: MetricsSampler,
    rules: Sequence[HealthRule] | None = None,
    now: float | None = None,
) -> HealthReport:
    """Evaluate ``rules`` (default: the builtin set) against ``sampler``.

    Pure: the report depends only on the sampler's retained snapshots
    and ``now`` (default: the latest snapshot's timestamp, so replays
    from persisted sidecars are deterministic).  Rules with insufficient
    data report OK with an explanatory detail — absence of evidence is
    not an incident.
    """
    if rules is None:
        rules = builtin_rules()
    if now is None:
        now = sampler.latest_ts if sampler.latest_ts is not None else 0.0
    results = tuple(_evaluate_rule(sampler, rule, now) for rule in rules)
    return HealthReport(
        ts=float(now),
        status=worst_status(r.status for r in results),
        rules=results,
        n_samples=sampler.n_samples,
        window_span_s=sampler.window_span_s,
    )


# ----------------------------------------------------------------------
# alerting
# ----------------------------------------------------------------------
@dataclass
class HealthMonitor:
    """Edge-triggered alerting over successive health reports.

    Feed every report through :meth:`observe`; the monitor keeps the
    last status per rule and appends an :class:`AlertEvent` to its ring
    only when a rule's status changes.  ``firing`` marks any move to a
    worse-than-OK status (including warn→crit escalations); ``resolved``
    marks a return to OK.
    """

    rules: tuple[HealthRule, ...] = ()
    max_alerts: int = 256
    _ring: RingLog[AlertEvent] = field(init=False)
    _last: dict[str, str] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if not self.rules:
            self.rules = tuple(builtin_rules())
        self._ring = RingLog(self.max_alerts)

    def observe(self, report: HealthReport) -> list[AlertEvent]:
        """Record transitions from ``report``; return newly appended events."""
        events: list[AlertEvent] = []
        for result in report.rules:
            previous = self._last.get(result.name, OK)
            if result.status == previous:
                continue
            self._last[result.name] = result.status
            transition = "resolved" if result.status == OK else "firing"
            event = AlertEvent(
                ts=report.ts,
                rule=result.name,
                transition=transition,
                status=result.status,
                previous=previous,
                value=result.value,
            )
            seq = self._ring.append(event)
            events.append(
                AlertEvent(**{**event.__dict__, "seq": seq})
            )
        return events

    def evaluate(
        self, sampler: MetricsSampler, now: float | None = None
    ) -> HealthReport:
        """Evaluate this monitor's rules and record any transitions."""
        report = evaluate_health(sampler, self.rules, now)
        self.observe(report)
        return report

    def alerts(self, since_seq: int = -1) -> list[AlertEvent]:
        """Alert events after ``since_seq``, oldest first, seqs attached."""
        return [
            AlertEvent(**{**event.__dict__, "seq": seq})
            for seq, event in self._ring.pairs()
            if seq > since_seq
        ]

    @classmethod
    def replay(
        cls,
        sampler: MetricsSampler,
        rules: Sequence[HealthRule] | None = None,
        *,
        stride: int = 1,
    ) -> "HealthMonitor":
        """Rebuild alert history by re-evaluating each retained snapshot.

        Walks the sampler's snapshots oldest-first, evaluating the rule
        set at every ``stride``-th snapshot's timestamp over a growing
        prefix sampler — the offline equivalent of the live service's
        periodic evaluate/observe loop, used by ``gridmind top`` to show
        recent alerts from a sidecar alone.
        """
        monitor = cls(rules=tuple(rules) if rules is not None else ())
        snaps = sampler.snapshots()
        prefix = MetricsSampler(
            interval_s=sampler.interval_s, max_samples=max(2, len(snaps))
        )
        for i, snap in enumerate(snaps):
            prefix.ingest(snap)
            if i % stride == 0 or i == len(snaps) - 1:
                monitor.evaluate(prefix)
        return monitor


# ----------------------------------------------------------------------
# builtin rule set
# ----------------------------------------------------------------------
def builtin_rules() -> list[HealthRule]:
    """The default GridMind operational rule set.

    Thresholds are deliberately loose: they are shipped defaults meant
    to catch gross regressions (a dying pool, a diverging solver fleet),
    not tuned production SLOs — deployments pass their own rule list to
    :class:`~repro.service.service.GridMindService` for those.
    """
    return [
        HealthRule(
            name="chunk_wall_p95",
            kind="quantile",
            metric="gridmind_chunk_wall_seconds",
            quantile=0.95,
            warn=20.0,
            crit=60.0,
            help="p95 study chunk wall time (s); slow chunks starve the stream",
        ),
        HealthRule(
            name="solver_failure_rate",
            kind="ratio",
            metric="gridmind_solver_failures_total",
            denominator="gridmind_solver_invocations_total",
            warn=0.05,
            crit=0.25,
            slo=SloSpec(0.95, "95% of solver invocations converge"),
            help="fraction of solver invocations failing to converge",
        ),
        HealthRule(
            name="scenario_error_rate",
            kind="ratio",
            metric="gridmind_scenarios_total",
            denominator="gridmind_scenarios_total",
            match=(("converged", "False"),),
            warn=0.10,
            crit=0.50,
            slo=SloSpec(0.90, "90% of study scenarios converge"),
            help="fraction of study scenarios that did not converge",
        ),
        HealthRule(
            name="chunk_retry_rate",
            kind="ratio",
            metric="gridmind_chunks_retried_total",
            denominator="gridmind_chunks_dispatched_total",
            warn=0.02,
            crit=0.20,
            slo=SloSpec(0.98, "98% of dispatched chunks complete without retry"),
            help="fraction of dispatched chunks retried after worker loss",
        ),
        HealthRule(
            name="request_failure_rate",
            kind="ratio",
            metric="gridmind_requests_total",
            denominator="gridmind_requests_total",
            match=(("success", "False"),),
            warn=0.05,
            crit=0.25,
            slo=SloSpec(0.95, "95% of agent requests succeed"),
            help="fraction of agent turns ending in failure",
        ),
        HealthRule(
            name="executor_saturation",
            kind="saturation",
            metric="gridmind_executor_in_flight",
            level=None,
            warn=30.0,
            crit=120.0,
            help="trailing seconds the executor in-flight gauge has pinned at its peak",
        ),
    ]
